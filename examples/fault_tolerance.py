"""Fault tolerance: replica failover, exactness under failure.

A production cluster loses machines. With ``replicas=2`` every grid
block lives on two machines, so the engine routes around a failure and
answers stay byte-identical; without replication the loss is surfaced
loudly rather than silently degrading results. The utilization
timeline shows the survivors absorbing the failed machine's share.

Run:  python examples/fault_tolerance.py
"""

import numpy as np

from repro import HarmonyConfig, HarmonyDB, Mode
from repro.bench.timeline import render_timeline
from repro.data import load_dataset


def main() -> None:
    dataset = load_dataset("sift1m", size=8000, n_queries=80, seed=27)
    db = HarmonyDB(
        dim=dataset.dim,
        config=HarmonyConfig(
            n_machines=4, nlist=64, nprobe=8, mode=Mode.VECTOR, replicas=2
        ),
    )
    db.build(dataset.base, sample_queries=dataset.queries)
    reference, healthy = db.search(dataset.queries, k=10)
    print(
        f"healthy 4-node cluster (R=2): {healthy.qps:,.0f} QPS, "
        f"per-node index "
        f"{db.index_memory_report()['mean_machine_bytes'] / 1e6:.2f} MB"
    )

    # --- kill a machine -----------------------------------------------------
    db.cluster.fail_worker(1)
    db.cluster.enable_tracing()
    result, degraded = db.search(dataset.queries, k=10)
    assert np.array_equal(result.ids, reference.ids), "failover changed results!"
    print(
        f"\nworker 1 failed -> {degraded.qps:,.0f} QPS "
        f"({degraded.qps / healthy.qps:.0%} of healthy), results identical"
    )
    print(render_timeline(db.cluster, buckets=56))

    # --- recovery ------------------------------------------------------------
    db.cluster.restore_worker(1)
    _, recovered = db.search(dataset.queries, k=10)
    print(f"\nworker 1 restored -> {recovered.qps:,.0f} QPS")

    # --- and why replication matters ----------------------------------------
    unreplicated = HarmonyDB(
        dim=dataset.dim,
        config=HarmonyConfig(
            n_machines=4, nlist=64, nprobe=8, mode=Mode.VECTOR
        ),
    )
    unreplicated.build(dataset.base, sample_queries=dataset.queries)
    unreplicated.cluster.fail_worker(1)
    try:
        unreplicated.search(dataset.queries, k=10)
    except RuntimeError as exc:
        print(f"\nwithout replicas the same failure is fatal: {exc}")


if __name__ == "__main__":
    main()
