"""Streaming updates: ingest, delete, tune, persist.

A living vector database keeps changing: new embeddings stream in,
stale ones are deleted, the recall target dictates the probe budget,
and the deployment must survive restarts. This example walks the full
lifecycle on one HARMONY deployment.

Run:  python examples/streaming_updates.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import HarmonyConfig, HarmonyDB
from repro.bench.tuning import tune_nprobe
from repro.data import load_dataset
from repro.workload import poisson_arrivals


def main() -> None:
    dataset = load_dataset("deep1m", size=6000, n_queries=100, seed=11)
    db = HarmonyDB(
        dim=dataset.dim, config=HarmonyConfig(n_machines=4, nlist=64, nprobe=8)
    )
    db.build(dataset.base, sample_queries=dataset.queries)
    print(f"built: {db.ntotal:,} vectors, plan = {db.plan.describe()}")

    # --- streaming ingest ------------------------------------------------
    new_batch = load_dataset("deep1m", size=500, n_queries=1, seed=99).base
    db.add(new_batch)
    print(f"ingested 500 new vectors -> {db.ntotal:,} stored")

    # --- deletion ---------------------------------------------------------
    result, _ = db.search(dataset.queries[:5], k=10)
    stale = np.unique(result.ids[result.ids >= 0])[:25]
    removed = db.remove(stale)
    print(f"deleted {removed} stale vectors; they can never be returned")
    after, _ = db.search(dataset.queries[:5], k=10)
    assert not (set(after.ids.ravel()) & set(stale))

    # --- recall-driven tuning ----------------------------------------------
    tuned = tune_nprobe(db.index, dataset.queries, target_recall=0.95)
    print(
        f"nprobe for recall>=0.95: {tuned.nprobe} "
        f"(measured recall {tuned.achieved_recall:.3f})"
    )

    # --- serving at the tuned operating point -------------------------------
    _, closed = db.search(dataset.queries, k=10, nprobe=tuned.nprobe)
    arrivals = poisson_arrivals(
        dataset.n_queries, closed.qps * 0.7, seed=12
    )
    _, open_loop = db.search(
        dataset.queries, k=10, nprobe=tuned.nprobe, arrival_times=arrivals
    )
    print(
        f"at 70% load: mean latency "
        f"{open_loop.mean_latency * 1e6:.0f} us, "
        f"p99 {open_loop.latency_percentile(99) * 1e6:.0f} us"
    )

    # --- persistence ---------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "deployment.npz"
        db.save(path)
        restored = HarmonyDB.load(path)
        check, _ = restored.search(dataset.queries[:5], k=10)
        assert np.array_equal(check.ids, after.ids)
        print(f"saved + restored from {path.name}: results identical")


if __name__ == "__main__":
    main()
