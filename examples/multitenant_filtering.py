"""Multi-tenant serving with metadata-filtered search.

A shared vector database often hosts several tenants' embeddings in one
index, with every query restricted to its tenant's vectors. This
example labels each base vector with a tenant id, serves filtered
queries through the distributed engine, and verifies both isolation
(no cross-tenant results, ever) and exactness against a per-tenant
brute-force scan.

Run:  python examples/multitenant_filtering.py
"""

import numpy as np

from repro import HarmonyConfig, HarmonyDB
from repro.data import load_dataset
from repro.index import FlatIndex

N_TENANTS = 4


def main() -> None:
    dataset = load_dataset("deep1m", size=8000, n_queries=60, seed=23)
    rng = np.random.default_rng(23)
    tenants = rng.integers(0, N_TENANTS, size=dataset.size).astype(np.int64)

    db = HarmonyDB(
        dim=dataset.dim, config=HarmonyConfig(n_machines=4, nlist=64, nprobe=8)
    )
    db.build(dataset.base, sample_queries=dataset.queries, labels=tenants)
    counts = np.bincount(tenants, minlength=N_TENANTS)
    print(
        f"one index, {N_TENANTS} tenants: "
        + ", ".join(f"tenant {t}: {n:,}" for t, n in enumerate(counts))
    )

    for tenant in range(N_TENANTS):
        result, report = db.search(
            dataset.queries, k=10, filter_labels=[tenant]
        )
        found = result.ids[result.ids >= 0]
        assert np.all(tenants[found] == tenant), "tenant isolation violated"

        # Exactness check against brute force over the tenant's slice
        # (full probe makes IVF exhaustive over the filtered subset).
        subset = np.flatnonzero(tenants == tenant)
        flat = FlatIndex(dim=dataset.dim)
        flat.add(dataset.base[subset])
        full_probe, _ = db.search(
            dataset.queries, k=10, nprobe=64, filter_labels=[tenant]
        )
        _, local = flat.search(dataset.queries, k=10)
        assert np.array_equal(full_probe.ids, subset[local])

        print(
            f"tenant {tenant}: {report.qps:>9,.0f} QPS, isolation + "
            "exactness verified"
        )

    _, unfiltered = db.search(dataset.queries, k=10)
    print(
        f"\nfiltering scans ~1/{N_TENANTS} of the candidates: "
        f"{unfiltered.breakdown.computation * 1e3:.1f} ms unfiltered vs "
        f"{report.breakdown.computation * 1e3:.1f} ms filtered compute"
    )


if __name__ == "__main__":
    main()
