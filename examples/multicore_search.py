"""Multicore search and live drift adaptation.

Two capabilities beyond the simulated cluster:

1. :class:`ThreadedSearcher` executes HARMONY's pruned search for real
   on host threads — identical results to the distributed engine, real
   wall-clock timing (thread scaling depends on per-query numpy work).
2. :class:`DriftMonitor` watches live traffic and re-plans the
   deployment when the active partition becomes imbalanced.

Run:  python examples/multicore_search.py
"""

import time

import numpy as np

from repro import HarmonyConfig, HarmonyDB, ThreadedSearcher
from repro.core.monitor import DriftMonitor
from repro.data import load_dataset
from repro.workload import skewed_workload


def main() -> None:
    dataset = load_dataset("sift1m", size=20_000, n_queries=400, seed=17)
    # Start pinned to a vector grid — the configuration a deployment
    # might have chosen for yesterday's uniform traffic.
    db = HarmonyDB(
        dim=dataset.dim,
        config=HarmonyConfig(
            n_machines=4, nlist=64, nprobe=8, forced_grid=(4, 1)
        ),
    )
    db.build(dataset.base, sample_queries=dataset.queries[:64])
    index = db.index

    # --- real multicore execution -----------------------------------------
    _, reference_ids = index.search(dataset.queries, k=10, nprobe=8)
    for n_threads in (1, 4):
        searcher = ThreadedSearcher(index, n_threads=n_threads)
        start = time.perf_counter()
        result = searcher.search(dataset.queries, k=10, nprobe=8)
        elapsed = time.perf_counter() - start
        assert np.array_equal(result.ids, reference_ids)
        print(
            f"{n_threads} thread(s): {elapsed * 1e3:7.1f} ms wall for "
            f"{dataset.n_queries} queries (results exact vs reference)"
        )

    # --- live drift adaptation ----------------------------------------------
    print(f"\ninitial plan: {db.plan.describe()}")
    print("live traffic turns hot:")
    monitor = DriftMonitor(
        db, window=128, min_observations=64, imbalance_threshold=0.2
    )
    hot = skewed_workload(
        dataset.queries, index, 128, skew=1.0, nprobe=8,
        n_hot_lists=1, seed=18,
    )
    _, before = db.search(hot.queries, k=10)
    monitor.observe(hot.queries)
    status = monitor.status()
    print(
        f"  estimated plan imbalance on live window: {status.imbalance:.2f} "
        f"(drifted={status.drifted})"
    )
    # Yesterday's pin no longer applies; let the cost model choose.
    db.config.forced_grid = None
    if monitor.maybe_replan():
        _, after = db.search(hot.queries, k=10)
        print(
            f"  re-planned to {db.plan.describe()}\n"
            f"  QPS {before.qps:,.0f} -> {after.qps:,.0f}"
        )
    else:
        print("  current plan already handles this workload")


if __name__ == "__main__":
    main()
