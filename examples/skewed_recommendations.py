"""Skewed-workload serving: a recommendation-style hot-spot scenario.

Recommendation traffic is bursty: a trending item makes one region of
the embedding space hot, overloading whichever machine owns it under
classic vector sharding. This example builds such a workload and shows
how each HARMONY mode copes — the paper's Figure 7 story end to end.

Run:  python examples/skewed_recommendations.py
"""

import numpy as np

from repro import HarmonyConfig, HarmonyDB, Mode
from repro.data import load_dataset
from repro.workload import skewed_workload


def deploy(dataset, mode, sample):
    config = HarmonyConfig(n_machines=4, nlist=64, nprobe=8, mode=mode)
    db = HarmonyDB(dim=dataset.dim, config=config)
    db.build(dataset.base, sample_queries=sample)
    return db


def main() -> None:
    # "deep1m": CNN-descriptor-like item embeddings.
    dataset = load_dataset("deep1m", size=8000, n_queries=300, seed=1)
    print(f"dataset: {dataset.name}, {dataset.size} items, dim {dataset.dim}")

    # Build one deployment per strategy on a uniform sample first.
    vector_db = deploy(dataset, Mode.VECTOR, dataset.queries)
    dimension_db = deploy(dataset, Mode.DIMENSION, dataset.queries)

    header = f"{'skew':>6} {'vector QPS':>12} {'dimension QPS':>14} {'harmony QPS':>12}"
    print("\n" + header)
    print("-" * len(header))
    for skew in (0.0, 0.5, 1.0):
        workload = skewed_workload(
            dataset.queries,
            vector_db.index,
            n_queries=100,
            skew=skew,
            nprobe=8,
            seed=2,
        )
        _, vec = vector_db.search(workload.queries, k=10)
        _, dim = dimension_db.search(workload.queries, k=10)
        # Harmony re-plans for the observed workload (its cost model
        # sees the skew through the sample).
        harmony_db = deploy(dataset, Mode.HARMONY, workload.queries)
        _, har = harmony_db.search(workload.queries, k=10)
        print(
            f"{skew:>6.1f} {vec.qps:>12,.0f} {dim.qps:>14,.0f} "
            f"{har.qps:>12,.0f}   (harmony plan: {harmony_db.plan.describe()})"
        )

    print(
        "\nvector partitioning funnels the hot region's work onto one "
        "machine;\nHarmony's cost model spreads it across the grid."
    )


if __name__ == "__main__":
    main()
