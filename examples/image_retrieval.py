"""Image retrieval: recall/throughput trade-off on a SIFT-like corpus.

A visual-search service must pick its operating point: more probed
clusters means better recall but more scan work. This example sweeps
``nprobe`` on the Sift1M analogue, measuring exact recall@10 against
brute-force ground truth and simulated throughput on a 4-node HARMONY
deployment vs a single-node baseline — the paper's Figure 6 story.

Run:  python examples/image_retrieval.py
"""

from repro import HarmonyConfig, HarmonyDB
from repro.bench.recall import recall_at_k
from repro.data import exact_knn, load_dataset
from repro.index import FaissLikeIVF
from repro.bench.harness import simulated_faiss_seconds


def main() -> None:
    dataset = load_dataset("sift1m", size=10_000, n_queries=100, seed=3)
    print(
        f"corpus: {dataset.size} SIFT-like descriptors "
        f"(dim {dataset.dim}), {dataset.n_queries} queries"
    )
    _, truth = exact_knn(dataset.base, dataset.queries, k=10)

    baseline = FaissLikeIVF(dim=dataset.dim, nlist=64, seed=0)
    baseline.train(dataset.base)
    baseline.add(dataset.base)

    header = (
        f"{'nprobe':>6} {'recall@10':>10} {'1-node QPS':>11} "
        f"{'harmony QPS':>12} {'speedup':>8} {'plan':>14}"
    )
    print("\n" + header)
    print("-" * len(header))
    for nprobe in (1, 2, 4, 8, 16):
        baseline.search(dataset.queries, k=10, nprobe=nprobe)
        faiss_qps = dataset.n_queries / simulated_faiss_seconds(baseline)

        config = HarmonyConfig(n_machines=4, nlist=64, nprobe=nprobe)
        db = HarmonyDB(dim=dataset.dim, config=config)
        db.build(dataset.base, sample_queries=dataset.queries)
        result, report = db.search(dataset.queries, k=10)

        recall = recall_at_k(result.ids, truth)
        grid = f"{db.plan.n_vector_shards}x{db.plan.n_dim_blocks}"
        print(
            f"{nprobe:>6} {recall:>10.3f} {faiss_qps:>11,.0f} "
            f"{report.qps:>12,.0f} {report.qps / faiss_qps:>7.2f}x {grid:>14}"
        )

    print(
        "\nat low recall the cost model favors vector-leaning grids "
        "(fewer messages);\nat high recall it shifts to dimension "
        "slicing, where early-stop pruning\npushes the speedup past "
        "the worker count."
    )


if __name__ == "__main__":
    main()
