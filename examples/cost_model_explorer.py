"""Cost-model explorer: why HARMONY picks the grid it picks.

Shows the fine-grained query planner's view (paper Section 4.2): for a
given cluster size and workload, every candidate grid is priced in
computation, communication, and imbalance, and the cheapest wins. Vary
the workload (uniform vs skewed) and the alpha knob to watch the
decision move.

Run:  python examples/cost_model_explorer.py
"""

import numpy as np

from repro.cluster import Cluster
from repro.core import CostParameters, Mode, QueryPlanner
from repro.data import load_dataset
from repro.index import IVFFlatIndex
from repro.workload import skewed_workload


def show_decision(planner, profile, alpha_label):
    decision = planner.choose(
        n_machines=4, mode=Mode.HARMONY, profile=profile
    )
    print(f"  candidate grids ({alpha_label}):")
    for (b_vec, b_dim), cost in decision.evaluated:
        marker = " <== chosen" if (
            b_vec == decision.plan.n_vector_shards
            and b_dim == decision.plan.n_dim_blocks
        ) else ""
        print(
            f"    {b_vec} x {b_dim}: comp {cost.computation_seconds * 1e3:7.2f} ms"
            f"  comm {cost.communication_seconds * 1e3:6.2f} ms"
            f"  imbalance {cost.imbalance_seconds * 1e3:6.3f} ms"
            f"  total {cost.total * 1e3:7.2f} ms{marker}"
        )


def main() -> None:
    dataset = load_dataset("msong", size=6000, n_queries=200, seed=5)
    index = IVFFlatIndex(dim=dataset.dim, nlist=64, seed=0)
    index.train(dataset.base)
    index.add(dataset.base)

    cluster = Cluster(n_workers=4)
    for alpha in (0.0, 4.0, 50.0):
        params = CostParameters.from_cluster(cluster, alpha=alpha)
        planner = QueryPlanner(index, params)
        print(f"\n=== alpha = {alpha} (imbalance weight) ===")

        uniform = planner.profile(dataset.queries[:100], nprobe=8)
        print("uniform workload:")
        show_decision(planner, uniform, f"alpha={alpha}")

        hot = skewed_workload(
            dataset.queries, index, 100, skew=1.0, nprobe=8, seed=6
        )
        skewed = planner.profile(hot.queries, nprobe=8)
        print("skewed workload (all queries on the hot lists):")
        show_decision(planner, skewed, f"alpha={alpha}")

    print(
        "\nlarger alpha punishes per-node load variance, pushing the "
        "planner toward\ndimension-including grids whenever the "
        "workload concentrates."
    )


if __name__ == "__main__":
    main()
