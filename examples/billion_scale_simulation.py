"""Billion-scale serving on 16 simulated nodes.

The paper runs SpaceV1B and Sift1B on 16 nodes because neither a single
machine nor 4 nodes can hold them. This example deploys the (scaled)
Sift1B analogue on a 16-worker simulated cluster, compares the three
partitioning strategies, and prints per-node memory to show why
distribution is necessary at the full 1B scale.

Run:  python examples/billion_scale_simulation.py
"""

from repro import HarmonyConfig, HarmonyDB, Mode
from repro.data import DATASET_REGISTRY, load_dataset


def main() -> None:
    spec = DATASET_REGISTRY["sift1b"]
    dataset = load_dataset("sift1b", size=30_000, n_queries=100, seed=9)
    full_scale_gb = spec.paper_size * spec.paper_dim * 4 / 1e9
    print(
        f"Sift1B at full scale: {spec.paper_size:,} x {spec.paper_dim} "
        f"fp32 = {full_scale_gb:,.0f} GB of raw vectors"
    )
    print(
        f"analogue used here  : {dataset.size:,} vectors "
        "(simulated time is scale-preserving; see DESIGN.md)\n"
    )

    for mode in (Mode.HARMONY, Mode.VECTOR, Mode.DIMENSION):
        config = HarmonyConfig(
            n_machines=16, nlist=64, nprobe=8, mode=mode
        )
        db = HarmonyDB(dim=dataset.dim, config=config)
        db.build(dataset.base, sample_queries=dataset.queries)
        result, report = db.search(dataset.queries, k=10)
        memory = db.index_memory_report()
        per_node_frac = memory["mean_machine_bytes"] / memory["single_node_total"]
        print(
            f"{mode.value:18s} plan={db.plan.n_vector_shards}x"
            f"{db.plan.n_dim_blocks:<2d} QPS={report.qps:>9,.0f} "
            f"imbalance={report.normalized_imbalance:.3f} "
            f"per-node index={per_node_frac:.1%} of single-node"
        )
        # Extrapolate the per-node footprint to the paper's full scale.
        full_node_gb = per_node_frac * full_scale_gb
        print(
            f"{'':18s} -> at 1B vectors each node would hold "
            f"~{full_node_gb:,.0f} GB"
        )


if __name__ == "__main__":
    main()
