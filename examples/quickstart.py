"""Quickstart: build a 4-node HARMONY deployment and search it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import HarmonyConfig, HarmonyDB


def main() -> None:
    rng = np.random.default_rng(0)
    dim = 128
    base = rng.standard_normal((20_000, dim)).astype(np.float32)
    queries = rng.standard_normal((100, dim)).astype(np.float32)

    # A 4-worker deployment; the cost model picks the partition grid.
    config = HarmonyConfig(n_machines=4, nlist=64, nprobe=8)
    db = HarmonyDB(dim=dim, config=config)

    build = db.build(base, sample_queries=queries)
    print(f"plan chosen          : {db.plan.describe()}")
    print(
        "build (simulated)    : "
        f"train {build.train_seconds * 1e3:.1f} ms, "
        f"add {build.add_seconds * 1e3:.1f} ms, "
        f"pre-assign {build.preassign_seconds * 1e3:.1f} ms"
    )

    result, report = db.search(queries, k=10)
    print(f"first query top-5 ids: {result.ids[0, :5].tolist()}")
    print(f"simulated QPS        : {report.qps:,.0f}")
    print(f"worker load imbalance: {report.normalized_imbalance:.3f}")
    if report.pruning is not None:
        ratios = ", ".join(f"{r:.0%}" for r in report.pruning.ratios())
        print(f"pruned per slice     : {ratios}")

    # The distributed engine is exact w.r.t. a single-node IVF scan.
    reference_dist, reference_ids = db.index.search(
        queries, k=10, nprobe=config.nprobe
    )
    assert np.array_equal(result.ids, reference_ids)
    print("results identical to single-node IVF scan: OK")


if __name__ == "__main__":
    main()
