"""Extension experiment: distributed index construction scaling.

Figure 10 builds the index on one node; at the paper's billion scale,
training itself wants distribution. This experiment runs the
data-parallel k-means trainer on 1/2/4/8 workers and reports simulated
train time — near-linear scaling until the per-iteration broadcast /
reduce traffic stops amortizing.
"""

import _common as c
from repro.cluster.cluster import Cluster
from repro.index.distributed_kmeans import DistributedKMeans

DATASET = "sift1m"
WORKER_COUNTS = [1, 2, 4, 8]


def run_experiment():
    dataset = c.get_dataset(DATASET)
    rows = []
    baseline = None
    for workers in WORKER_COUNTS:
        trainer = DistributedKMeans(
            n_clusters=c.NLIST, cluster=Cluster(workers), seed=0
        )
        result, report = trainer.fit(dataset.base)
        if baseline is None:
            baseline = report.simulated_seconds
        rows.append(
            (
                workers,
                round(report.simulated_seconds * 1e3, 2),
                round(baseline / report.simulated_seconds, 2),
                report.n_iterations,
                round(
                    (report.broadcast_bytes + report.reduce_bytes) / 1e6, 2
                ),
            )
        )
    return rows


def test_distributed_build(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = c.format_table(
        ["workers", "train (ms)", "speedup", "iterations", "comm (MB)"],
        rows,
        title=f"distributed k-means training ({DATASET} analogue, "
        f"nlist={c.NLIST})",
    )
    c.save_result("distributed_build.txt", text)
    with capsys.disabled():
        print("\n" + text)

    by_workers = {r[0]: r for r in rows}
    # Training scales with workers...
    assert by_workers[4][2] > 2.0
    assert by_workers[8][2] > by_workers[4][2] * 0.9
    # ...and every configuration converges identically.
    assert len({r[3] for r in rows}) == 1
