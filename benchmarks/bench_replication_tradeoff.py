"""Extension experiment: replication vs Harmony's hybrid grids.

The classic remedy for hot shards is replication: copy each block to R
machines and route reads to the least-loaded replica. It works — and it
costs R times the per-node index memory. Harmony's answer to the same
problem (dimension-including grids chosen by the cost model) restores
balance with *no* extra copies. This experiment quantifies that
trade-off under an adversarially skewed workload.
"""

import numpy as np

import _common as c
from repro.workload.generators import skewed_workload

DATASET = "sift1m"


def run_experiment():
    index = c.get_index(DATASET)
    rows = []

    vector_r1 = c.deploy(DATASET, c.Mode.VECTOR)
    hot = c.hot_lists_for(DATASET, vector_r1)
    pool = c.load_dataset(
        DATASET, size=c.DATASET_SCALE[DATASET][0], n_queries=300,
        seed=c.SEED + 1,
    ).queries
    workload = skewed_workload(
        pool, index, 100, skew=1.0, nprobe=c.NPROBE, hot_list_ids=hot, seed=29
    )

    def measure(label, db):
        result, report = db.search(workload.queries, k=c.K)
        ref_ids = index.search(workload.queries, k=c.K, nprobe=c.NPROBE)[1]
        assert np.array_equal(result.ids, ref_ids)
        memory = db.index_memory_report()["mean_machine_bytes"]
        rows.append(
            (
                label,
                round(report.qps),
                round(report.normalized_imbalance, 2),
                round(memory / 1e6, 2),
            )
        )

    measure("vector, R=1", vector_r1)
    measure("vector, R=2", c.deploy(DATASET, c.Mode.VECTOR, replicas=2))
    measure("vector, R=4", c.deploy(DATASET, c.Mode.VECTOR, replicas=4))
    measure(
        "harmony, R=1",
        c.deploy(DATASET, c.Mode.HARMONY, sample_queries=workload.queries),
    )
    return rows


def test_replication_tradeoff(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = c.format_table(
        ["configuration", "QPS (skew=1)", "imbalance (CV)", "per-node MB"],
        rows,
        title="replication vs hybrid grids under an adversarial hot shard",
    )
    c.save_result("replication_tradeoff.txt", text)
    with capsys.disabled():
        print("\n" + text)

    by_label = {r[0]: r for r in rows}
    r1, r2 = by_label["vector, R=1"], by_label["vector, R=2"]
    r4, harmony = by_label["vector, R=4"], by_label["harmony, R=1"]
    # Replication recovers throughput...
    assert r2[1] > r1[1] * 1.3
    # ...at proportional memory cost.
    assert r2[3] > r1[3] * 1.8
    assert r4[3] > r1[3] * 3.5
    # Harmony reaches replication-class throughput at R=1 memory.
    assert harmony[1] > r2[1] * 0.8
    assert harmony[3] < r1[3] * 1.2
