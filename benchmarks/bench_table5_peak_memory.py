"""Table 5: peak memory usage during query execution.

Paper setting: peak per-node resident memory while serving queries on
four nodes. Findings reproduced:

1. ordering vector <= harmony <= dimension (intermediate partial-result
   buffers),
2. the relative gap shrinks as dimensionality grows (workspace bytes
   are dimension-independent while block bytes scale with dims).
"""

import _common as c

MODES = [c.Mode.VECTOR, c.Mode.HARMONY, c.Mode.DIMENSION]


def run_experiment():
    rows = []
    for name in c.SMALL_DATASETS:
        dataset = c.get_dataset(name)
        row = {"dataset": name, "dim": dataset.dim}
        for mode in MODES:
            db = c.deploy(name, mode)
            _, report = db.search(dataset.queries, k=c.K)
            # Per-node peak averaged over workers: robust to uneven
            # shard sizes, matching the paper's per-node reporting.
            row[mode.value] = report.mean_peak_memory_bytes
        rows.append(row)
    return rows


def test_table5_peak_memory(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = c.format_table(
        ["dataset", "dim", "vector (MB)", "harmony (MB)", "dimension (MB)"],
        [
            (
                r["dataset"],
                r["dim"],
                round(r[c.Mode.VECTOR.value] / 1e6, 3),
                round(r[c.Mode.HARMONY.value] / 1e6, 3),
                round(r[c.Mode.DIMENSION.value] / 1e6, 3),
            )
            for r in rows
        ],
        title="table5 peak worker memory during queries",
    )
    c.save_result("table5_peak_memory.txt", table)
    with capsys.disabled():
        print("\n" + table)

    ordered = 0
    for r in rows:
        if (
            r[c.Mode.VECTOR.value]
            <= r[c.Mode.HARMONY.value] * 1.05
            and r[c.Mode.HARMONY.value]
            <= r[c.Mode.DIMENSION.value] * 1.05
        ):
            ordered += 1
    # The vector <= harmony <= dimension ordering holds broadly
    # (harmony often picks the pure dimension grid here, collapsing
    # the middle column onto the right one).
    assert ordered >= len(rows) - 1

    # Relative dimension-vs-vector overhead shrinks with dimensionality
    # (paper: 30.9% at Deep1M's dims vs 1.17% at HandOutlines' 2709).
    low_dim = min(rows, key=lambda r: r["dim"])
    high_dim = max(rows, key=lambda r: r["dim"])

    def overhead(r):
        return r[c.Mode.DIMENSION.value] / r[c.Mode.VECTOR.value] - 1.0

    assert overhead(high_dim) < overhead(low_dim)
