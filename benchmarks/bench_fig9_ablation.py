"""Figure 9: contribution of each optimization technique.

Paper setting: Harmony on four nodes with each feature disabled in
turn, on the standard query workloads; balanced load contributes 1.75x,
pipelined/asynchronous execution 1.25x, and pruning 1.51x to throughput
on average. The paper notes the balance/pipeline gains are muted on
datasets whose natural load is already uniform (their Sift1M; our
analogue shows the same).

To isolate each lever from plan re-selection, Harmony's hybrid 2x2
grid is pinned for every configuration in this experiment.
"""

import numpy as np

import _common as c
from repro.cluster.network import CommMode, NetworkModel

DATASETS = ["sift1m", "msong", "glove1.2m", "starlightcurves"]
GRID = (2, 2)


def ablate_dataset(name: str):
    dataset = c.get_dataset(name)
    queries = dataset.queries

    def qps(network=None, **overrides):
        db = c.deploy(
            name,
            c.Mode.HARMONY,
            sample_queries=queries,
            forced_grid=GRID,
            network=network,
            **overrides,
        )
        _, report = db.search(queries, k=c.K)
        return report.qps

    full = qps()
    # "Balanced load": load-aware assignment + adaptive ordering off.
    no_balance = qps(enable_load_balance=False)
    # "Pipeline and asynchronous execution": client-barrier stage
    # synchronization plus blocking (synchronous) sends, which occupy
    # the sending worker for the whole transfer.
    no_pipeline = qps(
        enable_pipeline=False,
        network=NetworkModel(mode=CommMode.BLOCKING),
    )
    # "Pruning": early-stop pruning (and its prewarm) off.
    no_pruning = qps(enable_pruning=False, prewarm_size=0)
    return {
        "balanced load": full / no_balance,
        "pipeline+async": full / no_pipeline,
        "pruning": full / no_pruning,
    }


def run_experiment():
    return {name: ablate_dataset(name) for name in DATASETS}


def test_fig9_ablation(benchmark, capsys):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (
            name,
            round(r["balanced load"], 2),
            round(r["pipeline+async"], 2),
            round(r["pruning"], 2),
        )
        for name, r in results.items()
    ]
    means = [
        "mean",
        round(float(np.mean([r[1] for r in rows])), 2),
        round(float(np.mean([r[2] for r in rows])), 2),
        round(float(np.mean([r[3] for r in rows])), 2),
    ]
    text = c.format_table(
        ["dataset", "balanced load x", "pipeline+async x", "pruning x"],
        [*rows, means],
        title="fig9 speedup contribution of each optimization (2x2 grid)",
    )
    c.save_result("fig9_ablation.txt", text)
    with capsys.disabled():
        print("\n" + text)

    # Every lever contributes on average (paper: 1.75x / 1.25x / 1.51x).
    assert means[1] > 1.1, means
    assert means[2] > 1.1, means
    assert means[3] > 1.2, means
