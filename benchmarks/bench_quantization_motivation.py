"""Motivation experiment: distribution vs lossy compression.

Paper Section 2.1 motivates distributed ANNS as the way to cut per-node
memory *without* lossy compression: "reducing storage costs without
resorting to lossy compression techniques such as quantization remains
a challenge. As a result, attention is shifting towards distributed
vector ANNS schemes."

Both options below cut per-node vector storage by the same 4x:

- SQ8 scalar quantization on a single node (lossy distances), vs
- HARMONY on 4 nodes at full precision (exact distances per list).

The comparison reports per-node memory, recall, and throughput.
"""

import numpy as np

import _common as c
from repro.index.quantized import SQ8IVFIndex

DATASET = "sift1m"


def run_experiment():
    dataset = c.get_dataset(DATASET)
    truth = c.get_ground_truth(DATASET)
    rows = []

    # Full-precision single node (the starting point).
    full_ids, full_seconds = c.faiss_run(DATASET)
    full_memory = c.get_index(DATASET).memory_report()["total"]
    rows.append(
        (
            "full precision, 1 node",
            round(full_memory / 1e6, 2),
            round(c.recall_at_k(full_ids, truth), 3),
            round(dataset.n_queries / full_seconds),
        )
    )

    # SQ8 on a single node: 4x smaller storage, lossy distances. Its
    # simulated time matches the full-precision scan (same candidate
    # volume; decode cost offsets the byte-width saving in our model).
    sq8 = SQ8IVFIndex(dim=dataset.dim, nlist=c.NLIST, seed=0)
    sq8.train(dataset.base)
    sq8.add(dataset.base)
    _, sq8_ids = sq8.search(dataset.queries, k=c.K, nprobe=c.NPROBE)
    rows.append(
        (
            "SQ8 quantized, 1 node",
            round(sq8.memory_report()["total"] / 1e6, 2),
            round(c.recall_at_k(sq8_ids, truth), 3),
            round(dataset.n_queries / full_seconds),
        )
    )

    # HARMONY: same 4x per-node saving, exact distances, faster too.
    db = c.deploy(DATASET, c.Mode.HARMONY)
    result, report = db.search(dataset.queries, k=c.K)
    per_node = db.index_memory_report()["mean_machine_bytes"]
    rows.append(
        (
            "HARMONY, 4 nodes",
            round(per_node / 1e6, 2),
            round(c.recall_at_k(result.ids, truth), 3),
            round(report.qps),
        )
    )
    return rows


def test_quantization_motivation(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = c.format_table(
        ["configuration", "per-node memory (MB)", "recall@10", "QPS"],
        rows,
        title="motivation: 4x memory saving via quantization vs distribution",
    )
    c.save_result("quantization_motivation.txt", text)
    with capsys.disabled():
        print("\n" + text)

    full, sq8, harmony = rows
    # Both alternatives cut per-node memory by roughly 4x.
    assert sq8[1] < full[1] / 2.5
    assert harmony[1] < full[1] / 2.5
    # Quantization pays in recall; distribution does not.
    assert sq8[2] <= full[2]
    assert harmony[2] == full[2]
    # And distribution buys throughput on top.
    assert harmony[3] > full[3]
