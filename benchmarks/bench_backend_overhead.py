"""Host wall-clock of ThreadBackend vs SerialBackend (executor layer).

Unlike every other benchmark in this suite, the numbers here are *real*
host seconds, not simulated ones: the serial and thread backends run
the shared scan kernel directly on the machine, so this tracks the
executor's Python-level overhead and the payoff of the vectorized hot
paths (batched prewarm scoring, ``TopKHeap.push_many``) across thread
counts on a sift-like analogue.

Thread scaling on CPython is bounded by how much time the kernel spends
inside GIL-releasing numpy calls; at this scaled-down dataset size the
per-query work is small, so the interesting signal is that threading
never *costs* correctness (ids are asserted identical) and that total
wall-clock stays in the same ballpark as the serial loop rather than
collapsing under contention.
"""

import json
import time

import numpy as np

import _common as c
from repro.core.executor import SerialBackend, ThreadBackend
from repro.core.partition import build_plan

THREAD_COUNTS = [1, 2, 4, 8]
REPEATS = 3


def _time_search(backend, queries):
    """Best-of-REPEATS wall-clock for one backend, plus its ids."""
    best = float("inf")
    ids = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = backend.search(queries, k=c.K, nprobe=c.NPROBE)
        best = min(best, time.perf_counter() - start)
        ids = result.ids
    return best, ids


def run_experiment():
    dataset = c.get_dataset("sift1m")
    index = c.get_index("sift1m")
    plan = build_plan(index, n_machines=4, n_vector_shards=1, n_dim_blocks=4)
    queries = dataset.queries

    serial_seconds, serial_ids = _time_search(
        SerialBackend(index, plan=plan), queries
    )
    rows = [("serial", 1, serial_seconds, 1.0)]
    for n_threads in THREAD_COUNTS:
        seconds, ids = _time_search(
            ThreadBackend(index, plan=plan, n_threads=n_threads), queries
        )
        assert np.array_equal(ids, serial_ids), (
            "thread backend must return byte-identical ids"
        )
        rows.append(("thread", n_threads, seconds, serial_seconds / seconds))
    return rows


def test_bench_backend_overhead(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = c.format_table(
        ["backend", "threads", "wall-clock (ms)", "speedup vs serial"],
        [
            [name, n, round(seconds * 1e3, 2), round(speedup, 2)]
            for name, n, seconds, speedup in rows
        ],
        title="backend overhead (host wall-clock, sift1m analogue)",
    )
    c.save_result("backend_overhead.txt", text)
    c.save_result(
        "backend_overhead.json",
        json.dumps(
            {
                "dataset": "sift1m",
                "k": c.K,
                "nprobe": c.NPROBE,
                "rows": [
                    {
                        "backend": name,
                        "threads": n,
                        "seconds": seconds,
                        "speedup_vs_serial": speedup,
                    }
                    for name, n, seconds, speedup in rows
                ],
            },
            indent=2,
        ),
    )
    with capsys.disabled():
        print("\n" + text)

    serial_seconds = rows[0][2]
    for name, n_threads, seconds, _ in rows[1:]:
        # Guardrail, not a race: the thread backend must stay within a
        # small factor of serial even at this tiny per-query work size.
        assert seconds < serial_seconds * 5.0, (
            f"{name} x{n_threads} took {seconds:.3f}s vs serial "
            f"{serial_seconds:.3f}s"
        )
