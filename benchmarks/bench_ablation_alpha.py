"""Design ablation: the imbalance weight alpha in the cost model.

``C(pi, Q) = sum_q C_q(pi) + alpha * I(pi)`` — alpha trades local
comp/comm efficiency against skew robustness (paper Section 4.2.1).
With alpha = 0 the planner ignores imbalance entirely; large alpha
makes it paranoid about skew. This sweep shows the knob steering the
chosen grid and the resulting throughput under a skewed workload.
"""

import numpy as np

import _common as c
from repro.workload.generators import skewed_workload

ALPHAS = [0.0, 4.0, 400.0]
DATASET = "sift1m"


def run_experiment():
    index = c.get_index(DATASET)
    vector_db = c.deploy(DATASET, c.Mode.VECTOR)
    hot = c.hot_lists_for(DATASET, vector_db)
    pool = c.load_dataset(
        DATASET, size=c.DATASET_SCALE[DATASET][0], n_queries=300,
        seed=c.SEED + 1,
    ).queries
    workload = skewed_workload(
        pool, index, 80, skew=0.9, nprobe=c.NPROBE, hot_list_ids=hot, seed=23
    )
    rows = []
    for alpha in ALPHAS:
        db = c.deploy(
            DATASET,
            c.Mode.HARMONY,
            sample_queries=workload.queries,
            alpha=alpha,
        )
        _, report = db.search(workload.queries, k=c.K)
        rows.append(
            (
                alpha,
                f"{db.plan.n_vector_shards}x{db.plan.n_dim_blocks}",
                round(report.qps),
                round(report.normalized_imbalance, 3),
            )
        )
    return rows


def test_ablation_alpha(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = c.format_table(
        ["alpha", "chosen grid", "QPS", "imbalance (CV)"],
        rows,
        title=f"ablation: imbalance weight alpha ({DATASET}, skew 0.9)",
    )
    c.save_result("ablation_alpha.txt", text)
    with capsys.disabled():
        print("\n" + text)

    # Large alpha never produces a more imbalanced execution than
    # alpha = 0, and the measured imbalance is monotone non-increasing.
    imbalances = [r[3] for r in rows]
    assert imbalances[-1] <= imbalances[0] + 1e-9
    # Every configuration still answers at a sane throughput.
    assert min(r[2] for r in rows) > 0
