"""Figure 2(b): computation/communication/other breakdown.

Paper setting: Sift1M on one client + four workers, comparing
dimension-based (D) and vector-based (V) partitioning under blocking
(B) and non-blocking (NB) communication. Key finding: V's
communication time is ~66% lower than D's on average, and non-blocking
beats blocking.
"""

from repro.cluster.network import CommMode, NetworkModel

import _common as c


def run_experiment():
    rows = []
    for mode, label in ((c.Mode.DIMENSION, "D"), (c.Mode.VECTOR, "V")):
        for comm, comm_label in (
            (CommMode.BLOCKING, "B"),
            (CommMode.NONBLOCKING, "NB"),
        ):
            db = c.deploy(
                "sift1m", mode, network=NetworkModel(mode=comm)
            )
            dataset = c.get_dataset("sift1m")
            _, report = db.search(dataset.queries, k=c.K)
            bd = report.breakdown
            rows.append(
                (
                    f"{label}-{comm_label}",
                    bd.computation * 1e3,
                    bd.communication * 1e3,
                    bd.other * 1e3,
                    report.simulated_seconds * 1e3,
                )
            )
    return rows


def test_fig2b_cost_breakdown(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = c.format_table(
        ["strategy", "comp (ms)", "comm (ms)", "other (ms)", "makespan (ms)"],
        rows,
        title="fig2b cost breakdown (Sift1M analogue, 4 workers)",
    )
    c.save_result("fig2b_cost_breakdown.txt", text)
    with capsys.disabled():
        print("\n" + text)

    by_name = {r[0]: r for r in rows}
    # Vector communicates less than dimension in both comm modes.
    assert by_name["V-B"][2] < by_name["D-B"][2]
    assert by_name["V-NB"][2] < by_name["D-NB"][2]
    # Non-blocking communication shortens the makespan.
    assert by_name["D-NB"][4] < by_name["D-B"][4]
    assert by_name["V-NB"][4] <= by_name["V-B"][4] * 1.05
