"""Figure 6: QPS-recall trade-off under uniform workloads.

Paper setting: Harmony (three strategies) on 4 worker nodes vs Faiss on
a single node, sweeping the recall-accuracy knob (nprobe); the two
billion-scale datasets run on 16 nodes instead. Findings reproduced:

1. all distributed strategies beat Faiss (paper: 3.75x average),
2. at high recall Harmony exceeds the 4x theoretical speedup
   (paper: 4.63x) thanks to pruning,
3. below the highest-recall regime, Harmony-vector is competitive
   (paper: optimal below 99% recall).
"""

import numpy as np

import _common as c

NPROBES = [1, 2, 4, 8, 16]
MODES = [c.Mode.HARMONY, c.Mode.VECTOR, c.Mode.DIMENSION]


def sweep_dataset(name: str, n_machines: int) -> list[tuple]:
    dataset = c.get_dataset(name)
    truth = c.get_ground_truth(name)
    rows = []
    for nprobe in NPROBES:
        faiss_ids, faiss_seconds = c.faiss_run(name, nprobe=nprobe)
        recall = c.recall_at_k(faiss_ids, truth)
        faiss_qps = dataset.n_queries / faiss_seconds
        row = {"nprobe": nprobe, "recall": recall, "faiss": faiss_qps}
        for mode in MODES:
            db = c.deploy(name, mode, n_machines=n_machines, nprobe=nprobe)
            result, report = db.search(dataset.queries, k=c.K, nprobe=nprobe)
            assert np.array_equal(result.ids, faiss_ids), (
                "distributed results must equal the single-node scan"
            )
            row[mode.value] = report.qps
        rows.append(row)
    return rows


def run_experiment():
    out = {}
    for name in c.SMALL_DATASETS:
        out[name] = sweep_dataset(name, n_machines=4)
    # Billion-scale analogues on 16 nodes (paper runs SpaceV1B / Sift1B
    # there because 4 nodes cannot hold them).
    for name in ("spacev1b", "sift1b"):
        out[name] = sweep_dataset(name, n_machines=16)
    return out


def test_fig6_qps_recall(benchmark, capsys):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    lines = []
    for name, rows in results.items():
        table = c.format_table(
            ["nprobe", "recall@10", "faiss QPS"]
            + [m.value + " QPS" for m in MODES],
            [
                [
                    r["nprobe"],
                    round(r["recall"], 3),
                    round(r["faiss"], 0),
                    *(round(r[m.value], 0) for m in MODES),
                ]
                for r in rows
            ],
            title=f"fig6 {name}",
        )
        lines.append(table)
    text = "\n\n".join(lines)
    c.save_result("fig6_qps_recall.txt", text)
    with capsys.disabled():
        print("\n" + text)

    # Aggregate paper claims over the 4-node datasets at the highest
    # recall point (the paper's headline regime).
    high_recall_speedups = []
    vector_best_low = 0
    for name in c.SMALL_DATASETS:
        rows = results[name]
        top = rows[-1]
        high_recall_speedups.append(top[c.Mode.HARMONY.value] / top["faiss"])
        low = rows[0]
        if low[c.Mode.VECTOR.value] >= low[c.Mode.DIMENSION.value]:
            vector_best_low += 1
    mean_speedup = float(np.mean(high_recall_speedups))
    # Paper: 4.63x at high recall; we accept the 3.5-9x band.
    assert mean_speedup > 3.5, mean_speedup
    # Vector partitioning wins at the lowest-recall point on most
    # datasets (paper: optimal below 99% recall).
    assert vector_best_low >= len(c.SMALL_DATASETS) // 2
