"""Fault-recovery timeline: QPS, latency, and coverage across a crash.

The paper's evaluation never kills a node; this extension experiment
does. A replicated HARMONY deployment (R=2, ``degraded_mode`` on)
serves repeated query windows while the driver walks the cluster
through a scripted fault timeline:

1. **healthy** — baseline windows.
2. **degraded** — both holders of one grid block crash before the
   failure detector fires, so searches skip the dead shard and return
   partial results with explicit per-query coverage.
3. **re-replicated** — one machine returns and the recovery manager
   re-copies every under-replicated block from survivors to the
   least-loaded live machines, charging the simulated transfers;
   coverage returns to 1.0 while one machine is still down.
4. **restored** — the last machine returns, repair-era extra copies
   are trimmed, and results must again match the healthy run
   byte-for-byte.

Outputs ``results/BENCH_fault_recovery.json`` (per-window timeline +
recovery events) and ``results/fault_recovery.txt``. ``--smoke`` runs
one window per phase and exits non-zero if coverage after recovery is
below 1.0 or the restored phase diverges from the healthy baseline::

    PYTHONPATH=../src python bench_fault_recovery.py          # full
    PYTHONPATH=../src python bench_fault_recovery.py --smoke  # CI gate
"""

import argparse
import json
import sys

import numpy as np

import _common as c

DATASET = "sift1m"
FULL_WINDOWS_PER_PHASE = 2
SMOKE_WINDOWS_PER_PHASE = 1


def run_timeline(windows_per_phase=FULL_WINDOWS_PER_PHASE, log=print):
    dataset = c.get_dataset(DATASET)
    gt = c.get_ground_truth(DATASET)
    db = c.deploy(DATASET, c.Mode.HARMONY, replicas=2, degraded_mode=True)
    manager = db.enable_fault_recovery()

    windows = []
    events = []
    clock = 0.0
    baseline = {}

    def run_phase(phase):
        nonlocal clock
        for _ in range(windows_per_phase):
            result, report = db.search(dataset.queries, k=c.K)
            degraded = report.degraded
            row = {
                "window": len(windows),
                "phase": phase,
                "t_start": clock,
                "qps": report.qps,
                "mean_latency_ms": float(np.mean(report.latencies)) * 1e3,
                "p99_latency_ms": float(
                    np.percentile(report.latencies, 99)
                ) * 1e3,
                "mean_coverage": degraded.mean_coverage,
                "min_coverage": degraded.min_coverage,
                "degraded_queries": degraded.n_degraded_queries,
                "recall_vs_healthy": degraded.recall_vs_healthy,
                "recall_at_k": c.recall_at_k(result.ids, gt),
            }
            windows.append(row)
            clock += report.simulated_seconds
            log(
                f"  window {row['window']} [{phase:>13}] "
                f"QPS {row['qps']:>8.0f}  coverage "
                f"{row['min_coverage']:.2f}..{row['mean_coverage']:.2f}  "
                f"recall {row['recall_at_k']:.3f}"
            )
        return result

    log(f"fault-recovery timeline: {DATASET}, R=2, degraded_mode on")
    healthy = run_phase("healthy")
    baseline["ids"] = healthy.ids.copy()
    baseline["distances"] = healthy.distances.copy()

    # Both holders of grid block (0, 0) crash inside one detection
    # window: the block has zero live copies, so its shard goes dark.
    victims = [int(m) for m in manager.directory.holders(0, 0)]
    for node in victims:
        lost = manager.mark_failed(node)
        events.append(
            {"t": clock, "event": "crash", "node": node, "stranded": len(lost)}
        )
    log(
        f"  crash: nodes {victims} down, "
        f"{len(manager.directory.lost_blocks())} block(s) unavailable"
    )
    run_phase("degraded")

    # The failure detector fires as the second victim returns: its data
    # closes the coverage hole, and every block left under-replicated
    # by the still-dead first victim is re-copied from survivors.
    restore_report = manager.restore(victims[1], now=clock)
    events.append({"t": clock, **restore_report.to_dict()})
    repair_report = manager.repair(now=clock)
    events.append({"t": clock, **repair_report.to_dict()})
    clock = max(clock, repair_report.completed_at)
    log(
        f"  repair: {repair_report.blocks_copied} block(s), "
        f"{repair_report.bytes_copied:,} bytes, time-to-full-redundancy "
        f"{repair_report.time_to_full_redundancy * 1e3:.2f} ms"
    )
    run_phase("re-replicated")

    rebalance_report = manager.restore(victims[0], now=clock)
    events.append({"t": clock, **rebalance_report.to_dict()})
    log(
        f"  restore: node {victims[0]} back, "
        f"{rebalance_report.blocks_trimmed} extra cop(ies) trimmed"
    )
    restored = run_phase("restored")

    summary = {
        "victims": victims,
        "healthy_qps": windows[0]["qps"],
        "degraded_min_coverage": min(
            w["min_coverage"] for w in windows if w["phase"] == "degraded"
        ),
        "final_min_coverage": min(
            w["min_coverage"] for w in windows if w["phase"] == "restored"
        ),
        "recovered_min_coverage": min(
            w["min_coverage"] for w in windows if w["phase"] == "re-replicated"
        ),
        "time_to_full_redundancy_s": repair_report.time_to_full_redundancy,
        "repair_bytes": manager.total_repair_bytes(),
        "restored_matches_healthy": bool(
            np.array_equal(restored.ids, baseline["ids"])
            and np.array_equal(restored.distances, baseline["distances"])
        ),
    }
    return windows, events, summary


def save_outputs(windows, events, summary, smoke):
    payload = {
        "workload": {
            "dataset": DATASET,
            "n_machines": 4,
            "replicas": 2,
            "nlist": c.NLIST,
            "nprobe": c.NPROBE,
            "k": c.K,
            "smoke": smoke,
        },
        "windows": windows,
        "events": events,
        "summary": summary,
    }
    c.save_result("BENCH_fault_recovery.json", json.dumps(payload, indent=2))
    rows = [
        [
            w["window"],
            w["phase"],
            round(w["qps"]),
            round(w["mean_latency_ms"], 2),
            round(w["min_coverage"], 3),
            round(w["mean_coverage"], 3),
            round(w["recall_at_k"], 3),
        ]
        for w in windows
    ]
    text = c.format_table(
        [
            "window", "phase", "QPS", "mean latency (ms)",
            "min coverage", "mean coverage", f"recall@{c.K}",
        ],
        rows,
        title=(
            "fault-recovery timeline: crash -> degraded -> "
            "re-replicated -> restored (simulated)"
        ),
    )
    c.save_result("fault_recovery.txt", text)
    return text


def check_invariants(windows, summary):
    """The gates CI holds the timeline to. Returns a list of failures."""
    failures = []
    if summary["degraded_min_coverage"] >= 1.0:
        failures.append("degraded phase never lost coverage")
    if summary["recovered_min_coverage"] < 1.0:
        failures.append(
            "coverage below 1.0 after re-replication: "
            f"{summary['recovered_min_coverage']:.3f}"
        )
    if summary["final_min_coverage"] < 1.0:
        failures.append(
            "coverage below 1.0 after full restore: "
            f"{summary['final_min_coverage']:.3f}"
        )
    if not summary["restored_matches_healthy"]:
        failures.append("restored results diverge from the healthy run")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one window per phase; fail unless recovery restores "
        "coverage 1.0 and the restored phase matches healthy",
    )
    args = parser.parse_args(argv)
    per_phase = SMOKE_WINDOWS_PER_PHASE if args.smoke else FULL_WINDOWS_PER_PHASE
    windows, events, summary = run_timeline(windows_per_phase=per_phase)
    print("\n" + save_outputs(windows, events, summary, smoke=args.smoke))
    print(
        f"time to full redundancy: "
        f"{summary['time_to_full_redundancy_s'] * 1e3:.2f} ms simulated, "
        f"{summary['repair_bytes']:,} bytes re-replicated"
    )
    failures = check_invariants(windows, summary)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: degraded phase flagged, recovery restored full coverage")
    return 0


def test_bench_fault_recovery(benchmark, capsys):
    """Pytest entry point (smoke timeline) for the benchmark suite."""
    windows, events, summary = benchmark.pedantic(
        lambda: run_timeline(
            windows_per_phase=SMOKE_WINDOWS_PER_PHASE, log=lambda *_: None
        ),
        rounds=1,
        iterations=1,
    )
    text = save_outputs(windows, events, summary, smoke=True)
    with capsys.disabled():
        print("\n" + text)
    assert check_invariants(windows, summary) == []


if __name__ == "__main__":
    sys.exit(main())
