"""Figure 11(b): scalability across 4 / 8 / 16 nodes.

Paper findings reproduced:

1. the hybrid (group-based) strategy exceeds the machine count thanks
   to pruning,
2. vector partitioning scales roughly with the worker count,
3. dimension partitioning gains then flattens/declines as slicing
   overhead grows with the node count.
"""

import _common as c
from repro.cluster.node import DEFAULT_COMPUTE_RATE, PHYSICAL_COMPUTE_RATE

NODE_COUNTS = [4, 8, 16]
DATASET = "sift1b"  # largest analogue; the paper scales big datasets
MODES = [c.Mode.HARMONY, c.Mode.VECTOR, c.Mode.DIMENSION]


def run_experiment():
    dataset = c.get_dataset(DATASET)
    index = c.get_index(DATASET)
    probes = index.probe(dataset.queries, c.NPROBE)
    candidates = sum(
        index.candidates(probes[i]).size for i in range(dataset.n_queries)
    )
    faiss_seconds = (
        candidates * dataset.dim / DEFAULT_COMPUTE_RATE
        + dataset.n_queries * c.NLIST * dataset.dim / PHYSICAL_COMPUTE_RATE
    )
    faiss_qps = dataset.n_queries / faiss_seconds
    out = {}
    for mode in MODES:
        speedups = []
        for n in NODE_COUNTS:
            db = c.deploy(DATASET, mode, n_machines=n)
            _, report = db.search(dataset.queries, k=c.K)
            speedups.append(report.qps / faiss_qps)
        out[mode.value] = speedups
    return out


def test_fig11b_scalability(benchmark, capsys):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    lines = [
        c.format_series(
            f"fig11b speedup {mode}", NODE_COUNTS, [round(s, 2) for s in sp]
        )
        for mode, sp in results.items()
    ]
    text = "\n".join(lines)
    c.save_result("fig11b_scalability.txt", text)
    with capsys.disabled():
        print("\n" + text)

    harmony = results[c.Mode.HARMONY.value]
    vector = results[c.Mode.VECTOR.value]
    dimension = results[c.Mode.DIMENSION.value]
    # Harmony scales with node count and beats the machine count at 4.
    assert harmony[0] > 4.0
    assert harmony[-1] > harmony[0]
    # Vector gains from more machines, staying near-linear territory.
    assert vector[-1] > vector[0]
    # Dimension's scaling efficiency falls off as slicing deepens
    # (speedup per node shrinks from 4 to 16 nodes).
    assert dimension[-1] / NODE_COUNTS[-1] < dimension[0] / NODE_COUNTS[0]
    # Harmony >= dimension at the largest node count (cost model avoids
    # over-slicing).
    assert harmony[-1] >= dimension[-1] * 0.95
