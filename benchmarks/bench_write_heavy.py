"""Write-heavy serving: full-repack-per-mutation vs delta segments.

Real host wall-clock over a sustained read/write mix: every round
appends a batch of vectors, tombstones a few, and serves a query
batch. Two arms run the identical mutation schedule on identical
index clones:

- ``repack``: ``delta_compact_ratio`` set infinitesimally small, so
  every absorbed mutation immediately triggers a compaction — a
  faithful stand-in for the old write path that rebuilt the packed
  layout (O(ntotal) rows copied) on the first search after *every*
  mutation batch.
- ``delta``: the LSM write path — mutations land in append-only delta
  segments and tombstone bits, the base generation is reused in
  place, and no compaction fires inside the measured window.

Both arms run at both scan precisions — fp32, where a repack is a
plain O(ntotal) memcpy, and sq8, where it additionally re-encodes and
re-pads every base row (the expensive case the delta path is for) —
and must stay byte-identical to the serial fp32 oracle after every
round (asserted). The JSON records per-arm wall-clock, layout
build/refresh/compaction counters, and per-precision speedups; a
process-pool pass additionally proves the shared base segment is
re-homed exactly once (delta overlays ride a small side segment).

Results accumulate in ``results/BENCH_write_heavy.json`` plus a text
table; ``--smoke`` runs a small mix and exits non-zero if any arm
diverges from the oracle, the delta arm rebuilt its layout, or the
process pool re-homed shared memory on a delta-only mutation (the CI
write-smoke gate — speedup itself is not gated there).

Usage::

    PYTHONPATH=../src python bench_write_heavy.py            # full
    PYTHONPATH=../src python bench_write_heavy.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

import _common as c
from repro.core.executor import ProcessBackend, SerialBackend, ThreadBackend
from repro.core.partition import build_plan
from repro.index.ivf import IVFFlatIndex

FULL = dict(
    n=60_000, dim=96, nlist=64, nprobe=8, k=10,
    n_shards=4, n_slices=4, batch=16, rounds=24,
    write_rows=256, remove_rows=64, n_threads=4, repeats=2,
    precisions=("fp32", "sq8"),
)
SMOKE = dict(
    n=8_000, dim=48, nlist=32, nprobe=8, k=10,
    n_shards=4, n_slices=2, batch=32, rounds=6,
    write_rows=64, remove_rows=16, n_threads=2, repeats=1,
    precisions=("fp32", "sq8"),
)

#: Compaction ratio so small that any pending delta row triggers a
#: rebuild on the next search — the old full-repack-per-mutation path.
REPACK_RATIO = 1e-12


def build_workload(params, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((params["n"], params["dim"]))
    base = base.astype(np.float32)
    queries = rng.standard_normal((params["batch"], params["dim"]))
    queries = queries.astype(np.float32)
    index = IVFFlatIndex(
        dim=params["dim"],
        nlist=params["nlist"],
        seed=0,
        max_iterations=10,
    )
    index.train(base[: min(20_000, params["n"])])
    index.add(base)
    return index, queries


def mutation_schedule(params, seed=1):
    """The per-round (new_rows, remove_count) schedule, fixed up front
    so both arms replay exactly the same mutations."""
    rng = np.random.default_rng(seed)
    return [
        rng.standard_normal(
            (params["write_rows"], params["dim"])
        ).astype(np.float32)
        for _ in range(params["rounds"])
    ]


def run_arm(params, precision, delta_compact_ratio, failures, label,
            log=print):
    """One sustained read/write mix; returns timing + layout counters."""
    index, queries = build_workload(params)
    plan = build_plan(
        index,
        n_machines=params["n_shards"] * params["n_slices"],
        n_vector_shards=params["n_shards"],
        n_dim_blocks=params["n_slices"],
    )
    writes = mutation_schedule(params)
    nprobe, k = params["nprobe"], params["k"]
    remove_rng = np.random.default_rng(2)
    with ThreadBackend(
        index,
        plan=plan,
        n_threads=params["n_threads"],
        scan_precision=precision,
        delta_compact_ratio=delta_compact_ratio,
    ) as backend:
        backend.search(queries, k=k, nprobe=nprobe)  # warm layout + pool
        builds_at_start = backend.kernel.layout_builds
        start = time.perf_counter()
        for new_rows in writes:
            index.add(new_rows)
            alive = np.flatnonzero(~index.deleted_mask)
            index.remove_ids(
                remove_rng.choice(
                    alive, size=params["remove_rows"], replace=False
                )
            )
            result = backend.search(queries, k=k, nprobe=nprobe)
        seconds = time.perf_counter() - start
        oracle = SerialBackend(index, plan=plan)
        ref = oracle.search(queries, k=k, nprobe=nprobe)
        if not np.array_equal(result.ids, ref.ids) or not np.array_equal(
            result.distances, ref.distances
        ):
            failures.append(
                f"{precision}/{label} arm diverges from the serial "
                "fp32 oracle"
            )
        row = {
            "arm": label,
            "precision": precision,
            "seconds": seconds,
            "layout_builds": backend.kernel.layout_builds - builds_at_start,
            "layout_refreshes": backend.kernel.layout_refreshes,
            "layout_compactions": backend.kernel.layout_compactions,
            "delta_rows_pending": backend.kernel.layout_stats()["delta_rows"],
        }
    log(
        f"  {precision:>4} {label:>6} arm: {seconds * 1e3:8.1f} ms"
        f"  ({row['layout_builds']} rebuilds,"
        f" {row['layout_refreshes']} refreshes)"
    )
    return row


def check_process_overlay(params, failures, log=print):
    """Delta-only mutations must never re-home the shared base segment."""
    index, queries = build_workload(params)
    plan = build_plan(
        index,
        n_machines=params["n_shards"] * params["n_slices"],
        n_vector_shards=params["n_shards"],
        n_dim_blocks=params["n_slices"],
    )
    nprobe, k = params["nprobe"], params["k"]
    with ProcessBackend(
        index, plan=plan, n_workers=2, delta_compact_ratio=0.5
    ) as backend:
        backend.search(queries, k=k, nprobe=nprobe)
        rng = np.random.default_rng(3)
        for _ in range(3):
            index.add(
                rng.standard_normal(
                    (params["write_rows"], params["dim"])
                ).astype(np.float32)
            )
            result = backend.search(queries, k=k, nprobe=nprobe)
        ref = SerialBackend(index, plan=plan).search(
            queries, k=k, nprobe=nprobe
        )
        if not np.array_equal(result.ids, ref.ids):
            failures.append("process overlay diverges from the oracle")
        if backend.shm_base_rehomes != 1:
            failures.append(
                "delta-only mutations re-homed the shared base segment "
                f"({backend.shm_base_rehomes} re-homes, expected 1)"
            )
        if backend.fallback_active:
            failures.append("process pool fell back to the thread path")
        stats = {
            "shm_base_rehomes": int(backend.shm_base_rehomes),
            "shm_overlay_syncs": int(backend.shm_overlay_syncs),
        }
    log(
        f"  process overlay: {stats['shm_base_rehomes']} base re-home(s),"
        f" {stats['shm_overlay_syncs']} overlay sync(s)"
    )
    return stats


def run_suite(params, log=print):
    failures: list[str] = []
    rows = []
    speedups = {}
    for precision in params["precisions"]:
        per_arm = []
        for label, ratio in (("repack", REPACK_RATIO), ("delta", 0.5)):
            best = None
            for _ in range(params["repeats"]):
                row = run_arm(
                    params, precision, ratio, failures, label, log=log
                )
                if best is None or row["seconds"] < best["seconds"]:
                    best = row
            per_arm.append(best)
        repack, delta = per_arm
        if delta["layout_builds"] != 0:
            failures.append(
                f"{precision} delta arm rebuilt the packed layout "
                f"{delta['layout_builds']} times on delta-only mutations"
            )
        if repack["layout_builds"] < params["rounds"]:
            failures.append(
                f"{precision} repack arm failed to rebuild per round — "
                "baseline is broken"
            )
        speedups[precision] = repack["seconds"] / delta["seconds"]
        log(
            f"  {precision} write-mix speedup (repack -> delta): "
            f"{speedups[precision]:.2f}x"
        )
        rows.extend(per_arm)
    overlay = check_process_overlay(params, failures, log=log)
    return rows, overlay, speedups, failures


def save_outputs(params, rows, overlay, speedups, smoke):
    payload = {
        "workload": {
            key: params[key]
            for key in (
                "n", "dim", "nlist", "nprobe", "k", "n_shards",
                "n_slices", "batch", "rounds", "write_rows",
                "remove_rows", "n_threads",
            )
        }
        | {"smoke": smoke, "cpu_count": os.cpu_count()},
        "arms": rows,
        "process_overlay": overlay,
        "speedup": speedups,
    }
    c.save_result("BENCH_write_heavy.json", json.dumps(payload, indent=2))
    headline = ", ".join(
        f"{precision} {ratio:.2f}x" for precision, ratio in speedups.items()
    )
    table = c.format_table(
        [
            "precision", "arm", "mix (ms)", "rebuilds", "refreshes",
            "compactions", "pending rows",
        ],
        [
            [
                row["precision"],
                row["arm"],
                round(row["seconds"] * 1e3, 1),
                row["layout_builds"],
                row["layout_refreshes"],
                row["layout_compactions"],
                row["delta_rows_pending"],
            ]
            for row in rows
        ],
        title=(
            f"write-heavy mix: full repack vs delta segments "
            f"({headline}, host wall-clock)"
        ),
    )
    c.save_result("write_heavy.txt", table)
    return table


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "small mix; fail on divergence, delta-arm rebuilds, or "
            "shared-memory re-homing"
        ),
    )
    args = parser.parse_args(argv)
    params = SMOKE if args.smoke else FULL
    label = "smoke" if args.smoke else "full"
    print(
        f"write-heavy benchmark ({label}): {params['n']:,} x "
        f"{params['dim']}, {params['rounds']} rounds x "
        f"+{params['write_rows']}/-{params['remove_rows']} rows, "
        f"batch {params['batch']}"
    )
    rows, overlay, speedups, failures = run_suite(params)
    print("\n" + save_outputs(params, rows, overlay, speedups, args.smoke))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    if args.smoke:
        print(
            "OK: both arms match the serial oracle; delta-only "
            "mutations left the layout and shared memory in place"
        )
    return 0


def test_bench_write_heavy(benchmark, capsys):
    """Pytest entry point (smoke workload) for the benchmark suite."""
    rows, overlay, speedups, failures = benchmark.pedantic(
        lambda: run_suite(SMOKE, log=lambda *_: None),
        rounds=1,
        iterations=1,
    )
    assert not failures, failures
    with capsys.disabled():
        print(save_outputs(SMOKE, rows, overlay, speedups, smoke=True))


if __name__ == "__main__":
    sys.exit(main())
