"""Figure 11(a): impact of dimensionality and dataset size on speedup.

Paper setting: Gaussian datasets, dimensions 64-512 and sizes
250K-1M (scaled down 100x here), on four nodes. Findings reproduced:

1. speedup grows with both dimensionality and dataset size
   (paper: +26.8% per dim doubling, +25.9% per size doubling),
2. the largest configuration exceeds the 4x machine count,
3. small datasets benefit least (communication overhead dominates).
"""

import numpy as np

import _common as c
from repro.cluster.cluster import Cluster
from repro.cluster.node import DEFAULT_COMPUTE_RATE, PHYSICAL_COMPUTE_RATE
from repro.core.config import HarmonyConfig
from repro.core.database import HarmonyDB
from repro.data.synthetic import gaussian_blobs
from repro.index.ivf import IVFFlatIndex

DIMS = [64, 128, 256, 512]
SIZES = [2_500, 5_000, 10_000]  # paper: 250K / 500K / 1M (scaled 100x)
N_QUERIES = 40


def speedup_for(size: int, dim: int) -> float:
    # "Datasets that follow a Gaussian distribution": a mixture of
    # Gaussian blobs, like the paper's clustered synthetic data.
    combined = gaussian_blobs(
        size + N_QUERIES, dim, n_blobs=32, cluster_std=0.5, seed=21
    )
    base, queries = combined[:size], combined[size:]
    index = IVFFlatIndex(dim=dim, nlist=c.NLIST, seed=0)
    index.train(base)
    index.add(base)
    probes = index.probe(queries, c.NPROBE)
    candidates = sum(
        index.candidates(probes[i]).size for i in range(N_QUERIES)
    )
    faiss_seconds = (
        candidates * dim / DEFAULT_COMPUTE_RATE
        + N_QUERIES * c.NLIST * dim / PHYSICAL_COMPUTE_RATE
    )
    config = HarmonyConfig(
        n_machines=4, nlist=c.NLIST, nprobe=c.NPROBE, seed=0
    )
    db = HarmonyDB.from_trained_index(
        index, config=config, cluster=Cluster(4), sample_queries=queries
    )
    _, report = db.search(queries, k=c.K)
    return (N_QUERIES / faiss_seconds) and report.qps / (
        N_QUERIES / faiss_seconds
    )


def run_experiment():
    grid = {}
    for size in SIZES:
        for dim in DIMS:
            grid[(size, dim)] = speedup_for(size, dim)
    return grid


def test_fig11a_dims_and_size(benchmark, capsys):
    grid = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        (size, *(round(grid[(size, dim)], 2) for dim in DIMS))
        for size in SIZES
    ]
    text = c.format_table(
        ["size", *(f"dim={d}" for d in DIMS)],
        rows,
        title="fig11a harmony speedup over single node (4 workers)",
    )
    c.save_result("fig11a_dims_and_size.txt", text)
    with capsys.disabled():
        print("\n" + text)

    # Speedup grows with dimension (averaged over sizes)...
    dim_means = [
        float(np.mean([grid[(s, d)] for s in SIZES])) for d in DIMS
    ]
    assert dim_means[-1] > dim_means[0]
    # ...and with dataset size (averaged over dims).
    size_means = [
        float(np.mean([grid[(s, d)] for d in DIMS])) for s in SIZES
    ]
    assert size_means[-1] > size_means[0]
    # Largest configuration exceeds the machine count.
    assert grid[(SIZES[-1], DIMS[-1])] > 4.0
