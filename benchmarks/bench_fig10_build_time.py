"""Figure 10: index build time breakdown (Train / Add / Pre-assign).

Paper setting: Harmony-vector, Harmony-dimension and Harmony building
4-node indexes, Faiss building a single-node index, broken into
training the clustering (Train), assigning base vectors to lists (Add)
and shipping blocks to machines (Pre-assign). Findings reproduced:

1. Train and Add are essentially identical across methods (they share
   the clustering),
2. Pre-assign is longer for the dimension-including strategies
   (layout restructure scales with data size),
3. Train/Add scale with dataset dimensionality.
"""

import _common as c
from repro.cluster.cluster import Cluster
from repro.core.config import HarmonyConfig
from repro.core.database import HarmonyDB

MODES = [c.Mode.VECTOR, c.Mode.DIMENSION, c.Mode.HARMONY]
DATASETS = ["sift1m", "msong", "glove1.2m", "glove2.2m", "starlightcurves"]


def run_experiment():
    rows = []
    for name in DATASETS:
        dataset = c.get_dataset(name)
        for mode in MODES:
            config = HarmonyConfig(
                n_machines=4,
                nlist=c.NLIST,
                nprobe=c.NPROBE,
                mode=mode,
                seed=0,
            )
            db = HarmonyDB(
                dim=dataset.dim, config=config, cluster=Cluster(4)
            )
            report = db.build(dataset.base, sample_queries=dataset.queries)
            rows.append(
                (
                    name,
                    mode.value,
                    round(report.train_seconds * 1e3, 2),
                    round(report.add_seconds * 1e3, 2),
                    round(report.preassign_seconds * 1e3, 2),
                )
            )
    return rows


def test_fig10_build_time(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = c.format_table(
        ["dataset", "mode", "train (ms)", "add (ms)", "pre-assign (ms)"],
        rows,
        title="fig10 index build time breakdown (simulated)",
    )
    c.save_result("fig10_build_time.txt", text)
    with capsys.disabled():
        print("\n" + text)

    by_key = {(r[0], r[1]): r for r in rows}
    for name in DATASETS:
        vector = by_key[(name, "harmony-vector")]
        dimension = by_key[(name, "harmony-dimension")]
        harmony = by_key[(name, "harmony")]
        # Shared clustering: train/add identical across modes.
        assert vector[2] == dimension[2] == harmony[2]
        assert vector[3] == dimension[3] == harmony[3]
        # Dimension-including modes pre-assign slower (restructure).
        assert dimension[4] > vector[4]
    # glove2.2m pre-assign roughly scales vs glove1.2m with data volume
    # (paper: about twice as long).
    g1 = by_key[("glove1.2m", "harmony-dimension")][4]
    g2 = by_key[("glove2.2m", "harmony-dimension")][4]
    volume_ratio = (
        c.DATASET_SCALE["glove2.2m"][0] * 300
    ) / (c.DATASET_SCALE["glove1.2m"][0] * 200)
    assert 0.5 * volume_ratio < g2 / g1 < 2.0 * volume_ratio
