"""Host fault recovery: supervised worker-pool crash overhead, measured.

The sim-timeline twin (``bench_fault_recovery.py``) scripts failures on
simulated clocks; this experiment kills a **real worker process** mid-
batch and measures what supervision costs on the wall clock. A process-
backend deployment serves repeated query windows through three phases:

1. **healthy** — baseline windows on the full pool.
2. **chaos** — a seeded :class:`HostFaultInjector` kills one worker on
   its first task of the window (plus a straggler delay on a survivor).
   The supervisor must detect the death, requeue the dead worker's
   tasks onto survivors, respawn it in the background, and finish the
   window **byte-identical** to the healthy baseline — without falling
   back to the thread path.
3. **recovered** — the next windows run on the healed pool; fault
   counters must read zero and results must still match.

Outputs ``results/BENCH_host_fault_recovery.json`` (per-window timeline
+ recovery counters) and ``results/host_fault_recovery.txt``.
``--smoke`` runs one window per phase and exits non-zero if any window
diverges from the baseline, the chaos window fell back to threads, or
no respawn was observed::

    PYTHONPATH=../src python bench_host_fault_recovery.py          # full
    PYTHONPATH=../src python bench_host_fault_recovery.py --smoke  # CI gate
"""

import argparse
import json
import sys
import time

import numpy as np

import _common as c

from repro.cluster.host_faults import DelayScan, HostFaultInjector, KillWorker

DATASET = "sift1m"
N_WORKERS = 2
FULL_WINDOWS_PER_PHASE = 3
SMOKE_WINDOWS_PER_PHASE = 1
FULL_QUERIES = 256
SMOKE_QUERIES = 64


def run_timeline(
    windows_per_phase=FULL_WINDOWS_PER_PHASE,
    n_queries=FULL_QUERIES,
    log=print,
):
    dataset = c.get_dataset(DATASET)
    gt = c.get_ground_truth(DATASET)
    queries = dataset.queries[:n_queries]
    db = c.deploy(
        DATASET, c.Mode.HARMONY, backend="process", n_workers=N_WORKERS
    )

    windows = []
    baseline = {}

    def run_window(phase):
        t0 = time.perf_counter()
        result, report = db.search(queries, k=c.K)
        elapsed = time.perf_counter() - t0
        stats = (
            report.fault_stats.to_dict()
            if report.fault_stats is not None
            else {}
        )
        backend = db._host_backend
        row = {
            "window": len(windows),
            "phase": phase,
            "wall_seconds": elapsed,
            "qps": len(queries) / elapsed,
            "worker_respawns": stats.get("worker_respawns", 0),
            "tasks_requeued": stats.get("tasks_requeued", 0),
            "scan_timeouts": stats.get("scan_timeouts", 0),
            "fallback_active": bool(
                backend is not None and backend.fallback_active
            ),
            "recall_at_k": c.recall_at_k(result.ids, gt[: len(queries)]),
            "matches_baseline": bool(
                "ids" in baseline
                and np.array_equal(result.ids, baseline["ids"])
                and np.array_equal(result.distances, baseline["distances"])
            ),
        }
        windows.append(row)
        log(
            f"  window {row['window']} [{phase:>9}] "
            f"{row['wall_seconds'] * 1e3:>7.1f} ms  "
            f"respawns {row['worker_respawns']}  "
            f"requeued {row['tasks_requeued']}  "
            f"exact {'yes' if row['matches_baseline'] else 'n/a'}"
        )
        return result

    log(
        f"host fault recovery: {DATASET}, process backend, "
        f"{N_WORKERS} workers, {len(queries)} queries/window"
    )
    first = None
    for _ in range(windows_per_phase):
        result = run_window("healthy")
        if first is None:
            first = result
            baseline["ids"] = result.ids.copy()
            baseline["distances"] = result.distances.copy()
            # The first window is its own baseline by construction.
            windows[0]["matches_baseline"] = True

    for i in range(windows_per_phase):
        injector = HostFaultInjector(
            kills=(KillWorker(worker=i % N_WORKERS, at_task=0),),
            delays=(
                DelayScan(seconds=0.002, worker=(i + 1) % N_WORKERS),
            ),
            seed=i,
        )
        db.set_host_faults(injector)
        run_window("chaos")
    db.set_host_faults(None)

    for _ in range(windows_per_phase):
        run_window("recovered")

    healthy = [w for w in windows if w["phase"] == "healthy"]
    chaos = [w for w in windows if w["phase"] == "chaos"]
    recovered = [w for w in windows if w["phase"] == "recovered"]
    healthy_mean = float(np.mean([w["wall_seconds"] for w in healthy]))
    chaos_mean = float(np.mean([w["wall_seconds"] for w in chaos]))
    summary = {
        "healthy_mean_seconds": healthy_mean,
        "chaos_mean_seconds": chaos_mean,
        "recovery_overhead": (
            chaos_mean / healthy_mean if healthy_mean > 0 else float("inf")
        ),
        "total_respawns": sum(w["worker_respawns"] for w in chaos),
        "total_requeued": sum(w["tasks_requeued"] for w in chaos),
        "all_exact": all(w["matches_baseline"] for w in windows),
        "fallback_ever": any(w["fallback_active"] for w in windows),
        "recovered_clean": all(
            w["worker_respawns"] == 0 and w["tasks_requeued"] == 0
            for w in recovered
        ),
    }
    db.close()
    return windows, summary


def save_outputs(windows, summary, smoke):
    payload = {
        "workload": {
            "dataset": DATASET,
            "backend": "process",
            "n_workers": N_WORKERS,
            "nlist": c.NLIST,
            "nprobe": c.NPROBE,
            "k": c.K,
            "smoke": smoke,
        },
        "windows": windows,
        "summary": summary,
    }
    c.save_result(
        "BENCH_host_fault_recovery.json", json.dumps(payload, indent=2)
    )
    rows = [
        [
            w["window"],
            w["phase"],
            round(w["wall_seconds"] * 1e3, 1),
            w["worker_respawns"],
            w["tasks_requeued"],
            "yes" if w["matches_baseline"] else "no",
            "yes" if w["fallback_active"] else "no",
        ]
        for w in windows
    ]
    text = c.format_table(
        [
            "window", "phase", "wall ms", "respawns",
            "requeued", "exact", "fallback",
        ],
        rows,
        title=(
            "host fault recovery: worker killed mid-batch -> requeue + "
            "respawn, byte-exact (wall-clock)"
        ),
    )
    c.save_result("host_fault_recovery.txt", text)
    return text


def check_invariants(windows, summary):
    """The gates CI holds the timeline to. Returns a list of failures."""
    failures = []
    if not summary["all_exact"]:
        failures.append("a window diverged from the healthy baseline")
    if summary["fallback_ever"]:
        failures.append(
            "supervisor fell back to threads on a single-worker crash"
        )
    if summary["total_respawns"] < 1:
        failures.append("no worker respawn observed in the chaos phase")
    if summary["total_requeued"] < 1:
        failures.append("no task requeue observed in the chaos phase")
    if not summary["recovered_clean"]:
        failures.append("recovered phase still shows fault activity")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="one window per phase; fail unless every window is byte-"
        "exact, the crash was absorbed without thread fallback, and "
        "the respawn/requeue counters moved",
    )
    args = parser.parse_args(argv)
    per_phase = (
        SMOKE_WINDOWS_PER_PHASE if args.smoke else FULL_WINDOWS_PER_PHASE
    )
    n_queries = SMOKE_QUERIES if args.smoke else FULL_QUERIES
    windows, summary = run_timeline(
        windows_per_phase=per_phase, n_queries=n_queries
    )
    print("\n" + save_outputs(windows, summary, smoke=args.smoke))
    print(
        f"recovery overhead: chaos windows ran "
        f"{summary['recovery_overhead']:.2f}x the healthy mean "
        f"({summary['total_respawns']} respawn(s), "
        f"{summary['total_requeued']} task(s) requeued)"
    )
    failures = check_invariants(windows, summary)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("OK: crash absorbed on the pool, byte-exact, pool healed")
    return 0


def test_bench_host_fault_recovery(benchmark, capsys):
    """Pytest entry point (smoke timeline) for the benchmark suite."""
    windows, summary = benchmark.pedantic(
        lambda: run_timeline(
            windows_per_phase=SMOKE_WINDOWS_PER_PHASE,
            n_queries=SMOKE_QUERIES,
            log=lambda *_: None,
        ),
        rounds=1,
        iterations=1,
    )
    text = save_outputs(windows, summary, smoke=True)
    with capsys.disabled():
        print("\n" + text)
    assert check_invariants(windows, summary) == []


if __name__ == "__main__":
    sys.exit(main())
