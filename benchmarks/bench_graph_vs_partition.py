"""Motivation experiment: why not distribute a graph index?

Quantifies paper Section 1's argument for building HARMONY on
partition-based (IVF) rather than graph-based indexes: "query paths for
vectors tend to introduce edges across machines, resulting in high
latency." We shard an HNSW graph across 4 machines by spatial (k-means)
region — the friendliest possible partition — and measure:

1. the fraction of traversed edges that cross machines (each one a
   sequential round trip, because the walk cannot continue until the
   remote neighbourhood answers), on clustered vs unclustered data;
2. the resulting throughput against Harmony at a matched recall level.
"""

import numpy as np

import _common as c
from repro.baselines.distributed_graph import DistributedGraphANN
from repro.data.synthetic import uniform_gaussian
from repro.index.flat import FlatIndex

SIZE = 4000
N_QUERIES = 40
DIM = 64


def run_case(label: str, combined: np.ndarray):
    base, queries = combined[:SIZE], combined[SIZE : SIZE + N_QUERIES]
    flat = FlatIndex(dim=DIM)
    flat.add(base)
    _, truth = flat.search(queries, k=c.K)

    graph = DistributedGraphANN(
        dim=DIM, n_machines=4, m=12, ef_construction=80, seed=0
    )
    graph.build(base)
    graph_result, graph_report = graph.search(queries, k=c.K, ef_search=64)
    graph_recall = c.recall_at_k(graph_result.ids, truth)

    from repro.bench.tuning import tune_nprobe
    from repro.cluster.cluster import Cluster
    from repro.core.config import HarmonyConfig
    from repro.core.database import HarmonyDB

    db = HarmonyDB(
        dim=DIM,
        config=HarmonyConfig(n_machines=4, nlist=c.NLIST, nprobe=c.NPROBE),
        cluster=Cluster(4),
    )
    db.build(base, sample_queries=queries)
    # Match the graph's operating point: pick the nprobe whose recall
    # reaches the graph's (IVF needs deeper probing on unclustered
    # data — the classic trade-off between the index families).
    tuned = tune_nprobe(db.index, queries, target_recall=graph_recall, k=c.K)
    harmony_result, harmony_report = db.search(
        queries, k=c.K, nprobe=tuned.nprobe
    )
    harmony_recall = c.recall_at_k(harmony_result.ids, truth)

    return (
        label,
        round(graph_report.cross_machine_fraction * 100, 1),
        round(graph_report.qps),
        round(graph_recall, 3),
        round(harmony_report.qps),
        round(harmony_recall, 3),
    )


def run_experiment():
    from repro.data.synthetic import gaussian_blobs

    clustered = gaussian_blobs(
        SIZE + N_QUERIES, DIM, n_blobs=16, cluster_std=0.5, seed=41
    )
    uniform = uniform_gaussian(SIZE + N_QUERIES, DIM, seed=41)
    return [
        run_case("clustered", clustered),
        run_case("uniform", uniform),
    ]


def test_graph_vs_partition(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = c.format_table(
        [
            "data",
            "cross-machine hops %",
            "graph QPS",
            "graph recall",
            "harmony QPS",
            "harmony recall",
        ],
        rows,
        title="motivation: distributed HNSW vs Harmony (4 machines)",
    )
    c.save_result("graph_vs_partition.txt", text)
    with capsys.disabled():
        print("\n" + text)

    for row in rows:
        # Harmony out-throughputs the sharded graph at comparable recall.
        assert row[4] > row[2]
        assert row[5] >= row[3] - 0.1
    # Unclustered data makes the graph cross machines far more.
    assert rows[1][1] > rows[0][1] * 2
