"""Semantic result cache under skewed repeated-query traffic.

Real host wall-clock over Zipf-distributed repeated-query streams
(:func:`repro.workload.zipf_query_stream`): a small pool of queries is
replayed with popularity ``p(rank) ∝ rank^-alpha``, the traffic shape
the result cache is built for. Three arm families run the identical
stream against identically built deployments:

- ``off``: cache disabled — every request pays routing + scan. This
  arm doubles as the byte-identity oracle for the exact arm.
- ``exact``: :class:`repro.cache.ResultCache` with ``epsilon = 0`` —
  repeats are answered from the cache, byte-identical to the uncached
  answer (asserted row by row against the ``off`` arm).
- ``semantic-ε``: opt-in ε-ball matching over a *jittered* stream
  (repeat occurrences perturbed by Gaussian noise), the near-duplicate
  traffic exact keys cannot hit. Per-ε recall against the uncached
  answer for the very same jittered query is measured and reported —
  semantic approximation is never silent.

The closed loop measures per-request p50/p99/QPS per arm; an open-loop
pass replays a Poisson schedule through the coalescing server and
shows cache hits resolving at submit (``ServeStats.cache_hits``). A
final mutation round checks invalidation: after ``db.add`` the cache
flushes (invalidations counter moves) and post-mutation answers match
the uncached deployment byte for byte.

Results accumulate in ``results/BENCH_semantic_cache.json`` plus a
text table; ``--smoke`` runs a small stream and exits non-zero if the
exact arm diverges from the uncached oracle, its hit rate falls below
60%, or invalidation misbehaves (the CI cache-smoke gate). The full
run additionally gates the headline speedups: exact caching must
deliver >= 3x p50 and >= 2x QPS over the uncached arm.

Usage::

    PYTHONPATH=../src python bench_semantic_cache.py            # full
    PYTHONPATH=../src python bench_semantic_cache.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

import _common as c
from repro import HarmonyConfig, HarmonyDB
from repro.serve.harness import run_open_loop
from repro.workload import poisson_arrivals, zipf_query_stream

FULL = dict(
    n=40_000, dim=64, nlist=64, nprobe=8, k=10,
    pool=64, stream=768, alpha=1.2, n_threads=4,
    epsilons=(0.05, 0.1, 0.2), serve_requests=256, mutate_rows=256,
)
SMOKE = dict(
    n=6_000, dim=48, nlist=32, nprobe=8, k=10,
    pool=32, stream=160, alpha=1.2, n_threads=2,
    epsilons=(0.1,), serve_requests=64, mutate_rows=64,
)

#: Gates for the full run's headline numbers (the issue's acceptance
#: bar). The smoke gate checks correctness + hit rate only — CI boxes
#: are too noisy for wall-clock ratios.
MIN_P50_SPEEDUP = 3.0
MIN_QPS_SPEEDUP = 2.0
MIN_HIT_RATE = 0.60


def build_dataset(params, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((params["n"], params["dim"]))
    base = base.astype(np.float32)
    pool = rng.standard_normal((params["pool"], params["dim"]))
    pool = pool.astype(np.float32)
    return base, pool


def build_db(params, base, pool, enable_cache, epsilon=0.0):
    """One deployment; identical seed/plan across arms."""
    config = HarmonyConfig(
        nlist=params["nlist"],
        nprobe=params["nprobe"],
        backend="thread",
        n_threads=params["n_threads"],
        enable_cache=enable_cache,
        cache_size=4 * params["pool"],
        cache_semantic_epsilon=epsilon,
    )
    db = HarmonyDB(dim=params["dim"], config=config)
    db.build(base, sample_queries=pool)
    db.search(pool[:1], k=params["k"])  # warm the layout + pool
    return db


def jitter_for(epsilon: float, dim: int) -> float:
    """Noise std placing repeat occurrences inside the ε ball.

    Per-dim Gaussian jitter of std ``s`` lands at expected L2 distance
    ``s * sqrt(dim)``; aim for half the ball radius so hits are
    comfortably inside without being byte-equal.
    """
    return epsilon / (2.0 * float(np.sqrt(dim)))


def run_closed_loop(db, stream, k):
    """One request in flight at a time; per-request wall latencies."""
    latencies = np.zeros(stream.shape[0], dtype=np.float64)
    ids, distances = [], []
    t0 = time.perf_counter()
    for i in range(stream.shape[0]):
        t_start = time.perf_counter()
        result, _ = db.search(stream[i : i + 1], k=k)
        latencies[i] = time.perf_counter() - t_start
        ids.append(result.ids[0])
        distances.append(result.distances[0])
    elapsed = time.perf_counter() - t0
    row = {
        "n_requests": int(stream.shape[0]),
        "qps": stream.shape[0] / elapsed if elapsed > 0 else 0.0,
        "p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "p99_ms": float(np.percentile(latencies, 99) * 1e3),
        "mean_ms": float(latencies.mean() * 1e3),
    }
    return row, ids, distances


def mismatch_count(ids_a, dist_a, ids_b, dist_b) -> int:
    return sum(
        1
        for i in range(len(ids_a))
        if not (
            np.array_equal(ids_a[i], ids_b[i])
            and np.array_equal(dist_a[i], dist_b[i])
        )
    )


def mean_recall(ids, ref_ids, k) -> float:
    overlaps = [
        len(set(map(int, ids[i])) & set(map(int, ref_ids[i]))) / k
        for i in range(len(ids))
    ]
    return float(np.mean(overlaps))


def run_serve_pass(db, stream, k, rate, label, log=print):
    """Open-loop Poisson replay through the coalescing server."""
    arrivals = poisson_arrivals(stream.shape[0], rate, seed=11)
    server = db.serve(queue_depth=stream.shape[0])
    try:
        open_loop = run_open_loop(server, stream, arrivals, k=k)
        stats = server.stats.to_dict()
    finally:
        server.close()
    row = open_loop.to_dict()
    row["arm"] = label
    row["cache_hits"] = int(stats.get("cache_hits", 0))
    log(
        f"  serve {label:>6}: {row['sustained_qps']:8.1f} qps sustained,"
        f" p50 {row['p50_ms']:.2f} ms, {row['cache_hits']} submit-time"
        " cache hits"
    )
    return row


def check_invalidation(db_off, db_cache, params, failures, log=print):
    """Mutations must flush the cache and never serve stale answers."""
    rng = np.random.default_rng(5)
    extra = rng.standard_normal(
        (params["mutate_rows"], params["dim"])
    ).astype(np.float32)
    before = db_cache.result_cache.stats()
    db_off.add(extra)
    db_cache.add(extra)
    pool_batch = build_dataset(params)[1]
    k = params["k"]
    ref, _ = db_off.search(pool_batch, k=k)
    got, _ = db_cache.search(pool_batch, k=k)
    if not (
        np.array_equal(ref.ids, got.ids)
        and np.array_equal(ref.distances, got.distances)
    ):
        failures.append(
            "post-mutation cached answers diverge from the uncached "
            "deployment — invalidation served stale entries"
        )
    after = db_cache.result_cache.stats()
    invalidations = after.invalidations - before.invalidations
    if invalidations < 1:
        failures.append(
            "db.add did not invalidate the result cache "
            f"({invalidations} invalidations recorded)"
        )
    # The flushed cache must re-fill: an identical repeat now hits.
    warm, _ = db_cache.search(pool_batch, k=k)
    repeat_hits = db_cache.result_cache.stats().hits - after.hits
    if repeat_hits < pool_batch.shape[0]:
        failures.append(
            "cache failed to re-fill after invalidation "
            f"({repeat_hits}/{pool_batch.shape[0]} repeat hits)"
        )
    if not np.array_equal(warm.ids, ref.ids):
        failures.append("re-filled cache diverges from the uncached oracle")
    log(
        f"  invalidation: {invalidations} flush(es) on add, "
        f"{repeat_hits}/{pool_batch.shape[0]} repeat hits after re-fill"
    )
    return {
        "invalidations": int(invalidations),
        "post_mutation_byte_identical": True,
        "repeat_hits_after_refill": int(repeat_hits),
    }


def run_suite(params, smoke, log=print):
    failures: list[str] = []
    base, pool = build_dataset(params)
    k = params["k"]
    stream, picks = zipf_query_stream(
        pool, alpha=params["alpha"], n=params["stream"], seed=7
    )
    unique = int(np.unique(picks).size)
    log(
        f"  stream: {params['stream']} requests over {unique} distinct"
        f" pool queries (alpha={params['alpha']})"
    )

    rows = []
    db_off = build_db(params, base, pool, enable_cache=False)
    off_row, off_ids, off_dist = run_closed_loop(db_off, stream, k)
    off_row |= {"arm": "off", "hit_rate": 0.0}
    rows.append(off_row)
    log(
        f"  closed    off: p50 {off_row['p50_ms']:7.3f} ms,"
        f" {off_row['qps']:8.1f} qps"
    )

    db_exact = build_db(params, base, pool, enable_cache=True)
    exact_row, exact_ids, exact_dist = run_closed_loop(db_exact, stream, k)
    stats = db_exact.result_cache.stats()
    lookups = stats.hits + stats.misses
    exact_row |= {
        "arm": "exact",
        "hit_rate": stats.hits / lookups if lookups else 0.0,
        "cache": stats.to_dict(),
    }
    rows.append(exact_row)
    log(
        f"  closed  exact: p50 {exact_row['p50_ms']:7.3f} ms,"
        f" {exact_row['qps']:8.1f} qps,"
        f" hit rate {exact_row['hit_rate']:.0%}"
    )
    mismatches = mismatch_count(exact_ids, exact_dist, off_ids, off_dist)
    if mismatches:
        failures.append(
            f"exact arm diverges from the uncached oracle on "
            f"{mismatches}/{len(off_ids)} requests"
        )
    if exact_row["hit_rate"] < MIN_HIT_RATE:
        failures.append(
            f"exact hit rate {exact_row['hit_rate']:.0%} below the "
            f"{MIN_HIT_RATE:.0%} gate on a Zipf({params['alpha']}) stream"
        )

    # Semantic arms: jittered repeats, recall measured per ε against
    # the uncached answer for the same jittered query.
    for epsilon in params["epsilons"]:
        jittered, _ = zipf_query_stream(
            pool,
            alpha=params["alpha"],
            n=params["stream"],
            seed=7,
            jitter=jitter_for(epsilon, params["dim"]),
        )
        ref, _ = db_off.search(jittered, k=k)
        db_sem = build_db(params, base, pool, enable_cache=True,
                          epsilon=epsilon)
        sem_row, sem_ids, _sem_dist = run_closed_loop(db_sem, jittered, k)
        sstats = db_sem.result_cache.stats()
        lookups = sstats.hits + sstats.misses
        sem_row |= {
            "arm": f"semantic-{epsilon:g}",
            "epsilon": float(epsilon),
            "hit_rate": sstats.hits / lookups if lookups else 0.0,
            "semantic_hits": int(sstats.semantic_hits),
            "recall_vs_uncached": mean_recall(sem_ids, list(ref.ids), k),
            "cache": sstats.to_dict(),
        }
        rows.append(sem_row)
        db_sem.close()
        log(
            f"  closed sem ε={epsilon:<5g}: p50 {sem_row['p50_ms']:7.3f} ms,"
            f" hit rate {sem_row['hit_rate']:.0%}"
            f" ({sem_row['semantic_hits']} semantic),"
            f" recall {sem_row['recall_vs_uncached']:.3f}"
        )
        if sem_row["semantic_hits"] < 1:
            failures.append(
                f"semantic arm ε={epsilon:g} recorded no semantic hits on "
                "a jittered repeat stream"
            )

    # Open loop: cache hits resolve at submit time, ahead of the
    # micro-batch queue.
    rate = 2.0 * max(off_row["qps"], 1.0)
    serve_stream = stream[: params["serve_requests"]]
    serve_rows = [
        run_serve_pass(db_off, serve_stream, k, rate, "off", log=log),
        run_serve_pass(db_exact, serve_stream, k, rate, "exact", log=log),
    ]
    if serve_rows[1]["cache_hits"] < 1:
        failures.append("server recorded no submit-time cache hits")

    invalidation = check_invalidation(
        db_off, db_exact, params, failures, log=log
    )

    speedups = {
        "p50": off_row["p50_ms"] / max(exact_row["p50_ms"], 1e-9),
        "qps": exact_row["qps"] / max(off_row["qps"], 1e-9),
    }
    log(
        f"  exact-cache speedup: p50 {speedups['p50']:.1f}x,"
        f" qps {speedups['qps']:.1f}x"
    )
    if not smoke:
        if speedups["p50"] < MIN_P50_SPEEDUP:
            failures.append(
                f"exact p50 speedup {speedups['p50']:.2f}x below the "
                f"{MIN_P50_SPEEDUP}x gate"
            )
        if speedups["qps"] < MIN_QPS_SPEEDUP:
            failures.append(
                f"exact QPS speedup {speedups['qps']:.2f}x below the "
                f"{MIN_QPS_SPEEDUP}x gate"
            )
    db_off.close()
    db_exact.close()
    return rows, serve_rows, invalidation, speedups, failures


def save_outputs(params, rows, serve_rows, invalidation, speedups, smoke):
    payload = {
        "workload": {
            key: params[key]
            for key in (
                "n", "dim", "nlist", "nprobe", "k", "pool", "stream",
                "alpha", "n_threads", "serve_requests", "mutate_rows",
            )
        }
        | {
            "epsilons": list(params["epsilons"]),
            "smoke": smoke,
            "cpu_count": os.cpu_count(),
        },
        "closed_loop": rows,
        "open_loop": serve_rows,
        "invalidation": invalidation,
        "speedup": speedups,
    }
    c.save_result(
        "BENCH_semantic_cache.json", json.dumps(payload, indent=2)
    )
    table = c.format_table(
        ["arm", "p50 (ms)", "p99 (ms)", "qps", "hit rate", "recall"],
        [
            [
                row["arm"],
                round(row["p50_ms"], 3),
                round(row["p99_ms"], 3),
                round(row["qps"], 1),
                f"{row['hit_rate']:.0%}",
                (
                    f"{row['recall_vs_uncached']:.3f}"
                    if "recall_vs_uncached" in row
                    else "exact"
                ),
            ]
            for row in rows
        ],
        title=(
            f"semantic result cache on Zipf({params['alpha']}) repeats "
            f"(exact: p50 {speedups['p50']:.1f}x, qps "
            f"{speedups['qps']:.1f}x; host wall-clock)"
        ),
    )
    c.save_result("semantic_cache.txt", table)
    return table


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "small stream; fail on oracle divergence, hit rate below "
            "60%%, or invalidation misbehavior"
        ),
    )
    args = parser.parse_args(argv)
    params = SMOKE if args.smoke else FULL
    label = "smoke" if args.smoke else "full"
    print(
        f"semantic-cache benchmark ({label}): {params['n']:,} x "
        f"{params['dim']}, {params['stream']} requests over a "
        f"{params['pool']}-query pool, alpha {params['alpha']}"
    )
    rows, serve_rows, invalidation, speedups, failures = run_suite(
        params, smoke=args.smoke
    )
    print(
        "\n"
        + save_outputs(
            params, rows, serve_rows, invalidation, speedups, args.smoke
        )
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    if args.smoke:
        print(
            "OK: exact arm byte-identical to the uncached oracle; hit "
            "rate and invalidation within gates"
        )
    return 0


def test_bench_semantic_cache(benchmark, capsys):
    """Pytest entry point (smoke workload) for the benchmark suite."""
    rows, serve_rows, invalidation, speedups, failures = benchmark.pedantic(
        lambda: run_suite(SMOKE, smoke=True, log=lambda *_: None),
        rounds=1,
        iterations=1,
    )
    assert not failures, failures
    with capsys.disabled():
        print(
            save_outputs(
                SMOKE, rows, serve_rows, invalidation, speedups, smoke=True
            )
        )


if __name__ == "__main__":
    sys.exit(main())
