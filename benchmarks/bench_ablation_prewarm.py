"""Design ablation: prewarm size (Algorithm 1's PrewarmHeap).

The prewarm stage seeds each query's top-K heap so the dimension
pipeline has a finite pruning threshold from its first boundary. This
sweep shows the design constraint DESIGN.md calls out: with fewer than
``k`` prewarmed candidates the heap never fills before the pipeline
runs, so no pruning happens at all; beyond a few multiples of ``k``
the returns flatten while client-side prewarm work keeps growing.
"""

import numpy as np

import _common as c

PREWARM_SIZES = [0, 8, 16, 32, 128]
DATASET = "sift1m"


def run_experiment():
    dataset = c.get_dataset(DATASET)
    rows = []
    for size in PREWARM_SIZES:
        db = c.deploy(
            DATASET,
            c.Mode.DIMENSION,
            prewarm_size=size,
        )
        _, report = db.search(dataset.queries, k=c.K)
        assert report.pruning is not None
        rows.append(
            (
                size,
                round(report.pruning.average_ratio() * 100, 1),
                round(report.qps),
            )
        )
    return rows


def test_ablation_prewarm(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = c.format_table(
        ["prewarm size", "avg pruning %", "QPS"],
        rows,
        title=f"ablation: prewarm heap size ({DATASET}, k={c.K}, 1x4 grid)",
    )
    c.save_result("ablation_prewarm.txt", text)
    with capsys.disabled():
        print("\n" + text)

    by_size = {r[0]: r for r in rows}
    # Below k the heap never fills: zero pruning.
    assert by_size[0][1] == 0.0
    assert by_size[8][1] == 0.0  # 8 < k = 10
    # At and beyond k pruning engages and throughput improves.
    assert by_size[16][1] > 20.0
    assert by_size[32][2] > by_size[0][2]
    # Returns flatten: quadrupling past 32 changes little.
    assert abs(by_size[128][1] - by_size[32][1]) < 15.0
