"""Section 6.5.4: comparison with Auncel.

Auncel serves error-bounded vector queries over a fixed vector-style
partition. Findings reproduced:

1. under balanced workloads Auncel is competitive (its error-bound
   planner probes fewer lists per query),
2. under skew it degrades like Harmony-vector (same partitioning),
3. Harmony retains throughput via pruning + load-aware planning.
"""

import numpy as np

import _common as c
from repro.baselines.auncel import AuncelLike
from repro.workload.generators import skewed_workload

DATASET = "sift1m"
SKEWS = [0.0, 0.5, 1.0]


def run_experiment():
    dataset = c.get_dataset(DATASET)
    index = c.get_index(DATASET)
    auncel = AuncelLike(
        dim=dataset.dim,
        nlist=c.NLIST,
        n_machines=4,
        epsilon=0.4,
        max_probe=c.NPROBE,
        seed=0,
    )
    auncel.build(dataset.base)
    vector_db = c.deploy(DATASET, c.Mode.VECTOR)
    hot = c.hot_lists_for(DATASET, vector_db)
    pool = c.load_dataset(
        DATASET, size=c.DATASET_SCALE[DATASET][0], n_queries=300, seed=c.SEED + 1
    ).queries
    truth_pool = None
    rows = []
    for skew in SKEWS:
        workload = skewed_workload(
            pool, index, 80, skew=skew, nprobe=c.NPROBE,
            hot_list_ids=hot, seed=17,
        )
        _, auncel_report = auncel.search(workload.queries, k=c.K)
        harmony_db = c.deploy(
            DATASET, c.Mode.HARMONY, sample_queries=workload.queries
        )
        _, harmony_report = harmony_db.search(workload.queries, k=c.K)
        _, vector_report = vector_db.search(workload.queries, k=c.K)
        rows.append(
            (
                skew,
                round(auncel_report.qps),
                round(vector_report.qps),
                round(harmony_report.qps),
            )
        )
    return rows


def test_auncel_comparison(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = c.format_table(
        ["skew", "auncel QPS", "harmony-vector QPS", "harmony QPS"],
        rows,
        title="sec6.5.4 Auncel vs Harmony under skew",
    )
    c.save_result("auncel_comparison.txt", text)
    with capsys.disabled():
        print("\n" + text)

    balanced, extreme = rows[0], rows[-1]
    # Auncel degrades under skew like vector partitioning does...
    assert extreme[1] < balanced[1]
    # ...while Harmony retains (or improves) its throughput.
    assert extreme[3] > extreme[1]
    assert extreme[3] > balanced[3] * 0.75
