"""Process-pool scaling: serial vs thread vs process at 1/2/4/8 workers.

Real host wall-clock (like ``bench_scan_kernel``, unlike the simulated
figures) over a synthetic gaussian workload. One serial baseline, one
persistent-thread-pool run, and one shared-memory process-pool run per
worker count; every variant must return byte-identical ids and
distances to the serial oracle (asserted). The process rows also
record the shared layout's resident bytes and the per-batch steal
totals, so the JSON shows that cross-process traffic is limited to
compact top-k candidate arrays riding a fixed shared-memory layout.

Results accumulate in ``results/BENCH_process_scaling.json`` plus a
text table; ``--smoke`` runs a small workload and exits non-zero if
any parallel backend diverges from the serial oracle or the process
pool silently fell back to threads (the CI perf-smoke gate — speedup
itself is not gated there, since CI cores vary).

Usage::

    PYTHONPATH=../src python bench_process_scaling.py            # full
    PYTHONPATH=../src python bench_process_scaling.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

import _common as c
from repro.core.executor import ProcessBackend, SerialBackend, ThreadBackend
from repro.core.partition import build_plan
from repro.index.ivf import IVFFlatIndex

FULL = dict(
    n=100_000, dim=128, nlist=64, nprobe=8, k=10,
    n_shards=8, n_slices=4, batch=256, repeats=3,
    worker_counts=(1, 2, 4, 8),
)
SMOKE = dict(
    n=12_000, dim=64, nlist=32, nprobe=8, k=10,
    n_shards=4, n_slices=4, batch=48, repeats=1,
    worker_counts=(2,),
)


def build_workload(params, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((params["n"], params["dim"]))
    base = base.astype(np.float32)
    queries = rng.standard_normal((params["batch"], params["dim"]))
    queries = queries.astype(np.float32)
    index = IVFFlatIndex(
        dim=params["dim"],
        nlist=params["nlist"],
        seed=0,
        max_iterations=10,
    )
    index.train(base[: min(20_000, params["n"])])
    index.add(base)
    return index, queries


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _check(name, result, ref, failures):
    if not np.array_equal(result.ids, ref.ids) or not np.array_equal(
        result.distances, ref.distances
    ):
        failures.append(f"{name} diverges from the serial oracle")


def run_suite(params, log=print):
    index, queries = build_workload(params)
    nprobe, k = params["nprobe"], params["k"]
    plan = build_plan(
        index,
        n_machines=params["n_shards"] * params["n_slices"],
        n_vector_shards=params["n_shards"],
        n_dim_blocks=params["n_slices"],
    )
    failures: list[str] = []
    serial = SerialBackend(index, plan=plan)
    serial_seconds, ref = _best_of(
        lambda: serial.search(queries, k=k, nprobe=nprobe),
        params["repeats"],
    )
    log(f"  serial baseline: {serial_seconds * 1e3:8.1f} ms")
    rows = []
    for workers in params["worker_counts"]:
        row = {"workers": workers}
        with ThreadBackend(index, plan=plan, n_threads=workers) as threaded:
            seconds, result = _best_of(
                lambda: threaded.search(queries, k=k, nprobe=nprobe),
                params["repeats"],
            )
        _check(f"thread x{workers}", result, ref, failures)
        row["thread_seconds"] = seconds
        with ProcessBackend(index, plan=plan, n_workers=workers) as process:
            seconds, result = _best_of(
                lambda: process.search(queries, k=k, nprobe=nprobe),
                params["repeats"],
            )
            row["process_fallback"] = process.fallback_active
            row["layout_bytes"] = process.shared_layout_nbytes()
            row["steals"] = int(process.total_steals)
        _check(f"process x{workers}", result, ref, failures)
        if row["process_fallback"]:
            failures.append(
                f"process x{workers} fell back to the thread path"
            )
        row["process_seconds"] = seconds
        row["thread_speedup"] = serial_seconds / row["thread_seconds"]
        row["process_speedup"] = serial_seconds / row["process_seconds"]
        rows.append(row)
        log(
            f"  {workers} workers: thread {row['thread_seconds']*1e3:8.1f} ms"
            f" ({row['thread_speedup']:.2f}x)   process"
            f" {row['process_seconds']*1e3:8.1f} ms"
            f" ({row['process_speedup']:.2f}x, {row['steals']} steals)"
        )
    return serial_seconds, rows, failures


def save_outputs(params, serial_seconds, rows, smoke):
    payload = {
        "workload": {
            key: params[key]
            for key in (
                "n", "dim", "nlist", "nprobe", "k",
                "n_shards", "n_slices", "batch",
            )
        }
        | {"smoke": smoke, "cpu_count": os.cpu_count()},
        "serial_seconds": serial_seconds,
        "cases": rows,
    }
    c.save_result(
        "BENCH_process_scaling.json", json.dumps(payload, indent=2)
    )
    table = c.format_table(
        [
            "workers", "thread (ms)", "process (ms)",
            "thread x", "process x", "steals", "layout (MiB)",
        ],
        [
            [
                row["workers"],
                round(row["thread_seconds"] * 1e3, 1),
                round(row["process_seconds"] * 1e3, 1),
                round(row["thread_speedup"], 2),
                round(row["process_speedup"], 2),
                row["steals"],
                round(row["layout_bytes"] / 2**20, 1),
            ]
            for row in rows
        ],
        title=(
            f"process-pool scaling vs serial "
            f"({serial_seconds * 1e3:.1f} ms baseline, host wall-clock)"
        ),
    )
    c.save_result("process_scaling.txt", table)
    return table


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload; fail on divergence or thread fallback",
    )
    args = parser.parse_args(argv)
    params = SMOKE if args.smoke else FULL
    label = "smoke" if args.smoke else "full"
    print(
        f"process-scaling benchmark ({label}): {params['n']:,} x "
        f"{params['dim']}, {params['n_shards']} shards x "
        f"{params['n_slices']} slices, batch {params['batch']}"
    )
    serial_seconds, rows, failures = run_suite(params)
    print("\n" + save_outputs(params, serial_seconds, rows, args.smoke))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    if args.smoke:
        print("OK: thread and process backends match the serial oracle")
    return 0


def test_bench_process_scaling(benchmark, capsys):
    """Pytest entry point (smoke workload) for the benchmark suite."""
    serial_seconds, rows, failures = benchmark.pedantic(
        lambda: run_suite(SMOKE, log=lambda *_: None),
        rounds=1,
        iterations=1,
    )
    assert not failures, failures
    with capsys.disabled():
        print(save_outputs(SMOKE, serial_seconds, rows, smoke=True))


if __name__ == "__main__":
    sys.exit(main())
