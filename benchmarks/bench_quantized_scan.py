"""Quantized-scan benchmark: SQ8 candidate scan vs full fp32 scan.

Real host wall-clock (like ``bench_scan_kernel``) over a synthetic
gaussian workload, comparing the two candidate-scan representations of
the dual-representation packed layout:

- ``fp32`` — the full-width float32 scan (the exactness oracle).
- ``sq8``  — uint8 scalar-quantized codes with error-padded pruning
  bounds, followed by an exact float32 re-rank of the survivors.

Both run on the serial and threaded backends; every sq8 result must be
**byte-identical** (ids and distances) to the fp32 serial oracle — the
padded bounds are lossless and the re-rank is exact, so quantization
only changes what gets pruned early, never what gets returned.

Besides scan time, the benchmark records the scan-layout footprint:
bytes streamed by the candidate scan per representation (fp32 rows vs
uint8 codes + per-slice error/scale overhead). The codes must come in
at least 3x smaller — that ratio is the bandwidth headroom the
simulated contention model charges for.

Results are saved as a text table and machine-readable
``results/BENCH_quantized_scan.json``; ``--smoke`` runs a small
workload and exits non-zero if sq8 exactness or the 3x layout-bytes
gate fails (the CI perf-smoke gate).

Usage::

    PYTHONPATH=../src python bench_quantized_scan.py            # full
    PYTHONPATH=../src python bench_quantized_scan.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

import _common as c
from repro.core.executor import SerialBackend, ThreadBackend
from repro.core.layout import ShardPackedBase
from repro.core.partition import build_plan
from repro.index.ivf import IVFFlatIndex

MIN_LAYOUT_RATIO = 3.0

FULL = dict(
    n=100_000, dim=128, nlist=64, nprobe=8, k=10,
    n_shards=4, n_slices=8, batches=(64, 256), repeats=3,
)
SMOKE = dict(
    n=15_000, dim=64, nlist=32, nprobe=8, k=10,
    n_shards=2, n_slices=4, batches=(32,), repeats=2,
)


def build_workload(params, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((params["n"], params["dim"]))
    base = base.astype(np.float32)
    queries = rng.standard_normal((max(params["batches"]), params["dim"]))
    queries = queries.astype(np.float32)
    index = IVFFlatIndex(
        dim=params["dim"],
        nlist=params["nlist"],
        seed=0,
        max_iterations=10,
    )
    index.train(base[: min(20_000, params["n"])])
    index.add(base)
    return index, queries


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def layout_footprint(index, plan):
    """Scan-layout bytes per representation (codes vs fp32 rows)."""
    packed = ShardPackedBase.build(index, plan, with_codes=True)
    fp32_bytes = int(packed.rows_nbytes)
    sq8_bytes = int(packed.codes_nbytes) + int(packed.code_overhead_nbytes)
    return {
        "fp32_scan_bytes": fp32_bytes,
        "sq8_scan_bytes": sq8_bytes,
        "sq8_code_bytes": int(packed.codes_nbytes),
        "sq8_overhead_bytes": int(packed.code_overhead_nbytes),
        "layout_ratio": fp32_bytes / sq8_bytes,
    }


def run_suite(params, log=print):
    index, all_queries = build_workload(params)
    nprobe, k = params["nprobe"], params["k"]
    plan = build_plan(
        index,
        n_machines=params["n_shards"] * params["n_slices"],
        n_vector_shards=params["n_shards"],
        n_dim_blocks=params["n_slices"],
    )
    footprint = layout_footprint(index, plan)
    log(
        f"  layout: fp32 rows {footprint['fp32_scan_bytes']:,} B, "
        f"sq8 codes {footprint['sq8_scan_bytes']:,} B "
        f"({footprint['layout_ratio']:.2f}x smaller)"
    )
    backends = {}
    for precision in ("fp32", "sq8"):
        backends[f"serial_{precision}"] = SerialBackend(
            index, plan=plan, scan_precision=precision
        )
        backends[f"thread_{precision}"] = ThreadBackend(
            index, plan=plan, n_threads=params["n_shards"],
            scan_precision=precision,
        )
    cases = []
    for batch in params["batches"]:
        queries = all_queries[:batch]
        seconds = {}
        ref = None
        rerank = 0
        for name, backend in backends.items():
            seconds[name], result = _best_of(
                lambda b=backend: b.search(queries, k=k, nprobe=nprobe),
                params["repeats"],
            )
            if name == "serial_fp32":
                ref = result
                continue
            assert np.array_equal(result.ids, ref.ids), (
                f"{name} ids diverge from the fp32 serial oracle"
            )
            assert np.array_equal(result.distances, ref.distances), (
                f"{name} distances diverge from the fp32 serial oracle"
            )
            if name == "serial_sq8":
                rerank = int(backend.last_rerank_count)
        case = {
            "batch": batch,
            "n_slices": params["n_slices"],
            "n_shards": params["n_shards"],
            "seconds": seconds,
            "rerank_candidates": rerank,
            "speedup_sq8_serial": seconds["serial_fp32"] / seconds["serial_sq8"],
            "speedup_sq8_thread": seconds["thread_fp32"] / seconds["thread_sq8"],
        }
        cases.append(case)
        log(
            f"  batch {batch:4d}: "
            + "  ".join(
                f"{name} {sec * 1e3:8.1f} ms"
                for name, sec in seconds.items()
            )
            + f"  (sq8 serial {case['speedup_sq8_serial']:.2f}x,"
            f" {rerank:,} reranked)"
        )
    return footprint, cases


def save_outputs(params, footprint, cases, smoke):
    payload = {
        "workload": {
            key: params[key]
            for key in (
                "n", "dim", "nlist", "nprobe", "k", "n_shards", "n_slices"
            )
        }
        | {"smoke": smoke},
        "layout": footprint,
        "cases": cases,
    }
    c.save_result("BENCH_quantized_scan.json", json.dumps(payload, indent=2))
    rows = [
        [
            case["batch"],
            round(case["seconds"]["serial_fp32"] * 1e3, 1),
            round(case["seconds"]["serial_sq8"] * 1e3, 1),
            round(case["seconds"]["thread_fp32"] * 1e3, 1),
            round(case["seconds"]["thread_sq8"] * 1e3, 1),
            case["rerank_candidates"],
            round(case["speedup_sq8_serial"], 2),
        ]
        for case in cases
    ]
    text = c.format_table(
        [
            "batch", "fp32 (ms)", "sq8 (ms)", "fp32 thr (ms)",
            "sq8 thr (ms)", "reranked", "sq8 speedup",
        ],
        rows,
        title=(
            "quantized scan: sq8 codes + exact fp32 re-rank "
            f"(layout {footprint['layout_ratio']:.2f}x smaller, "
            "host wall-clock, synthetic gaussian)"
        ),
    )
    c.save_result("quantized_scan.txt", text)
    return text


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload; fail on sq8 inexactness or layout < 3x",
    )
    args = parser.parse_args(argv)
    params = SMOKE if args.smoke else FULL
    label = "smoke" if args.smoke else "full"
    print(
        f"quantized-scan benchmark ({label}): {params['n']:,} x "
        f"{params['dim']}, nlist {params['nlist']}, nprobe "
        f"{params['nprobe']}"
    )
    footprint, cases = run_suite(params)
    print("\n" + save_outputs(params, footprint, cases, smoke=args.smoke))
    if args.smoke:
        # Exactness is asserted inside run_suite; gate the footprint.
        if footprint["layout_ratio"] < MIN_LAYOUT_RATIO:
            print(
                "FAIL: sq8 scan layout only "
                f"{footprint['layout_ratio']:.2f}x smaller than fp32 "
                f"(need >= {MIN_LAYOUT_RATIO}x)"
            )
            return 1
        print(
            "OK: sq8 byte-identical to the fp32 oracle, layout "
            f"{footprint['layout_ratio']:.2f}x smaller"
        )
    return 0


def test_bench_quantized_scan(benchmark, capsys):
    """Pytest entry point (smoke workload) for the benchmark suite."""
    footprint, cases = benchmark.pedantic(
        lambda: run_suite(SMOKE, log=lambda *_: None), rounds=1, iterations=1
    )
    text = save_outputs(SMOKE, footprint, cases, smoke=True)
    with capsys.disabled():
        print("\n" + text)
    assert footprint["layout_ratio"] >= MIN_LAYOUT_RATIO, footprint
    for case in cases:
        assert case["rerank_candidates"] > 0, case


if __name__ == "__main__":
    sys.exit(main())
