"""Figure 2(a): pruning ratio by dimension quarter (motivation).

Paper setting: four machines, each holding one quarter of the vector
dimensions; by the second machine ~50% of candidates are pruned, by the
third and fourth the ratio exceeds 80%, peaking at 97.4%.

We run the msong analogue (the dataset Figure 2 is motivated with)
through a pure dimension plan with 4 slices and report the cumulative
pruning ratio at each machine.
"""

import numpy as np

import _common as c


def run_experiment():
    db = c.deploy("msong", c.Mode.DIMENSION)
    dataset = c.get_dataset("msong")
    _, report = db.search(dataset.queries, k=c.K)
    assert report.pruning is not None
    return report.pruning.ratios() * 100.0


def test_fig2a_pruning_motivation(benchmark, capsys):
    ratios = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = c.format_series(
        "fig2a pruning ratio by machine (%)",
        [f"machine {j + 1}" for j in range(4)],
        [round(float(r), 1) for r in ratios],
    )
    c.save_result("fig2a_pruning_motivation.txt", text)
    with capsys.disabled():
        print("\n" + text)

    # Paper shape: nothing pruned at machine 1, substantial by machine
    # 2, >50% by machines 3-4, monotically increasing.
    assert ratios[0] == 0.0
    assert ratios[1] > 20.0
    assert ratios[3] > 50.0
    assert np.all(np.diff(ratios) >= 0.0)
