"""Figure 7: impact of load distribution (skew) on query performance.

Paper setting: the eight small datasets on four nodes, query sets
manipulated to create increasing per-machine load differences
(quantified by the Section 4.2.1 variance). Findings reproduced:

1. vector partitioning degrades as skew grows (paper: -56% QPS on
   average at the extreme),
2. Harmony and Harmony-dimension stay flat,
3. Harmony ends up far ahead of vector under extreme skew.
"""

import numpy as np

import _common as c
from repro.workload.generators import skewed_workload
from repro.workload.skew import zipf_query_stream

SKEWS = [0.0, 0.25, 0.5, 0.75, 1.0]

#: Subset of the paper's 8 datasets covering all data families, to keep
#: the skew sweep affordable; extend to SMALL_DATASETS for a full run.
DATASETS = ["sift1m", "msong", "glove1.2m", "deep1m"]


def sweep_dataset(name: str):
    index = c.get_index(name)
    vector_db = c.deploy(name, c.Mode.VECTOR)
    dimension_db = c.deploy(name, c.Mode.DIMENSION)
    pool = c.load_dataset(
        name, size=c.DATASET_SCALE[name][0], n_queries=300, seed=c.SEED + 1
    ).queries
    # Hot set: the vector plan's naturally hottest shard *under this
    # pool*, so injected skew compounds the existing load.
    from repro.workload.skew import cluster_histogram

    sizes = index.list_sizes().astype(float)
    hist = cluster_histogram(index, pool, nprobe=c.NPROBE)
    mass = sizes * hist
    shard_mass = [
        mass[vector_db.plan.lists_of_shard(s)].sum()
        for s in range(vector_db.plan.n_vector_shards)
    ]
    hot = vector_db.plan.lists_of_shard(int(np.argmax(shard_mass)))
    rows = []
    for skew in SKEWS:
        workload = skewed_workload(
            pool,
            index,
            100,
            skew=skew,
            nprobe=c.NPROBE,
            hot_list_ids=hot,
            seed=11,
        )
        _, vec = vector_db.search(workload.queries, k=c.K)
        _, dim = dimension_db.search(workload.queries, k=c.K)
        harmony_db = c.deploy(
            name, c.Mode.HARMONY, sample_queries=workload.queries
        )
        _, har = harmony_db.search(workload.queries, k=c.K)
        rows.append(
            (
                skew,
                round(vec.load_imbalance * 1e3, 3),
                round(har.qps),
                round(vec.qps),
                round(dim.qps),
            )
        )
    return rows


def run_experiment():
    return {name: sweep_dataset(name) for name in DATASETS}


def test_fig7_skewed_workloads(benchmark, capsys):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    tables = []
    for name, rows in results.items():
        tables.append(
            c.format_table(
                [
                    "skew",
                    "vector I(pi) (ms)",
                    "harmony QPS",
                    "vector QPS",
                    "dimension QPS",
                ],
                rows,
                title=f"fig7 {name}",
            )
        )
    text = "\n\n".join(tables)
    c.save_result("fig7_skewed_workloads.txt", text)
    with capsys.disabled():
        print("\n" + text)

    drops = []
    stability = []
    final_gaps = []
    imbalance_grew = 0
    for rows in results.values():
        balanced, extreme = rows[0], rows[-1]
        drops.append(extreme[3] / balanced[3])  # vector QPS ratio
        stability.append(extreme[2] / balanced[2])  # harmony QPS ratio
        final_gaps.append(extreme[2] / extreme[3])  # harmony / vector
        if extreme[1] > balanced[1]:
            imbalance_grew += 1
    # Vector's measured imbalance grows with skew on most datasets
    # (GloVe's dominant cluster keeps it near-saturated throughout).
    assert imbalance_grew >= len(results) - 1
    # Vector loses throughput under skew (paper: -56% on average).
    assert float(np.mean(drops)) < 0.85
    # Harmony stays within 25% of its balanced throughput.
    assert float(np.mean(stability)) > 0.75
    # Harmony ends well ahead of vector at the extreme.
    assert float(np.mean(final_gaps)) > 1.5


def test_fig7_repeated_query_arm(capsys):
    """Popularity skew: Zipf *repeats* absorbed by the result cache.

    The fig7 sweep skews *which lists* queries probe; production
    traffic is additionally skewed in *which queries* arrive — a hot
    pool replayed over and over. This arm replays a Zipf(1.2) repeated
    stream (:func:`repro.workload.zipf_query_stream`) against a cached
    and an uncached Harmony deployment and checks that every repeat is
    answered from the cache, byte-identical to the uncached answer.
    """
    name = "sift1m"
    pool = c.get_dataset(name).queries[:32]
    stream, picks = zipf_query_stream(pool, alpha=1.2, n=200, seed=11)
    unique = int(np.unique(picks).size)
    uncached = c.deploy(name, c.Mode.HARMONY, sample_queries=pool)
    cached = c.deploy(
        name,
        c.Mode.HARMONY,
        sample_queries=pool,
        enable_cache=True,
        cache_size=4 * pool.shape[0],
    )
    for i in range(stream.shape[0]):
        ref, _ = uncached.search(stream[i : i + 1], k=c.K)
        got, _ = cached.search(stream[i : i + 1], k=c.K)
        assert np.array_equal(ref.ids, got.ids)
        assert np.array_equal(ref.distances, got.distances)
    stats = cached.result_cache.stats()
    assert stats.misses == unique
    assert stats.hits == stream.shape[0] - unique
    text = c.format_table(
        ["requests", "distinct", "hits", "misses", "hit rate"],
        [[
            stream.shape[0],
            unique,
            stats.hits,
            stats.misses,
            f"{stats.hits / stream.shape[0]:.0%}",
        ]],
        title=f"fig7 repeated-query arm ({name}, Zipf 1.2)",
    )
    c.save_result("fig7_repeated_query.txt", text)
    with capsys.disabled():
        print("\n" + text)
