"""Scan-kernel microbenchmark: gather vs packed, per-query vs batched.

Real host wall-clock (like ``bench_backend_overhead``, unlike the
simulated figures) over a synthetic gaussian workload, comparing four
executions of the identical search:

- ``legacy_per_query``  — the pre-batching executor, reconstructed
  here verbatim: per-(query, shard) fancy-gather of the full base
  matrix, per-slice re-gather of alive rows, ``np.setdiff1d`` prewarm
  exclusion. This is the baseline the packed/batched path must beat.
- ``packed_per_query``  — today's ``search_one`` loop: packed shard
  layout + compacted ``ShardScan`` (``batch_queries=False``).
- ``batched_serial``    — fused shard-major ``search_batch`` on the
  serial backend.
- ``batched_thread``    — the same, with shard-groups fanned out over
  host threads.

All four must return byte-identical ids (asserted). Results are saved
both as a text table and as machine-readable
``results/BENCH_scan_kernel.json`` so the perf trajectory accumulates
across PRs; ``--smoke`` runs a small workload and exits non-zero if
the batched path is slower than the legacy per-query path (the CI
perf-smoke gate).

Usage::

    PYTHONPATH=../src python bench_scan_kernel.py            # full
    PYTHONPATH=../src python bench_scan_kernel.py --smoke    # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

import _common as c
from repro.core.executor import ScanKernel, SerialBackend, ThreadBackend, collect_results
from repro.core.partition import build_plan
from repro.core.routing import shard_candidate_lists
from repro.distance.partial import partial_squared_l2
from repro.index.ivf import IVFFlatIndex

FULL = dict(
    n=100_000, dim=128, nlist=64, nprobe=8, k=10,
    n_shards=4, slice_counts=(4, 8), batches=(16, 64, 256), repeats=3,
)
SMOKE = dict(
    n=15_000, dim=64, nlist=32, nprobe=8, k=10,
    n_shards=2, slice_counts=(4,), batches=(32,), repeats=2,
)


class LegacyShardScan:
    """The pre-batching ``ShardScan``, kept verbatim as the baseline.

    Gathers all candidate rows up front, then re-gathers the alive
    subset (full dimensionality) on every slice — the per-slice
    ``rows[alive_idx]`` traffic the compacted scan eliminated. L2 only;
    the benchmark workload is L2.
    """

    def __init__(self, base, candidate_ids, query, slices):
        self.candidate_ids = np.asarray(candidate_ids, dtype=np.int64)
        self.query = np.asarray(query, dtype=np.float32)
        self.slices = slices
        self._rows = base[self.candidate_ids]
        n = self.candidate_ids.size
        self.accumulated = np.zeros(n, dtype=np.float64)
        self.alive = np.ones(n, dtype=bool)
        self.done: list[int] = []

    @property
    def n_alive(self):
        return int(self.alive.sum())

    def process_slice(self, slice_id):
        alive_idx = np.flatnonzero(self.alive)
        if alive_idx.size:
            rows = self.slices.take(self._rows[alive_idx], slice_id)
            q_slice = self.slices.take(self.query, slice_id)
            self.accumulated[alive_idx] += partial_squared_l2(rows, q_slice)
        self.done.append(slice_id)
        return int(alive_idx.size)

    def prune(self, threshold):
        if not np.isfinite(threshold):
            return
        self.alive &= self.accumulated <= threshold

    def survivors(self):
        alive_idx = np.flatnonzero(self.alive)
        return self.candidate_ids[alive_idx], self.accumulated[alive_idx]


def run_legacy(index, plan, queries, k, nprobe):
    """The pre-batching per-query executor, end to end."""
    kernel = ScanKernel(index, plan, use_packed_base=False)
    queries = kernel.prepare_queries(queries)
    probes = index.probe(queries, nprobe)
    heaps = []
    for i in range(queries.shape[0]):
        state = kernel.begin_query(i, queries[i], probes[i], k, None)
        for shard in kernel.shards_for(state):
            lists_here = shard_candidate_lists(
                plan, state.probe_row, int(shard)
            )
            candidates = index.candidates(lists_here)
            if state.prewarmed.size:
                candidates = np.setdiff1d(
                    candidates, state.prewarmed, assume_unique=False
                )
            if candidates.size == 0:
                continue
            scan = LegacyShardScan(
                index.base, candidates, state.query, plan.slices
            )
            for block in range(plan.n_dim_blocks):
                if scan.n_alive == 0:
                    break
                scan.process_slice(block)
                scan.prune(state.heap.threshold)
            if scan.n_alive:
                ids, scores = scan.survivors()
                state.heap.push_many(scores, ids)
        heaps.append(state.heap)
    return collect_results(heaps, k)


def build_workload(params, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((params["n"], params["dim"]))
    base = base.astype(np.float32)
    queries = rng.standard_normal((max(params["batches"]), params["dim"]))
    queries = queries.astype(np.float32)
    index = IVFFlatIndex(
        dim=params["dim"],
        nlist=params["nlist"],
        seed=0,
        max_iterations=10,
    )
    index.train(base[: min(20_000, params["n"])])
    index.add(base)
    return index, queries


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_suite(params, log=print):
    index, all_queries = build_workload(params)
    nprobe, k = params["nprobe"], params["k"]
    cases = []
    for n_slices in params["slice_counts"]:
        plan = build_plan(
            index,
            n_machines=params["n_shards"] * n_slices,
            n_vector_shards=params["n_shards"],
            n_dim_blocks=n_slices,
        )
        per_query = SerialBackend(index, plan=plan, batch_queries=False)
        batched = SerialBackend(index, plan=plan, batch_queries=True)
        threaded = ThreadBackend(
            index, plan=plan, n_threads=params["n_shards"],
            batch_queries=True,
        )
        for batch in params["batches"]:
            queries = all_queries[:batch]
            seconds = {}
            seconds["legacy_per_query"], ref = _best_of(
                lambda: run_legacy(index, plan, queries, k, nprobe),
                params["repeats"],
            )
            variants = {
                "packed_per_query": per_query,
                "batched_serial": batched,
                "batched_thread": threaded,
            }
            for name, backend in variants.items():
                seconds[name], result = _best_of(
                    lambda b=backend: b.search(queries, k=k, nprobe=nprobe),
                    params["repeats"],
                )
                assert np.array_equal(result.ids, ref.ids), (
                    f"{name} ids diverge from the legacy path"
                )
                assert np.array_equal(result.distances, ref.distances), (
                    f"{name} distances diverge from the legacy path"
                )
            legacy = seconds["legacy_per_query"]
            best_batched = min(
                seconds["batched_serial"], seconds["batched_thread"]
            )
            case = {
                "batch": batch,
                "n_slices": n_slices,
                "n_shards": params["n_shards"],
                "seconds": seconds,
                "speedup_batched_vs_legacy": legacy / best_batched,
                "speedup_batched_vs_packed_per_query": (
                    seconds["packed_per_query"] / best_batched
                ),
            }
            cases.append(case)
            log(
                f"  batch {batch:4d} x {n_slices} slices: "
                + "  ".join(
                    f"{name} {sec * 1e3:8.1f} ms"
                    for name, sec in seconds.items()
                )
                + f"  (batched {case['speedup_batched_vs_legacy']:.2f}x"
                f" vs legacy)"
            )
    return cases


def save_outputs(params, cases, smoke):
    payload = {
        "workload": {
            key: params[key]
            for key in ("n", "dim", "nlist", "nprobe", "k", "n_shards")
        }
        | {"smoke": smoke},
        "cases": cases,
    }
    c.save_result("BENCH_scan_kernel.json", json.dumps(payload, indent=2))
    rows = [
        [
            case["batch"],
            case["n_slices"],
            round(case["seconds"]["legacy_per_query"] * 1e3, 1),
            round(case["seconds"]["packed_per_query"] * 1e3, 1),
            round(case["seconds"]["batched_serial"] * 1e3, 1),
            round(case["seconds"]["batched_thread"] * 1e3, 1),
            round(case["speedup_batched_vs_legacy"], 2),
        ]
        for case in cases
    ]
    text = c.format_table(
        [
            "batch", "slices", "legacy (ms)", "packed (ms)",
            "batched (ms)", "threaded (ms)", "speedup vs legacy",
        ],
        rows,
        title=(
            "scan kernel: packed layout + fused batching "
            "(host wall-clock, synthetic gaussian)"
        ),
    )
    c.save_result("scan_kernel.txt", text)
    return text


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload; fail if batched is slower than per-query",
    )
    args = parser.parse_args(argv)
    params = SMOKE if args.smoke else FULL
    label = "smoke" if args.smoke else "full"
    print(
        f"scan-kernel benchmark ({label}): {params['n']:,} x "
        f"{params['dim']}, nlist {params['nlist']}, nprobe "
        f"{params['nprobe']}"
    )
    cases = run_suite(params)
    print("\n" + save_outputs(params, cases, smoke=args.smoke))
    if args.smoke:
        slow = [
            case
            for case in cases
            if case["speedup_batched_vs_legacy"] < 1.0
        ]
        if slow:
            print(
                "FAIL: batched path slower than the legacy per-query "
                f"path in {len(slow)} case(s)"
            )
            return 1
        print("OK: batched path beats the legacy per-query path")
    return 0


def test_bench_scan_kernel(benchmark, capsys):
    """Pytest entry point (smoke workload) for the benchmark suite."""
    cases = benchmark.pedantic(
        lambda: run_suite(SMOKE, log=lambda *_: None), rounds=1, iterations=1
    )
    text = save_outputs(SMOKE, cases, smoke=True)
    with capsys.disabled():
        print("\n" + text)
    for case in cases:
        assert case["speedup_batched_vs_legacy"] >= 1.0, case


if __name__ == "__main__":
    sys.exit(main())
