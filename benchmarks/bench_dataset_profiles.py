"""Extension experiment: which data property drives Table 3's spread?

Paper Section 6.3.3 attributes the pruning-rate spread to "differences
in dataset distributions". This experiment makes that concrete: for
every dataset analogue it measures the leading-slice variance share
and the distance contrast, then shows that they rank the measured
average pruning ratio.
"""

import numpy as np

import _common as c
from repro.data.analysis import profile_dataset


def run_experiment():
    rows = []
    for name in c.SMALL_DATASETS:
        dataset = c.get_dataset(name)
        index = c.get_index(name)
        profile = profile_dataset(
            dataset.base, dataset.queries, index, n_slices=4, k=c.K
        )
        db = c.deploy(name, c.Mode.DIMENSION)
        _, report = db.search(dataset.queries, k=c.K)
        rows.append(
            (
                name,
                round(profile.leading_variance_share, 3),
                round(profile.distance_contrast, 2),
                round(profile.cluster_imbalance, 2),
                round(report.pruning.average_ratio() * 100, 1),
            )
        )
    return rows


def test_dataset_profiles(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = sorted(rows, key=lambda r: -r[4])
    text = c.format_table(
        [
            "dataset",
            "lead var share",
            "distance contrast",
            "cluster CV",
            "avg pruning %",
        ],
        rows,
        title="what predicts pruning: dataset profiles vs Table 3 ratios",
    )
    c.save_result("dataset_profiles.txt", text)
    with capsys.disabled():
        print("\n" + text)

    pruning = np.array([r[4] for r in rows], dtype=float)
    contrast = np.array([r[2] for r in rows], dtype=float)
    variance = np.array([r[1] for r in rows], dtype=float)
    # A composite of the two pruning drivers must rank-correlate with
    # the measured pruning ratios (Spearman over the 8 datasets).
    def spearman(a, b):
        ra = np.argsort(np.argsort(a)).astype(float)
        rb = np.argsort(np.argsort(b)).astype(float)
        return float(np.corrcoef(ra, rb)[0, 1])

    composite = np.argsort(np.argsort(contrast)) + np.argsort(
        np.argsort(variance)
    )
    assert spearman(composite.astype(float), pruning) > 0.4
