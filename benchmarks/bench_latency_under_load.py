"""Extension experiment: latency under open-loop load.

Not a paper figure — the paper reports closed-loop throughput only —
but the standard serving-systems view of the same data: offered load
(Poisson arrivals) vs mean/p99 latency. Harmony's higher capacity
pushes its hockey-stick to the right of vector partitioning's, so at
any fixed offered load it serves with lower tail latency.
"""

import _common as c
from repro.workload.generators import bursty_arrivals, poisson_arrivals

DATASET = "sift1m"
LOAD_FRACTIONS = [0.2, 0.5, 0.8, 1.1]


def run_experiment():
    import numpy as np

    dataset = c.get_dataset(DATASET)
    harmony = c.deploy(DATASET, c.Mode.HARMONY)
    vector = c.deploy(DATASET, c.Mode.VECTOR)
    # Enough queries that the p99 is a stable statistic.
    queries = np.tile(dataset.queries, (5, 1))
    _, closed_vec = vector.search(queries, k=c.K)
    vector_capacity = closed_vec.qps  # fractions of the weaker engine

    rows = []
    for fraction in LOAD_FRACTIONS:
        rate = vector_capacity * fraction
        arrivals = poisson_arrivals(len(queries), rate, seed=31)
        _, h = harmony.search(queries, k=c.K, arrival_times=arrivals)
        _, v = vector.search(queries, k=c.K, arrival_times=arrivals)
        rows.append(
            (
                f"{fraction:.0%}",
                round(rate),
                round(h.mean_latency * 1e6, 1),
                round(h.latency_percentile(99) * 1e6, 1),
                round(v.mean_latency * 1e6, 1),
                round(v.latency_percentile(99) * 1e6, 1),
            )
        )
    # Same average load, bursty arrivals: burstiness hits the tail.
    rate = vector_capacity * 0.8
    arrivals = bursty_arrivals(
        len(queries), rate, burst_factor=10, burst_fraction=0.3, seed=31
    )
    _, h = harmony.search(queries, k=c.K, arrival_times=arrivals)
    _, v = vector.search(queries, k=c.K, arrival_times=arrivals)
    rows.append(
        (
            "80% bursty",
            round(rate),
            round(h.mean_latency * 1e6, 1),
            round(h.latency_percentile(99) * 1e6, 1),
            round(v.mean_latency * 1e6, 1),
            round(v.latency_percentile(99) * 1e6, 1),
        )
    )
    return rows


def test_latency_under_load(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = c.format_table(
        [
            "offered load",
            "QPS",
            "harmony mean (us)",
            "harmony p99 (us)",
            "vector mean (us)",
            "vector p99 (us)",
        ],
        rows,
        title=f"latency under open-loop load ({DATASET}; load relative "
        "to vector capacity)",
    )
    c.save_result("latency_under_load.txt", text)
    with capsys.disabled():
        print("\n" + text)

    poisson_rows = rows[:-1]
    bursty_row = rows[-1]
    # Vector's latency rises steeply toward its capacity...
    assert poisson_rows[-1][5] > poisson_rows[0][5] * 2
    # ...while Harmony, with more headroom, stays low at every load and
    # beats vector's tail at the highest offered load.
    assert poisson_rows[-1][3] < poisson_rows[-1][5]
    # Burstiness at the same 80% average load inflates the p99 relative
    # to Poisson arrivals at 80%.
    same_load_poisson = poisson_rows[2]
    assert bursty_row[5] > same_load_poisson[5]
