"""Extension experiment: latency under open-loop load.

Not a paper figure — the paper reports closed-loop throughput only —
but the standard serving-systems view of the same data: offered load
(Poisson arrivals) vs mean/p99 latency.

Two halves:

- the original *simulated* study (``test_latency_under_load``):
  Harmony's higher capacity pushes its hockey-stick to the right of
  vector partitioning's, so at any fixed offered load it serves with
  lower tail latency.
- a *host wall-clock* serving study (``main`` / ``--smoke``,
  ``test_serve_throughput``): unbatched-sequential vs
  server-coalesced QPS and p50/p99 under Poisson and bursty arrivals,
  plus admission-control behavior under overload. Emits
  ``results/BENCH_serve_throughput.json``. The smoke gate asserts
  (a) every served response is byte-identical to the per-query serial
  oracle, (b) coalescing sustains >= 1.3x the unbatched sequential
  QPS at saturating load, and (c) a bounded queue keeps the admitted
  p99 below the unbounded-queue reference while accounting for every
  submitted request.

Usage::

    PYTHONPATH=../src python bench_latency_under_load.py            # full
    PYTHONPATH=../src python bench_latency_under_load.py --smoke    # CI gate
"""

import argparse
import json
import os
import sys

import _common as c
from repro.serve.harness import (
    make_serial_oracle,
    run_open_loop,
    run_sequential,
    throughput_study,
    verify_against_oracle,
)
from repro.workload.generators import bursty_arrivals, poisson_arrivals

DATASET = "sift1m"
LOAD_FRACTIONS = [0.2, 0.5, 0.8, 1.1]

#: Host serving-study workloads. Pure vector sharding (grid Bv x 1)
#: parallelizes the fused shard-major batch scan cleanly, and a fine
#: list grid keeps candidate sets small so per-call dispatch overhead
#: dominates the unbatched baseline — the regime coalescing exists for.
SERVE_FULL = dict(
    size=30_000, n_requests=512, nlist=256, nprobe=8, k=10,
    grid=(4, 1), n_machines=4, backend="thread", max_batch=64,
    fractions=(0.25, 0.5, 1.0, 2.0, 3.0), queue_depth=16,
)
SERVE_SMOKE = dict(
    size=12_000, n_requests=256, nlist=256, nprobe=8, k=10,
    grid=(4, 1), n_machines=4, backend="thread", max_batch=64,
    fractions=(0.5, 1.0, 3.0), queue_depth=16,
)


def run_experiment():
    import numpy as np

    dataset = c.get_dataset(DATASET)
    harmony = c.deploy(DATASET, c.Mode.HARMONY)
    vector = c.deploy(DATASET, c.Mode.VECTOR)
    # Enough queries that the p99 is a stable statistic.
    queries = np.tile(dataset.queries, (5, 1))
    _, closed_vec = vector.search(queries, k=c.K)
    vector_capacity = closed_vec.qps  # fractions of the weaker engine

    rows = []
    for fraction in LOAD_FRACTIONS:
        rate = vector_capacity * fraction
        arrivals = poisson_arrivals(len(queries), rate, seed=31)
        _, h = harmony.search(queries, k=c.K, arrival_times=arrivals)
        _, v = vector.search(queries, k=c.K, arrival_times=arrivals)
        rows.append(
            (
                f"{fraction:.0%}",
                round(rate),
                round(h.mean_latency * 1e6, 1),
                round(h.latency_percentile(99) * 1e6, 1),
                round(v.mean_latency * 1e6, 1),
                round(v.latency_percentile(99) * 1e6, 1),
            )
        )
    # Same average load, bursty arrivals: burstiness hits the tail.
    rate = vector_capacity * 0.8
    arrivals = bursty_arrivals(
        len(queries), rate, burst_factor=10, burst_fraction=0.3, seed=31
    )
    _, h = harmony.search(queries, k=c.K, arrival_times=arrivals)
    _, v = vector.search(queries, k=c.K, arrival_times=arrivals)
    rows.append(
        (
            "80% bursty",
            round(rate),
            round(h.mean_latency * 1e6, 1),
            round(h.latency_percentile(99) * 1e6, 1),
            round(v.mean_latency * 1e6, 1),
            round(v.latency_percentile(99) * 1e6, 1),
        )
    )
    return rows


def test_latency_under_load(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = c.format_table(
        [
            "offered load",
            "QPS",
            "harmony mean (us)",
            "harmony p99 (us)",
            "vector mean (us)",
            "vector p99 (us)",
        ],
        rows,
        title=f"latency under open-loop load ({DATASET}; load relative "
        "to vector capacity)",
    )
    c.save_result("latency_under_load.txt", text)
    with capsys.disabled():
        print("\n" + text)

    poisson_rows = rows[:-1]
    bursty_row = rows[-1]
    # Vector's latency rises steeply toward its capacity...
    assert poisson_rows[-1][5] > poisson_rows[0][5] * 2
    # ...while Harmony, with more headroom, stays low at every load and
    # beats vector's tail at the highest offered load.
    assert poisson_rows[-1][3] < poisson_rows[-1][5]
    # Burstiness at the same 80% average load inflates the p99 relative
    # to Poisson arrivals at 80%.
    same_load_poisson = poisson_rows[2]
    assert bursty_row[5] > same_load_poisson[5]


# ----------------------------------------------------------------------
# Host wall-clock serving study (open vs closed loop, real coalescing)
# ----------------------------------------------------------------------


def _serve_db(params):
    from repro.data.datasets import load_dataset

    dataset = load_dataset(
        DATASET,
        size=params["size"],
        n_queries=params["n_requests"],
        seed=c.SEED,
    )
    config = c.HarmonyConfig(
        n_machines=params["n_machines"],
        nlist=params["nlist"],
        nprobe=params["nprobe"],
        backend=params["backend"],
        forced_grid=params["grid"],
        seed=0,
    )
    db = c.HarmonyDB(dim=dataset.dim, config=config)
    db.build(dataset.base, sample_queries=dataset.queries)
    return db, dataset.queries


def run_serve_experiment(params, log=print):
    """Throughput study plus bounded-vs-unbounded admission study."""
    db, queries = _serve_db(params)
    failures: list[str] = []
    k = params["k"]
    try:
        study = throughput_study(
            db,
            queries,
            k=k,
            fractions=params["fractions"],
            seed=31,
            max_batch=params["max_batch"],
        )
        seq = study["sequential"]
        log(
            f"  sequential baseline: {seq['qps']:,.0f} QPS, "
            f"p99 {seq['p99_ms']:.2f} ms"
        )
        for row in study["rows"]:
            log(
                f"  {row['arrival']:<8} {row['offered_qps']:>8,.0f} offered: "
                f"{row['sustained_qps']:>8,.0f} sustained "
                f"({row['speedup_vs_sequential']:.2f}x), batch "
                f"{row['mean_batch_size']:.1f}, p99 {row['p99_ms']:.2f} ms"
            )
        if study["oracle_mismatches"]:
            failures.append(
                f"{study['oracle_mismatches']} served responses diverge "
                "from the per-query serial oracle"
            )

        # Admission control under true overload: coalescing itself
        # roughly doubles capacity, so the overload rate must clear the
        # *coalesced* ceiling, not just the sequential one. One
        # unbounded reference queue, then each policy on a small
        # bounded queue fed the identical arrival schedule.
        oracle = make_serial_oracle(db)
        probe = run_sequential(db, queries[:64], k=k)
        rate = max(probe.qps, 1.0) * 6.0
        arrivals = poisson_arrivals(len(queries), rate, seed=31)
        server = db.serve(
            max_batch=params["max_batch"], queue_depth=len(queries)
        )
        try:
            reference = run_open_loop(server, queries, arrivals, k=k)
        finally:
            server.close()
        log(
            f"  overload 6x seq capacity, unbounded queue: "
            f"p99 {reference.percentile_ms(99):.2f} ms"
        )
        admission = {"reference": reference.to_dict(), "policies": []}
        for policy in ("reject", "shed_oldest", "degrade_nprobe"):
            server = db.serve(
                max_batch=params["max_batch"],
                queue_depth=params["queue_depth"],
                shed_policy=policy,
            )
            try:
                bounded = run_open_loop(server, queries, arrivals, k=k)
                stats = server.stats.to_dict()
            finally:
                server.close()
            mismatches = verify_against_oracle(
                bounded.responses, queries, oracle
            )
            row = bounded.to_dict()
            row["policy"] = policy
            row["queue_depth"] = params["queue_depth"]
            row["accounted"] = bounded.accounted
            row["max_queue_depth"] = stats["max_queue_depth"]
            admission["policies"].append(row)
            log(
                f"  overload 6x, {policy:<15}: completed "
                f"{bounded.completed:>4}, dropped "
                f"{bounded.rejected + bounded.shed:>4}, degraded "
                f"{bounded.degraded:>4}, p99 "
                f"{bounded.percentile_ms(99):.2f} ms"
            )
            if not bounded.accounted:
                failures.append(
                    f"admission accounting leaked requests ({policy}): "
                    f"{bounded.completed} + {bounded.rejected} + "
                    f"{bounded.shed} != {bounded.n_requests}"
                )
            if mismatches:
                failures.append(
                    f"{len(mismatches)} responses diverge from the "
                    f"oracle under {policy}"
                )
            if bounded.completed == bounded.n_requests and policy in (
                "reject",
                "shed_oldest",
            ):
                failures.append(
                    f"{policy} shed nothing at 6x overload with queue "
                    f"depth {params['queue_depth']} — not saturating"
                )
            # The bounded queue is what keeps the tail flat: admitted
            # p99 must stay below the unbounded reference tail.
            if bounded.percentile_ms(99) >= reference.percentile_ms(99):
                failures.append(
                    f"{policy}: bounded-queue p99 "
                    f"{bounded.percentile_ms(99):.1f} ms not below the "
                    f"unbounded reference "
                    f"{reference.percentile_ms(99):.1f} ms"
                )
    finally:
        db.close()
    return study, admission, failures


def save_serve_outputs(params, study, admission, smoke):
    payload = {
        "workload": {
            key: params[key]
            for key in (
                "size", "n_requests", "nlist", "nprobe", "k",
                "n_machines", "backend", "max_batch", "queue_depth",
            )
        }
        | {"grid": list(params["grid"]), "smoke": smoke,
           "cpu_count": os.cpu_count()},
        "sequential": study["sequential"],
        "open_loop": study["rows"],
        "speedup_at_saturation": study["speedup_at_saturation"],
        "oracle_mismatches": study["oracle_mismatches"],
        "admission": admission,
    }
    c.save_result(
        "BENCH_serve_throughput.json", json.dumps(payload, indent=2)
    )
    seq = study["sequential"]
    rows = [
        (
            "closed seq", "--", round(seq["qps"]), "1.00", "1.0",
            round(seq["p50_ms"], 2), round(seq["p99_ms"], 2),
        )
    ]
    rows += [
        (
            row["arrival"],
            round(row["offered_qps"]),
            round(row["sustained_qps"]),
            f"{row['speedup_vs_sequential']:.2f}",
            f"{row['mean_batch_size']:.1f}",
            round(row["p50_ms"], 2),
            round(row["p99_ms"], 2),
        )
        for row in study["rows"]
    ]
    table = c.format_table(
        [
            "mode", "offered QPS", "sustained QPS", "x seq",
            "batch", "p50 (ms)", "p99 (ms)",
        ],
        rows,
        title=(
            f"serving throughput: unbatched sequential vs coalescing "
            f"server ({DATASET} {params['size']:,} x "
            f"{params['backend']} backend, host wall-clock)"
        ),
    )
    c.save_result("serve_throughput.txt", table)
    return table


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small workload; gate on oracle identity, coalescing "
        "speedup, and admission-control accounting",
    )
    args = parser.parse_args(argv)
    params = SERVE_SMOKE if args.smoke else SERVE_FULL
    label = "smoke" if args.smoke else "full"
    print(
        f"serving study ({label}): {DATASET} {params['size']:,} vectors, "
        f"{params['n_requests']} requests, backend {params['backend']}, "
        f"grid {params['grid'][0]}x{params['grid'][1]}, "
        f"max batch {params['max_batch']}"
    )
    study, admission, failures = run_serve_experiment(params)
    print("\n" + save_serve_outputs(params, study, admission, args.smoke))
    if args.smoke and study["speedup_at_saturation"] < 1.3:
        failures.append(
            f"coalescing speedup {study['speedup_at_saturation']:.2f}x "
            "< 1.3x at saturating load"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"OK: coalescing {study['speedup_at_saturation']:.2f}x vs "
        "unbatched sequential; responses byte-identical to the serial "
        "oracle; admission control bounded the overloaded tail"
    )
    return 0


def test_serve_throughput(benchmark, capsys):
    """Pytest entry point (smoke workload) for the benchmark suite."""
    study, admission, failures = benchmark.pedantic(
        lambda: run_serve_experiment(SERVE_SMOKE, log=lambda *_: None),
        rounds=1,
        iterations=1,
    )
    assert not failures, failures
    with capsys.disabled():
        print(save_serve_outputs(SERVE_SMOKE, study, admission, smoke=True))


if __name__ == "__main__":
    sys.exit(main())
