"""Shared infrastructure for the benchmark suite.

Every benchmark regenerates one table or figure of the paper's
evaluation (Section 6) at a scaled-down dataset size; DESIGN.md maps
each module here to its experiment. Datasets and trained IVF indexes
are cached so the four engines (Faiss-like, Harmony, Harmony-vector,
Harmony-dimension) share one clustering, exactly as in Section 6.1.

All performance numbers are *simulated seconds* from the
discrete-event cluster model; see DESIGN.md "Scaling conventions".
"""

from __future__ import annotations

import functools
import os
from pathlib import Path

import numpy as np

from repro.bench.recall import recall_at_k
from repro.bench.reporting import format_series, format_table
from repro.cluster.cluster import Cluster
from repro.cluster.network import NetworkModel
from repro.cluster.node import DEFAULT_COMPUTE_RATE, PHYSICAL_COMPUTE_RATE
from repro.core.config import HarmonyConfig, Mode
from repro.core.database import HarmonyDB
from repro.data.datasets import SMALL_DATASETS, load_dataset
from repro.data.ground_truth import exact_knn
from repro.index.ivf import IVFFlatIndex

RESULTS_DIR = Path(__file__).parent / "results"

#: Scaled (base size, query count) per dataset; paper sizes documented
#: in repro.data.datasets. Chosen so the whole suite runs in minutes.
DATASET_SCALE: dict[str, tuple[int, int]] = {
    "starlightcurves": (3000, 40),
    "msong": (4000, 40),
    "sift1m": (6000, 60),
    "deep1m": (5000, 40),
    "word2vec": (4000, 40),
    "handoutlines": (1500, 30),
    "glove1.2m": (5000, 40),
    "glove2.2m": (6000, 40),
    "spacev1b": (12000, 60),
    "sift1b": (12000, 60),
}

NLIST = 64
NPROBE = 8
K = 10
SEED = 7


@functools.lru_cache(maxsize=None)
def get_dataset(name: str):
    size, n_queries = DATASET_SCALE[name]
    return load_dataset(name, size=size, n_queries=n_queries, seed=SEED)


@functools.lru_cache(maxsize=None)
def get_index(name: str) -> IVFFlatIndex:
    """One shared trained+populated IVF index per dataset."""
    dataset = get_dataset(name)
    index = IVFFlatIndex(dim=dataset.dim, nlist=NLIST, seed=0)
    index.train(dataset.base)
    index.add(dataset.base)
    return index


@functools.lru_cache(maxsize=None)
def get_ground_truth(name: str) -> np.ndarray:
    dataset = get_dataset(name)
    _, ids = exact_knn(dataset.base, dataset.queries, k=K)
    return ids


def deploy(
    name: str,
    mode: "Mode | str",
    n_machines: int = 4,
    network: NetworkModel | None = None,
    sample_queries: np.ndarray | None = None,
    nprobe: int = NPROBE,
    **overrides: object,
) -> HarmonyDB:
    """Attach the shared index to a fresh deployment in ``mode``."""
    dataset = get_dataset(name)
    config = HarmonyConfig(
        n_machines=n_machines,
        nlist=NLIST,
        nprobe=nprobe,
        mode=mode,  # type: ignore[arg-type]
        seed=0,
        **overrides,  # type: ignore[arg-type]
    )
    cluster = Cluster(n_workers=n_machines, network=network)
    sample = sample_queries if sample_queries is not None else dataset.queries
    db = HarmonyDB.from_trained_index(
        get_index(name),
        config=config,
        cluster=cluster,
        sample_queries=sample,
        k=K,
    )
    if TRACE_DIR is not None:
        _traced_deployments.append((f"{name}-{config.mode.value}", db))
        db.enable_tracing()
    return db


#: Opt-in trace capture: set HARMONY_TRACE_DIR=<dir> and every figure
#: script's deployments record spans; each deployment's most recent
#: batch is dumped as Chrome trace JSON at interpreter exit. Tracing
#: is pure observation, so captured runs produce identical tables.
TRACE_DIR = os.environ.get("HARMONY_TRACE_DIR") or None

_traced_deployments: list[tuple[str, HarmonyDB]] = []


def _dump_traces() -> None:
    out = Path(TRACE_DIR)
    out.mkdir(parents=True, exist_ok=True)
    for i, (label, db) in enumerate(_traced_deployments):
        if db.tracer is None or not len(db.tracer.spans()):
            continue
        db.tracer.trace().save_chrome(out / f"{i:03d}-{label}.json")


if TRACE_DIR is not None:
    import atexit

    atexit.register(_dump_traces)


def faiss_run(
    name: str, queries: np.ndarray | None = None, nprobe: int = NPROBE
) -> tuple[np.ndarray, float]:
    """Single-node baseline on the shared index.

    Returns (result ids, simulated seconds). Scan work is priced at the
    derated worker rate, centroid ranking at the physical rate — the
    same convention as the Harmony client (see repro.cluster.node).
    """
    dataset = get_dataset(name)
    queries = queries if queries is not None else dataset.queries
    index = get_index(name)
    probes = index.probe(queries, nprobe)
    candidates = sum(
        index.candidates(probes[i]).size for i in range(len(probes))
    )
    _, ids = index.search(queries, k=K, nprobe=nprobe)
    seconds = (
        candidates * index.dim / DEFAULT_COMPUTE_RATE
        + len(queries) * index.nlist * index.dim / PHYSICAL_COMPUTE_RATE
    )
    return ids, seconds


def save_result(filename: str, text: str) -> str:
    """Persist a formatted benchmark table/series for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / filename).write_text(text + "\n")
    return text


def hot_lists_for(
    name: str, vector_db: HarmonyDB, nprobe: int = NPROBE
) -> np.ndarray:
    """Adversarial hot set: lists of the naturally hottest vector shard.

    Reproduces the paper's manipulated query sets (Section 6.2.2) by
    targeting the machine of the *deployed* vector plan that already
    carries the most probe mass, so injected skew compounds instead of
    accidentally rebalancing.
    """
    from repro.workload.skew import cluster_histogram

    dataset = get_dataset(name)
    index = get_index(name)
    plan = vector_db.plan
    sizes = index.list_sizes().astype(float)
    hist = cluster_histogram(index, dataset.queries, nprobe=nprobe)
    mass = sizes * hist
    shard_mass = [
        mass[plan.lists_of_shard(s)].sum()
        for s in range(plan.n_vector_shards)
    ]
    return plan.lists_of_shard(int(np.argmax(shard_mass)))


__all__ = [
    "DATASET_SCALE",
    "K",
    "NLIST",
    "NPROBE",
    "SEED",
    "SMALL_DATASETS",
    "Cluster",
    "HarmonyConfig",
    "HarmonyDB",
    "Mode",
    "NetworkModel",
    "deploy",
    "faiss_run",
    "format_series",
    "format_table",
    "get_dataset",
    "get_ground_truth",
    "get_index",
    "hot_lists_for",
    "recall_at_k",
    "save_result",
]
