"""Table 4: index memory comparison.

Paper setting: per-node index footprint for Faiss (single node holding
everything) vs the three 4-node strategies. Findings reproduced:

1. each distributed node holds roughly 1/4 of the Faiss index,
2. dimension-including strategies add only a small workspace overhead
   (paper: about 2%),
3. footprint scales with dataset size x dimensionality.
"""

import _common as c

MODES = [c.Mode.VECTOR, c.Mode.DIMENSION, c.Mode.HARMONY]


def run_experiment():
    rows = []
    for name in c.SMALL_DATASETS:
        index = c.get_index(name)
        faiss_bytes = index.memory_report()["total"]
        row = {"dataset": name, "faiss": faiss_bytes}
        for mode in MODES:
            db = c.deploy(name, mode)
            report = db.index_memory_report()
            row[mode.value] = report["mean_machine_bytes"]
        rows.append(row)
    return rows


def test_table4_index_memory(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    table = c.format_table(
        ["dataset", "faiss (MB)", "vector (MB)", "dimension (MB)", "harmony (MB)"],
        [
            (
                r["dataset"],
                round(r["faiss"] / 1e6, 2),
                round(r[c.Mode.VECTOR.value] / 1e6, 2),
                round(r[c.Mode.DIMENSION.value] / 1e6, 2),
                round(r[c.Mode.HARMONY.value] / 1e6, 2),
            )
            for r in rows
        ],
        title="table4 per-node index memory",
    )
    c.save_result("table4_index_memory.txt", table)
    with capsys.disabled():
        print("\n" + table)

    for r in rows:
        for mode in MODES:
            fraction = r[mode.value] / r["faiss"]
            # Paper: each node holds about 1/4 of the single-node index.
            assert 0.15 < fraction < 0.65, (r["dataset"], mode, fraction)
        # Dimension's workspace overhead over vector is small
        # (paper: about 2% of the original space).
        overhead = r[c.Mode.DIMENSION.value] / r[c.Mode.VECTOR.value]
        assert 1.0 <= overhead < 1.25, (r["dataset"], overhead)
