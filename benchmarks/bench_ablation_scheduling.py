"""Design ablation: dimension-order scheduling policies on a straggler.

DESIGN.md's engine offers three slice-ordering policies: load-aware
adaptive (Harmony's, defers the busiest machine's slice to late,
heavily-pruned pipeline positions), rotation staggering (static), and
canonical order (naive). This experiment injects a straggler — one
worker at a quarter of the others' compute rate — and measures how
much each policy recovers, plus the exactness invariant throughout.
"""

import numpy as np

import _common as c
from repro.cluster.cluster import Cluster
from repro.core.config import HarmonyConfig, Mode
from repro.core.database import HarmonyDB

DATASET = "sift1m"
RATES = [1e9, 1e9, 1e9, 0.25e9]  # worker 3 is the straggler


def run_policy(load_balance: bool, pipeline: bool):
    dataset = c.get_dataset(DATASET)
    config = HarmonyConfig(
        n_machines=4,
        nlist=c.NLIST,
        nprobe=c.NPROBE,
        mode=Mode.DIMENSION,
        enable_load_balance=load_balance,
        enable_pipeline=pipeline,
        seed=0,
    )
    db = HarmonyDB.from_trained_index(
        c.get_index(DATASET),
        config=config,
        cluster=Cluster(4, compute_rate=RATES),
        sample_queries=dataset.queries,
        k=c.K,
    )
    result, report = db.search(dataset.queries, k=c.K)
    reference = c.get_index(DATASET).search(
        dataset.queries, k=c.K, nprobe=c.NPROBE
    )[1]
    assert np.array_equal(result.ids, reference)
    return report


def run_experiment():
    rows = []
    for label, lb, pipe in (
        ("adaptive (Harmony)", True, True),
        ("staggered rotation", False, True),
        ("canonical (naive)", False, False),
    ):
        report = run_policy(lb, pipe)
        # worker_loads are seconds; convert to processed elements so the
        # share reflects how much *work* the slow machine was handed.
        elements = report.worker_loads * np.asarray(RATES)
        straggler_share = elements[3] / elements.sum()
        rows.append(
            (
                label,
                round(report.qps),
                round(report.normalized_imbalance, 3),
                round(float(straggler_share), 3),
            )
        )
    return rows


def test_ablation_scheduling(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = c.format_table(
        ["policy", "QPS", "time imbalance (CV)", "straggler work share"],
        rows,
        title="ablation: slice scheduling with a 4x-slower straggler",
    )
    c.save_result("ablation_scheduling.txt", text)
    with capsys.disabled():
        print("\n" + text)

    by_policy = {r[0]: r for r in rows}
    adaptive = by_policy["adaptive (Harmony)"]
    staggered = by_policy["staggered rotation"]
    naive = by_policy["canonical (naive)"]
    # Adaptive scheduling recovers the most throughput on a straggler.
    assert adaptive[1] > staggered[1]
    assert adaptive[1] > naive[1]
    # Versus uniform rotation (25% each), adaptive hands the slow
    # machine a smaller share of the work. (Canonical order happens to
    # put the straggler's slice last here, giving it little work too —
    # but it funnels every query's heavy first position through one
    # machine, which is why its QPS is still the worst.)
    assert adaptive[3] < staggered[3]
