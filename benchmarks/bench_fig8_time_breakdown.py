"""Figure 8: time breakdown of the query process per strategy.

Paper setting: communication / computation / other shares for Harmony,
Harmony-vector and Harmony-dimension across the eight small datasets on
four nodes. Findings reproduced:

1. only the dimension-including strategies pay inter-stage
   communication, and Harmony-dimension pays the most (more slicing),
2. Harmony's computation is the lowest thanks to pruning,
3. computation dominates communication, increasingly so for
   higher-dimensional datasets.
"""

import _common as c

MODES = [c.Mode.HARMONY, c.Mode.VECTOR, c.Mode.DIMENSION]


def run_experiment():
    rows = []
    for name in c.SMALL_DATASETS:
        dataset = c.get_dataset(name)
        for mode in MODES:
            db = c.deploy(name, mode)
            _, report = db.search(dataset.queries, k=c.K)
            bd = report.breakdown
            per_query = 1e6 / report.n_queries
            rows.append(
                (
                    name,
                    mode.value,
                    round(bd.computation * per_query, 2),
                    round(bd.communication * per_query, 2),
                    round(bd.other * per_query, 2),
                )
            )
    return rows


def test_fig8_time_breakdown(benchmark, capsys):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    text = c.format_table(
        ["dataset", "strategy", "comp (us/q)", "comm (us/q)", "other (us/q)"],
        rows,
        title="fig8 time breakdown per query",
    )
    c.save_result("fig8_time_breakdown.txt", text)
    with capsys.disabled():
        print("\n" + text)

    by_key = {(r[0], r[1]): r for r in rows}
    harmony_lowest_comp = 0
    dim_comm_higher = 0
    for name in c.SMALL_DATASETS:
        harmony = by_key[(name, "harmony")]
        vector = by_key[(name, "harmony-vector")]
        dimension = by_key[(name, "harmony-dimension")]
        if dimension[3] >= vector[3]:
            dim_comm_higher += 1
        # Pruning keeps harmony's computation at or below vector's.
        if harmony[2] <= vector[2]:
            harmony_lowest_comp += 1
        # Computation dominates communication everywhere (paper: the
        # main overheads concentrate in computation).
        assert dimension[2] > dimension[3]
    # Dimension slicing usually communicates the most; on very high-dim
    # datasets with strong pruning the shrunken partial results can
    # undercut vector's replicated full-dimension query chunks.
    assert dim_comm_higher >= len(c.SMALL_DATASETS) - 3
    assert harmony_lowest_comp >= len(c.SMALL_DATASETS) - 1
