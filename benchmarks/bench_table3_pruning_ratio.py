"""Table 3: average pruning ratio per dimension slice across four nodes.

Paper setting: dimensional split of size 4 on each of the eight small
datasets; the table reports the fraction of candidates already pruned
when each slice starts. Findings reproduced:

1. the first slice always shows 0%,
2. later slices prune progressively more (paper averages: 33.6% /
   66.2% / 92.3% for slices 2-4),
3. rates vary strongly by dataset (series >> text embeddings),
4. the average ratios land near the paper's per-dataset values.
"""

import numpy as np

import _common as c

PAPER_TABLE3 = {
    "msong": (0.0, 43.14, 76.06, 95.29, 53.87),
    "glove1.2m": (0.0, 1.54, 30.71, 86.66, 29.73),
    "word2vec": (0.0, 24.85, 53.77, 83.66, 40.32),
    "deep1m": (0.0, 7.67, 66.09, 97.36, 42.03),
    "sift1m": (0.0, 41.76, 85.04, 98.40, 57.05),
    "starlightcurves": (0.0, 81.24, 95.23, 99.05, 69.14),
    "glove2.2m": (0.0, 5.14, 30.70, 81.18, 29.76),
    "handoutlines": (0.0, 63.54, 91.62, 98.10, 63.83),
}


def run_experiment():
    measured = {}
    for name in PAPER_TABLE3:
        db = c.deploy(name, c.Mode.DIMENSION)
        dataset = c.get_dataset(name)
        _, report = db.search(dataset.queries, k=c.K)
        assert report.pruning is not None
        ratios = report.pruning.ratios() * 100.0
        measured[name] = (*ratios, float(ratios.mean()))
    return measured


def test_table3_pruning_ratio(benchmark, capsys):
    measured = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for name, ours in measured.items():
        paper = PAPER_TABLE3[name]
        rows.append(
            (
                name,
                *(round(v, 1) for v in ours),
                paper[4],
            )
        )
    text = c.format_table(
        [
            "dataset",
            "slice1 %",
            "slice2 %",
            "slice3 %",
            "slice4 %",
            "avg %",
            "paper avg %",
        ],
        rows,
        title="table3 pruning ratio per slice (4 dimension slices)",
    )
    c.save_result("table3_pruning_ratio.txt", text)
    with capsys.disabled():
        print("\n" + text)

    slice_means = np.zeros(4)
    for name, ours in measured.items():
        ratios = np.array(ours[:4])
        # First slice prunes nothing; later slices prune progressively.
        assert ratios[0] == 0.0
        assert np.all(np.diff(ratios) >= -1e-9)
        slice_means += ratios / len(measured)
        # Per-dataset average within a generous band of the paper's.
        assert abs(ours[4] - PAPER_TABLE3[name][4]) < 25.0, name
    # Paper's slice averages: 0 / 33.6 / 66.2 / 92.3.
    assert 15.0 < slice_means[1] < 60.0
    assert 35.0 < slice_means[2] < 85.0
    assert 55.0 < slice_means[3] < 100.0
    # Series datasets prune far better than GloVe-family text.
    assert measured["starlightcurves"][4] > measured["glove1.2m"][4] + 15
