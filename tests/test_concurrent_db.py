"""Thread-safety regressions and the routing fast-path cache.

The serving layer made ``HarmonyDB`` a shared object: many caller
threads may hit ``search`` concurrently, and the first two races that
bite are (1) the lazy host-backend spawn (two callers both building
backends; one leaks its thread pool) and (2) the packed-layout /
norm-cache refresh after a mutation (one caller rebuilding while
another scans a half-installed layout). Both are locked now; these
tests hammer them with a barrier start so the old races fail loudly.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.routing import RoutingCache, touched_shards
from conftest import make_db


def _concurrent_search(db, queries, k, n_threads=6, repeats=3):
    """Barrier-aligned concurrent searches; returns per-thread results."""
    barrier = threading.Barrier(n_threads)
    results: list = [None] * n_threads
    errors: list = []

    def worker(slot):
        try:
            barrier.wait(timeout=30)
            out = []
            for _ in range(repeats):
                result, report = db.search(queries, k=k)
                out.append((result.ids.copy(), result.distances.copy()))
            results[slot] = out
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not errors, errors
    return results


class TestConcurrentSearch:
    def test_lazy_backend_spawn_race(self, medium_data, medium_queries):
        """Concurrent first-searches on a fresh db must all be exact."""
        db = make_db(medium_data, nlist=16, nprobe=4, backend="thread")
        try:
            # Reference from a pristine serial execution.
            ref = make_db(
                medium_data, nlist=16, nprobe=4, backend="serial"
            )
            try:
                expected, _ = ref.search(medium_queries, k=10)
            finally:
                ref.close()
            results = _concurrent_search(db, medium_queries, k=10)
            # Exactly one backend was built despite the concurrent spawn.
            assert db._host_backend is not None
            for per_thread in results:
                for ids, distances in per_thread:
                    assert np.array_equal(ids, expected.ids)
                    assert np.array_equal(distances, expected.distances)
        finally:
            db.close()

    def test_layout_refresh_race_after_add(
        self, medium_data, medium_queries
    ):
        """Mutation then concurrent searches: everyone sees the new
        generation's packed layout, never a half-built one."""
        rng = np.random.default_rng(9)
        extra = (
            medium_data[:48] + rng.normal(0, 0.01, (48, medium_data.shape[1]))
        ).astype(np.float32)
        db = make_db(medium_data, nlist=16, nprobe=4, backend="thread")
        try:
            db.search(medium_queries[:4], k=5)  # build layout gen 0
            db.add(extra)  # bumps index.version; layout now stale
            results = _concurrent_search(db, medium_queries, k=10)
            ref = make_db(medium_data, nlist=16, nprobe=4, backend="serial")
            try:
                ref.add(extra)
                expected, _ = ref.search(medium_queries, k=10)
            finally:
                ref.close()
            for per_thread in results:
                for ids, distances in per_thread:
                    assert np.array_equal(ids, expected.ids)
                    assert np.array_equal(distances, expected.distances)
        finally:
            db.close()


class TestRoutingCache:
    def _plan_and_probe(self, db, queries):
        backend = db._get_host_backend()
        kernel = backend.kernel
        prepared = kernel.prepare_queries(queries)
        probes = db.index.probe(prepared, db.config.nprobe)
        return kernel, probes

    def test_cache_hits_on_repeated_cells(self, tiny_data, tiny_queries):
        db = make_db(tiny_data, backend="thread")
        try:
            cache = RoutingCache()
            kernel, probes = self._plan_and_probe(db, tiny_queries)
            version = db.index.version
            first = cache.shards_for(kernel.plan, probes[0], version)
            again = cache.shards_for(kernel.plan, probes[0], version)
            assert np.array_equal(first, again)
            assert cache.counters() == (1, 1)
            # Probe order never fragments entries: the cell is the set.
            shuffled = probes[0][::-1].copy()
            third = cache.shards_for(kernel.plan, shuffled, version)
            assert np.array_equal(first, third)
            assert cache.counters() == (2, 1)
            expected = touched_shards(kernel.plan, probes[0])
            assert np.array_equal(first, expected)
        finally:
            db.close()

    def test_version_move_invalidates(self, tiny_data, tiny_queries):
        db = make_db(tiny_data, backend="thread")
        try:
            cache = RoutingCache()
            kernel, probes = self._plan_and_probe(db, tiny_queries)
            cache.shards_for(kernel.plan, probes[0], version=7)
            cache.shards_for(kernel.plan, probes[0], version=7)
            assert cache.counters() == (1, 1)
            assert len(cache) == 1
            # A new index generation drops every entry.
            cache.shards_for(kernel.plan, probes[0], version=8)
            assert cache.counters() == (1, 2)
            assert len(cache) == 1
        finally:
            db.close()

    def test_fifo_eviction_bounds_entries(self, tiny_data, tiny_queries):
        db = make_db(tiny_data, backend="thread")
        try:
            cache = RoutingCache(max_entries=4)
            kernel, probes = self._plan_and_probe(db, tiny_queries)
            for i in range(min(8, probes.shape[0])):
                cache.shards_for(kernel.plan, probes[i], version=1)
            assert len(cache) <= 4
        finally:
            db.close()

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="max_entries"):
            RoutingCache(max_entries=0)

    def test_clear(self, tiny_data, tiny_queries):
        db = make_db(tiny_data, backend="thread")
        try:
            cache = RoutingCache()
            kernel, probes = self._plan_and_probe(db, tiny_queries)
            cache.shards_for(kernel.plan, probes[0], version=1)
            cache.clear()
            assert len(cache) == 0
        finally:
            db.close()

    def test_kernel_without_cache_still_routes(self, tiny_data, tiny_queries):
        db = make_db(tiny_data, backend="thread")
        try:
            backend = db._get_host_backend()
            backend.kernel.routing_cache = None
            result, report = db.search(tiny_queries, k=5)
            assert report.routing_cache_hits == 0
            assert report.routing_cache_misses == 0
            ref = make_db(tiny_data, backend="serial")
            try:
                expected, _ = ref.search(tiny_queries, k=5)
            finally:
                ref.close()
            assert np.array_equal(result.ids, expected.ids)
        finally:
            db.close()

    def test_report_counts_cache_traffic(self, tiny_data, tiny_queries):
        db = make_db(tiny_data, backend="thread")
        try:
            _, cold = db.search(tiny_queries, k=5)
            assert cold.routing_cache_misses > 0
            assert (
                cold.routing_cache_hits + cold.routing_cache_misses
                == len(tiny_queries)
            )
            _, warm = db.search(tiny_queries, k=5)
            # Identical queries replay the same probe cells.
            assert warm.routing_cache_hits == len(tiny_queries)
            assert warm.routing_cache_misses == 0
            payload = warm.to_dict()
            assert payload["routing_cache_hits"] == warm.routing_cache_hits
        finally:
            db.close()

    def test_mutation_invalidates_live_cache(self, tiny_data, tiny_queries):
        db = make_db(tiny_data, backend="thread")
        try:
            _, cold = db.search(tiny_queries, k=5)
            db.search(tiny_queries, k=5)  # fully warm
            rng = np.random.default_rng(4)
            extra = rng.normal(0, 0.5, (16, tiny_data.shape[1]))
            db.add(extra.astype(np.float32))
            _, report = db.search(tiny_queries, k=5)
            # Version moved, so every warm entry was dropped: the run
            # repeats the cold-cache profile exactly (centroids — and
            # hence probe cells — are unchanged by add; hits can only
            # come from cells shared within this batch).
            assert report.routing_cache_misses == cold.routing_cache_misses
            assert report.routing_cache_hits == cold.routing_cache_hits
            assert report.routing_cache_misses > 0
        finally:
            db.close()

    def test_lru_hot_cell_survives_cold_flood(self, tiny_data, tiny_queries):
        """LRU regression: a periodically re-touched hot key outlives
        any number of cold one-shot keys (FIFO evicted it)."""
        db = make_db(tiny_data, backend="thread")
        try:
            cache = RoutingCache(max_entries=4)
            kernel, _ = self._plan_and_probe(db, tiny_queries)
            hot = np.array([0, 1, 2, 3])
            cache.shards_for(kernel.plan, hot, version=1)
            for i in range(4, 13):  # nine distinct cold cells
                cold = np.arange(i, i + 4) % 16
                cache.shards_for(kernel.plan, cold, version=1)
                cache.shards_for(kernel.plan, hot, version=1)  # re-touch
            stats = cache.stats()
            assert stats["evictions"] > 0
            hits_before = stats["hits"]
            cache.shards_for(kernel.plan, hot, version=1)
            assert cache.stats()["hits"] == hits_before + 1
            assert len(cache) <= 4
        finally:
            db.close()

    def test_route_for_keys_on_exact_probe_order(
        self, tiny_data, tiny_queries
    ):
        """Full-route memoization: hits on the identical probe order,
        distinct entries for permutations (scan order differs), and
        candidate lists matching the uncached planner split."""
        from repro.core.routing import shard_candidate_lists

        db = make_db(tiny_data, backend="thread")
        try:
            cache = RoutingCache()
            kernel, probes = self._plan_and_probe(db, tiny_queries)
            row = probes[0]
            version = db.index.version
            first = cache.route_for(kernel.plan, row, version)
            again = cache.route_for(kernel.plan, row, version)
            assert again is first
            assert cache.counters() == (1, 1)
            for shard in first.shards:
                np.testing.assert_array_equal(
                    first.lists_for(int(shard)),
                    shard_candidate_lists(kernel.plan, row, int(shard)),
                )
            # A permutation is a different route (scan order differs)…
            reversed_row = row[::-1].copy()
            other = cache.route_for(kernel.plan, reversed_row, version)
            assert cache.counters() == (1, 2)
            # …over the same shard set.
            np.testing.assert_array_equal(
                np.sort(other.shards), np.sort(first.shards)
            )
        finally:
            db.close()

    def test_stats_snapshot_exposes_evictions(self, tiny_data, tiny_queries):
        db = make_db(tiny_data, backend="thread")
        try:
            cache = RoutingCache(max_entries=2)
            kernel, _ = self._plan_and_probe(db, tiny_queries)
            for i in range(5):
                cache.shards_for(
                    kernel.plan, np.arange(i, i + 4) % 16, version=1
                )
            stats = cache.stats()
            assert set(stats) == {"hits", "misses", "evictions", "entries"}
            assert stats["evictions"] == 3
            assert stats["entries"] <= 2
        finally:
            db.close()

    def test_capacity_comes_from_config(self, tiny_data):
        db = make_db(tiny_data, backend="thread", routing_cache_size=7)
        try:
            backend = db._get_host_backend()
            assert backend.kernel.routing_cache.max_entries == 7
        finally:
            db.close()
