"""Focused tests for the report dataclasses in repro.core.results."""

import json

import numpy as np
import pytest

from repro.cluster.stats import TimeBreakdown
from repro.core.results import (
    BuildReport,
    DegradedReport,
    ExecutionReport,
    FaultStats,
    PlacementReport,
    SearchResult,
)


def make_report(**overrides):
    defaults = dict(
        n_queries=10,
        k=5,
        nprobe=4,
        simulated_seconds=2.0,
        breakdown=TimeBreakdown(1.0, 0.5, 0.1),
        worker_loads=np.array([1.0, 2.0, 3.0, 2.0]),
        pruning=None,
        peak_memory_bytes=1000,
    )
    defaults.update(overrides)
    return ExecutionReport(**defaults)


class TestSearchResult:
    def test_shape_properties(self):
        result = SearchResult(
            distances=np.zeros((7, 3)), ids=np.zeros((7, 3), dtype=np.int64)
        )
        assert result.n_queries == 7
        assert result.k == 3


class TestExecutionReport:
    def test_qps(self):
        assert make_report().qps == pytest.approx(5.0)

    def test_qps_zero_time_is_zero(self):
        # A zero-duration batch has no meaningful throughput; inf
        # would also break strict JSON export.
        assert make_report(simulated_seconds=0.0).qps == 0.0
        assert make_report(simulated_seconds=-1.0).qps == 0.0

    def test_load_imbalance_is_std(self):
        report = make_report()
        assert report.load_imbalance == pytest.approx(
            float(np.std([1.0, 2.0, 3.0, 2.0]))
        )

    def test_normalized_imbalance_zero_loads(self):
        report = make_report(worker_loads=np.zeros(4))
        assert report.normalized_imbalance == 0.0

    def test_worker_utilization(self):
        report = make_report()
        np.testing.assert_allclose(
            report.worker_utilization(), [0.5, 1.0, 1.5, 1.0]
        )

    def test_worker_utilization_zero_makespan(self):
        report = make_report(simulated_seconds=0.0)
        np.testing.assert_array_equal(report.worker_utilization(), 0.0)

    def test_to_dict_minimal(self):
        data = make_report().to_dict()
        assert "latency" not in data
        assert "pruning_ratios" not in data
        assert data["breakdown"]["computation"] == 1.0

    def test_to_dict_with_latency_and_pruning(self):
        from repro.core.pruning import PruningStats

        stats = PruningStats(2)
        stats.record(0, 0, 10)
        stats.record(1, 4, 10)
        report = make_report(
            pruning=stats, latencies=np.array([0.1, 0.2, 0.3])
        )
        data = report.to_dict()
        assert data["latency"]["mean"] == pytest.approx(0.2)
        assert data["pruning_ratios"] == [0.0, 0.4]

    def test_to_dict_strictly_json_serializable(self):
        # Even a zero-duration batch must survive allow_nan=False
        # (the qps=inf regression).
        for report in (
            make_report(),
            make_report(simulated_seconds=0.0),
            make_report(
                latencies=np.array([0.1, 0.2]),
                fault_stats=FaultStats(retries=2),
                degraded=DegradedReport(coverage=np.array([1.0, 0.5])),
            ),
        ):
            text = json.dumps(report.to_dict(), allow_nan=False)
            assert json.loads(text)["n_queries"] == 10

    def test_to_dict_includes_trace_summary(self):
        from repro.obs.trace import Span, Trace

        trace = Trace(
            spans=(Span("scan", "computation", 0, 0.0, 1.0),)
        )
        data = make_report(trace=trace).to_dict()
        assert data["trace"]["n_spans"] == 1
        assert data["trace"]["category_totals"]["computation"] == 1.0
        json.dumps(data, allow_nan=False)


class TestFaultStatsDict:
    def test_key_stability(self):
        # Downstream dashboards key on these names; changing them is
        # a breaking change that must be deliberate.
        assert list(FaultStats().to_dict()) == [
            "retries",
            "failovers",
            "hedges",
            "hedge_wins",
            "dropped_messages",
            "skipped_scans",
            "abandoned_scans",
            "worker_respawns",
            "tasks_requeued",
            "scan_timeouts",
        ]

    def test_values_round_trip(self):
        stats = FaultStats(retries=1, hedges=3, abandoned_scans=2)
        data = stats.to_dict()
        assert data["retries"] == 1
        assert data["hedges"] == 3
        assert data["abandoned_scans"] == 2
        json.dumps(data, allow_nan=False)


class TestDegradedReportDict:
    def test_key_stability(self):
        report = DegradedReport(coverage=np.array([1.0, 0.25]))
        assert list(report.to_dict()) == [
            "mean_coverage",
            "min_coverage",
            "n_degraded_queries",
            "skipped_scans",
            "abandoned_scans",
            "recall_vs_healthy",
            "recall_delta",
        ]

    def test_empty_coverage_serializes(self):
        report = DegradedReport(coverage=np.zeros(0))
        data = report.to_dict()
        assert data["mean_coverage"] == 1.0
        assert data["min_coverage"] == 1.0
        json.dumps(data, allow_nan=False)


class TestPlacementReport:
    def test_aggregates(self):
        report = PlacementReport(
            per_machine_bytes={0: 100, 1: 300}, preassign_seconds=0.5
        )
        assert report.max_machine_bytes == 300
        assert report.mean_machine_bytes == 200.0
        assert report.total_bytes == 400

    def test_empty(self):
        report = PlacementReport()
        assert report.max_machine_bytes == 0
        assert report.mean_machine_bytes == 0.0
        assert report.total_bytes == 0


class TestBuildReport:
    def test_total(self):
        report = BuildReport(
            train_seconds=1.0,
            add_seconds=0.5,
            preassign_seconds=0.25,
            placement=PlacementReport(),
        )
        assert report.total_seconds == pytest.approx(1.75)
