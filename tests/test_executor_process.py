"""Process backend: shared layouts, pool lifecycle, fallback, steals.

Byte-exactness against the serial oracle lives in
``test_executor_equivalence.py``; this module covers the machinery
around it — the shared-memory layout's build/manifest/attach
lifecycle, persistent pool reuse and revival, graceful fallback to
the thread path when shared memory or workers misbehave, and the
work-stealing counters surfaced through reports and metrics.
"""

import os
import signal
import time

import numpy as np
import pytest

from repro.core.config import HarmonyConfig
from repro.core.database import HarmonyDB
from repro.core.executor import ProcessBackend, SerialBackend, ThreadBackend
from repro.core.layout import ShardPackedBase, SharedShardPackedBase
from repro.core.partition import build_plan
from repro.distance.metrics import Metric
from repro.index.ivf import IVFFlatIndex

N_LABELS = 4


def make_index(metric=Metric.L2, n=400, dim=24, nlist=16, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((n, dim)).astype(np.float32)
    index = IVFFlatIndex(dim=dim, nlist=nlist, metric=metric, seed=0)
    index.train(base)
    index.add(base, labels=rng.integers(0, N_LABELS, n))
    return index


def make_queries(dim, nq=12, seed=1):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((nq, dim)).astype(np.float32)


# ---------------------------------------------------------------------------
# SharedShardPackedBase
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "metric", [Metric.L2, Metric.INNER_PRODUCT, Metric.COSINE]
)
def test_shared_layout_gathers_like_packed(metric):
    """Re-homing into shared memory changes bytes' address, not value."""
    index = make_index(metric)
    plan = build_plan(index, n_machines=4, n_vector_shards=2, n_dim_blocks=2)
    from repro.distance.partial import slice_norms

    norms = None if metric is Metric.L2 else slice_norms(
        index.base, plan.slices
    )
    packed = ShardPackedBase.build(index, plan, base_slice_norms=norms)
    shared = SharedShardPackedBase.from_packed(packed)
    try:
        assert shared.matches(index)
        assert shared.nbytes > 0
        assert shared.shm_name is not None
        lists = np.arange(index.nlist, dtype=np.int64)
        for shard in range(plan.n_vector_shards):
            shard_lists = plan.lists_of_shard(shard)
            ids_p, rows_p, norms_p = packed.gather(shard, shard_lists)
            ids_s, rows_s, norms_s = shared.gather(shard, shard_lists)
            np.testing.assert_array_equal(ids_s, ids_p)
            np.testing.assert_array_equal(rows_s, rows_p)
            if norms_p is None:
                assert norms_s is None
            else:
                np.testing.assert_array_equal(norms_s, norms_p)
    finally:
        shared.unlink()


def test_shared_layout_manifest_roundtrip():
    """attach(manifest()) maps the same pages with identical contents."""
    index = make_index()
    plan = build_plan(index, n_machines=4, n_vector_shards=2, n_dim_blocks=2)
    shared = SharedShardPackedBase.build(index, plan)
    attached = None
    try:
        manifest = shared.manifest()
        assert manifest["shm_name"] == shared.shm_name
        assert manifest["version"] == index.version
        attached = SharedShardPackedBase.attach(manifest)
        assert attached.matches(index)
        for shard in range(plan.n_vector_shards):
            shard_lists = plan.lists_of_shard(shard)
            ids_a, rows_a, _ = attached.gather(shard, shard_lists)
            ids_s, rows_s, _ = shared.gather(shard, shard_lists)
            np.testing.assert_array_equal(ids_a, ids_s)
            np.testing.assert_array_equal(rows_a, rows_s)
        # Attachers share physical pages: a write through one mapping
        # is visible through the other (zero-copy, not a pickle).
        shared._ids[0][0] = 123456
        assert attached._ids[0][0] == 123456
    finally:
        if attached is not None:
            attached.close()
        shared.unlink()


def test_shared_layout_code_segments_roundtrip():
    """SQ8 code blocks, error tables, and quantization parameters are
    re-homed into the same shared segment and survive attach()."""
    index = make_index()
    plan = build_plan(index, n_machines=4, n_vector_shards=2, n_dim_blocks=2)
    packed = ShardPackedBase.build(index, plan, with_codes=True)
    shared = SharedShardPackedBase.from_packed(packed)
    attached = None
    try:
        assert shared.has_codes
        assert shared.codes_nbytes == packed.codes_nbytes
        np.testing.assert_array_equal(shared.code_lo, packed.code_lo)
        np.testing.assert_array_equal(shared.code_scale, packed.code_scale)
        attached = SharedShardPackedBase.attach(shared.manifest())
        assert attached.has_codes
        np.testing.assert_array_equal(attached.code_lo, packed.code_lo)
        np.testing.assert_array_equal(
            attached.code_scale, packed.code_scale
        )
        for shard in range(plan.n_vector_shards):
            lists = plan.lists_of_shard(shard)
            ids_p, codes_p, err_p, _, rows_p, local_p = packed.gather_sq8(
                shard, lists
            )
            for layout in (shared, attached):
                ids, codes, err, _, rows_full, local = layout.gather_sq8(
                    shard, lists
                )
                np.testing.assert_array_equal(ids, ids_p)
                np.testing.assert_array_equal(codes, codes_p)
                np.testing.assert_array_equal(err, err_p)
                np.testing.assert_array_equal(
                    rows_full[local], rows_p[local_p]
                )
    finally:
        if attached is not None:
            attached.close()
        shared.unlink()


def test_shared_layout_without_codes_has_no_code_segments():
    """A codeless build round-trips with has_codes False on both ends."""
    index = make_index()
    plan = build_plan(index, n_machines=4, n_vector_shards=2, n_dim_blocks=2)
    shared = SharedShardPackedBase.build(index, plan)
    attached = None
    try:
        assert not shared.has_codes
        attached = SharedShardPackedBase.attach(shared.manifest())
        assert not attached.has_codes
        assert attached.codes_nbytes == 0
        with pytest.raises(RuntimeError, match="codes"):
            attached.gather_sq8(0, plan.lists_of_shard(0))
    finally:
        if attached is not None:
            attached.close()
        shared.unlink()


def test_process_backend_rebuilds_codeless_shared_layout():
    """An sq8 ProcessBackend must treat a codeless shared layout as
    stale and rebuild it with code segments before dispatching."""
    index = make_index()
    plan = build_plan(index, n_machines=4, n_vector_shards=2, n_dim_blocks=2)
    queries = make_queries(index.dim)
    reference = SerialBackend(index, plan=plan).search(queries, k=5, nprobe=4)
    with ProcessBackend(
        index, plan=plan, n_workers=2, scan_precision="sq8"
    ) as backend:
        result = backend.search(queries, k=5, nprobe=4)
        assert backend._shared_layout.has_codes
        first = backend._shared_layout
        # Replace with a codeless-but-current-version layout: the
        # staleness check must reject it and re-home a coded one.
        codeless = SharedShardPackedBase.build(index, plan)
        backend._shared_layout = codeless
        try:
            again = backend.search(queries, k=5, nprobe=4)
        finally:
            if backend._shared_layout is not codeless:
                codeless.unlink()
        assert backend._shared_layout.has_codes
        assert backend._shared_layout is not first
        np.testing.assert_array_equal(result.ids, reference.ids)
        np.testing.assert_array_equal(result.distances, reference.distances)
        np.testing.assert_array_equal(again.ids, reference.ids)
        np.testing.assert_array_equal(
            again.distances, reference.distances
        )
        assert not backend.fallback_active


def test_shared_layout_staleness_and_unbacked_manifest():
    index = make_index()
    plan = build_plan(index, n_machines=4, n_vector_shards=2, n_dim_blocks=2)
    shared = SharedShardPackedBase.build(index, plan)
    try:
        assert shared.matches(index)
        index.add(np.ones((3, index.dim), dtype=np.float32))
        assert not shared.matches(index)
    finally:
        shared.unlink()
    plain = ShardPackedBase.build(index, plan)
    with pytest.raises(AttributeError):
        plain.manifest()  # only the shared subclass has a manifest
    unbacked = SharedShardPackedBase(
        rows=[], ids=[], norms=[], list_start=np.zeros(0, dtype=np.int64),
        list_stop=np.zeros(0, dtype=np.int64), version=0, ntotal=0,
    )
    with pytest.raises(RuntimeError, match="not backed"):
        unbacked.manifest()


def test_owner_layout_segment_freed_without_unlink():
    """Dropping the owner without unlink() still frees the segment.

    The ``weakref.finalize`` guard is the backstop against /dev/shm
    leaks when a caller garbage-collects a layout (or the interpreter
    exits) without running the explicit lifecycle.
    """
    import gc

    from repro.core.layout import _attach_shm

    index = make_index()
    plan = build_plan(index, n_machines=4, n_vector_shards=2, n_dim_blocks=2)

    shared = SharedShardPackedBase.build(index, plan)
    name = shared.shm_name
    _attach_shm(name).close()  # segment exists while the owner lives
    del shared
    gc.collect()
    with pytest.raises(FileNotFoundError):
        _attach_shm(name)

    # An attacher must NOT free the segment at GC — only its mapping.
    shared = SharedShardPackedBase.build(index, plan)
    name = shared.shm_name
    attached = SharedShardPackedBase.attach(shared.manifest())
    del attached
    gc.collect()
    _attach_shm(name).close()  # still alive: owner holds it
    # Explicit unlink detaches the finalizer; GC after is a no-op.
    shared.unlink()
    del shared
    gc.collect()
    with pytest.raises(FileNotFoundError):
        _attach_shm(name)


# ---------------------------------------------------------------------------
# Pool lifecycle
# ---------------------------------------------------------------------------


def test_pool_persists_and_revives():
    index = make_index()
    plan = build_plan(index, n_machines=4, n_vector_shards=2, n_dim_blocks=2)
    queries = make_queries(index.dim)
    serial = SerialBackend(index, plan=plan)
    reference = serial.search(queries, k=5, nprobe=4)

    backend = ProcessBackend(index, plan=plan, n_workers=2)
    assert not backend.pool_running
    backend.search(queries, k=5, nprobe=4)
    assert backend.pool_running
    first_pids = [p.pid for p in backend._procs]
    backend.search(queries, k=5, nprobe=4)
    assert [p.pid for p in backend._procs] == first_pids  # reused, not respawned
    assert backend.shared_layout_nbytes() > 0

    backend.close()
    assert not backend.pool_running
    backend.close()  # idempotent

    # A closed backend revives lazily on the next search.
    revived = backend.search(queries, k=5, nprobe=4)
    assert backend.pool_running
    np.testing.assert_array_equal(revived.ids, reference.ids)
    np.testing.assert_array_equal(revived.distances, reference.distances)
    backend.close()


def test_shared_layout_absorbs_mutations_without_rehoming():
    """A small add ships as a delta overlay: the base shm segment (and
    its pages) stay exactly where they are — only the overlay segment
    is republished — while results stay byte-identical."""
    index = make_index()
    plan = build_plan(index, n_machines=4, n_vector_shards=2, n_dim_blocks=2)
    queries = make_queries(index.dim)
    rng = np.random.default_rng(7)
    with ProcessBackend(index, plan=plan, n_workers=2) as backend:
        backend.search(queries, k=5, nprobe=4)
        assert backend.shm_base_rehomes == 1  # the initial build
        name_before = backend._shared_layout.shm_name
        index.add(
            rng.standard_normal((30, index.dim)).astype(np.float32),
            labels=rng.integers(0, N_LABELS, 30),
        )
        got = backend.search(queries, k=5, nprobe=4)
        assert backend._shared_layout.shm_name == name_before
        assert backend.shm_base_rehomes == 1
        assert backend.shm_overlay_syncs >= 1
        assert backend._shared_layout.delta_rows == 30
        reference = SerialBackend(index, plan=plan).search(
            queries, k=5, nprobe=4
        )
        np.testing.assert_array_equal(got.ids, reference.ids)
        np.testing.assert_array_equal(got.distances, reference.distances)


def test_shared_layout_rehomes_on_compaction():
    """Forcing a compaction creates a new generation, and only then is
    the shm segment re-homed."""
    index = make_index()
    plan = build_plan(index, n_machines=4, n_vector_shards=2, n_dim_blocks=2)
    queries = make_queries(index.dim)
    rng = np.random.default_rng(7)
    with ProcessBackend(index, plan=plan, n_workers=2) as backend:
        backend.search(queries, k=5, nprobe=4)
        name_before = backend._shared_layout.shm_name
        index.add(
            rng.standard_normal((30, index.dim)).astype(np.float32),
            labels=rng.integers(0, N_LABELS, 30),
        )
        backend.search(queries, k=5, nprobe=4)
        stats = backend.kernel.compact()
        assert stats["compacted"] is True
        got = backend.search(queries, k=5, nprobe=4)
        assert backend._shared_layout.shm_name != name_before
        assert backend.shm_base_rehomes == 2
        assert backend._shared_layout.delta_rows == 0
        reference = SerialBackend(index, plan=plan).search(
            queries, k=5, nprobe=4
        )
        np.testing.assert_array_equal(got.ids, reference.ids)
        np.testing.assert_array_equal(got.distances, reference.distances)


def test_invalid_worker_count():
    index = make_index()
    with pytest.raises(ValueError, match="n_workers"):
        ProcessBackend(index, n_workers=0)


def test_single_worker_pool():
    """One worker (no one to steal from) still matches the oracle."""
    index = make_index()
    plan = build_plan(index, n_machines=4, n_vector_shards=2, n_dim_blocks=2)
    queries = make_queries(index.dim)
    reference = SerialBackend(index, plan=plan).search(queries, k=5, nprobe=4)
    with ProcessBackend(index, plan=plan, n_workers=1) as backend:
        got = backend.search(queries, k=5, nprobe=4)
        np.testing.assert_array_equal(got.ids, reference.ids)
        np.testing.assert_array_equal(got.distances, reference.distances)
        assert backend.total_steals == 0


# ---------------------------------------------------------------------------
# Supervision + fallback
# ---------------------------------------------------------------------------


def test_worker_crash_between_batches_respawns():
    """A single dead worker is repaired in place, not fallen back on."""
    index = make_index()
    plan = build_plan(index, n_machines=4, n_vector_shards=2, n_dim_blocks=2)
    queries = make_queries(index.dim)
    reference = SerialBackend(index, plan=plan).search(queries, k=5, nprobe=4)

    backend = ProcessBackend(index, plan=plan, n_workers=2)
    backend.search(queries, k=5, nprobe=4)
    victim = backend._procs[0]
    os.kill(victim.pid, signal.SIGKILL)
    victim.join(timeout=5.0)

    got = backend.search(queries, k=5, nprobe=4)  # repaired transparently
    assert not backend.fallback_active
    assert backend.pool_running
    assert all(p.is_alive() for p in backend._procs)
    assert backend.fault_counters.worker_respawns >= 1
    np.testing.assert_array_equal(got.ids, reference.ids)
    np.testing.assert_array_equal(got.distances, reference.distances)
    backend.close()


def test_whole_pool_crash_falls_back_to_threads():
    """Total pool loss is the (only) crash that flips to the fallback."""
    index = make_index()
    plan = build_plan(index, n_machines=4, n_vector_shards=2, n_dim_blocks=2)
    queries = make_queries(index.dim)
    reference = SerialBackend(index, plan=plan).search(queries, k=5, nprobe=4)

    backend = ProcessBackend(index, plan=plan, n_workers=2)
    backend.search(queries, k=5, nprobe=4)
    for victim in list(backend._procs):
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=5.0)

    got = backend.search(queries, k=5, nprobe=4)  # transparently degraded
    assert backend.fallback_active
    assert not backend.pool_running
    np.testing.assert_array_equal(got.ids, reference.ids)
    np.testing.assert_array_equal(got.distances, reference.distances)

    # Degraded mode still works identically on the fallback path.
    cov_ref = np.zeros((queries.shape[0], 2), dtype=np.int64)
    cov_got = np.zeros((queries.shape[0], 2), dtype=np.int64)
    ref2 = SerialBackend(index, plan=plan).search(
        queries, k=5, nprobe=4, skip_shards={0}, coverage=cov_ref
    )
    got2 = backend.search(
        queries, k=5, nprobe=4, skip_shards={0}, coverage=cov_got
    )
    np.testing.assert_array_equal(got2.ids, ref2.ids)
    np.testing.assert_array_equal(cov_got, cov_ref)
    backend.close()


def test_worker_crash_mid_query_completes_on_pool():
    """A chaos kill mid-batch requeues + respawns; no thread fallback."""
    from repro.cluster.host_faults import (
        DelayScan,
        HostFaultInjector,
        KillWorker,
    )

    index = make_index()
    plan = build_plan(index, n_machines=4, n_vector_shards=2, n_dim_blocks=2)
    queries = make_queries(index.dim)
    reference = SerialBackend(index, plan=plan).search(queries, k=5, nprobe=4)

    backend = ProcessBackend(index, plan=plan, n_workers=2)
    # Kill worker 0 on its very first task; pace worker 1 a little so
    # it cannot drain the whole batch before worker 0 ever pops one.
    backend.chaos = HostFaultInjector(
        kills=[KillWorker(worker=0, at_task=0)],
        delays=[DelayScan(seconds=0.002, worker=1)],
    )
    got = backend.search(queries, k=5, nprobe=4)
    assert not backend.fallback_active
    assert backend.fault_counters.worker_respawns >= 1
    assert backend.fault_counters.tasks_requeued >= 1
    assert "kill:worker=0" in backend.chaos.fired
    np.testing.assert_array_equal(got.ids, reference.ids)
    np.testing.assert_array_equal(got.distances, reference.distances)

    # The respawned pool keeps serving identically, still no fallback.
    again = backend.search(queries, k=5, nprobe=4)
    assert not backend.fallback_active
    np.testing.assert_array_equal(again.ids, reference.ids)
    backend.close()


def test_shared_memory_unavailable_falls_back(monkeypatch):
    index = make_index()
    plan = build_plan(index, n_machines=4, n_vector_shards=2, n_dim_blocks=2)
    queries = make_queries(index.dim)
    reference = SerialBackend(index, plan=plan).search(queries, k=5, nprobe=4)

    def no_shm(cls, packed):
        raise OSError("shared memory unavailable")

    monkeypatch.setattr(
        SharedShardPackedBase, "from_packed", classmethod(no_shm)
    )
    with ProcessBackend(index, plan=plan, n_workers=2) as backend:
        got = backend.search(queries, k=5, nprobe=4)
        assert backend.fallback_active
        assert not backend.pool_running
        np.testing.assert_array_equal(got.ids, reference.ids)
        np.testing.assert_array_equal(got.distances, reference.distances)


# ---------------------------------------------------------------------------
# Steal counters and observability
# ---------------------------------------------------------------------------


def test_steal_counters_shape_and_accumulation():
    index = make_index(n=1200, nlist=24)
    plan = build_plan(index, n_machines=4, n_vector_shards=4, n_dim_blocks=1)
    queries = make_queries(index.dim, nq=24)
    with ProcessBackend(index, plan=plan, n_workers=3) as backend:
        total = 0
        for _ in range(3):
            backend.search(queries, k=5, nprobe=8)
            counts = backend.last_steal_counts
            assert counts.shape == (3,)
            assert (counts >= 0).all()
            total += int(counts.sum())
            assert backend.total_steals == total  # lifetime accumulation


def test_worker_spans_recorded_on_process_lanes():
    from repro.core.executor.process import PROCESS_LANE_BASE
    from repro.obs.trace import Tracer

    index = make_index()
    plan = build_plan(index, n_machines=4, n_vector_shards=2, n_dim_blocks=2)
    queries = make_queries(index.dim)
    with ProcessBackend(index, plan=plan, n_workers=2) as backend:
        backend.tracer = Tracer()
        backend.search(queries, k=5, nprobe=4)
        spans = [
            s for s in backend.tracer.trace().spans
            if s.name == "worker-scan"
        ]
        assert spans, "expected per-worker wall spans"
        assert all(s.node >= PROCESS_LANE_BASE for s in spans)
        assert all(s.end >= s.start for s in spans)


# ---------------------------------------------------------------------------
# ThreadBackend persistent pool (the hoisted executor)
# ---------------------------------------------------------------------------


def test_thread_backend_pool_persists_and_revives():
    index = make_index()
    plan = build_plan(index, n_machines=4, n_vector_shards=2, n_dim_blocks=2)
    queries = make_queries(index.dim)
    backend = ThreadBackend(index, plan=plan, n_threads=2)
    assert backend._pool is None  # lazy: no threads until first search
    backend.search(queries, k=5, nprobe=4)
    pool = backend._pool
    assert pool is not None
    backend.search(queries, k=5, nprobe=4)
    assert backend._pool is pool  # reused across calls
    backend.close()
    assert backend._pool is None
    backend.close()  # idempotent
    result = backend.search(queries, k=5, nprobe=4)  # revives
    assert backend._pool is not None
    reference = SerialBackend(index, plan=plan).search(queries, k=5, nprobe=4)
    np.testing.assert_array_equal(result.ids, reference.ids)
    backend.close()


# ---------------------------------------------------------------------------
# Config / HarmonyDB integration
# ---------------------------------------------------------------------------


def test_config_accepts_process_backend():
    config = HarmonyConfig(backend="process", n_workers=2)
    assert config.backend == "process"
    with pytest.raises(ValueError, match="n_workers"):
        HarmonyConfig(backend="process", n_workers=0)
    with pytest.raises(ValueError, match="supported backends"):
        HarmonyConfig(backend="gpu")


def test_harmony_db_process_backend_end_to_end(tmp_path):
    rng = np.random.default_rng(0)
    base = rng.standard_normal((1500, 24)).astype(np.float32)
    queries = rng.standard_normal((16, 24)).astype(np.float32)
    config = HarmonyConfig(
        n_machines=4, nlist=16, nprobe=4, backend="process", n_workers=2
    )
    db = HarmonyDB(dim=24, config=config)
    db.build(base, sample_queries=queries)
    result, report = db.search(queries, k=5)
    assert "process backend" in report.plan_summary
    assert report.layout_bytes > 0
    assert report.worker_steals is not None
    assert len(report.worker_steals) == 2

    serial_db = HarmonyDB(
        dim=24,
        config=config.replace(backend="serial"),
    )
    serial_db.build(base, sample_queries=queries)
    ref, _ = serial_db.search(queries, k=5)
    np.testing.assert_array_equal(result.ids, ref.ids)
    np.testing.assert_array_equal(result.distances, ref.distances)

    # Streaming ingest rebuilds the backend (and its pool) cleanly.
    extra = rng.standard_normal((40, 24)).astype(np.float32)
    db.add(extra)
    serial_db.add(extra)
    result2, _ = db.search(queries, k=5)
    ref2, _ = serial_db.search(queries, k=5)
    np.testing.assert_array_equal(result2.ids, ref2.ids)

    # save() round-trips the process backend config.
    path = tmp_path / "deploy.npz"
    db.save(path)
    loaded = HarmonyDB.load(path)
    assert loaded.config.backend == "process"
    assert loaded.config.n_workers == 2
    result3, _ = loaded.search(queries, k=5)
    np.testing.assert_array_equal(result3.ids, ref2.ids)
    for handle in (db, serial_db, loaded):
        handle.close()
        handle.close()  # idempotent


def test_report_metrics_publishes_layout_and_steals():
    from repro.obs.metrics import report_metrics

    rng = np.random.default_rng(0)
    base = rng.standard_normal((800, 16)).astype(np.float32)
    queries = rng.standard_normal((8, 16)).astype(np.float32)
    config = HarmonyConfig(
        n_machines=2, nlist=8, nprobe=4, backend="process", n_workers=2
    )
    db = HarmonyDB(dim=16, config=config)
    db.build(base, sample_queries=queries)
    try:
        _, report = db.search(queries, k=5)
        registry = report_metrics(report)
        text = registry.to_prometheus()
        assert "harmony_layout_bytes" in text
        assert "harmony_worker_steals_total" in text
        dumped = registry.to_dict()
        assert dumped["harmony_layout_bytes"]["series"][0]["value"] > 0
        steal_series = dumped["harmony_worker_steals_total"]["series"]
        assert {s["labels"]["worker"] for s in steal_series} == {"0", "1"}
    finally:
        db.close()
