"""Fault injection, degraded mode, and simulated recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import CLIENT_NODE, Cluster
from repro.cluster.faults import (
    MAX_RETRANSMITS,
    FaultEvent,
    FaultSchedule,
    WorkerUnavailableError,
)
from repro.cluster.recovery import ReplicaDirectory, unavailable_shards
from repro.core.config import HarmonyConfig
from tests.conftest import make_db


# ----------------------------------------------------------------------
# FaultEvent / FaultSchedule
# ----------------------------------------------------------------------


class TestFaultEvent:
    def test_valid_kinds_only(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(time=0.0, kind="meteor", node=0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="time"):
            FaultEvent(time=-1.0, kind="crash", node=0)

    def test_node_kinds_need_node(self):
        with pytest.raises(ValueError, match="worker id"):
            FaultEvent(time=0.0, kind="crash")

    def test_link_event_needs_no_node(self):
        event = FaultEvent(time=0.0, kind="link", bandwidth_factor=0.5)
        assert event.node == -1

    def test_drop_probability_bounds(self):
        with pytest.raises(ValueError, match="drop_probability"):
            FaultEvent(time=0.0, kind="link", drop_probability=0.95)

    def test_bandwidth_factor_bounds(self):
        with pytest.raises(ValueError, match="bandwidth_factor"):
            FaultEvent(time=0.0, kind="link", bandwidth_factor=1.5)


class TestFaultSchedule:
    def test_crash_recover_windows(self):
        sched = FaultSchedule(
            [
                FaultEvent(time=1.0, kind="crash", node=2),
                FaultEvent(time=3.0, kind="recover", node=2),
            ]
        )
        assert not sched.is_down(2, 0.5)
        assert sched.is_down(2, 1.0)
        assert sched.is_down(2, 2.9)
        assert not sched.is_down(2, 3.0)
        assert not sched.is_down(0, 2.0)

    def test_straggler_window(self):
        sched = FaultSchedule(
            [
                FaultEvent(
                    time=1.0, kind="straggler", node=0, rate_multiplier=0.25
                ),
                FaultEvent(
                    time=2.0, kind="straggler", node=0, rate_multiplier=1.0
                ),
            ]
        )
        assert sched.rate_multiplier(0, 0.5) == 1.0
        assert sched.rate_multiplier(0, 1.5) == 0.25
        assert sched.rate_multiplier(0, 2.5) == 1.0

    def test_link_state_window(self):
        sched = FaultSchedule(
            [
                FaultEvent(
                    time=1.0,
                    kind="link",
                    bandwidth_factor=0.5,
                    drop_probability=0.1,
                ),
                FaultEvent(time=2.0, kind="link"),
            ]
        )
        assert sched.link_state(0.0) == (1.0, 0.0)
        assert sched.link_state(1.5) == (0.5, 0.1)
        assert sched.link_state(2.5) == (1.0, 0.0)

    def test_drop_roll_deterministic(self):
        a = FaultSchedule([], seed=9)
        b = FaultSchedule([], seed=9)
        rolls_a = [a.drop_roll(i) for i in range(16)]
        rolls_b = [b.drop_roll(i) for i in range(16)]
        assert rolls_a == rolls_b
        assert all(0.0 <= r < 1.0 for r in rolls_a)

    def test_random_schedule_deterministic(self):
        a = FaultSchedule.random(4, duration=1.0, seed=3)
        b = FaultSchedule.random(4, duration=1.0, seed=3)
        assert a.events == b.events
        c = FaultSchedule.random(4, duration=1.0, seed=4)
        assert a.events != c.events

    def test_horizon_and_introspection(self):
        sched = FaultSchedule(
            [
                FaultEvent(time=2.0, kind="crash", node=1),
                FaultEvent(time=0.5, kind="straggler", node=0,
                           rate_multiplier=0.5),
            ]
        )
        assert sched.horizon == 2.0
        assert sched.nodes_touched() == frozenset({0, 1})
        assert len(sched.events_between(0.0, 1.0)) == 1


# ----------------------------------------------------------------------
# Cluster integration
# ----------------------------------------------------------------------


class TestClusterFaults:
    def test_compute_raises_while_crashed(self):
        cluster = Cluster(n_workers=2)
        cluster.set_fault_schedule(
            FaultSchedule(
                [
                    FaultEvent(time=1.0, kind="crash", node=0),
                    FaultEvent(time=2.0, kind="recover", node=0),
                ]
            )
        )
        cluster.compute(0, 1000, earliest=0.5)  # before the crash: fine
        with pytest.raises(WorkerUnavailableError, match="crashed"):
            cluster.compute(0, 1000, earliest=1.5)
        cluster.compute(0, 1000, earliest=2.5)  # recovered

    def test_worker_unavailable_is_runtime_error(self):
        assert issubclass(WorkerUnavailableError, RuntimeError)

    def test_straggler_slows_compute(self):
        fast = Cluster(n_workers=1)
        slow = Cluster(n_workers=1)
        slow.set_fault_schedule(
            FaultSchedule(
                [
                    FaultEvent(
                        time=0.0, kind="straggler", node=0,
                        rate_multiplier=0.25,
                    )
                ]
            )
        )
        _, end_fast = fast.compute(0, 10_000)
        _, end_slow = slow.compute(0, 10_000)
        assert end_slow == pytest.approx(end_fast * 4.0)

    def test_degraded_link_slows_transfer(self):
        base = Cluster(n_workers=2)
        cut = Cluster(n_workers=2)
        cut.set_fault_schedule(
            FaultSchedule(
                [FaultEvent(time=0.0, kind="link", bandwidth_factor=0.5)]
            )
        )
        t_base = base.transfer(0, 1, 1_000_000)
        t_cut = cut.transfer(0, 1, 1_000_000)
        assert t_cut > t_base

    def test_message_drops_deterministic_and_counted(self):
        def run() -> tuple[float, int]:
            cluster = Cluster(n_workers=2)
            cluster.set_fault_schedule(
                FaultSchedule(
                    [
                        FaultEvent(
                            time=0.0, kind="link", drop_probability=0.5
                        )
                    ],
                    seed=1,
                )
            )
            arrivals = [
                cluster.transfer(0, 1, 10_000, earliest=float(i))
                for i in range(20)
            ]
            return sum(arrivals), cluster.fault_counters["dropped_messages"]

        total_a, drops_a = run()
        total_b, drops_b = run()
        assert total_a == total_b
        assert drops_a == drops_b
        assert drops_a > 0

    def test_retransmit_cap(self):
        cluster = Cluster(n_workers=2)
        cluster.set_fault_schedule(
            FaultSchedule(
                [FaultEvent(time=0.0, kind="link", drop_probability=0.9)],
                seed=0,
            )
        )
        cluster.transfer(0, 1, 1000)  # must terminate
        assert (
            cluster.fault_counters["dropped_messages"] <= MAX_RETRANSMITS
        )

    def test_no_schedule_transfer_unchanged(self):
        plain = Cluster(n_workers=2)
        scheduled = Cluster(n_workers=2)
        scheduled.set_fault_schedule(FaultSchedule([]))
        assert plain.transfer(0, 1, 12_345) == scheduled.transfer(
            0, 1, 12_345
        )

    def test_reset_time_clears_fault_counters(self):
        cluster = Cluster(n_workers=2)
        cluster.set_fault_schedule(
            FaultSchedule(
                [FaultEvent(time=0.0, kind="link", drop_probability=0.5)],
                seed=1,
            )
        )
        for i in range(10):
            cluster.transfer(0, 1, 10_000, earliest=float(i))
        assert cluster.fault_counters["dropped_messages"] > 0
        cluster.reset_time()
        assert cluster.fault_counters["dropped_messages"] == 0

    def test_set_fault_schedule_type_checked(self):
        cluster = Cluster(n_workers=2)
        with pytest.raises(TypeError, match="FaultSchedule"):
            cluster.set_fault_schedule("crash everything")  # type: ignore


class TestRestoreWorkerValidation:
    def test_out_of_range_raises(self):
        cluster = Cluster(n_workers=2)
        with pytest.raises(IndexError):
            cluster.restore_worker(99)
        with pytest.raises(IndexError):
            cluster.restore_worker(-7)

    def test_client_node_rejected(self):
        cluster = Cluster(n_workers=2)
        with pytest.raises(ValueError, match="client node"):
            cluster.restore_worker(CLIENT_NODE)

    def test_valid_unfailed_still_noop(self):
        cluster = Cluster(n_workers=2)
        cluster.restore_worker(1)
        assert not cluster.is_failed(1)


# ----------------------------------------------------------------------
# Config knobs
# ----------------------------------------------------------------------


class TestFaultConfig:
    def test_defaults(self):
        config = HarmonyConfig()
        assert config.degraded_mode is False
        assert config.hedge_latency_threshold is None

    def test_validation(self):
        with pytest.raises(ValueError, match="retry_timeout"):
            HarmonyConfig(retry_timeout=0.0)
        with pytest.raises(ValueError, match="max_retries"):
            HarmonyConfig(max_retries=-1)
        with pytest.raises(ValueError, match="hedge_latency_threshold"):
            HarmonyConfig(hedge_latency_threshold=-1e-3)

    def test_save_load_roundtrip(self, tmp_path, tiny_data, tiny_queries):
        from repro.core.database import HarmonyDB

        db = make_db(
            tiny_data,
            tiny_queries,
            degraded_mode=True,
            retry_timeout=1e-3,
            max_retries=5,
            hedge_latency_threshold=2e-3,
        )
        path = tmp_path / "db.npz"
        db.save(path)
        loaded = HarmonyDB.load(path)
        assert loaded.config.degraded_mode is True
        assert loaded.config.retry_timeout == 1e-3
        assert loaded.config.max_retries == 5
        assert loaded.config.hedge_latency_threshold == 2e-3


# ----------------------------------------------------------------------
# Degraded-mode search (sim backend)
# ----------------------------------------------------------------------


class TestDegradedSearch:
    def test_unreplicated_failure_degrades_not_raises(
        self, tiny_data, tiny_queries
    ):
        db = make_db(tiny_data, tiny_queries, degraded_mode=True)
        db.cluster.fail_worker(0)
        result, report = db.search(tiny_queries, k=5)
        assert report.degraded is not None
        assert report.degraded.min_coverage < 1.0
        assert report.degraded.n_degraded_queries > 0
        assert report.fault_stats is not None
        assert report.fault_stats.skipped_scans > 0
        # Partial results: padded entries allowed, never bogus ids.
        assert result.ids.shape == (tiny_queries.shape[0], 5)

    def test_default_mode_still_raises(self, tiny_data, tiny_queries):
        db = make_db(tiny_data, tiny_queries)
        db.cluster.fail_worker(0)
        with pytest.raises(RuntimeError, match="no live replica"):
            db.search(tiny_queries, k=5)

    def test_healthy_degraded_run_is_fully_covered(
        self, tiny_data, tiny_queries
    ):
        db = make_db(tiny_data, tiny_queries, degraded_mode=True)
        result, report = db.search(tiny_queries, k=5)
        assert report.degraded is not None
        assert report.degraded.min_coverage == 1.0
        assert report.degraded.recall_vs_healthy == 1.0
        healthy = make_db(tiny_data, tiny_queries).search(tiny_queries, k=5)
        assert np.array_equal(result.ids, healthy[0].ids)

    def test_recall_delta_measured(self, tiny_data, tiny_queries):
        db = make_db(tiny_data, tiny_queries, degraded_mode=True)
        db.cluster.fail_worker(0)
        _, report = db.search(tiny_queries, k=5)
        degraded = report.degraded
        assert degraded is not None
        assert 0.0 <= degraded.recall_vs_healthy <= 1.0
        assert degraded.recall_delta == pytest.approx(
            1.0 - degraded.recall_vs_healthy
        )

    def test_crash_recover_schedule_never_raises_and_deterministic(
        self, tiny_data, tiny_queries
    ):
        def run():
            db = make_db(
                tiny_data, tiny_queries, backend="sim",
                degraded_mode=True, replicas=2,
            )
            db.set_fault_schedule(
                FaultSchedule(
                    [
                        FaultEvent(time=0.0, kind="crash", node=1),
                        FaultEvent(time=5e-4, kind="recover", node=1),
                    ],
                    seed=2,
                )
            )
            return db.search(tiny_queries, k=5)

        r1, rep1 = run()
        r2, rep2 = run()
        assert np.array_equal(r1.ids, r2.ids)
        assert np.array_equal(r1.distances, r2.distances)
        assert rep1.simulated_seconds == rep2.simulated_seconds
        assert np.array_equal(rep1.latencies, rep2.latencies)

    def test_retries_charge_simulated_time(self, tiny_data, tiny_queries):
        db = make_db(
            tiny_data, tiny_queries, backend="sim",
            degraded_mode=True, replicas=2,
        )
        sched = FaultSchedule(
            [
                FaultEvent(time=0.0, kind="crash", node=0),
                FaultEvent(time=1e-3, kind="recover", node=0),
            ]
        )
        db.set_fault_schedule(sched)
        _, faulty = db.search(tiny_queries, k=5)
        db.set_fault_schedule(None)
        _, healthy = db.search(tiny_queries, k=5)
        assert faulty.fault_stats is not None
        assert (
            faulty.fault_stats.retries > 0
            or faulty.fault_stats.failovers > 0
        )
        assert faulty.simulated_seconds > healthy.simulated_seconds

    def test_hedging_counts_surface(self, tiny_data, tiny_queries):
        db = make_db(
            tiny_data,
            tiny_queries,
            backend="sim",
            replicas=2,
            hedge_latency_threshold=1e-7,  # hedge practically always
        )
        db.set_fault_schedule(
            FaultSchedule(
                [
                    FaultEvent(
                        time=0.0, kind="straggler", node=0,
                        rate_multiplier=0.05,
                    )
                ]
            )
        )
        _, report = db.search(tiny_queries, k=5)
        assert report.fault_stats is not None
        assert report.fault_stats.hedges > 0
        assert report.fault_stats.hedge_wins >= 0

    def test_fault_stats_in_to_dict(self, tiny_data, tiny_queries):
        db = make_db(tiny_data, tiny_queries, degraded_mode=True)
        db.cluster.fail_worker(0)
        _, report = db.search(tiny_queries, k=5)
        payload = report.to_dict()
        assert "fault_stats" in payload
        assert "degraded" in payload
        assert payload["degraded"]["min_coverage"] < 1.0


# ----------------------------------------------------------------------
# Host-backend failure semantics (satellite: backend asymmetry)
# ----------------------------------------------------------------------


class TestHostBackendFailures:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_failed_worker_raises_without_degraded_mode(
        self, tiny_data, tiny_queries, backend
    ):
        db = make_db(tiny_data, tiny_queries, backend=backend)
        db.cluster.fail_worker(0)
        with pytest.raises(RuntimeError, match="no live replica"):
            db.search(tiny_queries, k=5)

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    @pytest.mark.parametrize("batch", [True, False])
    def test_degraded_host_matches_sim(
        self, tiny_data, tiny_queries, backend, batch
    ):
        sim = make_db(tiny_data, tiny_queries, degraded_mode=True)
        sim.cluster.fail_worker(0)
        sim_result, sim_report = sim.search(tiny_queries, k=5)

        host = make_db(
            tiny_data,
            tiny_queries,
            backend=backend,
            degraded_mode=True,
            batch_queries=batch,
        )
        host.cluster.fail_worker(0)
        host_result, host_report = host.search(tiny_queries, k=5)
        assert np.array_equal(host_result.ids, sim_result.ids)
        assert np.array_equal(host_result.distances, sim_result.distances)
        assert host_report.degraded is not None
        np.testing.assert_allclose(
            host_report.degraded.coverage, sim_report.degraded.coverage
        )

    def test_fault_schedule_rejected_on_host(self, tiny_data, tiny_queries):
        db = make_db(tiny_data, tiny_queries, backend="serial")
        db.set_fault_schedule(FaultSchedule([]))
        with pytest.raises(ValueError, match="sim"):
            db.search(tiny_queries, k=5)

    def test_replicated_failover_on_host(self, tiny_data, tiny_queries):
        db = make_db(tiny_data, tiny_queries, backend="serial", replicas=2)
        db.cluster.fail_worker(0)
        result, report = db.search(tiny_queries, k=5)
        healthy = make_db(tiny_data, tiny_queries).search(tiny_queries, k=5)
        assert np.array_equal(result.ids, healthy[0].ids)
        assert report.degraded is None


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------


class TestRecovery:
    def _db(self, tiny_data, tiny_queries, **overrides):
        return make_db(
            tiny_data, tiny_queries, degraded_mode=True, replicas=2,
            **overrides,
        )

    def test_directory_mirrors_plan(self, tiny_data, tiny_queries):
        db = self._db(tiny_data, tiny_queries)
        directory = ReplicaDirectory(db.plan, db.index)
        plan = db.plan
        for shard in range(plan.n_vector_shards):
            for block in range(plan.n_dim_blocks):
                expected = sorted(
                    {int(m) for m in plan.replica_machines(shard, block)}
                )
                assert list(directory.holders(shard, block)) == expected

    def test_fail_restores_redundancy(self, tiny_data, tiny_queries):
        db = self._db(tiny_data, tiny_queries)
        manager = db.enable_fault_recovery()
        report = manager.fail(0, now=0.0)
        assert report.blocks_copied > 0
        assert report.bytes_copied > 0
        assert report.time_to_full_redundancy > 0.0
        assert not manager.directory.under_replicated()
        # Search still exact: every block has a live copy again.
        result, search_report = db.search(tiny_queries, k=5)
        healthy = make_db(tiny_data, tiny_queries).search(tiny_queries, k=5)
        assert np.array_equal(result.ids, healthy[0].ids)
        assert search_report.degraded.min_coverage == 1.0

    def test_detection_delay_then_repair(self, tiny_data, tiny_queries):
        db = self._db(tiny_data, tiny_queries)
        manager = db.enable_fault_recovery()
        # Both replica holders die before the detector fires: some
        # blocks are lost and searches degrade.
        manager.mark_failed(0)
        manager.mark_failed(1)
        assert manager.directory.lost_blocks()
        _, degraded_report = db.search(tiny_queries, k=5)
        assert degraded_report.degraded.min_coverage < 1.0
        # Restore one machine: its copies return, repair rebuilds the
        # rest, coverage returns to 1.0.
        manager.restore(1, now=0.1)
        repair = manager.repair(now=0.1)
        assert not manager.directory.lost_blocks()
        assert not manager.directory.under_replicated()
        _, recovered_report = db.search(tiny_queries, k=5)
        assert recovered_report.degraded.min_coverage == 1.0
        assert repair.completed_at >= 0.1

    def test_restore_trims_extras(self, tiny_data, tiny_queries):
        db = self._db(tiny_data, tiny_queries)
        manager = db.enable_fault_recovery()
        manager.fail(0, now=0.0)
        report = manager.restore(0, now=0.5)
        assert report.blocks_trimmed > 0
        # Back to the plan's placement exactly.
        plan = db.plan
        for shard in range(plan.n_vector_shards):
            for block in range(plan.n_dim_blocks):
                expected = sorted(
                    {int(m) for m in plan.replica_machines(shard, block)}
                )
                assert (
                    list(manager.directory.holders(shard, block)) == expected
                )

    def test_memory_accounting_balances(self, tiny_data, tiny_queries):
        db = self._db(tiny_data, tiny_queries)
        manager = db.enable_fault_recovery()
        before = [n.current_bytes for n in db.cluster.workers]
        manager.fail(0, now=0.0)
        manager.restore(0, now=0.5)
        after = [n.current_bytes for n in db.cluster.workers]
        assert after == before

    def test_unavailable_shards_helper(self, tiny_data, tiny_queries):
        db = make_db(tiny_data, tiny_queries)
        assert unavailable_shards(db.cluster, db.plan) == set()
        db.cluster.fail_worker(0)
        dead = unavailable_shards(db.cluster, db.plan)
        assert dead  # unreplicated: machine 0's shards are gone
        db.cluster.restore_worker(0)
        assert unavailable_shards(db.cluster, db.plan) == set()

    def test_recovery_deterministic(self, tiny_data, tiny_queries):
        def run():
            # Returns simulated_seconds: a sim-clock determinism check.
            db = self._db(tiny_data, tiny_queries, backend="sim")
            manager = db.enable_fault_recovery()
            fail = manager.fail(0, now=0.0)
            _, report = db.search(tiny_queries, k=5)
            restore = manager.restore(0, now=0.5)
            return fail.to_dict(), report.simulated_seconds, restore.to_dict()

        assert run() == run()
