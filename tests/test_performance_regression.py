"""Performance-model regression pins.

The simulated performance numbers carry the reproduction's scientific
content, so changes to cost constants or engine scheduling must not
silently move them. These tests pin the headline metrics inside
generous bands: wide enough to survive benign refactors, tight enough
to catch a broken rate, an accounting bug, or a scheduling regression.
"""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.node import DEFAULT_COMPUTE_RATE, PHYSICAL_COMPUTE_RATE
from repro.core.config import HarmonyConfig, Mode
from repro.core.database import HarmonyDB
from repro.data.synthetic import gaussian_blobs
from repro.index.ivf import IVFFlatIndex


@pytest.fixture(scope="module")
def setup():
    data = gaussian_blobs(6000, 64, n_blobs=16, cluster_std=0.5, seed=37)
    queries = gaussian_blobs(6060, 64, n_blobs=16, cluster_std=0.5, seed=37)[6000:]
    index = IVFFlatIndex(dim=64, nlist=32, seed=0)
    index.train(data)
    index.add(data)
    return index, queries


def faiss_qps(index, queries, nprobe):
    probes = index.probe(queries, nprobe)
    candidates = sum(
        index.candidates(probes[i]).size for i in range(len(queries))
    )
    seconds = (
        candidates * index.dim / DEFAULT_COMPUTE_RATE
        + len(queries) * index.nlist * index.dim / PHYSICAL_COMPUTE_RATE
    )
    return len(queries) / seconds


def deploy_qps(index, queries, mode, nprobe=8, **overrides):
    db = HarmonyDB.from_trained_index(
        index,
        config=HarmonyConfig(
            n_machines=4,
            nlist=index.nlist,
            nprobe=nprobe,
            mode=mode,
            seed=0,
            **overrides,
        ),
        cluster=Cluster(4),
        sample_queries=queries,
    )
    _, report = db.search(queries, k=10)
    return report


class TestSpeedupBands:
    def test_harmony_high_recall_band(self, setup):
        """Paper headline: ~4.63x at high recall; pin [3, 12]."""
        index, queries = setup
        speedup = deploy_qps(index, queries, Mode.HARMONY).qps / faiss_qps(
            index, queries, 8
        )
        assert 3.0 < speedup < 12.0, speedup

    def test_vector_band(self, setup):
        """Vector scales near the worker count; pin [1.5, 5]."""
        index, queries = setup
        speedup = deploy_qps(index, queries, Mode.VECTOR).qps / faiss_qps(
            index, queries, 8
        )
        assert 1.5 < speedup < 5.0, speedup

    def test_no_feature_beats_physics(self, setup):
        """No configuration may exceed machines x best pruning factor."""
        index, queries = setup
        base = faiss_qps(index, queries, 8)
        for mode in (Mode.HARMONY, Mode.VECTOR, Mode.DIMENSION):
            speedup = deploy_qps(index, queries, mode).qps / base
            assert speedup < 4 * 8, (mode, speedup)  # 4 nodes, <=8x pruning


class TestAccountingBands:
    def test_computation_dominates(self, setup):
        """The paper's premise: distance computation is the dominant
        cost (>60% of busy time) for every strategy."""
        index, queries = setup
        for mode in (Mode.HARMONY, Mode.VECTOR, Mode.DIMENSION):
            report = deploy_qps(index, queries, mode)
            fractions = report.breakdown.fractions()
            assert fractions["computation"] > 0.6, (mode, fractions)

    def test_pruning_ratio_band(self, setup):
        """Clustered 64-dim data prunes 30-95% on average."""
        index, queries = setup
        report = deploy_qps(index, queries, Mode.DIMENSION)
        ratio = report.pruning.average_ratio()
        assert 0.3 < ratio < 0.95, ratio

    def test_utilization_band(self, setup):
        """Workers are well-utilized on a closed-loop batch (>40%)."""
        index, queries = setup
        report = deploy_qps(
            index, queries, Mode.DIMENSION,
            enable_pruning=False, prewarm_size=0,
        )
        assert report.worker_utilization().mean() > 0.4

    def test_latency_band(self, setup):
        """Per-query simulated latency sits in the paper's
        milliseconds-matter regime (10us - 10ms)."""
        index, queries = setup
        report = deploy_qps(index, queries, Mode.HARMONY)
        assert 1e-5 < report.mean_latency < 1e-2


class TestSkewBands:
    def test_vector_skew_penalty_band(self, setup):
        """Adversarial skew costs vector partitioning 15-80% QPS."""
        from repro.workload.generators import skewed_workload

        index, queries = setup
        db = HarmonyDB.from_trained_index(
            index,
            config=HarmonyConfig(
                n_machines=4, nlist=32, nprobe=8, mode=Mode.VECTOR, seed=0
            ),
            cluster=Cluster(4),
            sample_queries=queries,
        )
        sizes = index.list_sizes().astype(float)
        hist = np.bincount(
            index.probe(queries, 8).ravel(), minlength=32
        ).astype(float)
        mass = sizes * hist
        shard_mass = [
            mass[db.plan.lists_of_shard(s)].sum() for s in range(4)
        ]
        hot = db.plan.lists_of_shard(int(np.argmax(shard_mass)))
        workload = skewed_workload(
            queries, index, 60, skew=1.0, nprobe=8,
            hot_list_ids=hot, seed=5,
        )
        _, balanced = db.search(queries, k=10)
        _, skewed = db.search(workload.queries, k=10)
        drop = 1.0 - skewed.qps / balanced.qps
        assert 0.15 < drop < 0.8, drop
