"""Fault-tolerance tests: worker failure and replica failover."""

import numpy as np
import pytest

from repro.cluster.cluster import CLIENT_NODE, Cluster
from repro.core.config import HarmonyConfig, Mode
from repro.core.database import HarmonyDB
from repro.index.ivf import IVFFlatIndex


@pytest.fixture()
def reference(tiny_data, tiny_queries):
    index = IVFFlatIndex(dim=32, nlist=16, seed=0)
    index.train(tiny_data)
    index.add(tiny_data)
    _, ids = index.search(tiny_queries, k=5, nprobe=4)
    return index, ids


def deploy(index, queries, replicas, mode=Mode.VECTOR):
    return HarmonyDB.from_trained_index(
        index,
        config=HarmonyConfig(
            n_machines=4,
            nlist=16,
            nprobe=4,
            mode=mode,
            replicas=replicas,
        ),
        cluster=Cluster(4),
        sample_queries=queries,
    )


class TestClusterFailureApi:
    def test_fail_and_restore(self):
        cluster = Cluster(4)
        cluster.fail_worker(2)
        assert cluster.is_failed(2)
        assert cluster.failed_workers == frozenset({2})
        cluster.restore_worker(2)
        assert not cluster.is_failed(2)

    def test_client_cannot_fail(self):
        with pytest.raises(ValueError, match="client"):
            Cluster(4).fail_worker(CLIENT_NODE)

    def test_invalid_id(self):
        with pytest.raises(IndexError):
            Cluster(4).fail_worker(9)

    def test_restore_unfailed_noop(self):
        Cluster(4).restore_worker(1)


class TestFailover:
    def test_without_replicas_failure_is_fatal(
        self, reference, tiny_queries
    ):
        index, _ = reference
        db = deploy(index, tiny_queries, replicas=1)
        db.cluster.fail_worker(0)
        with pytest.raises(RuntimeError, match="no live replica"):
            db.search(tiny_queries, k=5)

    def test_with_replicas_results_stay_exact(
        self, reference, tiny_queries
    ):
        index, ref_ids = reference
        db = deploy(index, tiny_queries, replicas=2)
        db.cluster.fail_worker(0)
        result, report = db.search(tiny_queries, k=5)
        np.testing.assert_array_equal(result.ids, ref_ids)
        # The failed worker did no computation.
        assert report.worker_loads[0] == 0.0

    def test_dimension_mode_failover(self, reference, tiny_queries):
        index, ref_ids = reference
        db = deploy(index, tiny_queries, replicas=2, mode=Mode.DIMENSION)
        db.cluster.fail_worker(2)
        result, report = db.search(tiny_queries, k=5)
        np.testing.assert_array_equal(result.ids, ref_ids)
        assert report.worker_loads[2] == 0.0

    def test_survives_r_minus_one_failures(self, reference, tiny_queries):
        index, ref_ids = reference
        db = deploy(index, tiny_queries, replicas=4)
        for worker in (0, 1, 2):
            db.cluster.fail_worker(worker)
        result, report = db.search(tiny_queries, k=5)
        np.testing.assert_array_equal(result.ids, ref_ids)
        assert report.worker_loads[3] > 0
        np.testing.assert_allclose(report.worker_loads[:3], 0.0)

    def test_too_many_failures_fatal(self, reference, tiny_queries):
        index, _ = reference
        db = deploy(index, tiny_queries, replicas=2)
        db.cluster.fail_worker(0)
        db.cluster.fail_worker(1)
        db.cluster.fail_worker(2)
        with pytest.raises(RuntimeError, match="no live replica"):
            db.search(tiny_queries, k=5)

    def test_restore_rebalances(self, reference, tiny_queries):
        index, ref_ids = reference
        db = deploy(index, tiny_queries, replicas=2)
        db.cluster.fail_worker(0)
        db.search(tiny_queries, k=5)
        db.cluster.restore_worker(0)
        result, report = db.search(tiny_queries, k=5)
        np.testing.assert_array_equal(result.ids, ref_ids)
        assert report.worker_loads[0] > 0

    def test_failover_degrades_gracefully(self, medium_data, medium_queries):
        """Losing a worker costs throughput but not much more than the
        lost capacity share."""
        index = IVFFlatIndex(dim=48, nlist=16, seed=0)
        index.train(medium_data)
        index.add(medium_data)
        db = deploy(index, medium_queries, replicas=2)
        _, healthy = db.search(medium_queries, k=5)
        db.cluster.fail_worker(1)
        _, degraded = db.search(medium_queries, k=5)
        assert degraded.qps < healthy.qps
        assert degraded.qps > healthy.qps * 0.4  # 3 of 4 workers remain
