"""Unit tests for repro.distance.kernels."""

import numpy as np
import pytest

from repro.distance.kernels import (
    pairwise_inner_product,
    pairwise_squared_l2,
    top_k_smallest,
)
from repro.distance.metrics import squared_l2


class TestPairwiseSquaredL2:
    def test_shape(self):
        rng = np.random.default_rng(0)
        out = pairwise_squared_l2(
            rng.standard_normal((5, 8)), rng.standard_normal((7, 8))
        )
        assert out.shape == (5, 7)

    def test_matches_rowwise_definition(self):
        rng = np.random.default_rng(1)
        queries = rng.standard_normal((4, 12))
        base = rng.standard_normal((6, 12))
        out = pairwise_squared_l2(queries, base)
        for i in range(4):
            for j in range(6):
                assert out[i, j] == pytest.approx(
                    float(squared_l2(queries[i], base[j])), rel=1e-9, abs=1e-9
                )

    def test_self_distance_zero(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((5, 10))
        out = pairwise_squared_l2(x, x)
        np.testing.assert_allclose(np.diag(out), 0.0, atol=1e-9)

    def test_never_negative(self):
        rng = np.random.default_rng(3)
        # Nearly identical points stress floating-point cancellation.
        base = rng.standard_normal((100, 32))
        queries = base + 1e-8
        out = pairwise_squared_l2(queries, base)
        assert np.all(out >= 0.0)

    def test_single_vector_inputs(self):
        out = pairwise_squared_l2(np.ones(4), np.zeros(4))
        assert out.shape == (1, 1)
        assert out[0, 0] == pytest.approx(4.0)


class TestPairwiseInnerProduct:
    def test_matches_matmul(self):
        rng = np.random.default_rng(4)
        q = rng.standard_normal((3, 9))
        b = rng.standard_normal((5, 9))
        np.testing.assert_allclose(
            pairwise_inner_product(q, b), q @ b.T, rtol=1e-12
        )

    def test_shape(self):
        out = pairwise_inner_product(np.ones((2, 4)), np.ones((3, 4)))
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out, 4.0)


class TestTopKSmallest:
    def test_basic(self):
        values = np.array([5.0, 1.0, 3.0, 2.0])
        ids, vals = top_k_smallest(values, 2)
        np.testing.assert_array_equal(ids, [1, 3])
        np.testing.assert_array_equal(vals, [1.0, 2.0])

    def test_k_equals_length(self):
        values = np.array([3.0, 1.0, 2.0])
        ids, vals = top_k_smallest(values, 3)
        np.testing.assert_array_equal(ids, [1, 2, 0])
        np.testing.assert_array_equal(vals, [1.0, 2.0, 3.0])

    def test_k_larger_than_length(self):
        ids, vals = top_k_smallest(np.array([2.0, 1.0]), 10)
        np.testing.assert_array_equal(ids, [1, 0])

    def test_ties_broken_by_index(self):
        values = np.array([1.0, 1.0, 1.0, 0.5])
        ids, _ = top_k_smallest(values, 3)
        np.testing.assert_array_equal(ids, [3, 0, 1])

    def test_values_sorted_ascending(self):
        rng = np.random.default_rng(5)
        values = rng.standard_normal(200)
        _, vals = top_k_smallest(values, 50)
        assert np.all(np.diff(vals) >= 0)

    def test_matches_full_sort(self):
        rng = np.random.default_rng(6)
        values = rng.standard_normal(500)
        ids, _ = top_k_smallest(values, 20)
        expected = np.argsort(values, kind="stable")[:20]
        np.testing.assert_array_equal(ids, expected)

    def test_k_zero_raises(self):
        with pytest.raises(ValueError, match="k must be positive"):
            top_k_smallest(np.array([1.0]), 0)
