"""Unit tests for repro.core.heap."""

import math

import pytest

from repro.core.heap import TopKHeap


class TestTopKHeap:
    def test_invalid_k_raises(self):
        with pytest.raises(ValueError, match="k must be positive"):
            TopKHeap(0)

    def test_threshold_infinite_until_full(self):
        heap = TopKHeap(3)
        heap.push(1.0, 0)
        heap.push(2.0, 1)
        assert not heap.is_full
        assert heap.threshold == math.inf
        heap.push(3.0, 2)
        assert heap.is_full
        assert heap.threshold == 3.0

    def test_retains_k_smallest(self):
        heap = TopKHeap(3)
        for i, score in enumerate([5.0, 1.0, 4.0, 2.0, 3.0]):
            heap.push(score, i)
        items = heap.items()
        assert [s for s, _ in items] == [1.0, 2.0, 3.0]
        assert [i for _, i in items] == [1, 3, 4]

    def test_threshold_tightens(self):
        heap = TopKHeap(2)
        heap.push(10.0, 0)
        heap.push(8.0, 1)
        assert heap.threshold == 10.0
        heap.push(5.0, 2)
        assert heap.threshold == 8.0
        heap.push(1.0, 3)
        assert heap.threshold == 5.0

    def test_push_returns_retained(self):
        heap = TopKHeap(1)
        assert heap.push(5.0, 0)
        assert heap.push(3.0, 1)
        assert not heap.push(7.0, 2)

    def test_tie_broken_by_id(self):
        heap = TopKHeap(2)
        heap.push(1.0, 5)
        heap.push(1.0, 3)
        heap.push(1.0, 9)  # same score, larger id: rejected
        heap.push(1.0, 1)  # same score, smaller id: displaces id 5
        assert [i for _, i in heap.items()] == [1, 3]

    def test_equal_to_threshold_not_retained_with_larger_id(self):
        heap = TopKHeap(1)
        heap.push(2.0, 4)
        assert not heap.push(2.0, 7)
        assert heap.push(2.0, 2)

    def test_items_sorted_best_first(self):
        heap = TopKHeap(4)
        for i, s in enumerate([0.4, 0.1, 0.3, 0.2]):
            heap.push(s, i)
        scores = [s for s, _ in heap.items()]
        assert scores == sorted(scores)

    def test_len(self):
        heap = TopKHeap(5)
        assert len(heap) == 0
        heap.push(1.0, 0)
        assert len(heap) == 1

    def test_matches_sorted_reference(self):
        import numpy as np

        rng = np.random.default_rng(0)
        scores = rng.standard_normal(200)
        heap = TopKHeap(10)
        for i, s in enumerate(scores):
            heap.push(float(s), i)
        expected = sorted(zip(scores, range(200)))[:10]
        got = heap.items()
        for (es, ei), (gs, gi) in zip(expected, got):
            assert gi == ei
            assert gs == pytest.approx(float(es))
