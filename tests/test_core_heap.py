"""Unit tests for repro.core.heap."""

import math

import pytest

from repro.core.heap import TopKHeap


class TestTopKHeap:
    def test_invalid_k_raises(self):
        with pytest.raises(ValueError, match="k must be positive"):
            TopKHeap(0)

    def test_threshold_infinite_until_full(self):
        heap = TopKHeap(3)
        heap.push(1.0, 0)
        heap.push(2.0, 1)
        assert not heap.is_full
        assert heap.threshold == math.inf
        heap.push(3.0, 2)
        assert heap.is_full
        assert heap.threshold == 3.0

    def test_retains_k_smallest(self):
        heap = TopKHeap(3)
        for i, score in enumerate([5.0, 1.0, 4.0, 2.0, 3.0]):
            heap.push(score, i)
        items = heap.items()
        assert [s for s, _ in items] == [1.0, 2.0, 3.0]
        assert [i for _, i in items] == [1, 3, 4]

    def test_threshold_tightens(self):
        heap = TopKHeap(2)
        heap.push(10.0, 0)
        heap.push(8.0, 1)
        assert heap.threshold == 10.0
        heap.push(5.0, 2)
        assert heap.threshold == 8.0
        heap.push(1.0, 3)
        assert heap.threshold == 5.0

    def test_push_returns_retained(self):
        heap = TopKHeap(1)
        assert heap.push(5.0, 0)
        assert heap.push(3.0, 1)
        assert not heap.push(7.0, 2)

    def test_tie_broken_by_id(self):
        heap = TopKHeap(2)
        heap.push(1.0, 5)
        heap.push(1.0, 3)
        heap.push(1.0, 9)  # same score, larger id: rejected
        heap.push(1.0, 1)  # same score, smaller id: displaces id 5
        assert [i for _, i in heap.items()] == [1, 3]

    def test_equal_to_threshold_not_retained_with_larger_id(self):
        heap = TopKHeap(1)
        heap.push(2.0, 4)
        assert not heap.push(2.0, 7)
        assert heap.push(2.0, 2)

    def test_items_sorted_best_first(self):
        heap = TopKHeap(4)
        for i, s in enumerate([0.4, 0.1, 0.3, 0.2]):
            heap.push(s, i)
        scores = [s for s, _ in heap.items()]
        assert scores == sorted(scores)

    def test_len(self):
        heap = TopKHeap(5)
        assert len(heap) == 0
        heap.push(1.0, 0)
        assert len(heap) == 1

    def test_matches_sorted_reference(self):
        import numpy as np

        rng = np.random.default_rng(0)
        scores = rng.standard_normal(200)
        heap = TopKHeap(10)
        for i, s in enumerate(scores):
            heap.push(float(s), i)
        expected = sorted(zip(scores, range(200)))[:10]
        got = heap.items()
        for (es, ei), (gs, gi) in zip(expected, got):
            assert gi == ei
            assert gs == pytest.approx(float(es))


class TestPushMany:
    def _reference(self, k, batches):
        heap = TopKHeap(k)
        for scores, ids in batches:
            for s, i in zip(scores, ids):
                heap.push(float(s), int(i))
        return heap.items()

    def test_matches_sequential_pushes(self):
        import numpy as np

        rng = np.random.default_rng(1)
        for k in (1, 3, 10, 50):
            batches = [
                (rng.standard_normal(n), rng.integers(0, 1000, n))
                for n in (0, 1, 5, 40, 200)
            ]
            heap = TopKHeap(k)
            for scores, ids in batches:
                heap.push_many(scores, ids)
            assert heap.items() == self._reference(k, batches)

    def test_returns_retained_count(self):
        import numpy as np

        heap = TopKHeap(3)
        assert heap.push_many(np.array([3.0, 1.0, 2.0]), np.array([0, 1, 2])) == 3
        # All worse than the current threshold: nothing retained.
        assert heap.push_many(np.array([9.0, 8.0]), np.array([3, 4])) == 0
        # One better offer displaces the worst.
        assert heap.push_many(np.array([0.5]), np.array([5])) == 1

    def test_ties_broken_by_id(self):
        import numpy as np

        heap = TopKHeap(2)
        heap.push_many(np.array([1.0, 1.0, 1.0]), np.array([7, 3, 5]))
        assert [cid for _, cid in heap.items()] == [3, 5]
        # Equal score, larger id than the root: not retained.
        assert heap.push_many(np.array([1.0]), np.array([9])) == 0
        # Equal score, smaller id: displaces the root.
        assert heap.push_many(np.array([1.0]), np.array([1])) == 1
        assert [cid for _, cid in heap.items()] == [1, 3]

    def test_empty_and_shape_validation(self):
        import numpy as np

        heap = TopKHeap(2)
        assert heap.push_many(np.empty(0), np.empty(0, dtype=np.int64)) == 0
        with pytest.raises(ValueError, match="congruent"):
            heap.push_many(np.ones(3), np.ones(2, dtype=np.int64))

    def test_oversized_batch_keeps_k_smallest(self):
        import numpy as np

        rng = np.random.default_rng(2)
        scores = rng.standard_normal(500)
        ids = np.arange(500)
        heap = TopKHeap(4)
        heap.push_many(scores, ids)
        expected = sorted(zip(scores.tolist(), ids.tolist()))[:4]
        got = heap.items()
        assert [cid for _, cid in got] == [cid for _, cid in expected]
