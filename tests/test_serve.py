"""Serving layer: coalescing, deadlines, admission control, plumbing."""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.core.config import SHED_POLICIES, HarmonyConfig
from repro.obs.metrics import MetricsRegistry, report_metrics
from repro.serve import (
    SERVE_LANE,
    HarmonyServer,
    RequestRejected,
    RequestShed,
    ServerClosed,
    make_serial_oracle,
    verify_against_oracle,
)

from conftest import make_db


@pytest.fixture(scope="module")
def serve_db(request):
    """One thread-backend deployment shared by the serving tests."""
    from repro.data.synthetic import gaussian_blobs

    data = gaussian_blobs(1200, 32, n_blobs=10, cluster_std=0.4, seed=3)
    db = make_db(data, nlist=16, nprobe=4, backend="thread")
    request.addfinalizer(db.close)
    return db


@pytest.fixture(scope="module")
def serve_queries():
    from repro.data.synthetic import gaussian_blobs

    return gaussian_blobs(1264, 32, n_blobs=10, cluster_std=0.4, seed=3)[1200:]


def test_submit_matches_serial_oracle(serve_db, serve_queries):
    oracle = make_serial_oracle(serve_db)
    with serve_db.serve(max_batch=8) as server:
        futures = [server.submit(q, k=5) for q in serve_queries]
        responses = [f.result(timeout=30) for f in futures]
    assert verify_against_oracle(responses, serve_queries, oracle) == []
    for response in responses:
        assert response.ids.shape == (5,)
        assert response.distances.shape == (5,)
        assert not response.degraded
        assert response.nprobe_used == serve_db.config.nprobe
        assert response.e2e_seconds >= response.service_seconds


def test_full_batch_coalesces(serve_db, serve_queries):
    """A paused server accumulates requests into one full batch."""
    with serve_db.serve(max_batch=16, queue_depth=64) as server:
        server.pause()
        futures = [server.submit(q, k=3) for q in serve_queries[:16]]
        assert server.depth == 16
        server.resume()
        responses = [f.result(timeout=30) for f in futures]
    assert all(r.batch_size == 16 for r in responses)
    assert server.stats.batches == 1
    assert server.stats.completed == 16


def test_deadline_flushes_partial_batch(serve_db, serve_queries):
    """A lone request flushes after ~slo_ms * deadline_fraction."""
    with serve_db.serve(
        max_batch=64, slo_ms=40.0, deadline_fraction=0.25
    ) as server:
        t0 = time.perf_counter()
        response = server.submit(serve_queries[0], k=3).result(timeout=30)
        elapsed = time.perf_counter() - t0
    assert response.batch_size == 1
    # Flushed by the 10 ms deadline, not instantly and not never.
    assert 0.005 < elapsed < 5.0
    assert response.queue_seconds >= 0.005


def test_incompatible_requests_split_batches(serve_db, serve_queries):
    """Mixed k / nprobe submissions never share a batch."""
    with serve_db.serve(max_batch=32, queue_depth=64) as server:
        server.pause()
        futures = []
        for i, q in enumerate(serve_queries[:12]):
            k = 3 if i % 2 == 0 else 7
            futures.append(server.submit(q, k=k))
        server.resume()
        responses = [f.result(timeout=30) for f in futures]
    for i, response in enumerate(responses):
        assert response.k == (3 if i % 2 == 0 else 7)
        assert response.ids.shape == (response.k,)
    oracle = make_serial_oracle(serve_db)
    assert verify_against_oracle(responses, serve_queries[:12], oracle) == []
    # Alternating keys force single-request batches: the head run stops
    # at every boundary.
    assert server.stats.batches == 12


def test_reject_policy(serve_db, serve_queries):
    with serve_db.serve(
        max_batch=4, queue_depth=4, shed_policy="reject"
    ) as server:
        server.pause()
        futures = [server.submit(q, k=3) for q in serve_queries[:7]]
        assert server.depth == 4  # the excess three never entered
        server.resume()
        # The first four complete; the overflow three were rejected.
        for future in futures[:4]:
            assert future.result(timeout=30).ids.shape == (3,)
        for future in futures[4:]:
            with pytest.raises(RequestRejected):
                future.result(timeout=30)
    assert server.stats.rejected == 3
    assert server.stats.submitted == 7
    assert server.stats.completed == 4


def test_shed_oldest_policy(serve_db, serve_queries):
    with serve_db.serve(
        max_batch=4, queue_depth=4, shed_policy="shed_oldest"
    ) as server:
        server.pause()
        futures = [server.submit(q, k=3) for q in serve_queries[:6]]
        server.resume()
        # The two oldest were evicted to admit the two newest.
        for future in futures[:2]:
            with pytest.raises(RequestShed):
                future.result(timeout=30)
        for future in futures[2:]:
            assert future.result(timeout=30).ids.shape == (3,)
    assert server.stats.shed == 2
    assert server.stats.completed == 4


def test_degrade_nprobe_policy(serve_db, serve_queries):
    """Overload admissions run at half nprobe, flagged, still exact."""
    oracle = make_serial_oracle(serve_db)
    with serve_db.serve(
        max_batch=8, queue_depth=4, shed_policy="degrade_nprobe"
    ) as server:
        server.pause()
        futures = [server.submit(q, k=3) for q in serve_queries[:10]]
        assert server.depth == 8  # capped at 2 x queue_depth
        server.resume()
        responses = []
        for future in futures:
            try:
                responses.append(future.result(timeout=30))
            except RequestShed as exc:
                responses.append(exc)
    shed = [r for r in responses if isinstance(r, BaseException)]
    # Everything was admitted up to the 2x hard cap; beyond it the
    # oldest were shed.
    completed = []
    for future_result in responses:
        if not isinstance(future_result, BaseException):
            completed.append(future_result)
    assert server.stats.degraded == 6
    normal = [r for r in completed if not r.degraded]
    degraded = [r for r in completed if r.degraded]
    assert len(normal) + len(degraded) + len(shed) == 10
    assert all(
        r.nprobe_used == serve_db.config.nprobe // 2 for r in degraded
    )
    # Degraded answers are exact at their reduced nprobe.
    checkable = [
        (i, r)
        for i, r in enumerate(responses)
        if not isinstance(r, BaseException)
    ]
    indices = [i for i, _ in checkable]
    assert (
        verify_against_oracle(
            [r for _, r in checkable],
            serve_queries[:10][indices],
            oracle,
        )
        == []
    )


def test_degrade_hard_cap_sheds(serve_db, serve_queries):
    with serve_db.serve(
        max_batch=4, queue_depth=2, shed_policy="degrade_nprobe"
    ) as server:
        server.pause()
        futures = [server.submit(q, k=3) for q in serve_queries[:6]]
        assert server.depth == 4  # hard cap at 2 x queue_depth
        server.resume()
        outcomes = []
        for future in futures:
            try:
                outcomes.append(future.result(timeout=30))
            except RequestShed:
                outcomes.append("shed")
    assert outcomes.count("shed") == 2
    assert server.stats.shed == 2
    assert server.stats.degraded == 4


def test_submit_after_close_raises(serve_db, serve_queries):
    server = serve_db.serve()
    future = server.submit(serve_queries[0], k=3)
    server.close()
    assert future.result(timeout=30).ids.shape == (3,)
    with pytest.raises(ServerClosed):
        server.submit(serve_queries[1], k=3)
    server.close()  # idempotent


def test_close_drains_pending(serve_db, serve_queries):
    server = serve_db.serve(max_batch=64, slo_ms=10_000.0)
    server.pause()
    futures = [server.submit(q, k=3) for q in serve_queries[:8]]
    server.close()  # resumes, flushes immediately, joins
    for future in futures:
        assert future.result(timeout=30).ids.shape == (3,)


def test_submit_validation(serve_db, serve_queries):
    with serve_db.serve() as server:
        with pytest.raises(ValueError, match="one query"):
            server.submit(serve_queries[:2], k=3)
        with pytest.raises(ValueError, match="k must be positive"):
            server.submit(serve_queries[0], k=0)
        with pytest.raises(ValueError, match="nprobe must be positive"):
            server.submit(serve_queries[0], k=3, nprobe=0)
        # A (1, dim) row vector is accepted as a single query.
        response = server.submit(serve_queries[:1], k=3).result(timeout=30)
        assert response.ids.shape == (3,)


def test_asyncio_facade(serve_db, serve_queries):
    oracle = make_serial_oracle(serve_db)

    async def drive(server):
        return await asyncio.gather(
            *(server.asubmit(q, k=4) for q in serve_queries[:12])
        )

    with serve_db.serve(max_batch=8) as server:
        responses = asyncio.run(drive(server))
    assert verify_against_oracle(responses, serve_queries[:12], oracle) == []


def test_asyncio_facade_surfaces_admission_errors(serve_db, serve_queries):
    async def drive(server):
        server.pause()
        futures = [
            server.asubmit(q, k=3) for q in serve_queries[:6]
        ]
        tasks = [asyncio.ensure_future(f) for f in futures]
        await asyncio.sleep(0)
        server.resume()
        return await asyncio.gather(*tasks, return_exceptions=True)

    with serve_db.serve(
        max_batch=4, queue_depth=4, shed_policy="reject"
    ) as server:
        outcomes = asyncio.run(drive(server))
    assert sum(isinstance(o, RequestRejected) for o in outcomes) == 2


def test_batch_report_latencies_per_request(serve_db, serve_queries):
    """Satellite fix: served batches report per-request e2e latency."""
    with serve_db.serve(max_batch=8, queue_depth=64) as server:
        server.pause()
        futures = [server.submit(q, k=3) for q in serve_queries[:8]]
        time.sleep(0.03)
        server.resume()
        responses = [f.result(timeout=30) for f in futures]
    report = server.last_report
    assert report is not None
    assert report.latencies.size == 8
    # Queue wait (>= 30 ms here) dominates service; per-request
    # latency must include it, not just the batch wall time.
    assert report.latency_percentile(50) >= 0.03
    assert all(
        report.latencies[i]
        >= report.simulated_seconds - 1e-9
        for i in range(8)
    )
    assert report.queue_seconds == pytest.approx(
        sum(r.queue_seconds for r in responses), rel=1e-6
    )
    payload = report.to_dict()
    assert payload["queue_seconds"] > 0.0
    import json

    json.dumps(payload, allow_nan=False)


def test_serve_metrics_families(serve_db, serve_queries):
    registry = MetricsRegistry()
    with serve_db.serve(
        max_batch=4, queue_depth=4, shed_policy="reject", metrics=registry
    ) as server:
        server.pause()
        futures = [server.submit(q, k=3) for q in serve_queries[:6]]
        server.resume()
        for future in futures[:4]:
            future.result(timeout=30)
    families = registry.families()
    for name in (
        "harmony_serve_requests_total",
        "harmony_serve_rejected_total",
        "harmony_serve_batches_total",
        "harmony_serve_batch_size",
        "harmony_serve_queue_depth",
        "harmony_serve_queue_wait_seconds",
        "harmony_serve_service_seconds",
        "harmony_serve_e2e_latency_seconds",
    ):
        assert name in families, name
    text = registry.to_prometheus()
    assert "harmony_serve_requests_total 6" in text
    assert "harmony_serve_rejected_total 2" in text


def test_report_metrics_publishes_serve_counters(serve_db, serve_queries):
    with serve_db.serve(max_batch=8) as server:
        futures = [server.submit(q, k=3) for q in serve_queries[:8]]
        for future in futures:
            future.result(timeout=30)
    registry = report_metrics(server.last_report)
    families = registry.families()
    assert "harmony_queue_wait_seconds_total" in families
    # The thread backend routes through the routing cache, so one of
    # the hit/miss counters must have moved.
    assert (
        "harmony_routing_cache_hits_total" in families
        or "harmony_routing_cache_misses_total" in families
    )


def test_serve_batch_trace_span(serve_db, serve_queries):
    serve_db.enable_tracing()
    try:
        with serve_db.serve(max_batch=8) as server:
            futures = [server.submit(q, k=3) for q in serve_queries[:8]]
            for future in futures:
                future.result(timeout=30)
            time.sleep(0.01)
            spans = [
                s for s in serve_db.tracer.spans() if s.name == "serve-batch"
            ]
    finally:
        serve_db.disable_tracing()
    assert spans, "no serve-batch span recorded"
    span = spans[-1]
    assert span.node == SERVE_LANE
    args = dict(span.args)
    assert args["batch"] == 8
    assert args["k"] == 3


def test_serve_requires_built_db():
    from repro.core.database import HarmonyDB

    empty = HarmonyDB(dim=8, config=HarmonyConfig(nlist=4, n_machines=2))
    with pytest.raises(RuntimeError, match="build"):
        empty.serve()


def test_server_rejects_bad_overrides(serve_db):
    with pytest.raises(ValueError, match="shed_policy"):
        serve_db.serve(shed_policy="drop_everything")
    with pytest.raises(ValueError, match="max_batch"):
        serve_db.serve(max_batch=0)
    with pytest.raises(ValueError, match="deadline_fraction"):
        serve_db.serve(deadline_fraction=1.5)
    with pytest.raises(ValueError, match="queue_depth"):
        serve_db.serve(queue_depth=-1)
    with pytest.raises(ValueError, match="slo_ms"):
        serve_db.serve(slo_ms=0.0)


def test_config_serve_knob_validation():
    with pytest.raises(ValueError, match="serve_max_batch"):
        HarmonyConfig(serve_max_batch=0)
    with pytest.raises(ValueError, match="serve_slo_ms"):
        HarmonyConfig(serve_slo_ms=-1.0)
    with pytest.raises(ValueError, match="serve_deadline_fraction"):
        HarmonyConfig(serve_deadline_fraction=0.0)
    with pytest.raises(ValueError, match="serve_queue_depth"):
        HarmonyConfig(serve_queue_depth=0)
    with pytest.raises(ValueError, match="serve_shed_policy"):
        HarmonyConfig(serve_shed_policy="nope")
    # Dashes normalize to underscores, case-insensitively.
    config = HarmonyConfig(serve_shed_policy="Degrade-Nprobe")
    assert config.serve_shed_policy == "degrade_nprobe"
    assert config.serve_shed_policy in SHED_POLICIES


def test_serve_knobs_survive_save_load(tmp_path, serve_db, serve_queries):
    from repro.core.database import HarmonyDB

    db = make_db(
        np.asarray(serve_queries, dtype=np.float32).repeat(20, axis=0),
        nlist=8,
        backend="thread",
        serve_max_batch=48,
        serve_slo_ms=12.5,
        serve_deadline_fraction=0.5,
        serve_queue_depth=99,
        serve_shed_policy="shed_oldest",
    )
    path = tmp_path / "serve_knobs.npz"
    db.save(path)
    db.close()
    loaded = HarmonyDB.load(path)
    try:
        config = loaded.config
        assert config.serve_max_batch == 48
        assert config.serve_slo_ms == 12.5
        assert config.serve_deadline_fraction == 0.5
        assert config.serve_queue_depth == 99
        assert config.serve_shed_policy == "shed_oldest"
        server = loaded.serve()
        assert server.max_batch == 48
        assert server.queue_depth == 99
        assert server.shed_policy == "shed_oldest"
        assert server.flush_deadline_seconds == pytest.approx(0.00625)
        server.close()
    finally:
        loaded.close()


# ---------------------------------------------------------------------------
# Deadline-aware execution + flusher crash-safety
# ---------------------------------------------------------------------------


def test_deadline_policy_defaults_to_block(serve_db):
    with serve_db.serve() as server:
        assert server.deadline_policy == "block"
    with pytest.raises(ValueError, match="deadline_policy"):
        serve_db.serve(deadline_policy="hope")
    with pytest.raises(ValueError, match="serve_deadline_policy"):
        HarmonyConfig(serve_deadline_policy="nope")
    assert (
        HarmonyConfig(serve_deadline_policy="Partial").serve_deadline_policy
        == "partial"
    )


def test_partial_policy_resolves_expired_waiters(
    serve_db, serve_queries, monkeypatch
):
    """A batch blowing the deadline yields a flagged empty partial."""
    real_search = serve_db.search

    def slow_search(*args, **kwargs):
        time.sleep(0.3)
        return real_search(*args, **kwargs)

    monkeypatch.setattr(serve_db, "search", slow_search)
    with serve_db.serve(slo_ms=50.0, deadline_policy="partial") as server:
        t0 = time.perf_counter()
        response = server.submit(serve_queries[0], k=4).result(timeout=30)
        elapsed = time.perf_counter() - t0
        assert response.timed_out and response.degraded
        assert np.all(response.ids == -1)
        assert np.all(np.isinf(response.distances))
        # Resolved at the ~50 ms deadline, not after the 300 ms search.
        assert elapsed < 0.25
        assert server.stats.deadline_exceeded == 1
        assert server.stats.completed == 1
        # The flusher survived; once the abandoned search drains off
        # the helper thread, a fast request gets real results.
        monkeypatch.setattr(serve_db, "search", real_search)
        time.sleep(0.35)
        again = server.submit(serve_queries[1], k=4).result(timeout=30)
        assert not again.timed_out
        assert np.any(again.ids >= 0)
    stats = server.stats
    assert stats.submitted == stats.completed + stats.rejected + (
        stats.shed + stats.failed
    )


def test_timeout_policy_raises_typed_timeout(
    serve_db, serve_queries, monkeypatch
):
    from repro.serve import RequestTimeout

    real_search = serve_db.search

    def slow_search(*args, **kwargs):
        time.sleep(0.3)
        return real_search(*args, **kwargs)

    monkeypatch.setattr(serve_db, "search", slow_search)
    with serve_db.serve(slo_ms=50.0, deadline_policy="timeout") as server:
        future = server.submit(serve_queries[0], k=4)
        with pytest.raises(RequestTimeout):
            future.result(timeout=30)
        assert server.stats.deadline_exceeded == 1
        assert server.stats.failed == 1
        monkeypatch.setattr(serve_db, "search", real_search)
        time.sleep(0.35)
        ok = server.submit(serve_queries[1], k=4).result(timeout=30)
        assert np.any(ok.ids >= 0)
    stats = server.stats
    assert stats.submitted == stats.completed + stats.rejected + (
        stats.shed + stats.failed
    )


def test_flusher_survives_batch_crash(serve_db, serve_queries, monkeypatch):
    """A search exception fails that batch's futures, not the flusher."""
    real_search = serve_db.search
    crashes = {"left": 1}

    def flaky_search(*args, **kwargs):
        if crashes["left"] > 0:
            crashes["left"] -= 1
            raise RuntimeError("injected batch crash")
        return real_search(*args, **kwargs)

    monkeypatch.setattr(serve_db, "search", flaky_search)
    registry = MetricsRegistry()
    with serve_db.serve(metrics=registry) as server:
        doomed = server.submit(serve_queries[0], k=4)
        with pytest.raises(RuntimeError, match="injected batch crash"):
            doomed.result(timeout=30)
        assert server.stats.failed == 1
        assert server._thread.is_alive()
        ok = server.submit(serve_queries[1], k=4).result(timeout=30)
        assert np.any(ok.ids >= 0)
        assert server.stats.completed >= 1
    sample = registry.to_prometheus()
    assert "harmony_serve_failed_total 1" in sample
    stats = server.stats
    assert stats.submitted == stats.completed + stats.rejected + (
        stats.shed + stats.failed
    )


def test_deadline_metric_published(serve_db, serve_queries, monkeypatch):
    real_search = serve_db.search

    def slow_search(*args, **kwargs):
        time.sleep(0.2)
        return real_search(*args, **kwargs)

    monkeypatch.setattr(serve_db, "search", slow_search)
    registry = MetricsRegistry()
    with serve_db.serve(
        slo_ms=40.0, deadline_policy="partial", metrics=registry
    ) as server:
        server.submit(serve_queries[0], k=3).result(timeout=30)
    sample = registry.to_prometheus()
    assert "harmony_serve_deadline_exceeded_total 1" in sample
    assert server.stats.slo_violations >= 1


# ---------------------------------------------------------------------------
# Result-cache fast path: hits resolve at submit, ahead of admission
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def cached_serve_db(request):
    """A thread-backend deployment with the result cache attached."""
    from repro.data.synthetic import gaussian_blobs

    data = gaussian_blobs(1200, 32, n_blobs=10, cluster_std=0.4, seed=3)
    db = make_db(
        data, nlist=16, nprobe=4, backend="thread", enable_cache=True
    )
    request.addfinalizer(db.close)
    return db


def test_cache_hits_bypass_admission_control(cached_serve_db, serve_queries):
    """Under a saturated queue, cached requests still complete: the
    fast path answers at submit time (zero queue wait, ``cache_hit``
    flagged) while cold requests past capacity are rejected."""
    db = cached_serve_db
    hot = serve_queries[:8]
    warm, _ = db.search(hot, k=5)  # fill the cache
    registry = MetricsRegistry()
    with db.serve(
        max_batch=4, queue_depth=2, shed_policy="reject", metrics=registry
    ) as server:
        server.pause()  # nothing drains: the queue saturates
        cold_futures = [server.submit(q, k=7) for q in serve_queries[8:12]]
        hot_responses = []
        for q in hot:
            # Resolved immediately, without resume() and with the
            # queue already full.
            hot_responses.append(server.submit(q, k=5).result(timeout=1))
        server.resume()
        for future in cold_futures[:2]:
            assert future.result(timeout=30).ids.shape == (7,)
        for future in cold_futures[2:]:
            with pytest.raises(RequestRejected):
                future.result(timeout=30)
    for i, response in enumerate(hot_responses):
        assert response.cache_hit
        assert response.queue_seconds == 0.0
        assert response.batch_size == 1
        assert not response.degraded
        np.testing.assert_array_equal(response.ids, warm.ids[i])
        np.testing.assert_array_equal(response.distances, warm.distances[i])
    assert server.stats.cache_hits == len(hot)
    assert server.stats.completed == len(hot) + 2
    assert server.stats.rejected == 2
    sample = registry.to_prometheus()
    assert "harmony_serve_cache_hits_total 8" in sample


def test_cold_requests_take_the_batched_path(cached_serve_db, serve_queries):
    """Misses flow through the micro-batch queue unchanged, and the
    answers they produce seed the cache for later submits."""
    db = cached_serve_db
    queries = serve_queries[10:14]
    with db.serve(max_batch=4, queue_depth=16) as server:
        server.pause()
        futures = [server.submit(q, k=9) for q in queries]
        server.resume()
        first = [f.result(timeout=30) for f in futures]
        assert all(not r.cache_hit for r in first)
        assert all(r.batch_size == 4 for r in first)
        # Identical re-submits now hit at submit time.
        second = [
            server.submit(q, k=9).result(timeout=1) for q in queries
        ]
    for a, b in zip(first, second):
        assert b.cache_hit
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_array_equal(a.distances, b.distances)
    oracle = make_serial_oracle(db)
    assert verify_against_oracle(first, queries, oracle) == []
    assert verify_against_oracle(second, queries, oracle) == []
