"""Additional property-based tests: partitioning, cost model, engine on
irregular machine counts and dimensions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition import (
    assign_lists_balanced,
    build_plan,
    grid_shapes,
    round_robin_placement,
)


class TestGridShapeProperties:
    @given(n=st.integers(1, 64))
    @settings(max_examples=64, deadline=None)
    def test_every_shape_multiplies_to_n(self, n):
        for b_vec, b_dim in grid_shapes(n):
            assert b_vec * b_dim == n
            assert b_vec >= 1 and b_dim >= 1

    @given(n=st.integers(1, 64))
    @settings(max_examples=64, deadline=None)
    def test_extremes_always_present(self, n):
        shapes = grid_shapes(n)
        assert (n, 1) in shapes
        assert (1, n) in shapes

    @given(n=st.integers(1, 200))
    @settings(max_examples=60, deadline=None)
    def test_shapes_sorted_and_unique(self, n):
        shapes = grid_shapes(n)
        assert shapes == sorted(set(shapes))


class TestAssignmentProperties:
    @given(
        weights=st.lists(
            st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
            min_size=1,
            max_size=100,
        ),
        n_shards=st.integers(1, 12),
    )
    @settings(max_examples=80, deadline=None)
    def test_balanced_assignment_is_complete_and_in_range(
        self, weights, n_shards
    ):
        assignment = assign_lists_balanced(np.array(weights), n_shards)
        assert assignment.shape == (len(weights),)
        assert assignment.min() >= 0
        assert assignment.max() < n_shards

    @given(
        weights=st.lists(
            st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
            min_size=8,
            max_size=64,
        ),
        n_shards=st.integers(2, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_balanced_within_lpt_bound(self, weights, n_shards):
        """Greedy LPT keeps the max shard within (4/3 - 1/3m) of ideal
        plus one max item — we assert the coarser classical bound:
        max_load <= mean_load + max_weight."""
        w = np.array(weights)
        assignment = assign_lists_balanced(w, n_shards)
        shard_loads = np.zeros(n_shards)
        np.add.at(shard_loads, assignment, w)
        assert shard_loads.max() <= w.sum() / n_shards + w.max() + 1e-9

    @given(
        b_vec=st.integers(1, 8),
        b_dim=st.integers(1, 8),
        n_machines=st.integers(1, 16),
    )
    @settings(max_examples=80, deadline=None)
    def test_placement_in_range(self, b_vec, b_dim, n_machines):
        placement = round_robin_placement(b_vec, b_dim, n_machines)
        assert placement.shape == (b_vec, b_dim)
        assert placement.min() >= 0
        assert placement.max() < n_machines

    @given(n_machines=st.integers(1, 16))
    @settings(max_examples=16, deadline=None)
    def test_exact_grid_uses_all_machines(self, n_machines):
        for b_vec, b_dim in grid_shapes(n_machines):
            placement = round_robin_placement(b_vec, b_dim, n_machines)
            assert set(placement.ravel()) == set(range(n_machines))


class TestEngineIrregularConfigs:
    @pytest.mark.parametrize("n_machines", [2, 3, 5, 6, 7])
    def test_prime_and_odd_machine_counts(
        self, trained_index, tiny_queries, n_machines
    ):
        """Engine exactness for machine counts with awkward factorings."""
        from repro.cluster.cluster import Cluster
        from repro.core.config import HarmonyConfig, Mode
        from repro.core.database import HarmonyDB

        ref_d, ref_i = trained_index.search(tiny_queries, k=5, nprobe=4)
        for mode in (Mode.HARMONY, Mode.VECTOR, Mode.DIMENSION):
            db = HarmonyDB.from_trained_index(
                trained_index,
                config=HarmonyConfig(
                    n_machines=n_machines, nlist=16, nprobe=4, mode=mode
                ),
                cluster=Cluster(n_machines),
                sample_queries=tiny_queries,
            )
            result, _ = db.search(tiny_queries, k=5)
            np.testing.assert_array_equal(result.ids, ref_i)

    @pytest.mark.parametrize("dim", [5, 17, 33])
    def test_dims_not_divisible_by_blocks(self, dim):
        """Uneven dimension slices must stay lossless."""
        from repro.cluster.cluster import Cluster
        from repro.core.config import HarmonyConfig, Mode
        from repro.core.database import HarmonyDB
        from repro.data.synthetic import gaussian_blobs
        from repro.index.ivf import IVFFlatIndex

        data = gaussian_blobs(300, dim, n_blobs=4, seed=3)
        queries = gaussian_blobs(310, dim, n_blobs=4, seed=3)[300:]
        index = IVFFlatIndex(dim=dim, nlist=8, seed=0)
        index.train(data)
        index.add(data)
        ref_d, ref_i = index.search(queries, k=3, nprobe=4)
        db = HarmonyDB.from_trained_index(
            index,
            config=HarmonyConfig(
                n_machines=4, nlist=8, nprobe=4, mode=Mode.DIMENSION
            ),
            cluster=Cluster(4),
            sample_queries=queries,
        )
        result, _ = db.search(queries, k=3)
        np.testing.assert_array_equal(result.ids, ref_i)

    def test_more_machines_than_lists_grid(self, tiny_data, tiny_queries):
        """A 16-machine grid over a 16-list index still works."""
        from repro.cluster.cluster import Cluster
        from repro.core.config import HarmonyConfig
        from repro.core.database import HarmonyDB
        from repro.index.ivf import IVFFlatIndex

        index = IVFFlatIndex(dim=32, nlist=16, seed=0)
        index.train(tiny_data)
        index.add(tiny_data)
        db = HarmonyDB.from_trained_index(
            index,
            config=HarmonyConfig(n_machines=16, nlist=16, nprobe=4),
            cluster=Cluster(16),
            sample_queries=tiny_queries,
        )
        result, _ = db.search(tiny_queries, k=5)
        _, ref_i = index.search(tiny_queries, k=5, nprobe=4)
        np.testing.assert_array_equal(result.ids, ref_i)


class TestSimulationInvariants:
    @given(seed=st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_makespan_bounds(self, seed):
        """Makespan >= any worker's busy time; breakdown >= makespan
        is NOT required (overlap), but breakdown >= max busy is."""
        from repro.cluster.cluster import Cluster
        from repro.core.config import HarmonyConfig
        from repro.core.database import HarmonyDB
        from repro.data.synthetic import gaussian_blobs

        data = gaussian_blobs(300, 16, n_blobs=4, seed=seed)
        queries = gaussian_blobs(310, 16, n_blobs=4, seed=seed)[300:]
        db = HarmonyDB(
            dim=16,
            config=HarmonyConfig(n_machines=4, nlist=8, nprobe=4, seed=0),
            cluster=Cluster(4),
        )
        db.build(data, sample_queries=queries)
        _, report = db.search(queries, k=3)
        worker_busy = [
            w.breakdown.total for w in db.cluster.workers
        ]
        assert report.simulated_seconds >= max(worker_busy) - 1e-12
        assert report.simulated_seconds > 0
        assert np.all(report.latencies <= report.simulated_seconds + 1e-12)

    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_pruning_never_increases_computation(self, seed):
        from repro.cluster.cluster import Cluster
        from repro.core.config import HarmonyConfig, Mode
        from repro.core.database import HarmonyDB
        from repro.data.synthetic import gaussian_blobs

        data = gaussian_blobs(400, 16, n_blobs=4, seed=seed)
        queries = gaussian_blobs(420, 16, n_blobs=4, seed=seed)[400:]

        def comp(pruning):
            db = HarmonyDB(
                dim=16,
                config=HarmonyConfig(
                    n_machines=4,
                    nlist=8,
                    nprobe=4,
                    mode=Mode.DIMENSION,
                    enable_pruning=pruning,
                    seed=0,
                ),
                cluster=Cluster(4),
            )
            db.build(data, sample_queries=queries)
            _, report = db.search(queries, k=3)
            return report.breakdown.computation

        assert comp(True) <= comp(False) + 1e-12
