"""The paper's analytic claims, verified against measurements.

Sections 4.2.2 and 4.3 make quantitative claims about HARMONY's
complexity; each test here measures the corresponding quantity on the
simulator and checks the claimed relationship.
"""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.core.config import HarmonyConfig, Mode
from repro.core.database import HarmonyDB
from repro.data.synthetic import gaussian_blobs
from repro.index.ivf import IVFFlatIndex


@pytest.fixture(scope="module")
def setup():
    data = gaussian_blobs(4000, 64, n_blobs=12, cluster_std=0.5, seed=19)
    queries = gaussian_blobs(4080, 64, n_blobs=12, cluster_std=0.5, seed=19)[4000:]
    index = IVFFlatIndex(dim=64, nlist=16, seed=0)
    index.train(data)
    index.add(data)
    return index, queries


def run_grid(index, queries, b_vec, b_dim, **overrides):
    config = HarmonyConfig(
        n_machines=b_vec * b_dim,
        nlist=index.nlist,
        nprobe=4,
        forced_grid=(b_vec, b_dim),
        seed=0,
        **overrides,
    )
    db = HarmonyDB.from_trained_index(
        index,
        config=config,
        cluster=Cluster(b_vec * b_dim),
        sample_queries=queries,
    )
    _, report = db.search(queries, k=5)
    return db, report


class TestSection422QueryDistribution:
    """'While the query might involve more communication, the total
    communication cost remains the same': splitting a query into B_dim
    chunks multiplies message count by B_dim but divides chunk payload
    by B_dim."""

    def test_total_chunk_bytes_invariant_in_b_dim(self, setup):
        from repro.cluster.messages import MESSAGE_HEADER_BYTES, query_chunk_bytes
        from repro.distance.partial import DimensionSlices

        dim = 64
        for b_dim in (1, 2, 4, 8):
            slices = DimensionSlices.even(dim, b_dim)
            payload = sum(
                query_chunk_bytes(w) - MESSAGE_HEADER_BYTES
                for w in slices.widths()
            )
            assert payload == dim * 4  # invariant in B_dim

    def test_space_no_duplication(self, setup):
        """'Each base vector is stored on one machine, eliminating
        redundancy' — total placed base bytes equal NB x D x 4 plus
        bounded metadata, for every grid."""
        index, queries = setup
        raw = index.ntotal * index.dim * 4
        for b_vec, b_dim in ((4, 1), (2, 2), (1, 4)):
            db, _ = run_grid(index, queries, b_vec, b_dim)
            total = db.index_memory_report()["total_bytes"]
            assert total >= raw
            assert total < raw * 1.5  # ids + workspaces only


class TestSection43TimeComplexity:
    """'The degree of computational reduction is proportional to the
    number of machines': per-machine scan work scales as
    1 / (B_vec x B_dim) with pruning disabled."""

    def test_per_machine_work_scales_inverse_in_machines(self, setup):
        index, queries = setup
        mean_loads = {}
        for b_vec, b_dim in ((2, 1), (4, 1), (2, 2)):
            _, report = run_grid(
                index,
                queries,
                b_vec,
                b_dim,
                enable_pruning=False,
                prewarm_size=0,
            )
            mean_loads[(b_vec, b_dim)] = float(report.worker_loads.mean())
        # Doubling machines halves mean per-machine computation.
        assert mean_loads[(4, 1)] == pytest.approx(
            mean_loads[(2, 1)] / 2, rel=0.1
        )
        assert mean_loads[(2, 2)] == pytest.approx(
            mean_loads[(4, 1)], rel=0.1
        )

    def test_total_work_invariant_across_grids(self, setup):
        """The same candidates x dims are scanned whatever the grid."""
        index, queries = setup
        totals = []
        for b_vec, b_dim in ((4, 1), (2, 2), (1, 4)):
            _, report = run_grid(
                index,
                queries,
                b_vec,
                b_dim,
                enable_pruning=False,
                prewarm_size=0,
            )
            totals.append(float(report.worker_loads.sum()))
        np.testing.assert_allclose(totals, totals[0], rtol=0.02)


class TestSection31Monotonicity:
    """'As soon as S_k^2 > tau^2 ... q cannot enter the top-K set':
    formalized as — dropping every pruned candidate never changes the
    returned top-K (tested exhaustively elsewhere; here we verify the
    threshold semantics on the motivating example)."""

    def test_partial_sum_exceeding_tau_is_final(self, setup):
        index, _ = setup
        from repro.core.pruning import ShardScan
        from repro.distance.partial import DimensionSlices

        rng = np.random.default_rng(3)
        query = rng.standard_normal(64).astype(np.float32)
        candidates = np.arange(200)
        slices = DimensionSlices.even(64, 4)
        scan = ShardScan(
            base=index.base, candidate_ids=candidates, query=query,
            slices=slices,
        )
        scan.process_slice(0)
        scan.process_slice(1)
        tau = float(np.median(scan.accumulated))
        partial_after_two = scan.accumulated.copy()
        scan.process_slice(2)
        scan.process_slice(3)
        final = scan.accumulated
        # Everything whose two-slice partial already exceeded tau has a
        # final distance exceeding tau (non-negative contributions).
        exceeded = partial_after_two > tau
        assert np.all(final[exceeded] > tau)


class TestSection632BreakdownClaims:
    """'Except for Harmony-vector, both Harmony and Harmony-dimension
    incur [inter-stage] communication overhead' and 'Harmony-dimension
    has a higher communication overhead due to more dimension
    slicing.'"""

    def test_interstage_comm_orders(self, setup):
        index, queries = setup
        comm = {}
        for b_vec, b_dim in ((4, 1), (2, 2), (1, 4)):
            _, report = run_grid(
                index, queries, b_vec, b_dim,
                enable_pruning=False, prewarm_size=0,
            )
            comm[(b_vec, b_dim)] = report.breakdown.communication
        assert comm[(1, 4)] > comm[(2, 2)]
        assert comm[(2, 2)] > comm[(4, 1)]
