"""Unit tests for repro.data.ground_truth and repro.data.loaders."""

import numpy as np
import pytest

from repro.data.ground_truth import exact_knn
from repro.data.loaders import read_fvecs, read_ivecs, write_fvecs, write_ivecs
from repro.data.synthetic import uniform_gaussian


class TestExactKnn:
    def test_shapes(self):
        base = uniform_gaussian(100, 8, seed=0)
        queries = uniform_gaussian(10, 8, seed=1)
        dist, ids = exact_knn(base, queries, k=5)
        assert dist.shape == (10, 5)
        assert ids.shape == (10, 5)

    def test_self_query_finds_itself(self):
        base = uniform_gaussian(50, 8, seed=2)
        _, ids = exact_knn(base, base[:5], k=1)
        np.testing.assert_array_equal(ids[:, 0], np.arange(5))

    def test_inner_product_metric(self):
        base = np.array([[1.0, 0.0], [3.0, 0.0]], dtype=np.float32)
        _, ids = exact_knn(base, np.array([[1.0, 0.0]]), k=1, metric="ip")
        assert ids[0, 0] == 1


class TestFvecsRoundTrip:
    def test_float_round_trip(self, tmp_path):
        data = uniform_gaussian(20, 7, seed=0)
        path = tmp_path / "vectors.fvecs"
        write_fvecs(path, data)
        loaded = read_fvecs(path)
        np.testing.assert_array_equal(loaded, data)
        assert loaded.dtype == np.float32

    def test_int_round_trip(self, tmp_path):
        data = np.arange(24, dtype=np.int32).reshape(4, 6)
        path = tmp_path / "ids.ivecs"
        write_ivecs(path, data)
        loaded = read_ivecs(path)
        np.testing.assert_array_equal(loaded, data)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.fvecs"
        path.write_bytes(b"")
        assert read_fvecs(path).size == 0

    def test_corrupt_dimension_raises(self, tmp_path):
        path = tmp_path / "bad.fvecs"
        np.array([-3, 0, 0], dtype=np.int32).tofile(path)
        with pytest.raises(ValueError, match="invalid leading dimension"):
            read_fvecs(path)

    def test_truncated_file_raises(self, tmp_path):
        path = tmp_path / "truncated.fvecs"
        np.array([4, 0, 0], dtype=np.int32).tofile(path)
        with pytest.raises(ValueError, match="not a multiple"):
            read_fvecs(path)

    def test_inconsistent_rows_raise(self, tmp_path):
        path = tmp_path / "mixed.fvecs"
        np.array([2, 0, 0, 3, 0, 0], dtype=np.int32).tofile(path)
        with pytest.raises(ValueError, match="inconsistent"):
            read_fvecs(path)

    def test_zero_dim_write_raises(self, tmp_path):
        with pytest.raises(ValueError, match="zero-dimensional"):
            write_fvecs(tmp_path / "x.fvecs", np.empty((3, 0)))
