"""Unit tests for repro.data.synthetic."""

import numpy as np
import pytest

from repro.data.synthetic import (
    correlated_walk,
    gaussian_blobs,
    heavy_tailed_embeddings,
    perturbed_queries,
    uniform_gaussian,
)


class TestUniformGaussian:
    def test_shape_and_dtype(self):
        x = uniform_gaussian(100, 16, seed=0)
        assert x.shape == (100, 16)
        assert x.dtype == np.float32

    def test_deterministic(self):
        np.testing.assert_array_equal(
            uniform_gaussian(50, 8, seed=1), uniform_gaussian(50, 8, seed=1)
        )

    def test_seed_changes_output(self):
        assert not np.array_equal(
            uniform_gaussian(50, 8, seed=1), uniform_gaussian(50, 8, seed=2)
        )

    def test_roughly_standard_normal(self):
        x = uniform_gaussian(5000, 8, seed=3)
        assert abs(float(x.mean())) < 0.05
        assert abs(float(x.std()) - 1.0) < 0.05

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            uniform_gaussian(0, 8)
        with pytest.raises(ValueError):
            uniform_gaussian(10, 0)


class TestGaussianBlobs:
    def test_shape(self):
        x = gaussian_blobs(200, 12, n_blobs=4, seed=0)
        assert x.shape == (200, 12)

    def test_clustered_structure(self):
        """Blob data must be much more clusterable than iid noise."""
        from repro.index.kmeans import KMeans

        blobs = gaussian_blobs(400, 8, n_blobs=4, cluster_std=0.2, seed=1)
        noise = uniform_gaussian(400, 8, seed=1)
        blob_fit = KMeans(n_clusters=4, seed=0).fit(blobs)
        noise_fit = KMeans(n_clusters=4, seed=0).fit(noise)
        blob_ratio = blob_fit.inertia / float((blobs**2).sum())
        noise_ratio = noise_fit.inertia / float((noise**2).sum())
        assert blob_ratio < noise_ratio * 0.7

    def test_uneven_populations(self):
        """Dirichlet weights make blob sizes naturally unequal."""
        x = gaussian_blobs(1000, 4, n_blobs=8, cluster_std=0.05, seed=2)
        from repro.index.kmeans import KMeans

        fit = KMeans(n_clusters=8, seed=0).fit(x)
        counts = np.bincount(fit.assignments, minlength=8)
        assert counts.max() > 2 * max(counts.min(), 1)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            gaussian_blobs(10, 4, n_blobs=0)
        with pytest.raises(ValueError):
            gaussian_blobs(10, 4, std_jitter=-1.0)


class TestCorrelatedWalk:
    def test_shape(self):
        x = correlated_walk(50, 64, seed=0)
        assert x.shape == (50, 64)

    def test_adjacent_dims_correlated(self):
        x = correlated_walk(2000, 32, smoothness=0.95, envelope=0.0, seed=1)
        corr = np.corrcoef(x[:, 10], x[:, 11])[0, 1]
        assert corr > 0.7

    def test_envelope_concentrates_variance_early(self):
        x = correlated_walk(1000, 64, envelope=3.0, seed=2)
        first_half = float((x[:, :32] ** 2).sum())
        second_half = float((x[:, 32:] ** 2).sum())
        assert first_half > 3 * second_half

    def test_class_structure(self):
        x = correlated_walk(300, 32, n_classes=4, noise_scale=0.1, seed=3)
        from repro.index.kmeans import KMeans

        fit = KMeans(n_clusters=4, seed=0).fit(x)
        ratio = fit.inertia / float((x**2).sum())
        assert ratio < 0.2

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            correlated_walk(10, 8, smoothness=1.0)
        with pytest.raises(ValueError):
            correlated_walk(10, 8, envelope=-1.0)
        with pytest.raises(ValueError):
            correlated_walk(10, 8, n_classes=0)


class TestHeavyTailedEmbeddings:
    def test_shape(self):
        x = heavy_tailed_embeddings(100, 20, seed=0)
        assert x.shape == (100, 20)

    def test_heavy_tailed_norms(self):
        """Norm distribution should have a heavier tail than Gaussian."""
        x = heavy_tailed_embeddings(3000, 16, tail=0.8, seed=1)
        norms = np.linalg.norm(x, axis=1)
        ratio = float(np.percentile(norms, 99) / np.median(norms))
        g = uniform_gaussian(3000, 16, seed=1)
        g_ratio = float(
            np.percentile(np.linalg.norm(g, axis=1), 99)
            / np.median(np.linalg.norm(g, axis=1))
        )
        assert ratio > 1.5 * g_ratio

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            heavy_tailed_embeddings(10, 8, n_directions=0)


class TestPerturbedQueries:
    def test_shape(self):
        base = uniform_gaussian(100, 8, seed=0)
        q = perturbed_queries(base, 25, seed=1)
        assert q.shape == (25, 8)

    def test_queries_near_base(self):
        base = uniform_gaussian(200, 8, seed=0)
        q = perturbed_queries(base, 30, noise_scale=0.01, seed=1)
        from repro.distance.kernels import pairwise_squared_l2

        nearest = pairwise_squared_l2(q, base).min(axis=1)
        assert float(nearest.max()) < 0.1

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            perturbed_queries(np.empty((0, 4)), 5)
        with pytest.raises(ValueError):
            perturbed_queries(np.ones((10, 4)), 0)
