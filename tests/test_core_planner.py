"""Unit tests for repro.core.planner."""

import numpy as np
import pytest

from repro.core.config import Mode
from repro.core.cost_model import CostParameters, WorkloadProfile
from repro.core.planner import QueryPlanner


@pytest.fixture()
def params():
    return CostParameters(
        compute_rate=1e9,
        bandwidth_bytes_per_s=2.5e8,
        latency_s=1e-5,
        alpha=4.0,
        message_overlap=0.1,
    )


@pytest.fixture()
def planner(trained_index, params):
    return QueryPlanner(trained_index, params)


@pytest.fixture()
def profile(planner, tiny_queries):
    return planner.profile(tiny_queries, nprobe=4)


class TestPlannerBasics:
    def test_untrained_index_raises(self, params):
        from repro.index.ivf import IVFFlatIndex

        with pytest.raises(RuntimeError, match="trained"):
            QueryPlanner(IVFFlatIndex(dim=8, nlist=4), params)

    def test_vector_mode_fixed_grid(self, planner, profile):
        decision = planner.choose(4, Mode.VECTOR, profile)
        assert decision.plan.n_vector_shards == 4
        assert decision.plan.n_dim_blocks == 1
        assert len(decision.evaluated) == 1

    def test_dimension_mode_fixed_grid(self, planner, profile):
        decision = planner.choose(4, Mode.DIMENSION, profile)
        assert decision.plan.n_vector_shards == 1
        assert decision.plan.n_dim_blocks == 4

    def test_harmony_mode_evaluates_all_shapes(self, planner, profile):
        decision = planner.choose(4, Mode.HARMONY, profile)
        shapes = {shape for shape, _ in decision.evaluated}
        assert shapes == {(1, 4), (2, 2), (4, 1)}

    def test_harmony_picks_cheapest(self, planner, profile):
        decision = planner.choose(4, Mode.HARMONY, profile)
        best = min(cost.total for _, cost in decision.evaluated)
        assert decision.cost.total == pytest.approx(best)

    def test_none_profile_uses_uniform(self, planner):
        decision = planner.choose(4, Mode.HARMONY, profile=None)
        assert decision.plan is not None

    def test_mode_as_string(self, planner, profile):
        decision = planner.choose(4, "harmony-vector", profile)
        assert decision.plan.kind == "vector"

    def test_dim_blocks_capped_by_dimension(self, params, tiny_data):
        """A 2-dim index cannot be split into 4 dimension blocks."""
        from repro.index.ivf import IVFFlatIndex

        index = IVFFlatIndex(dim=2, nlist=4, seed=0)
        index.train(tiny_data[:, :2])
        index.add(tiny_data[:, :2])
        planner = QueryPlanner(index, params)
        decision = planner.choose(4, Mode.HARMONY)
        shapes = {shape for shape, _ in decision.evaluated}
        assert (1, 4) not in shapes


class TestListWeights:
    def test_load_aware_uses_frequency(self, planner, profile):
        oblivious = planner.list_weights(profile, load_aware=False)
        aware = planner.list_weights(profile, load_aware=True)
        sizes = planner.index.list_sizes().astype(float)
        np.testing.assert_allclose(oblivious, sizes)
        np.testing.assert_allclose(
            aware, sizes * (profile.list_frequency + 1.0)
        )

    def test_load_aware_none_profile_falls_back(self, planner):
        weights = planner.list_weights(None, load_aware=True)
        np.testing.assert_allclose(
            weights, planner.index.list_sizes().astype(float)
        )


class TestSkewResponse:
    def test_skew_shifts_preference_from_vector(
        self, planner, trained_index, tiny_queries
    ):
        """Under a concentrated workload, a pure vector plan must not
        look cheaper than every alternative (the imbalance term bites).
        Disabling the pruning pilot isolates the imbalance effect."""
        hot_probe = np.zeros((40, 4), dtype=np.int64)
        hot_probe[:] = [0, 1, 2, 3]
        skewed = WorkloadProfile(
            n_queries=40,
            nprobe=4,
            probes=hot_probe,
            list_frequency=np.bincount(
                hot_probe.ravel(), minlength=trained_index.nlist
            ).astype(float),
            queries=np.empty((0, trained_index.dim), dtype=np.float32),
        )
        decision = planner.choose(
            4, Mode.HARMONY, skewed, load_aware=False, pruning=False
        )
        vector_cost = dict(decision.evaluated)[(4, 1)]
        dim_cost = dict(decision.evaluated)[(1, 4)]
        assert dim_cost.imbalance_seconds < vector_cost.imbalance_seconds
