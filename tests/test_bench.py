"""Unit tests for repro.bench (recall, reporting, harness)."""

import numpy as np
import pytest

from repro.bench.harness import (
    make_setup,
    run_faiss_baseline,
    run_mode,
)
from repro.bench.recall import recall_at_k
from repro.bench.reporting import format_series, format_table


class TestRecallAtK:
    def test_perfect(self):
        ids = np.array([[1, 2, 3], [4, 5, 6]])
        assert recall_at_k(ids, ids) == 1.0

    def test_order_irrelevant(self):
        found = np.array([[3, 2, 1]])
        truth = np.array([[1, 2, 3]])
        assert recall_at_k(found, truth) == 1.0

    def test_partial(self):
        found = np.array([[1, 2, 99]])
        truth = np.array([[1, 2, 3]])
        assert recall_at_k(found, truth) == pytest.approx(2 / 3)

    def test_padding_ignored(self):
        found = np.array([[1, -1, -1]])
        truth = np.array([[1, 2, 3]])
        assert recall_at_k(found, truth) == pytest.approx(1 / 3)

    def test_mismatched_rows_raise(self):
        with pytest.raises(ValueError):
            recall_at_k(np.ones((2, 3)), np.ones((3, 3)))


class TestReporting:
    def test_table_alignment(self):
        out = format_table(
            ["name", "value"], [["a", 1.5], ["long-name", 20]]
        )
        lines = out.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert "long-name" in lines[3]

    def test_table_with_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.startswith("My Table")

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_series(self):
        out = format_series("qps", [1, 2], [10.0, 20.0])
        assert out == "qps: (1, 10.00) (2, 20.00)"

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", [1], [1, 2])

    def test_float_formatting(self):
        out = format_table(["v"], [[0.00001], [12345.6], [0.5]])
        assert "1e-05" in out
        assert "0.50" in out


class TestHarness:
    @pytest.fixture(scope="class")
    def setup(self):
        return make_setup(
            "sift1m", size=800, n_queries=20, nlist=16, nprobe=4, seed=0
        )

    def test_setup_ground_truth_cached(self, setup):
        gt1 = setup.ground_truth()
        gt2 = setup.ground_truth()
        assert gt1 is gt2
        assert gt1.shape == (20, 10)

    def test_run_mode_returns_results(self, setup):
        result, report, db = run_mode(setup, "harmony-vector")
        assert result.ids.shape == (20, 10)
        assert report.qps > 0
        assert db.plan.kind == "vector"

    def test_faiss_baseline(self, setup):
        result, seconds = run_faiss_baseline(setup)
        assert result.ids.shape == (20, 10)
        assert seconds > 0

    def test_modes_agree_with_baseline(self, setup):
        """Harness-level invariant: all engines return identical ids."""
        baseline, _ = run_faiss_baseline(setup)
        for mode in ("harmony", "harmony-vector", "harmony-dimension"):
            result, _, _ = run_mode(setup, mode)
            np.testing.assert_array_equal(result.ids, baseline.ids)
