"""Tests for metadata-filtered search across the whole stack."""

import numpy as np
import pytest

from repro.core.config import HarmonyConfig, Mode
from repro.core.database import HarmonyDB
from repro.core.parallel import ThreadedSearcher
from repro.data.synthetic import gaussian_blobs
from repro.index.flat import FlatIndex
from repro.index.ivf import IVFFlatIndex


@pytest.fixture(scope="module")
def labelled():
    data = gaussian_blobs(650, 24, n_blobs=6, cluster_std=0.5, seed=21)
    base, queries = data[:600], data[600:630]
    rng = np.random.default_rng(21)
    labels = rng.integers(0, 4, size=600).astype(np.int64)
    return base, queries, labels


@pytest.fixture(scope="module")
def index(labelled):
    base, _, labels = labelled
    ix = IVFFlatIndex(dim=24, nlist=8, seed=0)
    ix.train(base)
    ix.add(base, labels=labels)
    return ix


class TestIndexLabels:
    def test_labels_stored(self, index, labelled):
        _, _, labels = labelled
        np.testing.assert_array_equal(
            index.labels_of(np.arange(600)), labels
        )

    def test_default_labels_zero(self, labelled):
        base, _, _ = labelled
        ix = IVFFlatIndex(dim=24, nlist=8, seed=0)
        ix.train(base)
        ix.add(base)
        assert np.all(ix.labels_of(np.arange(600)) == 0)

    def test_label_length_mismatch_raises(self, labelled):
        base, _, _ = labelled
        ix = IVFFlatIndex(dim=24, nlist=8, seed=0)
        ix.train(base)
        with pytest.raises(ValueError, match="one label per vector"):
            ix.add(base, labels=np.zeros(3))

    def test_allowed_mask(self, index, labelled):
        _, _, labels = labelled
        mask = index.allowed_mask([1, 3])
        np.testing.assert_array_equal(mask, np.isin(labels, [1, 3]))
        assert index.allowed_mask(None) is None

    def test_empty_filter_raises(self, index):
        with pytest.raises(ValueError, match="non-empty"):
            index.allowed_mask([])

    def test_filtered_results_only_contain_filter(self, index, labelled):
        _, queries, labels = labelled
        _, ids = index.search(queries, k=5, nprobe=8, filter_labels=[2])
        found = ids[ids >= 0]
        assert np.all(labels[found] == 2)

    def test_filtered_matches_flat_reference(self, index, labelled):
        base, queries, labels = labelled
        mask = labels == 1
        subset_ids = np.flatnonzero(mask)
        flat = FlatIndex(dim=24)
        flat.add(base[mask])
        _, local = flat.search(queries, k=5)
        expected = subset_ids[local]
        # Full probe = exhaustive scan of the filtered subset.
        _, ids = index.search(queries, k=5, nprobe=8, filter_labels=[1])
        np.testing.assert_array_equal(ids, expected)

    def test_labels_survive_persistence(self, index, labelled, tmp_path):
        _, queries, _ = labelled
        path = tmp_path / "labelled.npz"
        index.save(path)
        loaded = IVFFlatIndex.load(path)
        _, a = index.search(queries, k=5, nprobe=4, filter_labels=[0, 2])
        _, b = loaded.search(queries, k=5, nprobe=4, filter_labels=[0, 2])
        np.testing.assert_array_equal(a, b)


class TestDistributedFilteredSearch:
    @pytest.fixture(scope="class")
    def db(self, labelled):
        base, queries, labels = labelled
        db = HarmonyDB(
            dim=24,
            config=HarmonyConfig(
                n_machines=4, nlist=8, nprobe=4, mode=Mode.HARMONY
            ),
        )
        db.build(base, sample_queries=queries, labels=labels)
        return db

    @pytest.mark.parametrize(
        "mode", [Mode.HARMONY, Mode.VECTOR, Mode.DIMENSION]
    )
    def test_engine_matches_reference(self, labelled, mode):
        base, queries, labels = labelled
        db = HarmonyDB(
            dim=24,
            config=HarmonyConfig(
                n_machines=4, nlist=8, nprobe=4, mode=mode
            ),
        )
        db.build(base, sample_queries=queries, labels=labels)
        result, _ = db.search(queries, k=5, filter_labels=[0, 3])
        ref_d, ref_i = db.index.search(
            queries, k=5, nprobe=4, filter_labels=[0, 3]
        )
        np.testing.assert_array_equal(result.ids, ref_i)
        np.testing.assert_allclose(result.distances, ref_d, rtol=1e-9)

    def test_filter_reduces_computation(self, db, labelled):
        _, queries, _ = labelled
        _, unfiltered = db.search(queries, k=5)
        _, filtered = db.search(queries, k=5, filter_labels=[1])
        assert (
            filtered.breakdown.computation
            < unfiltered.breakdown.computation
        )

    def test_no_filter_unchanged(self, db, labelled):
        _, queries, _ = labelled
        a, _ = db.search(queries, k=5)
        b, _ = db.search(queries, k=5, filter_labels=None)
        np.testing.assert_array_equal(a.ids, b.ids)

    def test_threaded_searcher_filtered(self, db, labelled):
        _, queries, _ = labelled
        searcher = ThreadedSearcher(db.index, n_threads=2)
        result = searcher.search(queries, k=5, nprobe=4, filter_labels=[2])
        _, ref_i = db.index.search(
            queries, k=5, nprobe=4, filter_labels=[2]
        )
        np.testing.assert_array_equal(result.ids, ref_i)

    def test_streaming_add_with_labels(self, labelled):
        base, queries, labels = labelled
        db = HarmonyDB(
            dim=24,
            config=HarmonyConfig(n_machines=4, nlist=8, nprobe=4),
        )
        db.build(base, sample_queries=queries, labels=labels)
        extra = gaussian_blobs(40, 24, n_blobs=6, cluster_std=0.5, seed=55)
        db.add(extra, labels=np.full(40, 9, dtype=np.int64))
        result, _ = db.search(queries, k=5, filter_labels=[9])
        found = result.ids[result.ids >= 0]
        assert np.all(found >= 600)  # only the new batch carries label 9
