"""Unit tests for repro.core.pruning (ShardScan + PruningStats)."""

import numpy as np
import pytest

from repro.core.pruning import PruningStats, ShardScan
from repro.distance.metrics import Metric, squared_l2
from repro.distance.partial import DimensionSlices, slice_norms


@pytest.fixture()
def base():
    return np.random.default_rng(0).standard_normal((60, 16)).astype(np.float32)


@pytest.fixture()
def query():
    return np.random.default_rng(1).standard_normal(16).astype(np.float32)


@pytest.fixture()
def slices():
    return DimensionSlices.even(16, 4)


def make_scan(base, query, slices, metric=Metric.L2):
    ids = np.arange(base.shape[0], dtype=np.int64)
    norms = None
    if metric is not Metric.L2:
        norms = slice_norms(base, slices)
    return ShardScan(
        base=base,
        candidate_ids=ids,
        query=query,
        slices=slices,
        metric=metric,
        base_slice_norms=norms,
    )


class TestShardScanAccumulation:
    def test_full_scan_matches_direct_distance(self, base, query, slices):
        scan = make_scan(base, query, slices)
        for j in range(4):
            scan.process_slice(j)
        ids, scores = scan.survivors()
        np.testing.assert_array_equal(ids, np.arange(60))
        np.testing.assert_allclose(scores, squared_l2(base, query), rtol=1e-6)

    def test_slice_order_irrelevant_for_totals(self, base, query, slices):
        a = make_scan(base, query, slices)
        b = make_scan(base, query, slices)
        for j in (0, 1, 2, 3):
            a.process_slice(j)
        for j in (3, 1, 0, 2):
            b.process_slice(j)
        np.testing.assert_allclose(a.accumulated, b.accumulated, rtol=1e-9)

    def test_double_process_raises(self, base, query, slices):
        scan = make_scan(base, query, slices)
        scan.process_slice(0)
        with pytest.raises(ValueError, match="already processed"):
            scan.process_slice(0)

    def test_process_returns_alive_count(self, base, query, slices):
        scan = make_scan(base, query, slices)
        assert scan.process_slice(0) == 60
        # Kill roughly half through the public pruning path; the next
        # stage must only charge for the compacted survivors.
        threshold = float(np.median(scan.lower_bounds()))
        killed = scan.prune(threshold)
        assert killed > 0
        assert scan.process_slice(1) == 60 - killed

    def test_prune_compacts_state(self, base, query, slices):
        scan = make_scan(base, query, slices)
        scan.process_slice(0)
        threshold = float(np.median(scan.lower_bounds()))
        killed = scan.prune(threshold)
        n_alive = 60 - killed
        # Dense arrays shrink to the survivors...
        assert scan.ids.size == n_alive
        assert scan.accumulated.size == n_alive
        assert scan.n_alive == n_alive
        # ...while the reporting mask and original ids keep full length.
        assert scan.alive.size == 60
        assert int(scan.alive.sum()) == n_alive
        assert scan.candidate_ids.size == 60
        np.testing.assert_array_equal(
            scan.ids, scan.candidate_ids[scan.alive]
        )

    def test_survivors_before_completion_raises(self, base, query, slices):
        scan = make_scan(base, query, slices)
        scan.process_slice(0)
        with pytest.raises(RuntimeError, match="unprocessed"):
            scan.survivors()


class TestShardScanPruningL2:
    def test_prune_is_lossless(self, base, query, slices):
        """Pruned candidates can never belong to the final top set."""
        scan = make_scan(base, query, slices)
        full = squared_l2(base, query)
        threshold = float(np.median(full))
        for j in range(4):
            scan.process_slice(j)
            scan.prune(threshold)
        # Everything with final score <= threshold must have survived.
        should_survive = full <= threshold
        assert np.all(scan.alive[should_survive])

    def test_prune_infinite_threshold_noop(self, base, query, slices):
        scan = make_scan(base, query, slices)
        scan.process_slice(0)
        assert scan.prune(np.inf) == 0
        assert scan.n_alive == 60

    def test_prune_counts(self, base, query, slices):
        scan = make_scan(base, query, slices)
        for j in range(4):
            scan.process_slice(j)
        pruned = scan.prune(float(np.min(squared_l2(base, query))))
        assert pruned == 59  # everything except the single minimum

    def test_boundary_ties_survive(self, base, query, slices):
        """Strict comparison keeps candidates exactly at the threshold."""
        scan = make_scan(base, query, slices)
        for j in range(4):
            scan.process_slice(j)
        full = squared_l2(base, query)
        threshold = float(full[7])
        scan.prune(threshold)
        assert scan.alive[7]

    def test_lower_bounds_never_exceed_final(self, base, query, slices):
        scan = make_scan(base, query, slices)
        final = squared_l2(base, query)
        for j in range(4):
            bounds = scan.lower_bounds()
            assert np.all(bounds[scan.alive] <= final[scan.alive] + 1e-9)
            scan.process_slice(j)


class TestShardScanInnerProduct:
    def test_requires_norms(self, base, query, slices):
        with pytest.raises(ValueError, match="base_slice_norms"):
            ShardScan(
                base=base,
                candidate_ids=np.arange(10),
                query=query,
                slices=slices,
                metric=Metric.INNER_PRODUCT,
            )

    def test_final_scores_are_negated_dots(self, base, query, slices):
        scan = make_scan(base, query, slices, metric=Metric.INNER_PRODUCT)
        for j in range(4):
            scan.process_slice(j)
        _, scores = scan.survivors()
        expected = -(base.astype(np.float64) @ query.astype(np.float64))
        np.testing.assert_allclose(scores, expected, rtol=1e-6)

    def test_ip_lower_bounds_valid(self, base, query, slices):
        """Cauchy-Schwarz bound must never exceed the final score."""
        scan = make_scan(base, query, slices, metric=Metric.INNER_PRODUCT)
        final = -(base.astype(np.float64) @ query.astype(np.float64))
        scan.process_slice(0)
        bounds = scan.lower_bounds()
        assert np.all(bounds <= final + 1e-9)
        scan.process_slice(2)
        bounds = scan.lower_bounds()
        assert np.all(bounds <= final + 1e-9)

    def test_ip_prune_lossless(self, base, query, slices):
        scan = make_scan(base, query, slices, metric=Metric.INNER_PRODUCT)
        final = -(base.astype(np.float64) @ query.astype(np.float64))
        threshold = float(np.median(final))
        for j in range(4):
            scan.process_slice(j)
            scan.prune(threshold)
        should_survive = final <= threshold
        assert np.all(scan.alive[should_survive])


class TestShardGroupScan:
    """The fused multi-query block must be bitwise equal to per-query."""

    @pytest.mark.parametrize(
        "metric", [Metric.L2, Metric.INNER_PRODUCT]
    )
    def test_group_matches_per_query_scans(self, base, slices, metric):
        from repro.core.pruning import ShardGroupScan
        from repro.distance.partial import query_slice_norms

        rng = np.random.default_rng(7)
        queries = rng.standard_normal((3, 16)).astype(np.float32)
        norms = None
        if metric is not Metric.L2:
            norms = slice_norms(base, slices)

        # Per-query references, each scanning all 60 candidates.
        singles = [make_scan(base, q, slices, metric=metric) for q in queries]
        thresholds = np.array([np.inf, 2.0, 5.0])

        ids = np.tile(np.arange(60, dtype=np.int64), 3)
        group = ShardGroupScan(
            rows=np.concatenate([base] * 3, axis=0),
            ids=ids,
            query_of=np.repeat(np.arange(3), 60),
            queries=queries,
            slices=slices,
            metric=metric,
            base_slice_norms=(
                None if norms is None else np.concatenate([norms] * 3)
            ),
            query_norms=(
                None
                if norms is None
                else np.stack(
                    [query_slice_norms(q, slices) for q in queries]
                )
            ),
        )
        for j in range(4):
            group.process_slice(j)
            group.prune(thresholds)
            for q, scan in enumerate(singles):
                scan.process_slice(j)
                scan.prune(float(thresholds[q]))
        got_ids, got_scores, got_query = group.survivors()
        for q, scan in enumerate(singles):
            want_ids, want_scores = scan.survivors()
            mask = got_query == q
            np.testing.assert_array_equal(got_ids[mask], want_ids)
            np.testing.assert_array_equal(got_scores[mask], want_scores)

    def test_requires_norms_for_ip(self, base, slices):
        from repro.core.pruning import ShardGroupScan

        with pytest.raises(ValueError, match="base_slice_norms"):
            ShardGroupScan(
                rows=base,
                ids=np.arange(60),
                query_of=np.zeros(60, dtype=np.intp),
                queries=base[:1],
                slices=slices,
                metric=Metric.INNER_PRODUCT,
            )


class TestPruningStats:
    def test_record_and_ratios(self):
        stats = PruningStats(3)
        stats.record(0, 0, 100)
        stats.record(1, 40, 100)
        stats.record(2, 80, 100)
        np.testing.assert_allclose(stats.ratios(), [0.0, 0.4, 0.8])

    def test_average_ratio(self):
        stats = PruningStats(2)
        stats.record(0, 0, 10)
        stats.record(1, 5, 10)
        assert stats.average_ratio() == pytest.approx(0.25)

    def test_merge(self):
        a = PruningStats(2)
        b = PruningStats(2)
        a.record(1, 2, 10)
        b.record(1, 8, 10)
        a.merge(b)
        np.testing.assert_allclose(a.ratios(), [0.0, 0.5])

    def test_merge_mismatched_raises(self):
        with pytest.raises(ValueError):
            PruningStats(2).merge(PruningStats(3))

    def test_empty_positions_are_zero(self):
        stats = PruningStats(4)
        np.testing.assert_array_equal(stats.ratios(), np.zeros(4))

    def test_invalid_record_raises(self):
        stats = PruningStats(2)
        with pytest.raises(IndexError):
            stats.record(5, 0, 10)
        with pytest.raises(ValueError):
            stats.record(0, 11, 10)
        with pytest.raises(ValueError):
            stats.record(0, -1, 10)

    def test_invalid_size_raises(self):
        with pytest.raises(ValueError):
            PruningStats(0)
