"""Unit tests for repro.core.cost_model."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.network import CommMode, NetworkModel
from repro.core.cost_model import (
    CostParameters,
    WorkloadProfile,
    communication_seconds,
    estimate_survival,
    imbalance_factor,
    node_loads,
    plan_cost,
)
from repro.core.partition import build_plan


@pytest.fixture()
def params():
    return CostParameters(
        compute_rate=1e9,
        bandwidth_bytes_per_s=1e9,
        latency_s=1e-5,
        alpha=2.0,
        message_overlap=0.1,
    )


@pytest.fixture()
def profile(trained_index, tiny_queries):
    return WorkloadProfile.measure(trained_index, tiny_queries, nprobe=4)


class TestCostParameters:
    def test_from_cluster_nonblocking(self):
        cluster = Cluster(4)
        params = CostParameters.from_cluster(cluster, alpha=3.0)
        assert params.alpha == 3.0
        assert params.compute_rate == cluster.workers[0].compute_rate
        assert params.message_overlap == pytest.approx(0.1)

    def test_from_cluster_blocking(self):
        cluster = Cluster(
            2, network=NetworkModel(mode=CommMode.BLOCKING)
        )
        params = CostParameters.from_cluster(cluster)
        assert params.message_overlap == 1.0


class TestWorkloadProfile:
    def test_measure_shapes(self, profile, trained_index, tiny_queries):
        assert profile.n_queries == len(tiny_queries)
        assert profile.probes.shape == (len(tiny_queries), 4)
        assert profile.list_frequency.shape == (trained_index.nlist,)

    def test_frequency_totals(self, profile, tiny_queries):
        assert profile.list_frequency.sum() == len(tiny_queries) * 4

    def test_keeps_queries(self, profile, tiny_queries):
        np.testing.assert_array_equal(profile.queries, tiny_queries)


class TestNodeLoads:
    def test_total_work_invariant_across_grids(
        self, trained_index, profile, params
    ):
        """The same scan work is just distributed differently."""
        totals = []
        for b_vec, b_dim in [(4, 1), (2, 2), (1, 4)]:
            plan = build_plan(trained_index, 4, b_vec, b_dim)
            totals.append(node_loads(plan, trained_index, profile, params).sum())
        np.testing.assert_allclose(totals, totals[0], rtol=1e-9)

    def test_dimension_plan_perfectly_balanced_widths(
        self, trained_index, profile, params
    ):
        plan = build_plan(trained_index, 4, 1, 4)
        loads = node_loads(plan, trained_index, profile, params)
        # 32 dims over 4 slices: every machine gets exactly 1/4 width.
        np.testing.assert_allclose(loads, loads[0], rtol=1e-9)

    def test_survival_scales_dimension_loads(
        self, trained_index, profile, params
    ):
        plan = build_plan(trained_index, 4, 1, 4)
        full = node_loads(plan, trained_index, profile, params)
        pruned = node_loads(
            plan,
            trained_index,
            profile,
            params,
            survival=np.array([1.0, 0.5, 0.25, 0.25]),
        )
        np.testing.assert_allclose(pruned, full * 0.5, rtol=1e-9)

    def test_survival_ignored_for_vector_plan(
        self, trained_index, profile, params
    ):
        plan = build_plan(trained_index, 4, 4, 1)
        a = node_loads(plan, trained_index, profile, params)
        b = node_loads(
            plan, trained_index, profile, params, survival=np.array([0.1])
        )
        np.testing.assert_allclose(a, b)


class TestImbalanceFactor:
    def test_zero_for_equal_loads(self):
        assert imbalance_factor(np.ones(4)) == 0.0

    def test_matches_std(self):
        loads = np.array([1.0, 2.0, 3.0, 4.0])
        assert imbalance_factor(loads) == pytest.approx(float(np.std(loads)))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            imbalance_factor(np.array([]))


class TestCommunication:
    def test_dimension_plan_costs_more_messages(
        self, trained_index, profile, params
    ):
        vector = build_plan(trained_index, 4, 4, 1)
        dimension = build_plan(trained_index, 4, 1, 4)
        cv = communication_seconds(vector, trained_index, profile, params)
        cd = communication_seconds(dimension, trained_index, profile, params)
        assert cd > cv

    def test_survival_reduces_partial_transfers(
        self, trained_index, profile, params
    ):
        plan = build_plan(trained_index, 4, 1, 4)
        full = communication_seconds(plan, trained_index, profile, params)
        pruned = communication_seconds(
            plan,
            trained_index,
            profile,
            params,
            survival=np.array([1.0, 0.1, 0.05, 0.05]),
        )
        assert pruned < full

    def test_overlap_scales_linearly(self, trained_index, profile, params):
        from dataclasses import replace

        plan = build_plan(trained_index, 4, 2, 2)
        a = communication_seconds(plan, trained_index, profile, params)
        blocking = replace(params, message_overlap=1.0)
        b = communication_seconds(plan, trained_index, profile, blocking)
        assert b == pytest.approx(a * 10.0)


class TestPlanCost:
    def test_total_combines_terms(self, trained_index, profile, params):
        plan = build_plan(trained_index, 4, 2, 2)
        cost = plan_cost(plan, trained_index, profile, params)
        assert cost.total == pytest.approx(
            cost.computation_seconds
            + cost.communication_seconds
            + params.alpha * cost.imbalance_seconds
        )

    def test_alpha_zero_ignores_imbalance(self, trained_index, profile):
        params = CostParameters(
            compute_rate=1e9,
            bandwidth_bytes_per_s=1e9,
            latency_s=1e-5,
            alpha=0.0,
        )
        plan = build_plan(trained_index, 4, 4, 1, balanced=False)
        cost = plan_cost(plan, trained_index, profile, params)
        assert cost.total == pytest.approx(
            cost.computation_seconds + cost.communication_seconds
        )


class TestEstimateSurvival:
    def test_first_position_is_one(self, trained_index, tiny_queries):
        survival = estimate_survival(
            trained_index, tiny_queries, nprobe=4, n_blocks=4
        )
        assert survival[0] == pytest.approx(1.0)

    def test_monotone_nonincreasing(self, trained_index, tiny_queries):
        survival = estimate_survival(
            trained_index, tiny_queries, nprobe=4, n_blocks=4
        )
        assert np.all(np.diff(survival) <= 1e-12)

    def test_within_unit_interval(self, trained_index, tiny_queries):
        survival = estimate_survival(
            trained_index, tiny_queries, nprobe=4, n_blocks=2
        )
        assert np.all(survival >= 0.0)
        assert np.all(survival <= 1.0)

    def test_single_block_trivial(self, trained_index, tiny_queries):
        survival = estimate_survival(
            trained_index, tiny_queries, nprobe=4, n_blocks=1
        )
        np.testing.assert_array_equal(survival, [1.0])

    def test_no_queries_gives_ones(self, trained_index):
        survival = estimate_survival(
            trained_index,
            np.empty((0, trained_index.dim), dtype=np.float32),
            nprobe=4,
            n_blocks=4,
        )
        np.testing.assert_array_equal(survival, np.ones(4))
