"""Unit tests for repro.workload (generators + skew measurement)."""

import numpy as np
import pytest

from repro.workload.generators import skewed_workload, uniform_workload
from repro.workload.skew import (
    cluster_histogram,
    load_imbalance,
    normalized_imbalance,
    zipf_query_stream,
)


class TestUniformWorkload:
    def test_draws_from_pool(self, tiny_queries):
        w = uniform_workload(tiny_queries, 50, seed=0)
        assert w.n_queries == 50
        assert w.skew == 0.0
        pool_rows = {tuple(row) for row in tiny_queries}
        assert all(tuple(q) in pool_rows for q in w.queries)

    def test_deterministic(self, tiny_queries):
        a = uniform_workload(tiny_queries, 30, seed=5)
        b = uniform_workload(tiny_queries, 30, seed=5)
        np.testing.assert_array_equal(a.queries, b.queries)

    def test_invalid_count(self, tiny_queries):
        with pytest.raises(ValueError):
            uniform_workload(tiny_queries, 0)


class TestSkewedWorkload:
    def test_zero_skew_like_uniform(self, tiny_queries, trained_index):
        w = skewed_workload(
            tiny_queries, trained_index, 40, skew=0.0, nprobe=4, seed=0
        )
        assert w.n_queries == 40

    def test_full_skew_concentrates_probe_mass(
        self, tiny_queries, trained_index
    ):
        hot = trained_index.list_sizes().argsort()[-2:]
        w = skewed_workload(
            tiny_queries,
            trained_index,
            60,
            skew=1.0,
            nprobe=4,
            hot_list_ids=hot,
            seed=0,
        )
        uniform = skewed_workload(
            tiny_queries,
            trained_index,
            60,
            skew=0.0,
            nprobe=4,
            hot_list_ids=hot,
            seed=0,
        )

        def hot_share(queries):
            hist = cluster_histogram(trained_index, queries, nprobe=4)
            return hist[hot].sum() / hist.sum()

        assert hot_share(w.queries) > hot_share(uniform.queries)

    def test_hot_lists_recorded(self, tiny_queries, trained_index):
        w = skewed_workload(
            tiny_queries, trained_index, 10, skew=0.5, n_hot_lists=3, seed=1
        )
        assert len(w.hot_lists) == 3

    def test_explicit_hot_lists(self, tiny_queries, trained_index):
        w = skewed_workload(
            tiny_queries,
            trained_index,
            10,
            skew=0.5,
            hot_list_ids=[0, 1],
            seed=1,
        )
        assert w.hot_lists == (0, 1)

    def test_invalid_args(self, tiny_queries, trained_index):
        with pytest.raises(ValueError, match="skew"):
            skewed_workload(tiny_queries, trained_index, 10, skew=1.5)
        with pytest.raises(ValueError, match="hot_fraction"):
            skewed_workload(
                tiny_queries, trained_index, 10, skew=0.5, hot_fraction=0.0
            )
        with pytest.raises(ValueError, match="non-empty"):
            skewed_workload(
                tiny_queries, trained_index, 10, skew=0.5, hot_list_ids=[]
            )


class TestSkewMeasurement:
    def test_cluster_histogram_totals(self, tiny_queries, trained_index):
        hist = cluster_histogram(trained_index, tiny_queries, nprobe=4)
        assert hist.sum() == len(tiny_queries) * 4
        assert hist.shape == (trained_index.nlist,)

    def test_load_imbalance_zero_for_equal(self):
        assert load_imbalance(np.array([2.0, 2.0, 2.0])) == 0.0

    def test_load_imbalance_is_std(self):
        loads = np.array([1.0, 3.0])
        assert load_imbalance(loads) == pytest.approx(1.0)

    def test_normalized_imbalance_scale_free(self):
        a = normalized_imbalance(np.array([1.0, 3.0]))
        b = normalized_imbalance(np.array([10.0, 30.0]))
        assert a == pytest.approx(b)

    def test_normalized_imbalance_zero_loads(self):
        assert normalized_imbalance(np.zeros(4)) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            load_imbalance(np.array([]))
        with pytest.raises(ValueError):
            normalized_imbalance(np.array([]))


class TestZipfQueryStream:
    def test_stream_rows_come_from_pool(self, tiny_queries):
        stream, picks = zipf_query_stream(tiny_queries, alpha=1.1, n=50,
                                          seed=0)
        assert stream.shape == (50, tiny_queries.shape[1])
        assert stream.dtype == np.float32
        assert picks.shape == (50,)
        np.testing.assert_array_equal(stream, tiny_queries[picks])

    def test_deterministic(self, tiny_queries):
        a, picks_a = zipf_query_stream(tiny_queries, alpha=1.2, n=40, seed=5)
        b, picks_b = zipf_query_stream(tiny_queries, alpha=1.2, n=40, seed=5)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(picks_a, picks_b)

    def test_alpha_concentrates_popularity(self, tiny_queries):
        _, flat = zipf_query_stream(tiny_queries, alpha=0.0, n=4000, seed=1)
        _, skewed = zipf_query_stream(tiny_queries, alpha=1.5, n=4000, seed=1)
        top_flat = np.bincount(flat).max()
        top_skewed = np.bincount(skewed).max()
        # Zipf(1.5) piles far more mass on the hottest query than
        # alpha=0 (uniform) does.
        assert top_skewed > 2 * top_flat

    def test_jitter_preserves_first_occurrence(self, tiny_queries):
        stream, picks = zipf_query_stream(
            tiny_queries, alpha=1.2, n=60, seed=2, jitter=0.01
        )
        seen = set()
        for i, pick in enumerate(picks):
            pick = int(pick)
            if pick not in seen:
                # First occurrence stays byte-exact…
                assert stream[i].tobytes() == tiny_queries[pick].tobytes()
                seen.add(pick)
            else:
                # …repeats are perturbed but nearby.
                assert not np.array_equal(stream[i], tiny_queries[pick])
                assert np.linalg.norm(
                    stream[i] - tiny_queries[pick]
                ) < 1.0

    def test_validation(self, tiny_queries):
        with pytest.raises(ValueError, match="non-empty"):
            zipf_query_stream(np.empty((0, 4), dtype=np.float32), 1.0, 5)
        with pytest.raises(ValueError, match="alpha"):
            zipf_query_stream(tiny_queries, alpha=-1.0, n=5)
        with pytest.raises(ValueError, match="n must be"):
            zipf_query_stream(tiny_queries, alpha=1.0, n=0)
        with pytest.raises(ValueError, match="jitter"):
            zipf_query_stream(tiny_queries, alpha=1.0, n=5, jitter=-0.1)
