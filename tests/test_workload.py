"""Unit tests for repro.workload (generators + skew measurement)."""

import numpy as np
import pytest

from repro.workload.generators import skewed_workload, uniform_workload
from repro.workload.skew import (
    cluster_histogram,
    load_imbalance,
    normalized_imbalance,
)


class TestUniformWorkload:
    def test_draws_from_pool(self, tiny_queries):
        w = uniform_workload(tiny_queries, 50, seed=0)
        assert w.n_queries == 50
        assert w.skew == 0.0
        pool_rows = {tuple(row) for row in tiny_queries}
        assert all(tuple(q) in pool_rows for q in w.queries)

    def test_deterministic(self, tiny_queries):
        a = uniform_workload(tiny_queries, 30, seed=5)
        b = uniform_workload(tiny_queries, 30, seed=5)
        np.testing.assert_array_equal(a.queries, b.queries)

    def test_invalid_count(self, tiny_queries):
        with pytest.raises(ValueError):
            uniform_workload(tiny_queries, 0)


class TestSkewedWorkload:
    def test_zero_skew_like_uniform(self, tiny_queries, trained_index):
        w = skewed_workload(
            tiny_queries, trained_index, 40, skew=0.0, nprobe=4, seed=0
        )
        assert w.n_queries == 40

    def test_full_skew_concentrates_probe_mass(
        self, tiny_queries, trained_index
    ):
        hot = trained_index.list_sizes().argsort()[-2:]
        w = skewed_workload(
            tiny_queries,
            trained_index,
            60,
            skew=1.0,
            nprobe=4,
            hot_list_ids=hot,
            seed=0,
        )
        uniform = skewed_workload(
            tiny_queries,
            trained_index,
            60,
            skew=0.0,
            nprobe=4,
            hot_list_ids=hot,
            seed=0,
        )

        def hot_share(queries):
            hist = cluster_histogram(trained_index, queries, nprobe=4)
            return hist[hot].sum() / hist.sum()

        assert hot_share(w.queries) > hot_share(uniform.queries)

    def test_hot_lists_recorded(self, tiny_queries, trained_index):
        w = skewed_workload(
            tiny_queries, trained_index, 10, skew=0.5, n_hot_lists=3, seed=1
        )
        assert len(w.hot_lists) == 3

    def test_explicit_hot_lists(self, tiny_queries, trained_index):
        w = skewed_workload(
            tiny_queries,
            trained_index,
            10,
            skew=0.5,
            hot_list_ids=[0, 1],
            seed=1,
        )
        assert w.hot_lists == (0, 1)

    def test_invalid_args(self, tiny_queries, trained_index):
        with pytest.raises(ValueError, match="skew"):
            skewed_workload(tiny_queries, trained_index, 10, skew=1.5)
        with pytest.raises(ValueError, match="hot_fraction"):
            skewed_workload(
                tiny_queries, trained_index, 10, skew=0.5, hot_fraction=0.0
            )
        with pytest.raises(ValueError, match="non-empty"):
            skewed_workload(
                tiny_queries, trained_index, 10, skew=0.5, hot_list_ids=[]
            )


class TestSkewMeasurement:
    def test_cluster_histogram_totals(self, tiny_queries, trained_index):
        hist = cluster_histogram(trained_index, tiny_queries, nprobe=4)
        assert hist.sum() == len(tiny_queries) * 4
        assert hist.shape == (trained_index.nlist,)

    def test_load_imbalance_zero_for_equal(self):
        assert load_imbalance(np.array([2.0, 2.0, 2.0])) == 0.0

    def test_load_imbalance_is_std(self):
        loads = np.array([1.0, 3.0])
        assert load_imbalance(loads) == pytest.approx(1.0)

    def test_normalized_imbalance_scale_free(self):
        a = normalized_imbalance(np.array([1.0, 3.0]))
        b = normalized_imbalance(np.array([10.0, 30.0]))
        assert a == pytest.approx(b)

    def test_normalized_imbalance_zero_loads(self):
        assert normalized_imbalance(np.zeros(4)) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            load_imbalance(np.array([]))
        with pytest.raises(ValueError):
            normalized_imbalance(np.array([]))
