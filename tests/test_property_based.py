"""Property-based tests (hypothesis) for the core invariants.

The single most important invariant in the library: for ANY data, ANY
query, ANY partition grid, and ANY combination of engine flags, the
distributed engine returns byte-identical results to a single-node IVF
scan — dimension-level pruning is lossless.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.heap import TopKHeap
from repro.core.pruning import ShardScan
from repro.distance.kernels import pairwise_squared_l2, top_k_smallest
from repro.distance.metrics import squared_l2
from repro.distance.partial import DimensionSlices, slice_norms

FINITE_FLOATS = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, width=32
)


def arrays(rows_min, rows_max, cols_min, cols_max):
    return hnp.arrays(
        dtype=np.float32,
        shape=st.tuples(
            st.integers(rows_min, rows_max), st.integers(cols_min, cols_max)
        ),
        elements=FINITE_FLOATS,
    )


class TestPartialDistanceProperties:
    @given(data=arrays(1, 30, 4, 24), n_slices=st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_partial_sums_equal_full_distance(self, data, n_slices):
        if data.shape[1] < n_slices:
            n_slices = data.shape[1]
        slices = DimensionSlices.even(data.shape[1], n_slices)
        query = data[0]
        from repro.distance.partial import partial_squared_l2

        total = sum(
            partial_squared_l2(slices.take(data, j), slices.take(query, j))
            for j in range(n_slices)
        )
        np.testing.assert_allclose(
            total, squared_l2(data, query), rtol=1e-4, atol=1e-4
        )

    @given(data=arrays(2, 30, 4, 24))
    @settings(max_examples=50, deadline=None)
    def test_running_sums_monotone(self, data):
        slices = DimensionSlices.even(data.shape[1], min(4, data.shape[1]))
        query, rows = data[0], data[1:]
        from repro.distance.partial import partial_squared_l2

        acc = np.zeros(rows.shape[0])
        for j in range(slices.n_slices):
            step = partial_squared_l2(
                slices.take(rows, j), slices.take(query, j)
            )
            assert np.all(step >= 0.0)
            acc += step

    @given(data=arrays(2, 20, 4, 16))
    @settings(max_examples=50, deadline=None)
    def test_cauchy_schwarz_bound_holds(self, data):
        slices = DimensionSlices.even(data.shape[1], min(3, data.shape[1]))
        query, rows = data[0], data[1:]
        norms = slice_norms(rows, slices)
        q_norms = np.array(
            [
                np.linalg.norm(slices.take(query, j))
                for j in range(slices.n_slices)
            ]
        )
        from repro.distance.partial import (
            partial_inner_product,
            remaining_ip_bound,
        )

        for done_count in range(slices.n_slices):
            done = list(range(done_count))
            bound = remaining_ip_bound(norms, q_norms, done, slices.n_slices)
            true_remaining = sum(
                (
                    partial_inner_product(
                        slices.take(rows, j), slices.take(query, j)
                    )
                    for j in range(done_count, slices.n_slices)
                ),
                np.zeros(rows.shape[0]),
            )
            assert np.all(np.abs(true_remaining) <= bound + 1e-5)


class TestHeapProperties:
    @given(
        scores=st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6, allow_nan=False
            ),
            min_size=1,
            max_size=100,
        ),
        k=st.integers(1, 20),
    )
    @settings(max_examples=100, deadline=None)
    def test_heap_equals_sorted_prefix(self, scores, k):
        heap = TopKHeap(k)
        for i, s in enumerate(scores):
            heap.push(s, i)
        expected = sorted(zip(scores, range(len(scores))))[:k]
        got = heap.items()
        assert len(got) == min(k, len(scores))
        for (es, ei), (gs, gi) in zip(expected, got):
            assert gi == ei
            assert gs == es

    @given(
        scores=st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False),
            min_size=5,
            max_size=60,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_threshold_never_increases(self, scores):
        heap = TopKHeap(3)
        previous = float("inf")
        for i, s in enumerate(scores):
            heap.push(s, i)
            assert heap.threshold <= previous
            previous = heap.threshold


class TestShardScanProperties:
    @given(data=arrays(12, 40, 8, 24), seed=st.integers(0, 1000))
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.data_too_large],
    )
    def test_pruned_scan_top_k_equals_unpruned(self, data, seed):
        """Pruning with ANY valid threshold schedule preserves top-K."""
        rng = np.random.default_rng(seed)
        query = data[0]
        rows = data[1:]
        n_slices = min(4, data.shape[1])
        slices = DimensionSlices.even(data.shape[1], n_slices)
        k = 5

        full = pairwise_squared_l2(query[None, :], rows)[0]
        expected_ids, _ = top_k_smallest(full, k)

        heap = TopKHeap(k)
        # Prewarm with a random subset to create a realistic threshold;
        # prewarmed candidates are excluded from the scan, exactly as
        # the engine does it.
        warm = rng.choice(rows.shape[0], size=min(6, rows.shape[0]), replace=False)
        for idx in warm:
            heap.push(float(full[idx]), int(idx))

        scan = ShardScan(
            base=rows,
            candidate_ids=np.setdiff1d(np.arange(rows.shape[0]), warm),
            query=query,
            slices=slices,
        )
        order = rng.permutation(n_slices)
        for j in order:
            if scan.n_alive == 0:
                break
            scan.process_slice(int(j))
            scan.prune(heap.threshold)
        if scan.n_alive:
            ids, scores = scan.survivors()
            for cid, score in zip(ids, scores):
                heap.push(float(score), int(cid))
        got_ids = np.array([i for _, i in heap.items()])
        # The retrieved set must match the exact top-K up to floating-
        # point ties: compare the true scores of what was retrieved
        # against the true scores of the exact answer.
        np.testing.assert_allclose(
            full[got_ids], full[expected_ids], rtol=1e-7, atol=1e-7
        )


class TestEngineProperty:
    @given(
        seed=st.integers(0, 50),
        b_vec=st.sampled_from([1, 2, 4]),
        nprobe=st.integers(1, 8),
        pruning=st.booleans(),
        pipeline=st.booleans(),
        load_balance=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_engine_matches_reference_for_random_configs(
        self, seed, b_vec, nprobe, pruning, pipeline, load_balance
    ):
        from repro.cluster.cluster import Cluster
        from repro.core.config import HarmonyConfig
        from repro.core.partition import build_plan
        from repro.core.pipeline import PipelineEngine
        from repro.data.synthetic import gaussian_blobs
        from repro.index.ivf import IVFFlatIndex

        data = gaussian_blobs(240, 16, n_blobs=6, cluster_std=0.5, seed=seed)
        queries = gaussian_blobs(
            246, 16, n_blobs=6, cluster_std=0.5, seed=seed
        )[240:]
        index = IVFFlatIndex(dim=16, nlist=8, seed=0)
        index.train(data)
        index.add(data)
        b_dim = 4 // b_vec
        plan = build_plan(index, 4, b_vec, b_dim)
        config = HarmonyConfig(
            n_machines=4,
            nlist=8,
            nprobe=nprobe,
            seed=0,
            enable_pruning=pruning,
            enable_pipeline=pipeline,
            enable_load_balance=load_balance,
        )
        engine = PipelineEngine(index, plan, Cluster(4), config)
        result, _ = engine.run(queries, k=5, nprobe=nprobe)
        ref_d, ref_i = index.search(queries, k=5, nprobe=nprobe)
        np.testing.assert_array_equal(result.ids, ref_i)
        np.testing.assert_allclose(result.distances, ref_d, rtol=1e-9)


class TestNodeTimelineProperties:
    @given(
        items=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_occupy_never_overlaps_and_respects_earliest(self, items):
        from repro.cluster.node import WorkerNode

        node = WorkerNode(node_id=0)
        intervals = []
        for duration, earliest in items:
            start, end = node.occupy(duration, earliest=earliest)
            assert start >= earliest
            assert end == pytest.approx(start + duration)
            intervals.append((start, end))
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1 - 1e-9

    @given(
        items=st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_total_busy_time_equals_sum_of_durations(self, items):
        from repro.cluster.node import WorkerNode

        node = WorkerNode(node_id=0)
        for duration, earliest in items:
            node.occupy(duration, earliest=earliest)
        assert node.breakdown.total == pytest.approx(
            sum(d for d, _ in items)
        )
