"""Host chaos property: wall-clock faults never silently corrupt results.

The host twin of ``tests/test_chaos_property.py``: instead of scripting
failures on the simulated timeline, a seeded
:class:`~repro.cluster.host_faults.HostFaultInjector` kills real worker
processes mid-batch, injects straggler delays, and the supervised pools
must uphold the same contract the sim pipeline pins:

- a query whose coverage is 1.0 returns results **byte-exact** against
  the serial exactness oracle, no matter which chaos schedule ran;
- a query whose coverage is below 1.0 is explicitly flagged and still
  returns only genuine neighbours at their true distances;
- recovery is invisible to callers: the search after a chaos-hit batch
  runs clean on the healed pool.

Schedules are replayable (seeded), but wall-clock interleaving is not —
so unlike the sim twin there is no timing-determinism assertion; the
byte-exactness-at-full-coverage property is the invariant that must
survive every interleaving.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.host_faults import HostFaultInjector
from tests.conftest import make_db
from tests.test_chaos_property import _assert_genuine

CHAOS_SEEDS = [0, 1, 2, 3, 4, 5]

HOST_BACKENDS = ["thread", "process"]


def _backend_kwargs(backend: str) -> dict:
    if backend == "process":
        return {"backend": "process", "n_workers": 2}
    return {"backend": "thread", "n_threads": 2}


def _make_chaos_db(data, queries, backend, **overrides):
    kwargs = _backend_kwargs(backend)
    kwargs.update(overrides)
    return make_db(data, queries, **kwargs)


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
@pytest.mark.parametrize("backend", HOST_BACKENDS)
def test_host_chaos_exact_or_flagged(tiny_data, tiny_queries, backend, seed):
    """Random kills + delays: byte-exact at full coverage, else flagged."""
    oracle_db = make_db(tiny_data, tiny_queries, backend="serial")
    oracle, _ = oracle_db.search(tiny_queries, k=5)

    db = _make_chaos_db(
        tiny_data, tiny_queries, backend,
        degraded_mode=True, scan_timeout=5.0, scan_retries=3,
    )
    n_workers = 2
    injector = HostFaultInjector.random(n_workers=n_workers, seed=seed)
    db.set_host_faults(injector)
    try:
        result, report = db.search(tiny_queries, k=5)
        assert report.degraded is not None
        coverage = report.degraded.coverage
        _assert_genuine(db, result, tiny_queries, coverage, oracle)
        if np.all(coverage == 1.0):
            np.testing.assert_array_equal(result.ids, oracle.ids)
            np.testing.assert_array_equal(
                result.distances, oracle.distances
            )
    finally:
        db.close()


@pytest.mark.parametrize("seed", CHAOS_SEEDS[:3])
@pytest.mark.parametrize("backend", HOST_BACKENDS)
def test_host_chaos_without_degraded_mode_stays_exact(
    tiny_data, tiny_queries, backend, seed
):
    """Exact mode: recovery (requeue / retry / fallback) must be total.

    Without ``degraded_mode`` there is no abandonment escape hatch —
    every injected kill must be healed by re-running its tasks, so the
    answer is byte-identical to the oracle or the search raises. It
    must never be silently short.
    """
    oracle_db = make_db(tiny_data, tiny_queries, backend="serial")
    oracle, _ = oracle_db.search(tiny_queries, k=5)

    db = _make_chaos_db(tiny_data, tiny_queries, backend)
    injector = HostFaultInjector.random(n_workers=2, seed=seed)
    db.set_host_faults(injector)
    try:
        result, report = db.search(tiny_queries, k=5)
        np.testing.assert_array_equal(result.ids, oracle.ids)
        np.testing.assert_array_equal(result.distances, oracle.distances)
        if injector.fired and report.fault_stats is not None:
            stats = report.fault_stats.to_dict()
            assert (
                stats["worker_respawns"]
                or stats["tasks_requeued"]
                or stats["scan_timeouts"]
            )
    finally:
        db.close()


@pytest.mark.parametrize("backend", HOST_BACKENDS)
def test_host_chaos_next_search_runs_clean(tiny_data, tiny_queries, backend):
    """The batch after a chaos hit runs on a healed pool, byte-exact."""
    oracle_db = make_db(tiny_data, tiny_queries, backend="serial")
    oracle, _ = oracle_db.search(tiny_queries, k=5)

    db = _make_chaos_db(tiny_data, tiny_queries, backend)
    injector = HostFaultInjector.random(n_workers=2, seed=0)
    db.set_host_faults(injector)
    try:
        db.search(tiny_queries, k=5)
        # Second batch: all one-shot kills are spent; results and
        # fault counters must both be clean.
        result, report = db.search(tiny_queries, k=5)
        np.testing.assert_array_equal(result.ids, oracle.ids)
        np.testing.assert_array_equal(result.distances, oracle.distances)
        stats = report.fault_stats
        if stats is not None:
            assert stats.worker_respawns == 0
            assert stats.tasks_requeued == 0
    finally:
        db.close()


@pytest.mark.parametrize("seed", CHAOS_SEEDS[:3])
@pytest.mark.parametrize("backend", HOST_BACKENDS)
def test_served_requests_survive_host_chaos(
    tiny_data, tiny_queries, backend, seed
):
    """Requests served through HarmonyServer complete exactly under chaos."""
    oracle_db = make_db(tiny_data, tiny_queries, backend="serial")
    oracle, _ = oracle_db.search(tiny_queries, k=5)

    db = _make_chaos_db(tiny_data, tiny_queries, backend)
    injector = HostFaultInjector.random(n_workers=2, seed=seed)
    db.set_host_faults(injector)
    try:
        with db.serve(slo_ms=60_000.0) as server:
            futures = [
                server.submit(tiny_queries[i], k=5)
                for i in range(len(tiny_queries))
            ]
            for i, future in enumerate(futures):
                response = future.result(timeout=120)
                assert not response.timed_out
                np.testing.assert_array_equal(response.ids, oracle.ids[i])
                np.testing.assert_array_equal(
                    response.distances, oracle.distances[i]
                )
    finally:
        db.close()


def test_sim_injector_rejected(tiny_data, tiny_queries):
    """The sim backend scripts faults via FaultSchedule, not the injector."""
    db = make_db(tiny_data, tiny_queries, backend="sim")
    with pytest.raises(ValueError, match="host"):
        db.set_host_faults(HostFaultInjector.random(n_workers=2, seed=0))
