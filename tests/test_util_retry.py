"""RetryPolicy: exponential growth, caps, deterministic jitter."""

import pytest

from repro.util.retry import RetryPolicy, backoff_delay


def test_exponential_growth():
    assert backoff_delay(0, 0.1) == pytest.approx(0.1)
    assert backoff_delay(1, 0.1) == pytest.approx(0.2)
    assert backoff_delay(3, 0.1) == pytest.approx(0.8)
    assert backoff_delay(2, 0.5, factor=3.0) == pytest.approx(4.5)


def test_max_delay_caps_before_jitter():
    assert backoff_delay(10, 1.0, max_delay=5.0) == pytest.approx(5.0)
    # Jitter stretches the capped value, never beyond (1 + jitter)x.
    got = backoff_delay(10, 1.0, max_delay=5.0, jitter=0.5, seed=3)
    assert 5.0 <= got <= 7.5


def test_jitter_is_deterministic_and_bounded():
    a = backoff_delay(2, 0.1, jitter=0.5, seed=7, key=11)
    b = backoff_delay(2, 0.1, jitter=0.5, seed=7, key=11)
    assert a == b  # same (seed, key, attempt) -> same delay
    assert 0.4 <= a <= 0.6
    # Different keys de-synchronize concurrent retriers.
    c = backoff_delay(2, 0.1, jitter=0.5, seed=7, key=12)
    assert c != a


def test_zero_jitter_matches_pure_exponential():
    policy = RetryPolicy(base=2e-4, max_attempts=3)
    assert policy.delays() == [
        pytest.approx(2e-4 * 2.0**i) for i in range(3)
    ]
    assert policy.total_delay() == pytest.approx(2e-4 * (1 + 2 + 4))


def test_policy_schedule_and_validation():
    policy = RetryPolicy(
        base=0.1, factor=2.0, max_attempts=4, jitter=0.25, seed=1
    )
    assert len(policy.delays()) == 4
    assert policy.delays() == policy.delays()  # replayable
    assert policy.total_delay(key=5) == pytest.approx(
        sum(policy.delay(i, key=5) for i in range(4))
    )
    with pytest.raises(ValueError, match="base"):
        RetryPolicy(base=0.0)
    with pytest.raises(ValueError, match="factor"):
        RetryPolicy(base=0.1, factor=0.5)
    with pytest.raises(ValueError, match="max_attempts"):
        RetryPolicy(base=0.1, max_attempts=-1)
    with pytest.raises(ValueError, match="max_delay"):
        RetryPolicy(base=0.1, max_delay=0.0)
    with pytest.raises(ValueError, match="jitter"):
        RetryPolicy(base=0.1, jitter=-0.1)
    with pytest.raises(ValueError, match="attempt"):
        backoff_delay(-1, 0.1)


def test_sim_pipeline_uses_shared_policy(tiny_data, tiny_queries):
    """The sim retry path charges exactly the policy's delays."""
    from tests.conftest import make_db

    db = make_db(
        tiny_data, tiny_queries, backend="sim",
        degraded_mode=True, replicas=2,
    )
    _, healthy = db.search(tiny_queries, k=5)
    from repro.cluster.faults import FaultEvent, FaultSchedule

    db.set_fault_schedule(
        FaultSchedule([FaultEvent(time=0.0, kind="crash", node=0)])
    )
    _, report = db.search(tiny_queries, k=5)
    stats = report.fault_stats
    assert stats is not None and (
        stats.retries > 0 or stats.failovers > 0 or stats.skipped_scans > 0
    )
