"""Unit tests for repro.core.config."""

import pytest

from repro.core.config import HarmonyConfig, Mode, resolve_mode
from repro.distance.metrics import Metric


class TestMode:
    def test_values_match_paper_cli(self):
        assert Mode.HARMONY.value == "harmony"
        assert Mode.VECTOR.value == "harmony-vector"
        assert Mode.DIMENSION.value == "harmony-dimension"

    def test_resolve_from_string(self):
        assert resolve_mode("harmony") is Mode.HARMONY
        assert resolve_mode("Harmony-Vector") is Mode.VECTOR

    def test_resolve_passthrough(self):
        assert resolve_mode(Mode.DIMENSION) is Mode.DIMENSION

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown mode"):
            resolve_mode("roundrobin")


class TestHarmonyConfig:
    def test_defaults(self):
        config = HarmonyConfig()
        assert config.n_machines == 4
        assert config.mode is Mode.HARMONY
        assert config.metric is Metric.L2
        assert config.enable_pruning
        assert config.enable_pipeline
        assert config.enable_load_balance

    def test_string_coercion(self):
        config = HarmonyConfig(metric="cosine", mode="harmony-dimension")
        assert config.metric is Metric.COSINE
        assert config.mode is Mode.DIMENSION

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_machines": 0},
            {"nlist": 0},
            {"nprobe": 0},
            {"alpha": -1.0},
            {"prewarm_size": -1},
            {"plan_sample": 0},
        ],
    )
    def test_invalid_values_raise(self, kwargs):
        with pytest.raises(ValueError):
            HarmonyConfig(**kwargs)

    def test_replace(self):
        config = HarmonyConfig(nlist=32)
        changed = config.replace(nprobe=2, enable_pruning=False)
        assert changed.nlist == 32
        assert changed.nprobe == 2
        assert not changed.enable_pruning
        assert config.nprobe == 8  # original untouched
