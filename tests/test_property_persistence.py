"""Property-based round-trip tests for persistence."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import HarmonyConfig, Mode
from repro.core.database import HarmonyDB
from repro.data.synthetic import gaussian_blobs
from repro.index.ivf import IVFFlatIndex


class TestIndexRoundTripProperties:
    @given(
        seed=st.integers(0, 50),
        nlist=st.sampled_from([4, 8, 16]),
        n_deleted=st.integers(0, 40),
    )
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_search_identical_after_round_trip(
        self, tmp_path, seed, nlist, n_deleted
    ):
        data = gaussian_blobs(250, 12, n_blobs=5, seed=seed)
        queries = gaussian_blobs(260, 12, n_blobs=5, seed=seed)[250:]
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 3, size=250).astype(np.int64)
        index = IVFFlatIndex(dim=12, nlist=nlist, seed=0)
        index.train(data)
        index.add(data, labels=labels)
        if n_deleted:
            index.remove_ids(rng.choice(250, size=n_deleted, replace=False))

        path = tmp_path / f"ix_{seed}_{nlist}_{n_deleted}.npz"
        index.save(path)
        loaded = IVFFlatIndex.load(path)

        for filt in (None, [0, 2]):
            d1, i1 = index.search(queries, k=5, nprobe=4, filter_labels=filt)
            d2, i2 = loaded.search(queries, k=5, nprobe=4, filter_labels=filt)
            np.testing.assert_array_equal(i1, i2)
            np.testing.assert_allclose(d1, d2)
        assert loaded.nlive == index.nlive


class TestDatabaseRoundTripProperties:
    @given(
        seed=st.integers(0, 30),
        mode=st.sampled_from(list(Mode)),
        n_machines=st.sampled_from([2, 4]),
    )
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_deployment_round_trip(self, tmp_path, seed, mode, n_machines):
        data = gaussian_blobs(300, 16, n_blobs=5, seed=seed)
        queries = gaussian_blobs(312, 16, n_blobs=5, seed=seed)[300:]
        db = HarmonyDB(
            dim=16,
            config=HarmonyConfig(
                n_machines=n_machines, nlist=8, nprobe=4, mode=mode, seed=0
            ),
        )
        db.build(data, sample_queries=queries)
        r1, _ = db.search(queries, k=5)

        path = tmp_path / f"db_{seed}_{mode.value}_{n_machines}.npz"
        db.save(path)
        loaded = HarmonyDB.load(path)
        r2, _ = loaded.search(queries, k=5)
        np.testing.assert_array_equal(r1.ids, r2.ids)
        assert loaded.plan.describe() == db.plan.describe()
