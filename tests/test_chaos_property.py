"""Chaos property: under random faults, results are never silently wrong.

The contract pinned here is the whole point of degraded mode:

- a query whose coverage is 1.0 returns results **byte-exact** against
  the healthy run (= the serial exactness oracle);
- a query whose coverage is below 1.0 is explicitly flagged as degraded
  and still returns only *genuine* neighbours — real ids carrying their
  true distances — just possibly fewer/worse ones;
- the whole timeline is deterministic: identical seeds replay
  byte-identically.

Both the simulated pipeline under random seeded ``FaultSchedule``s and
the host backends (including the fused ``batch_queries=True`` path)
under static failures are covered.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.faults import FaultSchedule
from repro.distance.kernels import scores_to_query
from tests.conftest import make_db

CHAOS_SEEDS = [0, 1, 2, 3, 4, 5]


def _assert_genuine(db, result, queries, coverage, oracle):
    """Every row is byte-exact (full coverage) or flagged + genuine."""
    prepared = db._engine.kernel.prepare_queries(queries)
    for i in range(result.n_queries):
        if coverage[i] == 1.0:
            np.testing.assert_array_equal(result.ids[i], oracle.ids[i])
            np.testing.assert_array_equal(
                result.distances[i], oracle.distances[i]
            )
            continue
        # Explicitly flagged degraded: returned neighbours must still
        # be real vectors at their true distances (no fabrications).
        mask = result.ids[i] >= 0
        ids = result.ids[i][mask]
        assert ids.size == np.unique(ids).size, "duplicate ids in a row"
        if ids.size == 0:
            continue
        true_scores = scores_to_query(
            db.index.base[ids], prepared[i], db.index.metric
        )
        np.testing.assert_allclose(
            result.distances[i][mask], true_scores, rtol=1e-4, atol=1e-5
        )


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
def test_sim_chaos_exact_or_flagged(tiny_data, tiny_queries, seed):
    db = make_db(
        tiny_data, tiny_queries, backend="sim",
        degraded_mode=True, replicas=2,
    )
    oracle, healthy_report = db.search(tiny_queries, k=5)

    schedule = FaultSchedule.random(
        n_workers=4,
        duration=healthy_report.simulated_seconds * 1.5,
        seed=seed,
    )
    db.set_fault_schedule(schedule)
    result, report = db.search(tiny_queries, k=5)
    assert report.degraded is not None
    _assert_genuine(db, result, tiny_queries, report.degraded.coverage, oracle)


@pytest.mark.parametrize("seed", CHAOS_SEEDS[:3])
def test_sim_chaos_deterministic(tiny_data, tiny_queries, seed):
    db = make_db(
        tiny_data, tiny_queries, backend="sim",
        degraded_mode=True, replicas=2,
    )
    _, healthy_report = db.search(tiny_queries, k=5)
    schedule = FaultSchedule.random(
        n_workers=4,
        duration=healthy_report.simulated_seconds * 1.5,
        seed=seed,
    )
    db.set_fault_schedule(schedule)
    r1, rep1 = db.search(tiny_queries, k=5)
    r2, rep2 = db.search(tiny_queries, k=5)
    assert np.array_equal(r1.ids, r2.ids)
    assert np.array_equal(r1.distances, r2.distances)
    assert rep1.simulated_seconds == rep2.simulated_seconds
    assert np.array_equal(rep1.latencies, rep2.latencies)
    assert rep1.fault_stats.to_dict() == rep2.fault_stats.to_dict()
    np.testing.assert_array_equal(
        rep1.degraded.coverage, rep2.degraded.coverage
    )


@pytest.mark.parametrize("seed", CHAOS_SEEDS[:3])
def test_sim_chaos_unreplicated_never_raises(tiny_data, tiny_queries, seed):
    """Without replicas, chaos can only degrade — never raise."""
    db = make_db(tiny_data, tiny_queries, backend="sim", degraded_mode=True)
    oracle, healthy_report = db.search(tiny_queries, k=5)
    schedule = FaultSchedule.random(
        n_workers=4,
        duration=healthy_report.simulated_seconds * 1.5,
        seed=seed,
    )
    db.set_fault_schedule(schedule)
    result, report = db.search(tiny_queries, k=5)
    _assert_genuine(db, result, tiny_queries, report.degraded.coverage, oracle)


@pytest.mark.parametrize("seed", CHAOS_SEEDS[:3])
@pytest.mark.parametrize("batch", [True, False])
def test_host_chaos_static_failures(tiny_data, tiny_queries, seed, batch):
    """Serial backend (incl. the fused batched path) under random fails."""
    rng = np.random.default_rng(seed)
    n_fail = int(rng.integers(1, 3))
    failed = rng.choice(4, size=n_fail, replace=False)

    sim = make_db(
        tiny_data, tiny_queries, backend="sim",
        degraded_mode=True, replicas=2,
    )
    oracle, _ = sim.search(tiny_queries, k=5)

    host = make_db(
        tiny_data,
        tiny_queries,
        backend="serial",
        degraded_mode=True,
        replicas=2,
        batch_queries=batch,
    )
    for m in failed:
        host.cluster.fail_worker(int(m))
        sim.cluster.fail_worker(int(m))
    result, report = host.search(tiny_queries, k=5)
    assert report.degraded is not None
    _assert_genuine(
        sim, result, tiny_queries, report.degraded.coverage, oracle
    )
    # The sim pipeline must agree byte-for-byte with the host backend
    # under the identical static failure set.
    sim_result, sim_report = sim.search(tiny_queries, k=5)
    assert np.array_equal(result.ids, sim_result.ids)
    assert np.array_equal(result.distances, sim_result.distances)
    np.testing.assert_array_equal(
        report.degraded.coverage, sim_report.degraded.coverage
    )


def test_host_batched_equals_looped_under_failures(tiny_data, tiny_queries):
    """batch_queries=True and False agree byte-exactly when degraded."""
    results = []
    for batch in (True, False):
        db = make_db(
            tiny_data,
            tiny_queries,
            backend="serial",
            degraded_mode=True,
            replicas=2,
            batch_queries=batch,
        )
        db.cluster.fail_worker(0)
        db.cluster.fail_worker(1)
        results.append(db.search(tiny_queries, k=5))
    (r_batch, rep_batch), (r_loop, rep_loop) = results
    assert np.array_equal(r_batch.ids, r_loop.ids)
    assert np.array_equal(r_batch.distances, r_loop.distances)
    np.testing.assert_array_equal(
        rep_batch.degraded.coverage, rep_loop.degraded.coverage
    )
    assert rep_batch.degraded.min_coverage < 1.0
