"""Tests for dataset profiling (repro.data.analysis)."""

import numpy as np
import pytest

from repro.data.analysis import (
    cluster_imbalance,
    distance_contrast,
    leading_variance_share,
    profile_dataset,
)
from repro.data.synthetic import (
    correlated_walk,
    gaussian_blobs,
    uniform_gaussian,
)
from repro.index.ivf import IVFFlatIndex


class TestLeadingVarianceShare:
    def test_flat_profile_near_quarter(self):
        data = uniform_gaussian(3000, 64, seed=0)
        share = leading_variance_share(data, n_slices=4)
        assert share == pytest.approx(0.25, abs=0.03)

    def test_enveloped_series_front_loaded(self):
        data = correlated_walk(1000, 64, envelope=3.0, seed=1)
        share = leading_variance_share(data, n_slices=4)
        assert share > 0.6

    def test_zero_variance_degenerates_to_uniform(self):
        share = leading_variance_share(np.ones((10, 8)), n_slices=4)
        assert share == pytest.approx(0.25)

    def test_too_few_dims_raises(self):
        with pytest.raises(ValueError):
            leading_variance_share(np.ones((10, 2)), n_slices=4)


class TestDistanceContrast:
    def test_clustered_beats_uniform(self):
        blobs = gaussian_blobs(2050, 32, n_blobs=8, cluster_std=0.3, seed=2)
        noise = uniform_gaussian(2050, 32, seed=2)
        blob_contrast = distance_contrast(blobs[:2000], blobs[2000:])
        noise_contrast = distance_contrast(noise[:2000], noise[2000:])
        assert blob_contrast > noise_contrast

    def test_at_least_one(self):
        data = uniform_gaussian(600, 16, seed=3)
        assert distance_contrast(data[:500], data[500:]) >= 1.0

    def test_deterministic(self):
        data = gaussian_blobs(1100, 16, n_blobs=4, seed=4)
        a = distance_contrast(data[:1000], data[1000:], seed=9)
        b = distance_contrast(data[:1000], data[1000:], seed=9)
        assert a == b


class TestClusterImbalance:
    def test_even_lists_low_cv(self, trained_index):
        assert cluster_imbalance(trained_index) < 2.0

    def test_dominant_cluster_high_cv(self):
        from repro.data.synthetic import heavy_tailed_embeddings

        data = heavy_tailed_embeddings(2000, 24, seed=5)
        index = IVFFlatIndex(dim=24, nlist=16, seed=0)
        index.train(data)
        index.add(data)
        blobs = gaussian_blobs(2000, 24, n_blobs=16, cluster_std=0.2, seed=5)
        even = IVFFlatIndex(dim=24, nlist=16, seed=0)
        even.train(blobs)
        even.add(blobs)
        assert cluster_imbalance(index) > cluster_imbalance(even)


class TestProfilePredictsPruning:
    def test_variance_share_orders_pruning(self):
        """The series family (front-loaded variance) must out-prune the
        flat-profile family — the mechanism behind Table 3's spread."""
        from repro.core.config import HarmonyConfig, Mode
        from repro.core.database import HarmonyDB

        def pruning_avg(data, queries):
            db = HarmonyDB(
                dim=data.shape[1],
                config=HarmonyConfig(
                    n_machines=4, nlist=16, nprobe=4, mode=Mode.DIMENSION
                ),
            )
            db.build(data, sample_queries=queries)
            _, report = db.search(queries, k=10)
            return report.pruning.average_ratio()

        series = correlated_walk(
            1540, 64, envelope=2.0, n_classes=24, noise_scale=0.2, seed=6
        )
        flat = uniform_gaussian(1540, 64, seed=6)
        series_share = leading_variance_share(series[:1500])
        flat_share = leading_variance_share(flat[:1500])
        assert series_share > flat_share
        assert pruning_avg(series[:1500], series[1500:]) > pruning_avg(
            flat[:1500], flat[1500:]
        )

    def test_profile_dataset_bundles_all(self, tiny_data, tiny_queries,
                                          trained_index):
        profile = profile_dataset(
            tiny_data, tiny_queries, trained_index
        )
        assert 0 < profile.leading_variance_share < 1
        assert profile.distance_contrast >= 1.0
        assert profile.cluster_imbalance >= 0.0
