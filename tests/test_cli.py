"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestDatasetsCommand:
    def test_lists_all_ten(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("sift1m", "glove2.2m", "sift1b", "handoutlines"):
            assert name in out

    def test_shows_paper_sizes(self, capsys):
        main(["datasets"])
        out = capsys.readouterr().out
        assert "1,000,000,000" in out  # the billion-scale rows


class TestRunCommand:
    def test_basic_run(self, capsys):
        code = main(
            [
                "run",
                "--dataset",
                "sift1m",
                "--size",
                "600",
                "--queries",
                "10",
                "--nlist",
                "8",
                "--nprobe",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "plan:" in out
        assert "simulated QPS" in out
        assert "recall@10" in out
        assert "latency" in out

    def test_mode_flag(self, capsys):
        main(
            [
                "run",
                "--dataset",
                "sift1m",
                "--size",
                "600",
                "--queries",
                "10",
                "--nlist",
                "8",
                "--mode",
                "harmony-vector",
            ]
        )
        out = capsys.readouterr().out
        assert "vector plan" in out

    def test_no_pruning_flag(self, capsys):
        main(
            [
                "run",
                "--dataset",
                "sift1m",
                "--size",
                "600",
                "--queries",
                "10",
                "--nlist",
                "8",
                "--mode",
                "harmony-dimension",
                "--no-pruning",
            ]
        )
        out = capsys.readouterr().out
        assert "pruned per slice: 0% 0% 0% 0%" in out

    def test_invalid_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--mode", "roundrobin"])

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            main(["run", "--dataset", "imagenet", "--size", "100"])


class TestPlanCommand:
    def test_plan_output(self, capsys):
        code = main(
            ["plan", "--dataset", "sift1m", "--size", "600", "--nlist", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "<== chosen" in out
        assert "4 x 1" in out
        assert "1 x 4" in out


class TestTuneCommand:
    def test_tune_output(self, capsys):
        code = main(
            [
                "tune",
                "--dataset",
                "sift1m",
                "--size",
                "600",
                "--nlist",
                "8",
                "--target-recall",
                "0.9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "<== chosen" in out
        assert "target recall@10 >= 0.9" in out


class TestCapacityCommand:
    def test_trivial_target_met(self, capsys):
        code = main(
            [
                "capacity",
                "--dataset",
                "sift1m",
                "--size",
                "600",
                "--nlist",
                "8",
                "--target-recall",
                "0.8",
                "--target-qps",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recommendation:" in out
        assert "<== chosen" in out

    def test_unreachable_target_exit_code(self, capsys):
        code = main(
            [
                "capacity",
                "--dataset",
                "sift1m",
                "--size",
                "600",
                "--nlist",
                "8",
                "--target-qps",
                "1e15",
            ]
        )
        assert code == 2
        assert "target NOT met" in capsys.readouterr().out

    def test_target_qps_required(self):
        with pytest.raises(SystemExit):
            main(["capacity", "--dataset", "sift1m"])


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
