"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestDatasetsCommand:
    def test_lists_all_ten(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("sift1m", "glove2.2m", "sift1b", "handoutlines"):
            assert name in out

    def test_shows_paper_sizes(self, capsys):
        main(["datasets"])
        out = capsys.readouterr().out
        assert "1,000,000,000" in out  # the billion-scale rows


class TestRunCommand:
    def test_basic_run(self, capsys):
        code = main(
            [
                "run",
                "--dataset",
                "sift1m",
                "--size",
                "600",
                "--queries",
                "10",
                "--nlist",
                "8",
                "--nprobe",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "plan:" in out
        assert "simulated QPS" in out
        assert "recall@10" in out
        assert "latency" in out

    def test_mode_flag(self, capsys):
        main(
            [
                "run",
                "--dataset",
                "sift1m",
                "--size",
                "600",
                "--queries",
                "10",
                "--nlist",
                "8",
                "--mode",
                "harmony-vector",
            ]
        )
        out = capsys.readouterr().out
        assert "vector plan" in out

    def test_no_pruning_flag(self, capsys):
        main(
            [
                "run",
                "--dataset",
                "sift1m",
                "--size",
                "600",
                "--queries",
                "10",
                "--nlist",
                "8",
                "--mode",
                "harmony-dimension",
                "--no-pruning",
            ]
        )
        out = capsys.readouterr().out
        assert "pruned per slice: 0% 0% 0% 0%" in out

    def test_invalid_mode_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--mode", "roundrobin"])

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            main(["run", "--dataset", "imagenet", "--size", "100"])

    def test_missing_latencies_prints_na(self, capsys, monkeypatch):
        # Regression: latency_percentile(99) raised RuntimeError when a
        # report carried no per-query latencies.
        import numpy as np

        from repro.core.database import HarmonyDB

        real_search = HarmonyDB.search

        def strip_latencies(self, *args, **kwargs):
            result, report = real_search(self, *args, **kwargs)
            report.latencies = np.zeros(0, dtype=np.float64)
            return result, report

        monkeypatch.setattr(HarmonyDB, "search", strip_latencies)
        code = main(
            ["run", "--dataset", "sift1m", "--size", "600",
             "--queries", "10", "--nlist", "8", "--nprobe", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "p99 n/a" in out

    def test_trace_and_metrics_flags(self, capsys, tmp_path):
        trace_path = tmp_path / "run-trace.json"
        metrics_path = tmp_path / "run-metrics.prom"
        code = main(
            ["run", "--dataset", "sift1m", "--size", "600",
             "--queries", "10", "--nlist", "8", "--nprobe", "2",
             "--trace", str(trace_path), "--metrics", str(metrics_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace:" in out and "metrics:" in out

        import json

        from repro.obs.export import (
            validate_chrome_trace,
            validate_prometheus,
        )

        with open(trace_path) as f:
            counts = validate_chrome_trace(json.load(f))
        assert counts["B"] > 0
        validate_prometheus(metrics_path.read_text())


class TestTraceCommand:
    def test_trace_run_exports_valid_files(self, capsys, tmp_path):
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.prom"
        code = main(
            ["trace", "--dataset", "sift1m", "--size", "600",
             "--queries", "6", "--nlist", "8", "--nprobe", "2",
             "--output", str(trace_path), "--metrics", str(metrics_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "traced 6 queries" in out

        import json

        from repro.obs.validate import main as validate_main

        assert validate_main(
            [str(trace_path), "--metrics", str(metrics_path)]
        ) == 0
        with open(trace_path) as f:
            obj = json.load(f)
        assert any(e["ph"] == "B" for e in obj["traceEvents"])

    def test_validator_exit_code_on_bad_trace(self, tmp_path, capsys):
        import json

        from repro.obs.validate import main as validate_main

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [
            {"ph": "E", "pid": 1, "tid": 0, "ts": 0.0},
        ]}))
        assert validate_main([str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err


class TestPlanCommand:
    def test_plan_output(self, capsys):
        code = main(
            ["plan", "--dataset", "sift1m", "--size", "600", "--nlist", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "<== chosen" in out
        assert "4 x 1" in out
        assert "1 x 4" in out


class TestTuneCommand:
    def test_tune_output(self, capsys):
        code = main(
            [
                "tune",
                "--dataset",
                "sift1m",
                "--size",
                "600",
                "--nlist",
                "8",
                "--target-recall",
                "0.9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "<== chosen" in out
        assert "target recall@10 >= 0.9" in out


class TestCapacityCommand:
    def test_trivial_target_met(self, capsys):
        code = main(
            [
                "capacity",
                "--dataset",
                "sift1m",
                "--size",
                "600",
                "--nlist",
                "8",
                "--target-recall",
                "0.8",
                "--target-qps",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recommendation:" in out
        assert "<== chosen" in out

    def test_unreachable_target_exit_code(self, capsys):
        code = main(
            [
                "capacity",
                "--dataset",
                "sift1m",
                "--size",
                "600",
                "--nlist",
                "8",
                "--target-qps",
                "1e15",
            ]
        )
        assert code == 2
        assert "target NOT met" in capsys.readouterr().out

    def test_target_qps_required(self):
        with pytest.raises(SystemExit):
            main(["capacity", "--dataset", "sift1m"])


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])
