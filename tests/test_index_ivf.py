"""Unit tests for repro.index.ivf."""

import numpy as np
import pytest

from repro.data.synthetic import gaussian_blobs
from repro.index.flat import FlatIndex
from repro.index.ivf import IVFFlatIndex


@pytest.fixture(scope="module")
def data():
    return gaussian_blobs(500, 16, n_blobs=8, cluster_std=0.4, seed=0)


@pytest.fixture(scope="module")
def index(data):
    ix = IVFFlatIndex(dim=16, nlist=8, seed=0)
    ix.train(data)
    ix.add(data)
    return ix


class TestIVFConstruction:
    def test_requires_training_before_add(self):
        ix = IVFFlatIndex(dim=4, nlist=2)
        with pytest.raises(RuntimeError, match="train"):
            ix.add(np.ones((5, 4)))

    def test_centroids_untrained_raises(self):
        with pytest.raises(RuntimeError, match="not trained"):
            IVFFlatIndex(dim=4, nlist=2).centroids

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            IVFFlatIndex(dim=0, nlist=4)
        with pytest.raises(ValueError):
            IVFFlatIndex(dim=4, nlist=0)

    def test_train_sets_centroids(self, index):
        assert index.is_trained
        assert index.centroids.shape == (8, 16)

    def test_lists_partition_all_vectors(self, index, data):
        all_ids = np.concatenate(
            [index.list_members(l) for l in range(index.nlist)]
        )
        assert all_ids.shape == (len(data),)
        np.testing.assert_array_equal(np.sort(all_ids), np.arange(len(data)))

    def test_list_sizes_sum_to_ntotal(self, index, data):
        assert index.list_sizes().sum() == len(data)

    def test_incremental_add_ids_continue(self, data):
        ix = IVFFlatIndex(dim=16, nlist=4, seed=0)
        ix.train(data)
        ix.add(data[:100])
        ix.add(data[100:150])
        assert ix.ntotal == 150
        members = np.concatenate([ix.list_members(l) for l in range(4)])
        np.testing.assert_array_equal(np.sort(members), np.arange(150))

    def test_dim_mismatch_raises(self, index):
        with pytest.raises(ValueError, match="expected dim"):
            index.probe(np.ones((1, 3)), nprobe=1)
        ix = IVFFlatIndex(dim=16, nlist=4, seed=0)
        with pytest.raises(ValueError, match="expected dim"):
            ix.train(np.ones((50, 8)))

    def test_build_stats_counts(self, index):
        stats = index.build_stats()
        assert stats.train_elements > 0
        assert stats.add_elements > 0


class TestIVFProbe:
    def test_probe_shape(self, index, data):
        probes = index.probe(data[:5], nprobe=3)
        assert probes.shape == (5, 3)

    def test_probe_capped_at_nlist(self, index, data):
        probes = index.probe(data[:2], nprobe=100)
        assert probes.shape == (2, 8)

    def test_probe_ordered_by_centroid_distance(self, index, data):
        from repro.distance.kernels import pairwise_squared_l2

        q = data[3:4]
        probes = index.probe(q, nprobe=8)[0]
        dists = pairwise_squared_l2(q, index.centroids)[0]
        assert np.all(np.diff(dists[probes]) >= 0)

    def test_probe_invalid_nprobe(self, index, data):
        with pytest.raises(ValueError, match="nprobe"):
            index.probe(data[:1], nprobe=0)

    def test_candidates_sorted_union(self, index):
        cand = index.candidates(np.array([0, 3]))
        assert np.all(np.diff(cand) > 0)
        expected = np.sort(
            np.concatenate([index.list_members(0), index.list_members(3)])
        )
        np.testing.assert_array_equal(cand, expected)

    def test_candidates_empty_probes(self, index):
        assert index.candidates(np.array([], dtype=np.int64)).size == 0


class TestIVFSearch:
    def test_full_probe_equals_exact(self, index, data):
        """nprobe == nlist scans everything -> identical to brute force."""
        queries = data[:20] + 0.01
        flat = FlatIndex(dim=16)
        flat.add(data)
        fd, fi = flat.search(queries, k=5)
        d, i = index.search(queries, k=5, nprobe=8)
        np.testing.assert_array_equal(i, fi)
        np.testing.assert_allclose(d, fd, rtol=1e-9)

    def test_recall_improves_with_nprobe(self, index, data):
        rng = np.random.default_rng(1)
        queries = data[rng.choice(500, 30)] + rng.standard_normal((30, 16)) * 0.3
        flat = FlatIndex(dim=16)
        flat.add(data)
        _, true_ids = flat.search(queries, k=10)

        def recall(nprobe):
            _, ids = index.search(queries, k=10, nprobe=nprobe)
            return np.mean(
                [len(set(a) & set(b)) / 10 for a, b in zip(ids, true_ids)]
            )

        r1, r4, r8 = recall(1), recall(4), recall(8)
        assert r1 <= r4 + 1e-9 <= r8 + 2e-9
        assert r8 == pytest.approx(1.0)

    def test_results_sorted(self, index, data):
        d, _ = index.search(data[:10], k=5, nprobe=4)
        assert np.all(np.diff(d, axis=1) >= 0)

    def test_padding_when_few_candidates(self, data):
        ix = IVFFlatIndex(dim=16, nlist=16, seed=0)
        ix.train(data)
        ix.add(data[:20])
        d, i = ix.search(data[:1], k=19, nprobe=1)
        assert (i[0] == -1).any() or i.shape[1] == 19
        padded = i[0] == -1
        assert np.all(np.isinf(d[0][padded]))

    def test_search_empty_raises(self, data):
        ix = IVFFlatIndex(dim=16, nlist=4, seed=0)
        ix.train(data)
        with pytest.raises(RuntimeError, match="empty"):
            ix.search(data[:1], k=1)

    def test_memory_report_components(self, index, data):
        report = index.memory_report()
        assert report["base_vectors"] == 500 * 16 * 4
        assert report["centroids"] == 8 * 16 * 4
        assert report["inverted_list_ids"] == 500 * 8
        assert report["total"] == sum(
            v for k, v in report.items() if k != "total"
        )


class TestStreamingWrites:
    """The write path must stay amortized-linear, not repack-per-add."""

    def test_add_bytes_copied_is_amortized_linear(self, data):
        ix = IVFFlatIndex(dim=16, nlist=8, seed=0)
        ix.train(data)
        batch = 5
        for start in range(0, len(data), batch):
            ix.add(data[start : start + batch])
        logical = (
            ix.memory_report()["base_vectors"]
            + ix.memory_report()["inverted_list_ids"]
            + ix.ntotal * (8 + 8 + 1)  # labels, assignments, tombstones
        )
        # What the old np.vstack/np.concatenate-per-call path moved:
        # every batch recopied everything before it.
        n_batches = len(data) // batch
        quadratic = sum(i * batch * 16 * 4 for i in range(n_batches))
        assert quadratic > 10 * logical  # the bound is meaningful here
        # Doubling growth copies each buffer < 2x its final size
        # (plus minimum-capacity slop across the per-list buffers).
        assert ix.mutation_bytes_copied < 3 * logical

    def test_single_bulk_add_copies_nothing_extra(self, data):
        ix = IVFFlatIndex(dim=16, nlist=8, seed=0)
        ix.train(data)
        ix.add(data)
        # One bulk add lands in exactly-sized buffers: reallocation
        # traffic stays a small fraction of the adopted payload.
        assert ix.mutation_bytes_copied < data.nbytes

    def test_is_deleted_validates_range(self, index):
        with pytest.raises(IndexError, match=r"ids must be in \[0,"):
            index.is_deleted([index.ntotal])
        with pytest.raises(IndexError, match=r"ids must be in \[0,"):
            index.is_deleted([-1])

    def test_labels_of_validates_range(self, index):
        with pytest.raises(IndexError, match=r"ids must be in \[0,"):
            index.labels_of([index.ntotal + 3])
        with pytest.raises(IndexError, match=r"ids must be in \[0,"):
            index.labels_of([-2, 0])

    def test_valid_ids_still_work(self, index):
        assert not index.is_deleted([0, index.ntotal - 1]).any()
        assert index.labels_of([0]).shape == (1,)

    def test_uid_distinguishes_reloaded_index(self, data, tmp_path):
        ix = IVFFlatIndex(dim=16, nlist=8, seed=0)
        ix.train(data)
        ix.add(data)
        path = tmp_path / "ivf.npz"
        ix.save(path)
        loaded = IVFFlatIndex.load(path)
        assert loaded.uid != ix.uid
        np.testing.assert_array_equal(loaded.base, ix.base)
