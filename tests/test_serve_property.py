"""Property test: serving preserves byte identity under any interleaving.

The serving layer's core contract, stated adversarially: no matter how
requests interleave — submission order, mixed ks and nprobes, paused
accumulation vs trickle, admission-control pressure, degraded
admissions — every response a caller actually receives is
byte-identical to a standalone serial execution of that caller's query
at the response's ``nprobe_used``. Coalescing may change *when* and
*with whom* a query runs, and degradation may change *which* nprobe it
runs at, but never the answer bytes for that (query, k, nprobe).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serve import RequestShed, ServeResponse, make_serial_oracle
from conftest import make_db

from repro.data.synthetic import gaussian_blobs

_DB = None
_QUERIES = None
_ORACLE = None


def _shared_db():
    """One module-lifetime deployment: hypothesis runs many examples."""
    global _DB, _QUERIES, _ORACLE
    if _DB is None:
        data = gaussian_blobs(900, 24, n_blobs=8, cluster_std=0.45, seed=17)
        _QUERIES = gaussian_blobs(
            964, 24, n_blobs=8, cluster_std=0.45, seed=17
        )[900:]
        _DB = make_db(data, nlist=16, nprobe=6, backend="thread")
        _ORACLE = make_serial_oracle(_DB)
    return _DB, _QUERIES, _ORACLE


@pytest.fixture(scope="module", autouse=True)
def _cleanup():
    yield
    global _DB
    if _DB is not None:
        _DB.close()
        _DB = None


@given(
    data=st.data(),
    n_requests=st.integers(1, 24),
    max_batch=st.sampled_from([1, 3, 8, 32]),
    paused_prefix=st.integers(0, 24),
)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.data_too_large],
)
def test_any_interleaving_matches_serial_oracle(
    data, n_requests, max_batch, paused_prefix
):
    db, queries, oracle = _shared_db()
    picks = data.draw(
        st.lists(
            st.tuples(
                st.integers(0, queries.shape[0] - 1),  # query row
                st.integers(1, 7),                     # k
                st.sampled_from([None, 2, 6]),         # nprobe
            ),
            min_size=n_requests,
            max_size=n_requests,
        )
    )
    server = db.serve(max_batch=max_batch, queue_depth=64, slo_ms=200.0)
    try:
        if paused_prefix:
            server.pause()
        futures = []
        for i, (row, k, nprobe) in enumerate(picks):
            if i == min(paused_prefix, len(picks)):
                server.resume()
            futures.append(server.submit(queries[row], k=k, nprobe=nprobe))
        server.resume()
        responses = [f.result(timeout=30) for f in futures]
    finally:
        server.close()
    for (row, k, nprobe), response in zip(picks, responses):
        expected_nprobe = nprobe if nprobe is not None else db.config.nprobe
        assert response.k == k
        assert response.nprobe_used == expected_nprobe
        assert not response.degraded
        ids, distances = oracle(queries[row], k, expected_nprobe)
        assert np.array_equal(ids, response.ids)
        assert np.array_equal(distances, response.distances)


@given(
    data=st.data(),
    n_requests=st.integers(6, 20),
    queue_depth=st.integers(2, 5),
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.data_too_large],
)
def test_degrade_nprobe_interleavings_stay_exact(
    data, n_requests, queue_depth
):
    """Under overload-degraded admission, completed responses are still
    byte-identical to the serial oracle at their (halved) nprobe."""
    db, queries, oracle = _shared_db()
    rows = data.draw(
        st.lists(
            st.integers(0, queries.shape[0] - 1),
            min_size=n_requests,
            max_size=n_requests,
        )
    )
    server = db.serve(
        max_batch=4,
        queue_depth=queue_depth,
        shed_policy="degrade_nprobe",
        slo_ms=200.0,
    )
    try:
        server.pause()  # force the queue past depth before any flush
        futures = [server.submit(queries[row], k=5) for row in rows]
        server.resume()
        outcomes = []
        for future in futures:
            try:
                outcomes.append(future.result(timeout=30))
            except RequestShed as exc:
                outcomes.append(exc)
    finally:
        server.close()
    completed = [o for o in outcomes if isinstance(o, ServeResponse)]
    shed = [o for o in outcomes if not isinstance(o, ServeResponse)]
    # Accounting closes exactly.
    assert len(completed) + len(shed) == n_requests
    # The hard cap held: pending never exceeded twice the depth.
    assert server.stats.max_queue_depth <= 2 * queue_depth
    saw_degraded = False
    for row, outcome in zip(rows, outcomes):
        if not isinstance(outcome, ServeResponse):
            continue
        if outcome.degraded:
            saw_degraded = True
            assert outcome.nprobe_used == db.config.nprobe // 2
        ids, distances = oracle(queries[row], 5, outcome.nprobe_used)
        assert np.array_equal(ids, outcome.ids)
        assert np.array_equal(distances, outcome.distances)
    # With more requests than the depth and a paused prefix, overload
    # admission must actually have engaged.
    if n_requests > queue_depth:
        assert saw_degraded or shed
