"""Unit tests for repro.index.faiss_like (single-node baseline)."""

import numpy as np
import pytest

from repro.data.synthetic import gaussian_blobs
from repro.index.faiss_like import FaissLikeIVF
from repro.index.ivf import IVFFlatIndex


@pytest.fixture(scope="module")
def data():
    return gaussian_blobs(400, 12, n_blobs=6, seed=0)


@pytest.fixture(scope="module")
def engine(data):
    eng = FaissLikeIVF(dim=12, nlist=8, seed=0)
    eng.train(data)
    eng.add(data)
    return eng


class TestFaissLikeIVF:
    def test_matches_underlying_ivf(self, engine, data):
        reference = IVFFlatIndex(dim=12, nlist=8, seed=0)
        reference.train(data)
        reference.add(data)
        d1, i1 = engine.search(data[:10], k=5, nprobe=3)
        d2, i2 = reference.search(data[:10], k=5, nprobe=3)
        np.testing.assert_array_equal(i1, i2)
        np.testing.assert_allclose(d1, d2)

    def test_cost_recorded(self, engine, data):
        engine.search(data[:5], k=3, nprobe=2)
        cost = engine.last_search_cost
        assert cost.centroid_elements == 5 * 8 * 12
        assert cost.scan_elements == cost.candidates * 12
        assert cost.total_elements == (
            cost.centroid_elements + cost.scan_elements
        )

    def test_cost_grows_with_nprobe(self, engine, data):
        engine.search(data[:5], k=3, nprobe=1)
        small = engine.last_search_cost.scan_elements
        engine.search(data[:5], k=3, nprobe=8)
        large = engine.last_search_cost.scan_elements
        assert large > small

    def test_cost_before_search_raises(self, data):
        eng = FaissLikeIVF(dim=12, nlist=4, seed=0)
        eng.train(data)
        eng.add(data)
        with pytest.raises(RuntimeError, match="no search"):
            eng.last_search_cost

    def test_properties(self, engine):
        assert engine.dim == 12
        assert engine.nlist == 8
        assert engine.ntotal == 400

    def test_memory_report_passthrough(self, engine):
        report = engine.memory_report()
        assert report["total"] > 0
