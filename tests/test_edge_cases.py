"""Degenerate and boundary-condition coverage for the whole stack."""

import numpy as np
import pytest

from repro.core.config import HarmonyConfig, Mode
from repro.core.database import HarmonyDB
from repro.data.synthetic import gaussian_blobs


@pytest.fixture(scope="module")
def small():
    data = gaussian_blobs(400, 16, n_blobs=4, seed=1)
    queries = gaussian_blobs(410, 16, n_blobs=4, seed=1)[400:]
    return data, queries


def build(data, queries, **config_kwargs):
    defaults = dict(n_machines=4, nlist=8, nprobe=2, seed=0)
    defaults.update(config_kwargs)
    db = HarmonyDB(dim=data.shape[1], config=HarmonyConfig(**defaults))
    db.build(data, sample_queries=queries)
    return db


class TestDegenerateDeployments:
    def test_single_machine_cluster(self, small):
        """A 1-machine 'distributed' deployment is valid and exact."""
        data, queries = small
        db = build(data, queries, n_machines=1)
        result, report = db.search(queries, k=3)
        _, ref = db.index.search(queries, k=3, nprobe=2)
        np.testing.assert_array_equal(result.ids, ref)
        assert report.worker_loads.shape == (1,)

    def test_single_query(self, small):
        data, queries = small
        db = build(data, queries)
        result, report = db.search(queries[0], k=3)
        assert result.ids.shape == (1, 3)
        assert report.n_queries == 1

    def test_k_exceeds_candidates_pads(self, small):
        data, queries = small
        db = build(data, queries, nprobe=1)
        result, _ = db.search(queries, k=200)
        _, ref = db.index.search(queries, k=200, nprobe=1)
        np.testing.assert_array_equal(result.ids, ref)
        assert (result.ids == -1).any()
        assert np.all(np.isinf(result.distances[result.ids == -1]))

    def test_k_equals_one(self, small):
        data, queries = small
        db = build(data, queries)
        result, _ = db.search(queries, k=1)
        _, ref = db.index.search(queries, k=1, nprobe=2)
        np.testing.assert_array_equal(result.ids, ref)

    def test_nprobe_exceeds_nlist_capped(self, small):
        data, queries = small
        db = build(data, queries)
        result, _ = db.search(queries, k=3, nprobe=1000)
        _, ref = db.index.search(queries, k=3, nprobe=1000)
        np.testing.assert_array_equal(result.ids, ref)

    def test_everything_deleted_returns_padding(self, small):
        data, queries = small
        db = build(data, queries)
        db.remove(np.arange(len(data)))
        result, _ = db.search(queries, k=5)
        assert np.all(result.ids == -1)

    def test_filter_matching_nothing(self, small):
        data, queries = small
        db = build(data, queries)
        result, _ = db.search(queries, k=5, filter_labels=[12345])
        assert np.all(result.ids == -1)

    def test_prewarm_larger_than_list(self, small):
        """Prewarm gracefully caps at the nearest list's size."""
        data, queries = small
        db = build(data, queries, prewarm_size=100_000)
        result, _ = db.search(queries, k=3)
        _, ref = db.index.search(queries, k=3, nprobe=2)
        np.testing.assert_array_equal(result.ids, ref)

    def test_query_dim_mismatch_raises(self, small):
        data, queries = small
        db = build(data, queries)
        with pytest.raises(ValueError, match="expected dim"):
            db.search(np.ones((2, 7)), k=3)


class TestDuplicateAndConstantData:
    def test_duplicate_vectors_tie_break_by_id(self):
        """Many identical rows: the engine must return the smallest ids,
        exactly like the reference scan."""
        base = np.ones((60, 8), dtype=np.float32)
        base[30:] = 2.0  # two point-masses
        queries = np.ones((4, 8), dtype=np.float32)
        db = HarmonyDB(
            dim=8, config=HarmonyConfig(n_machines=4, nlist=2, nprobe=2)
        )
        db.build(base, sample_queries=queries)
        result, _ = db.search(queries, k=5)
        _, ref = db.index.search(queries, k=5, nprobe=2)
        np.testing.assert_array_equal(result.ids, ref)
        np.testing.assert_array_equal(result.ids[0], [0, 1, 2, 3, 4])

    def test_constant_dataset(self):
        base = np.full((40, 8), 3.0, dtype=np.float32)
        queries = np.full((3, 8), 3.0, dtype=np.float32)
        db = HarmonyDB(
            dim=8, config=HarmonyConfig(n_machines=2, nlist=2, nprobe=2)
        )
        db.build(base, sample_queries=queries)
        result, _ = db.search(queries, k=4)
        np.testing.assert_array_equal(result.ids[0], [0, 1, 2, 3])
        np.testing.assert_allclose(result.distances, 0.0, atol=1e-9)

    def test_tiny_dimensionality(self):
        """dim=2 caps the dimension grids; engine still exact."""
        rng = np.random.default_rng(0)
        base = rng.standard_normal((120, 2)).astype(np.float32)
        queries = rng.standard_normal((5, 2)).astype(np.float32)
        for mode in (Mode.HARMONY, Mode.DIMENSION):
            db = HarmonyDB(
                dim=2,
                config=HarmonyConfig(
                    n_machines=2, nlist=4, nprobe=2, mode=mode
                ),
            )
            db.build(base, sample_queries=queries)
            result, _ = db.search(queries, k=3)
            _, ref = db.index.search(queries, k=3, nprobe=2)
            np.testing.assert_array_equal(result.ids, ref)
