"""Unit tests for repro.index.flat."""

import numpy as np
import pytest

from repro.distance.metrics import Metric
from repro.index.flat import FlatIndex


class TestFlatIndexConstruction:
    def test_empty_index(self):
        index = FlatIndex(dim=8)
        assert index.ntotal == 0

    def test_add_accumulates(self):
        index = FlatIndex(dim=4)
        index.add(np.ones((3, 4)))
        index.add(np.zeros((2, 4)))
        assert index.ntotal == 5

    def test_dim_mismatch_raises(self):
        index = FlatIndex(dim=4)
        with pytest.raises(ValueError, match="expected dim 4"):
            index.add(np.ones((2, 6)))

    def test_invalid_dim_raises(self):
        with pytest.raises(ValueError, match="dim must be positive"):
            FlatIndex(dim=0)

    def test_search_empty_raises(self):
        with pytest.raises(RuntimeError, match="empty index"):
            FlatIndex(dim=4).search(np.ones(4), k=1)

    def test_invalid_k_raises(self):
        index = FlatIndex(dim=4)
        index.add(np.ones((2, 4)))
        with pytest.raises(ValueError, match="k must be positive"):
            index.search(np.ones(4), k=0)


class TestFlatIndexSearchL2:
    def test_finds_exact_match(self):
        rng = np.random.default_rng(0)
        base = rng.standard_normal((50, 8)).astype(np.float32)
        index = FlatIndex(dim=8)
        index.add(base)
        dist, ids = index.search(base[17], k=1)
        assert ids[0, 0] == 17
        assert dist[0, 0] == pytest.approx(0.0, abs=1e-9)

    def test_distances_ascending(self):
        rng = np.random.default_rng(1)
        index = FlatIndex(dim=16)
        index.add(rng.standard_normal((100, 16)))
        dist, _ = index.search(rng.standard_normal((5, 16)), k=10)
        assert np.all(np.diff(dist, axis=1) >= 0)

    def test_k_capped_at_ntotal(self):
        index = FlatIndex(dim=4)
        index.add(np.eye(4, 4))
        dist, ids = index.search(np.zeros(4), k=100)
        assert ids.shape == (1, 4)

    def test_matches_brute_force(self):
        rng = np.random.default_rng(2)
        base = rng.standard_normal((200, 12))
        queries = rng.standard_normal((10, 12))
        index = FlatIndex(dim=12)
        index.add(base)
        _, ids = index.search(queries, k=5)
        diffs = queries[:, None, :] - base[None, :, :]
        full = np.einsum("qnd,qnd->qn", diffs, diffs)
        for i in range(10):
            expected = np.argsort(full[i], kind="stable")[:5]
            np.testing.assert_array_equal(ids[i], expected)

    def test_chunked_search_matches_unchunked(self):
        rng = np.random.default_rng(3)
        base = rng.standard_normal((300, 8))
        q = rng.standard_normal((4, 8))
        index = FlatIndex(dim=8)
        index.add(base)
        d1, i1 = index.search(q, k=7, chunk_size=37)
        d2, i2 = index.search(q, k=7, chunk_size=10_000)
        np.testing.assert_array_equal(i1, i2)
        np.testing.assert_allclose(d1, d2)


class TestFlatIndexOtherMetrics:
    def test_inner_product_ordering(self):
        base = np.array([[1.0, 0.0], [10.0, 0.0], [5.0, 0.0]])
        index = FlatIndex(dim=2, metric=Metric.INNER_PRODUCT)
        index.add(base)
        dist, ids = index.search(np.array([1.0, 0.0]), k=3)
        np.testing.assert_array_equal(ids[0], [1, 2, 0])
        # Negated similarities ascending.
        np.testing.assert_allclose(dist[0], [-10.0, -5.0, -1.0])

    def test_cosine_ignores_magnitude(self):
        base = np.array([[1.0, 0.0], [0.0, 100.0]])
        index = FlatIndex(dim=2, metric="cosine")
        index.add(base)
        _, ids = index.search(np.array([0.0, 0.001]), k=1)
        assert ids[0, 0] == 1

    def test_memory_bytes_tracks_base(self):
        index = FlatIndex(dim=8)
        assert index.memory_bytes() == 0
        index.add(np.ones((10, 8), dtype=np.float32))
        assert index.memory_bytes() == 10 * 8 * 4
