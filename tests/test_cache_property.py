"""Property matrix: result cache x mutation interleavings x backends.

Twin deployments — one with the result cache attached, one without —
replay identical add / remove / compact / search interleavings from
identical cloned indexes. Exact caching must be invisible: every
search (cold, warm, and straight after a mutation flush) returns ids
and distances byte-identical to the cache-off twin, on every backend
and scan precision. A second property pins the ε = 0 degeneracy: a
semantic cache with zero radius behaves exactly like the exact cache
(no semantic hits, ever).
"""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import HarmonyConfig
from repro.core.database import HarmonyDB
from repro.index.ivf import IVFFlatIndex

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(1, 12)),
        st.tuples(st.just("remove"), st.integers(1, 8)),
        st.tuples(st.just("compact"), st.just(0)),
        st.tuples(st.just("search"), st.just(0)),
    ),
    min_size=2,
    max_size=6,
)


@pytest.fixture(scope="module")
def saved_index(tiny_data):
    """One trained index, serialized once; examples reload clones so
    each interleaving starts from identical, unshared state."""
    index = IVFFlatIndex(dim=32, nlist=16, seed=0)
    index.train(tiny_data)
    index.add(tiny_data)
    buf = io.BytesIO()
    index.save(buf)
    return buf.getvalue()


def _twin(saved_index, backend, precision, enable_cache, epsilon=0.0):
    index = IVFFlatIndex.load(io.BytesIO(saved_index))
    config = HarmonyConfig(
        n_machines=4,
        nlist=16,
        nprobe=4,
        backend=backend,
        n_threads=2,
        scan_precision=precision,
        delta_compact_ratio=0.5,  # keep deltas live across steps
        enable_cache=enable_cache,
        cache_semantic_epsilon=epsilon,
    )
    return HarmonyDB.from_trained_index(index, config=config)


def _replay(cached, plain, ops, seed, queries):
    """Drive both twins through one interleaving, asserting byte
    identity after every search (each query pool row searched twice so
    warm hits are exercised inside every step)."""
    rng_a = np.random.default_rng(seed)
    rng_b = np.random.default_rng(seed)
    for op, arg in ops:
        if op == "add":
            rows_a = rng_a.standard_normal((arg, 32)).astype(np.float32)
            rows_b = rng_b.standard_normal((arg, 32)).astype(np.float32)
            cached.add(rows_a)
            plain.add(rows_b)
        elif op == "remove":
            alive = np.flatnonzero(~cached.index.deleted_mask)
            if alive.size:
                victims_a = rng_a.choice(
                    alive, size=min(arg, alive.size), replace=False
                )
                victims_b = rng_b.choice(
                    alive, size=min(arg, alive.size), replace=False
                )
                cached.remove(victims_a)
                plain.remove(victims_b)
        elif op == "compact":
            cached.compact()
            plain.compact()
        else:
            for _ in range(2):  # cold pass fills, warm pass hits
                got, _ = cached.search(queries, k=5)
                ref, _ = plain.search(queries, k=5)
                np.testing.assert_array_equal(got.ids, ref.ids)
                np.testing.assert_array_equal(got.distances, ref.distances)
                assert got.ids.tobytes() == ref.ids.tobytes()
                assert got.distances.tobytes() == ref.distances.tobytes()
    for _ in range(2):  # always end on a verified warm search
        got, _ = cached.search(queries, k=5)
        ref, _ = plain.search(queries, k=5)
        np.testing.assert_array_equal(got.ids, ref.ids)
        np.testing.assert_array_equal(got.distances, ref.distances)


@pytest.mark.parametrize("backend", ["serial", "thread", "sim"])
@pytest.mark.parametrize("precision", ["fp32", "sq8"])
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[
        HealthCheck.function_scoped_fixture, HealthCheck.too_slow
    ],
)
@given(ops=_OPS, seed=st.integers(0, 2**16))
def test_cached_interleavings_byte_identical(
    backend, precision, ops, seed, saved_index, tiny_queries
):
    """Exact caching never changes a single byte of any answer across
    arbitrary mutation interleavings, backends, and scan precisions."""
    cached = _twin(saved_index, backend, precision, enable_cache=True)
    plain = _twin(saved_index, backend, precision, enable_cache=False)
    try:
        _replay(cached, plain, ops, seed, tiny_queries)
    finally:
        cached.close()
        plain.close()


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[
        HealthCheck.function_scoped_fixture, HealthCheck.too_slow
    ],
)
@given(ops=_OPS, seed=st.integers(0, 2**16))
def test_epsilon_zero_degenerates_to_exact(
    ops, seed, saved_index, tiny_queries
):
    """A semantic cache with ε = 0 is the exact cache: byte-identical
    answers and zero semantic hits through any interleaving."""
    cached = _twin(
        saved_index, "sim", "fp32", enable_cache=True, epsilon=0.0
    )
    plain = _twin(saved_index, "sim", "fp32", enable_cache=False)
    try:
        _replay(cached, plain, ops, seed, tiny_queries)
        assert cached.result_cache.stats().semantic_hits == 0
    finally:
        cached.close()
        plain.close()


@pytest.mark.parametrize("precision", ["fp32", "sq8"])
def test_interleavings_process_backend(precision, saved_index, tiny_queries):
    """The process pool with the cache attached stays byte-identical
    through deltas, tombstones, and a mid-sequence compaction
    (deterministic — a persistent pool per hypothesis example would
    dominate the suite's runtime)."""
    cached = _twin(saved_index, "process", precision, enable_cache=True)
    plain = _twin(saved_index, "process", precision, enable_cache=False)
    rng = np.random.default_rng(9)
    try:
        for step in range(3):
            rows = rng.standard_normal((12, 32)).astype(np.float32)
            cached.add(rows)
            plain.add(rows)
            alive = np.flatnonzero(~cached.index.deleted_mask)
            victims = rng.choice(alive, size=4, replace=False)
            cached.remove(victims)
            plain.remove(victims)
            for _ in range(2):
                got, _ = cached.search(tiny_queries, k=5)
                ref, _ = plain.search(tiny_queries, k=5)
                np.testing.assert_array_equal(got.ids, ref.ids)
                np.testing.assert_array_equal(got.distances, ref.distances)
        cached.compact()
        plain.compact()
        for _ in range(2):
            got, report = cached.search(tiny_queries, k=5)
            ref, _ = plain.search(tiny_queries, k=5)
            np.testing.assert_array_equal(got.ids, ref.ids)
            np.testing.assert_array_equal(got.distances, ref.distances)
        assert report.result_cache_hits == tiny_queries.shape[0]
    finally:
        cached.close()
        plain.close()


def test_semantic_entry_never_crosses_layout_generation(
    saved_index, tiny_queries
):
    """A compaction moves the layout generation; ε-ball entries from
    the old generation must flush rather than answer post-compaction
    queries (the staleness half of the semantic contract)."""
    cached = _twin(
        saved_index, "thread", "fp32", enable_cache=True, epsilon=0.05
    )
    try:
        cached.search(tiny_queries, k=5)  # build the packed layout
        # Small add (below the auto-compact ratio): the next search
        # absorbs it as delta rows and refills the cache at the
        # current layout generation.
        rng = np.random.default_rng(3)
        cached.add(rng.standard_normal((40, 32)).astype(np.float32))
        cached.search(tiny_queries, k=5)
        jittered = tiny_queries + np.float32(1e-4)
        _, warm = cached.search(jittered, k=5)
        assert warm.result_cache_semantic_hits == tiny_queries.shape[0]
        # Compaction moves the layout generation; the ε-ball pool from
        # the old generation must be gone.
        stats = cached.compact()
        assert stats["compacted"] is True
        result, post = cached.search(jittered, k=5)
        assert post.result_cache_semantic_hits == 0
        assert post.result_cache_hits == 0
        _, ref_ids = cached.index.search(jittered, k=5, nprobe=4)
        np.testing.assert_array_equal(result.ids, ref_ids)
    finally:
        cached.close()
