"""Unit tests for repro.distance.partial (dimension slices, monotonicity)."""

import numpy as np
import pytest

from repro.distance.metrics import inner_product, squared_l2
from repro.distance.partial import (
    DimensionSlices,
    partial_inner_product,
    partial_squared_l2,
    remaining_ip_bound,
    slice_norms,
)


class TestDimensionSlices:
    def test_even_split(self):
        slices = DimensionSlices.even(128, 4)
        assert slices.n_slices == 4
        assert slices.dim == 128
        assert slices.widths() == (32, 32, 32, 32)

    def test_uneven_split_spreads_remainder(self):
        slices = DimensionSlices.even(10, 3)
        assert slices.widths() == (4, 3, 3)
        assert sum(slices.widths()) == 10

    def test_single_slice(self):
        slices = DimensionSlices.even(7, 1)
        assert slices.slice_range(0) == (0, 7)

    def test_ranges_are_contiguous_cover(self):
        slices = DimensionSlices.even(100, 7)
        prev_stop = 0
        for j in range(slices.n_slices):
            start, stop = slices.slice_range(j)
            assert start == prev_stop
            prev_stop = stop
        assert prev_stop == 100

    def test_take_restricts_last_axis(self):
        slices = DimensionSlices.even(8, 2)
        x = np.arange(16).reshape(2, 8)
        np.testing.assert_array_equal(slices.take(x, 1), x[:, 4:])

    def test_more_slices_than_dims_raises(self):
        with pytest.raises(ValueError, match="cannot split"):
            DimensionSlices.even(3, 4)

    def test_zero_slices_raises(self):
        with pytest.raises(ValueError, match="must be positive"):
            DimensionSlices.even(8, 0)

    def test_invalid_boundaries_raise(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            DimensionSlices((0, 5, 5, 10))
        with pytest.raises(ValueError, match="first boundary"):
            DimensionSlices((1, 5))
        with pytest.raises(ValueError, match="at least one slice"):
            DimensionSlices((0,))


class TestPartialSquaredL2:
    def test_partials_sum_to_full(self):
        rng = np.random.default_rng(0)
        base = rng.standard_normal((30, 24))
        query = rng.standard_normal(24)
        slices = DimensionSlices.even(24, 3)
        total = sum(
            partial_squared_l2(slices.take(base, j), slices.take(query, j))
            for j in range(3)
        )
        np.testing.assert_allclose(total, squared_l2(base, query), rtol=1e-9)

    def test_non_negative(self):
        rng = np.random.default_rng(1)
        base = rng.standard_normal((50, 8))
        out = partial_squared_l2(base, rng.standard_normal(8))
        assert np.all(out >= 0.0)

    def test_running_sum_monotone(self):
        """The property early-stop pruning relies on (paper Section 3.1)."""
        rng = np.random.default_rng(2)
        base = rng.standard_normal((20, 32))
        query = rng.standard_normal(32)
        slices = DimensionSlices.even(32, 4)
        acc = np.zeros(20)
        for j in range(4):
            prev = acc.copy()
            acc = acc + partial_squared_l2(
                slices.take(base, j), slices.take(query, j)
            )
            assert np.all(acc >= prev)


class TestPartialInnerProduct:
    def test_partials_sum_to_full(self):
        rng = np.random.default_rng(3)
        base = rng.standard_normal((25, 20))
        query = rng.standard_normal(20)
        slices = DimensionSlices.even(20, 5)
        total = sum(
            partial_inner_product(slices.take(base, j), slices.take(query, j))
            for j in range(5)
        )
        np.testing.assert_allclose(total, inner_product(base, query), rtol=1e-9)


class TestSliceNorms:
    def test_shape(self):
        rng = np.random.default_rng(4)
        base = rng.standard_normal((10, 12))
        slices = DimensionSlices.even(12, 3)
        norms = slice_norms(base, slices)
        assert norms.shape == (10, 3)

    def test_values(self):
        base = np.array([[3.0, 4.0, 1.0, 0.0]])
        slices = DimensionSlices.even(4, 2)
        norms = slice_norms(base, slices)
        np.testing.assert_allclose(norms, [[5.0, 1.0]])

    def test_pythagoras(self):
        """Slice norms recombine into the full norm."""
        rng = np.random.default_rng(5)
        base = rng.standard_normal((15, 16))
        slices = DimensionSlices.even(16, 4)
        norms = slice_norms(base, slices)
        recombined = np.sqrt((norms**2).sum(axis=1))
        np.testing.assert_allclose(
            recombined, np.linalg.norm(base, axis=1), rtol=1e-9
        )


class TestRemainingIpBound:
    def test_bound_dominates_remaining_dot(self):
        """Cauchy-Schwarz: the bound must cap the true remaining dot."""
        rng = np.random.default_rng(6)
        base = rng.standard_normal((40, 24))
        query = rng.standard_normal(24)
        slices = DimensionSlices.even(24, 4)
        base_norms = slice_norms(base, slices)
        query_norms = np.array(
            [np.linalg.norm(slices.take(query, j)) for j in range(4)]
        )
        done = [0, 2]
        bound = remaining_ip_bound(base_norms, query_norms, done, 4)
        true_remaining = sum(
            partial_inner_product(slices.take(base, j), slices.take(query, j))
            for j in (1, 3)
        )
        assert np.all(np.abs(true_remaining) <= bound + 1e-9)

    def test_all_done_gives_zero(self):
        norms = np.ones((5, 3))
        out = remaining_ip_bound(norms, np.ones(3), [0, 1, 2], 3)
        np.testing.assert_array_equal(out, 0.0)

    def test_none_done_uses_all_slices(self):
        norms = np.ones((2, 3))
        out = remaining_ip_bound(norms, np.ones(3), [], 3)
        # The bound carries a tiny conservative inflation (see
        # remaining_ip_bound) so it can never round below the true dot.
        np.testing.assert_allclose(out, 3.0, rtol=1e-6)
        assert np.all(out >= 3.0)
