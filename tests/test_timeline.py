"""Tests for cluster tracing and the ASCII timeline renderer."""

import numpy as np
import pytest

from repro.bench.timeline import render_timeline, utilization_grid
from repro.cluster.cluster import CLIENT_NODE, Cluster


class TestTracing:
    def test_disabled_by_default(self):
        cluster = Cluster(2)
        cluster.compute(0, 1e6)
        assert cluster.events is None

    def test_records_all_categories(self):
        cluster = Cluster(2)
        cluster.enable_tracing()
        cluster.compute(0, 1e6)
        cluster.overhead(1, 1e-6)
        cluster.transfer(0, 1, 1000)
        categories = {e[0] for e in cluster.events}
        assert categories == {"computation", "other", "communication"}

    def test_reset_clears_events(self):
        cluster = Cluster(2)
        cluster.enable_tracing()
        cluster.compute(0, 1e6)
        cluster.reset_time()
        assert cluster.events == []

    def test_disable(self):
        cluster = Cluster(2)
        cluster.enable_tracing()
        cluster.disable_tracing()
        cluster.compute(0, 1e6)
        assert cluster.events is None

    def test_event_bounds(self):
        cluster = Cluster(2)
        cluster.enable_tracing()
        start, end = cluster.compute(0, 1e6, earliest=0.5)
        (category, node, s, e) = cluster.events[0]
        assert (category, node) == ("computation", 0)
        assert (s, e) == (start, end)


class TestUtilizationGrid:
    def test_requires_tracing(self):
        with pytest.raises(RuntimeError, match="tracing"):
            utilization_grid(Cluster(2))

    def test_empty_trace(self):
        cluster = Cluster(2)
        cluster.enable_tracing()
        node_ids, grid = utilization_grid(cluster, buckets=10)
        assert node_ids[0] == CLIENT_NODE
        np.testing.assert_array_equal(grid, 0.0)

    def test_fully_busy_node(self):
        cluster = Cluster(2)
        cluster.enable_tracing()
        cluster.compute(0, cluster.workers[0].compute_rate)  # 1 second
        _, grid = utilization_grid(cluster, buckets=10)
        worker0_row = grid[1]
        np.testing.assert_allclose(worker0_row, 1.0)
        np.testing.assert_allclose(grid[2], 0.0)  # worker 1 idle

    def test_half_busy(self):
        cluster = Cluster(2)
        cluster.enable_tracing()
        rate = cluster.workers[0].compute_rate
        cluster.compute(0, rate)            # busy [0, 1)
        cluster.compute(1, rate * 2)        # busy [0, 2): horizon 2s
        _, grid = utilization_grid(cluster, buckets=2)
        assert grid[1, 0] == pytest.approx(1.0)
        assert grid[1, 1] == pytest.approx(0.0)

    def test_invalid_buckets(self):
        cluster = Cluster(2)
        cluster.enable_tracing()
        with pytest.raises(ValueError):
            utilization_grid(cluster, buckets=0)


class TestRenderTimeline:
    def test_rows_and_labels(self):
        cluster = Cluster(3)
        cluster.enable_tracing()
        cluster.compute(0, 1e6)
        text = render_timeline(cluster, buckets=20)
        lines = text.splitlines()
        assert len(lines) == 4  # client + 3 workers
        assert lines[0].lstrip().startswith("client")
        assert "worker 2" in lines[3]

    def test_busy_shows_darker(self):
        cluster = Cluster(2)
        cluster.enable_tracing()
        cluster.compute(0, cluster.workers[0].compute_rate)
        text = render_timeline(cluster, buckets=10)
        lines = text.splitlines()
        assert "#" in lines[1]  # the busy worker
        assert "#" not in lines[2]  # the idle one

    def test_end_to_end_with_engine(self, tiny_data, tiny_queries):
        from repro.core.config import HarmonyConfig
        from repro.core.database import HarmonyDB

        db = HarmonyDB(
            dim=32, config=HarmonyConfig(n_machines=4, nlist=16, nprobe=4)
        )
        db.build(tiny_data, sample_queries=tiny_queries)
        db.cluster.enable_tracing()
        db.search(tiny_queries, k=5)
        text = render_timeline(db.cluster, buckets=40)
        assert len(text.splitlines()) == 5
        assert "%" in text
