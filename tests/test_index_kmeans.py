"""Unit tests for repro.index.kmeans."""

import numpy as np
import pytest

from repro.data.synthetic import gaussian_blobs
from repro.index.kmeans import KMeans


class TestKMeansBasics:
    def test_fit_returns_requested_clusters(self):
        data = gaussian_blobs(200, 8, n_blobs=4, seed=0)
        result = KMeans(n_clusters=4, seed=0).fit(data)
        assert result.centroids.shape == (4, 8)
        assert result.assignments.shape == (200,)

    def test_assignments_in_range(self):
        data = gaussian_blobs(150, 6, n_blobs=3, seed=1)
        result = KMeans(n_clusters=5, seed=0).fit(data)
        assert result.assignments.min() >= 0
        assert result.assignments.max() < 5

    def test_centroids_float32(self):
        data = gaussian_blobs(100, 4, seed=2)
        result = KMeans(n_clusters=3, seed=0).fit(data)
        assert result.centroids.dtype == np.float32

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError, match="cannot fit"):
            KMeans(n_clusters=10).fit(np.ones((5, 3)))

    def test_deterministic_given_seed(self):
        data = gaussian_blobs(300, 10, n_blobs=5, seed=3)
        a = KMeans(n_clusters=5, seed=7).fit(data)
        b = KMeans(n_clusters=5, seed=7).fit(data)
        np.testing.assert_array_equal(a.centroids, b.centroids)
        np.testing.assert_array_equal(a.assignments, b.assignments)

    def test_different_seeds_differ(self):
        data = gaussian_blobs(300, 10, n_blobs=5, seed=3)
        a = KMeans(n_clusters=5, seed=1).fit(data)
        b = KMeans(n_clusters=5, seed=2).fit(data)
        assert not np.array_equal(a.centroids, b.centroids)


class TestKMeansQuality:
    def test_recovers_separated_blobs(self):
        """Well-separated blobs should be recovered almost exactly."""
        rng = np.random.default_rng(4)
        centers = rng.standard_normal((4, 8)) * 20
        labels = np.repeat(np.arange(4), 50)
        data = centers[labels] + rng.standard_normal((200, 8)) * 0.1
        result = KMeans(n_clusters=4, seed=0).fit(data.astype(np.float32))
        # Every true blob maps to exactly one k-means cluster.
        mapped = {
            tuple(np.unique(result.assignments[labels == c]))
            for c in range(4)
        }
        assert all(len(m) == 1 for m in mapped)
        assert len({m[0] for m in mapped}) == 4

    def test_inertia_decreases_vs_random_centroids(self):
        data = gaussian_blobs(400, 12, n_blobs=6, seed=5)
        result = KMeans(n_clusters=6, seed=0).fit(data)
        rng = np.random.default_rng(0)
        random_centroids = data[rng.choice(400, 6, replace=False)]
        from repro.distance.kernels import pairwise_squared_l2

        random_inertia = pairwise_squared_l2(data, random_centroids).min(
            axis=1
        ).sum()
        assert result.inertia <= random_inertia

    def test_assignment_is_nearest_centroid(self):
        data = gaussian_blobs(200, 8, n_blobs=4, seed=6)
        result = KMeans(n_clusters=4, seed=0).fit(data)
        from repro.distance.kernels import pairwise_squared_l2

        distances = pairwise_squared_l2(data, result.centroids)
        np.testing.assert_array_equal(
            result.assignments, np.argmin(distances, axis=1)
        )

    def test_no_empty_clusters_after_repair(self):
        """Pathological init must still yield populated clusters."""
        # 3 tight groups but 8 clusters: repair has to reseed.
        rng = np.random.default_rng(7)
        data = np.vstack(
            [rng.standard_normal((40, 4)) * 0.01 + c for c in (0.0, 10.0, 20.0)]
        ).astype(np.float32)
        result = KMeans(n_clusters=8, seed=0, max_iterations=10).fit(data)
        counts = np.bincount(result.assignments, minlength=8)
        # At least the three groups are covered; centroids are finite.
        assert np.isfinite(result.centroids).all()
        assert (counts > 0).sum() >= 3


class TestKMeansAccounting:
    def test_elements_processed_positive(self):
        data = gaussian_blobs(100, 8, seed=8)
        result = KMeans(n_clusters=4, seed=0).fit(data)
        assert result.elements_processed > 0

    def test_elements_scale_with_dim(self):
        small = KMeans(n_clusters=4, seed=0).fit(gaussian_blobs(200, 8, seed=9))
        large = KMeans(n_clusters=4, seed=0).fit(
            gaussian_blobs(200, 64, seed=9)
        )
        assert large.elements_processed > small.elements_processed

    def test_iterations_capped(self):
        data = gaussian_blobs(300, 8, n_blobs=16, seed=10)
        result = KMeans(n_clusters=16, seed=0, max_iterations=3).fit(data)
        assert result.n_iterations <= 3

    def test_training_subsample_cap(self):
        data = gaussian_blobs(600, 8, seed=11)
        result = KMeans(
            n_clusters=4, seed=0, max_train_points=128
        ).fit(data)
        # Full-data assignment still covers everything.
        assert result.assignments.shape == (600,)
