"""Tests for ThreadedSearcher, validation utilities, report export."""

import numpy as np
import pytest

from repro.core.config import HarmonyConfig, Mode
from repro.core.database import HarmonyDB
from repro.core.parallel import ThreadedSearcher
from repro.core.partition import build_plan
from repro.validation import check_exactness


class TestThreadedSearcher:
    def test_matches_reference_ivf(self, trained_index, tiny_queries):
        searcher = ThreadedSearcher(trained_index)
        result = searcher.search(tiny_queries, k=5, nprobe=4)
        ref_d, ref_i = trained_index.search(tiny_queries, k=5, nprobe=4)
        np.testing.assert_array_equal(result.ids, ref_i)
        np.testing.assert_allclose(result.distances, ref_d, rtol=1e-9)

    @pytest.mark.parametrize("n_threads", [1, 2, 8])
    def test_deterministic_across_thread_counts(
        self, trained_index, tiny_queries, n_threads
    ):
        single = ThreadedSearcher(trained_index, n_threads=1).search(
            tiny_queries, k=5, nprobe=4
        )
        multi = ThreadedSearcher(trained_index, n_threads=n_threads).search(
            tiny_queries, k=5, nprobe=4
        )
        np.testing.assert_array_equal(single.ids, multi.ids)

    def test_custom_plan(self, trained_index, tiny_queries):
        plan = build_plan(trained_index, 4, 2, 2)
        searcher = ThreadedSearcher(trained_index, plan=plan)
        result = searcher.search(tiny_queries, k=5, nprobe=4)
        _, ref_i = trained_index.search(tiny_queries, k=5, nprobe=4)
        np.testing.assert_array_equal(result.ids, ref_i)

    def test_pruning_off_same_results(self, trained_index, tiny_queries):
        on = ThreadedSearcher(trained_index, enable_pruning=True)
        off = ThreadedSearcher(trained_index, enable_pruning=False)
        r_on = on.search(tiny_queries, k=5, nprobe=4)
        r_off = off.search(tiny_queries, k=5, nprobe=4)
        np.testing.assert_array_equal(r_on.ids, r_off.ids)

    def test_respects_deletes(self, tiny_data, tiny_queries):
        from repro.index.ivf import IVFFlatIndex

        index = IVFFlatIndex(dim=32, nlist=16, seed=0)
        index.train(tiny_data)
        index.add(tiny_data)
        _, first = index.search(tiny_queries, k=5, nprobe=16)
        victims = np.unique(first[first >= 0])[:10]
        index.remove_ids(victims)
        searcher = ThreadedSearcher(index)
        result = searcher.search(tiny_queries, k=5, nprobe=16)
        assert not (set(result.ids[result.ids >= 0]) & set(victims))

    def test_untrained_raises(self):
        from repro.index.ivf import IVFFlatIndex

        with pytest.raises(RuntimeError, match="trained"):
            ThreadedSearcher(IVFFlatIndex(dim=8, nlist=4))

    def test_invalid_params(self, trained_index):
        with pytest.raises(ValueError):
            ThreadedSearcher(trained_index, n_threads=0)
        with pytest.raises(ValueError):
            ThreadedSearcher(trained_index, prewarm_size=-1)
        with pytest.raises(ValueError, match="k must be positive"):
            ThreadedSearcher(trained_index).search(np.ones((1, 32)), k=0)


class TestCheckExactness:
    @pytest.fixture()
    def db(self, tiny_data, tiny_queries):
        db = HarmonyDB(
            dim=32, config=HarmonyConfig(n_machines=4, nlist=16, nprobe=4)
        )
        db.build(tiny_data, sample_queries=tiny_queries)
        return db

    def test_built_db_is_exact(self, db, tiny_queries):
        report = check_exactness(db, tiny_queries, k=5)
        assert report.exact
        assert bool(report)
        assert report.mismatched_queries == ()
        assert report.n_queries == len(tiny_queries)

    @pytest.mark.parametrize(
        "mode", [Mode.HARMONY, Mode.VECTOR, Mode.DIMENSION]
    )
    def test_all_modes_exact(self, tiny_data, tiny_queries, mode):
        db = HarmonyDB(
            dim=32,
            config=HarmonyConfig(n_machines=4, nlist=16, nprobe=4, mode=mode),
        )
        db.build(tiny_data, sample_queries=tiny_queries)
        assert check_exactness(db, tiny_queries, k=5).exact

    def test_unbuilt_raises(self):
        with pytest.raises(RuntimeError, match="build"):
            check_exactness(HarmonyDB(dim=8), np.ones((1, 8)))

    def test_nprobe_override(self, db, tiny_queries):
        report = check_exactness(db, tiny_queries, k=5, nprobe=16)
        assert report.exact


class TestReportExport:
    @pytest.fixture()
    def report(self, tiny_data, tiny_queries):
        db = HarmonyDB(
            dim=32,
            config=HarmonyConfig(
                n_machines=4, nlist=16, nprobe=4, mode=Mode.DIMENSION
            ),
        )
        db.build(tiny_data, sample_queries=tiny_queries)
        _, report = db.search(tiny_queries, k=5)
        return report

    def test_to_dict_is_json_serializable(self, report):
        import json

        payload = json.dumps(report.to_dict())
        decoded = json.loads(payload)
        assert decoded["n_queries"] == report.n_queries
        assert decoded["qps"] == pytest.approx(report.qps)

    def test_to_dict_includes_latency_and_pruning(self, report):
        data = report.to_dict()
        assert "latency" in data
        assert data["latency"]["p50"] <= data["latency"]["p99"]
        assert "pruning_ratios" in data
        assert len(data["pruning_ratios"]) == 4

    def test_worker_utilization_bounds(self, report):
        util = report.worker_utilization()
        assert util.shape == report.worker_loads.shape
        assert np.all(util >= 0)
        assert np.all(util <= 1.0 + 1e-9)
