"""Tests for range search, reconstruction, and bursty arrivals."""

import numpy as np
import pytest

from repro.distance.metrics import squared_l2
from repro.workload.generators import bursty_arrivals, poisson_arrivals


class TestReconstruct:
    def test_round_trip(self, trained_index, tiny_data):
        rows = trained_index.reconstruct(np.array([3, 7, 11]))
        np.testing.assert_array_equal(rows, tiny_data[[3, 7, 11]])

    def test_out_of_range_raises(self, trained_index):
        with pytest.raises(IndexError):
            trained_index.reconstruct(np.array([10_000]))

    def test_deleted_still_reconstructs(self, tiny_data):
        from repro.index.ivf import IVFFlatIndex

        index = IVFFlatIndex(dim=32, nlist=16, seed=0)
        index.train(tiny_data)
        index.add(tiny_data)
        index.remove_ids(np.array([5]))
        np.testing.assert_array_equal(
            index.reconstruct(np.array([5]))[0], tiny_data[5]
        )

    def test_returns_copy(self, trained_index):
        rows = trained_index.reconstruct(np.array([0]))
        rows[:] = 0
        assert not np.all(trained_index.base[0] == 0)


class TestRangeSearch:
    def test_full_probe_matches_brute_force(self, trained_index, tiny_data,
                                             tiny_queries):
        radius = 20.0
        results = trained_index.range_search(
            tiny_queries[:5], radius, nprobe=16
        )
        for q, (ids, scores) in zip(tiny_queries[:5], results):
            truth = squared_l2(tiny_data, q)
            expected = np.flatnonzero(truth <= radius)
            np.testing.assert_array_equal(ids, expected)
            np.testing.assert_allclose(scores, truth[expected], rtol=1e-6)

    def test_scores_within_radius(self, trained_index, tiny_queries):
        for ids, scores in trained_index.range_search(
            tiny_queries, 10.0, nprobe=4
        ):
            assert np.all(scores <= 10.0)

    def test_radius_zero_tiny_results(self, trained_index, tiny_queries):
        results = trained_index.range_search(tiny_queries, 1e-9, nprobe=4)
        assert all(ids.size == 0 for ids, _ in results)

    def test_respects_filter(self, tiny_data, tiny_queries):
        from repro.index.ivf import IVFFlatIndex

        rng = np.random.default_rng(0)
        labels = rng.integers(0, 3, size=len(tiny_data)).astype(np.int64)
        index = IVFFlatIndex(dim=32, nlist=16, seed=0)
        index.train(tiny_data)
        index.add(tiny_data, labels=labels)
        for ids, _ in index.range_search(
            tiny_queries, 50.0, nprobe=16, filter_labels=[1]
        ):
            assert np.all(labels[ids] == 1)

    def test_respects_deletes(self, tiny_data, tiny_queries):
        from repro.index.ivf import IVFFlatIndex

        index = IVFFlatIndex(dim=32, nlist=16, seed=0)
        index.train(tiny_data)
        index.add(tiny_data)
        index.remove_ids(np.arange(50))
        for ids, _ in index.range_search(tiny_queries, 50.0, nprobe=16):
            assert np.all(ids >= 50)

    def test_empty_index_raises(self, tiny_data):
        from repro.index.ivf import IVFFlatIndex

        index = IVFFlatIndex(dim=32, nlist=16, seed=0)
        index.train(tiny_data)
        with pytest.raises(RuntimeError, match="empty"):
            index.range_search(tiny_data[:1], 1.0)


class TestBurstyArrivals:
    def test_ascending_from_zero(self):
        arr = bursty_arrivals(200, rate_qps=1000, seed=0)
        assert arr[0] == 0.0
        assert np.all(np.diff(arr) >= 0)

    def test_mean_rate_matches_poisson(self):
        bursty = bursty_arrivals(20_000, rate_qps=1000, seed=1)
        rate = (len(bursty) - 1) / bursty[-1]
        assert 0.9 * 1000 < rate < 1.1 * 1000

    def test_burstier_than_poisson(self):
        """Gap coefficient of variation exceeds the Poisson CV of 1."""
        bursty = np.diff(bursty_arrivals(20_000, 1000, burst_factor=10,
                                         burst_fraction=0.3, seed=2))
        poisson = np.diff(poisson_arrivals(20_000, 1000, seed=2))
        cv = lambda g: g.std() / g.mean()  # noqa: E731
        assert cv(bursty) > cv(poisson) * 1.05

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            bursty_arrivals(0, 100)
        with pytest.raises(ValueError):
            bursty_arrivals(10, 0)
        with pytest.raises(ValueError):
            bursty_arrivals(10, 100, burst_factor=0.5)
        with pytest.raises(ValueError):
            bursty_arrivals(10, 100, burst_fraction=1.0)

    def test_bursts_inflate_tail_latency(self, tiny_data, tiny_queries):
        """At the same average load, bursty arrivals produce a worse
        p99 than Poisson arrivals — the reason the generator exists."""
        from repro.core.config import HarmonyConfig
        from repro.core.database import HarmonyDB

        db = HarmonyDB(
            dim=32, config=HarmonyConfig(n_machines=4, nlist=16, nprobe=8)
        )
        db.build(tiny_data, sample_queries=tiny_queries)
        _, closed = db.search(tiny_queries, k=5)
        rate = closed.qps * 0.8
        queries = np.tile(tiny_queries, (10, 1))
        smooth = poisson_arrivals(len(queries), rate, seed=3)
        rough = bursty_arrivals(
            len(queries), rate, burst_factor=20, burst_fraction=0.3, seed=3
        )
        _, a = db.search(queries, k=5, arrival_times=smooth)
        _, b = db.search(queries, k=5, arrival_times=rough)
        assert b.latency_percentile(99) > a.latency_percentile(99)
