"""Unit tests for the SQ8 scalar-quantized IVF index."""

import numpy as np
import pytest

from repro.bench.recall import recall_at_k
from repro.data.synthetic import gaussian_blobs
from repro.index.flat import FlatIndex
from repro.index.ivf import IVFFlatIndex
from repro.index.quantized import SQ8IVFIndex


@pytest.fixture(scope="module")
def corpus():
    data = gaussian_blobs(850, 24, n_blobs=6, cluster_std=0.5, seed=31)
    return data[:800], data[800:830]


@pytest.fixture(scope="module")
def index(corpus):
    base, _ = corpus
    ix = SQ8IVFIndex(dim=24, nlist=8, seed=0)
    ix.train(base)
    ix.add(base)
    return ix


class TestConstruction:
    def test_l2_only(self):
        with pytest.raises(ValueError, match="L2"):
            SQ8IVFIndex(dim=8, nlist=4, metric="ip")

    def test_encode_before_train_raises(self):
        with pytest.raises(RuntimeError, match="train"):
            SQ8IVFIndex(dim=8, nlist=4).encode(np.ones((1, 8)))

    def test_counters(self, index):
        assert index.ntotal == 800
        assert index.is_trained
        assert index.dim == 24
        assert index.nlist == 8


class TestCodec:
    def test_codes_are_uint8(self, index, corpus):
        base, _ = corpus
        codes = index.encode(base[:10])
        assert codes.dtype == np.uint8
        assert codes.shape == (10, 24)

    def test_round_trip_error_bounded(self, index, corpus):
        """Decode error per dimension is at most half a code step."""
        base, _ = corpus
        decoded = index.decode(index.encode(base))
        err = np.abs(decoded.astype(np.float64) - base.astype(np.float64))
        step = index._scale
        assert np.all(err <= step / 2 + 1e-9)

    def test_out_of_range_values_clipped(self, index):
        extreme = np.full((1, 24), 1e6, dtype=np.float32)
        codes = index.encode(extreme)
        assert np.all(codes == 255)


class TestSearch:
    def test_recall_close_to_full_precision(self, index, corpus):
        base, queries = corpus
        flat = FlatIndex(dim=24)
        flat.add(base)
        _, truth = flat.search(queries, k=10)
        _, ids = index.search(queries, k=10, nprobe=8)
        recall = recall_at_k(ids, truth)
        assert recall > 0.7  # lossy but usable

    def test_recall_below_full_precision(self, corpus):
        """At matched parameters, SQ8 cannot beat full precision —
        the recall cost the paper's distribution approach avoids."""
        base, queries = corpus
        flat = FlatIndex(dim=24)
        flat.add(base)
        _, truth = flat.search(queries, k=10)

        full = IVFFlatIndex(dim=24, nlist=8, seed=0)
        full.train(base)
        full.add(base)
        _, full_ids = full.search(queries, k=10, nprobe=8)
        ix = SQ8IVFIndex(dim=24, nlist=8, seed=0)
        ix.train(base)
        ix.add(base)
        _, sq_ids = ix.search(queries, k=10, nprobe=8)
        assert recall_at_k(sq_ids, truth) <= recall_at_k(full_ids, truth)

    def test_param_validation(self, index, corpus):
        _, queries = corpus
        with pytest.raises(ValueError, match="k must be positive"):
            index.search(queries, k=0)
        with pytest.raises(RuntimeError, match="empty"):
            empty = SQ8IVFIndex(dim=24, nlist=8, seed=0)
            empty.train(corpus[0])
            empty.search(queries, k=1)


class TestMemory:
    def test_codes_are_quarter_of_floats(self, index, corpus):
        base, _ = corpus
        report = index.memory_report()
        assert report["codes"] == base.nbytes // 4

    def test_total_well_below_full_precision(self, index, corpus):
        base, _ = corpus
        full = IVFFlatIndex(dim=24, nlist=8, seed=0)
        full.train(base)
        full.add(base)
        assert (
            index.memory_report()["total"]
            < full.memory_report()["total"] / 2
        )


class TestScaleDegeneracy:
    """Constant dimensions (zero span) must not degrade the codec.

    Regression: the scale used to be ``span / 255`` with only the span
    clamped, which left constant columns with a ~4e-15 scale — any
    float noise around the constant then exploded through encode's
    division. The scale itself is now clamped to a positive epsilon.
    """

    def make_constant_column_corpus(self):
        rng = np.random.default_rng(9)
        base = rng.standard_normal((300, 24)).astype(np.float32)
        base[:, 3] = 7.5    # constant dimension
        base[:, 11] = 0.0   # constant-zero dimension
        queries = rng.standard_normal((10, 24)).astype(np.float32)
        queries[:, 3] = 7.5
        queries[:, 11] = 0.0
        return base, queries

    def test_scale_is_clamped_positive(self):
        base, _ = self.make_constant_column_corpus()
        ix = SQ8IVFIndex(dim=24, nlist=8, seed=0)
        ix.train(base)
        assert np.all(ix._scale >= 1e-12)
        assert np.isfinite(ix._scale).all()

    def test_constant_columns_roundtrip_exactly(self):
        base, _ = self.make_constant_column_corpus()
        ix = SQ8IVFIndex(dim=24, nlist=8, seed=0)
        ix.train(base)
        codes = ix.encode(base)
        assert np.isfinite(codes.astype(np.float64)).all()
        decoded = ix.decode(codes)
        np.testing.assert_allclose(decoded[:, 3], 7.5, rtol=0, atol=1e-6)
        np.testing.assert_allclose(decoded[:, 11], 0.0, rtol=0, atol=1e-9)
        # Non-constant dimensions keep the usual half-step error bound.
        err = np.abs(decoded.astype(np.float64) - base.astype(np.float64))
        assert np.all(err <= ix._scale / 2 + 1e-9)

    def test_search_works_on_constant_column_dataset(self):
        base, queries = self.make_constant_column_corpus()
        ix = SQ8IVFIndex(dim=24, nlist=8, seed=0)
        ix.train(base)
        ix.add(base)
        distances, ids = ix.search(queries, k=5, nprobe=8)
        assert np.isfinite(distances).all()
        assert (ids >= 0).all()
        full = IVFFlatIndex(dim=24, nlist=8, seed=0)
        full.train(base)
        full.add(base)
        _, full_ids = full.search(queries, k=5, nprobe=8)
        truth_overlap = np.mean([
            len(set(ids[i]) & set(full_ids[i])) / 5
            for i in range(len(queries))
        ])
        assert truth_overlap >= 0.8
