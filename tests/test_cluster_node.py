"""Unit tests for repro.cluster.node (timeline with backfilling)."""

import pytest

from repro.cluster.node import WorkerNode


class TestComputeDuration:
    def test_formula(self):
        node = WorkerNode(node_id=0, compute_rate=1e6)
        assert node.compute_duration(5e5) == pytest.approx(0.5)

    def test_negative_elements_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            WorkerNode(node_id=0).compute_duration(-1)

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError, match="compute_rate"):
            WorkerNode(node_id=0, compute_rate=0)


class TestOccupy:
    def test_sequential_appends(self):
        node = WorkerNode(node_id=0, compute_rate=1.0)
        s1, e1 = node.occupy(1.0)
        s2, e2 = node.occupy(2.0)
        assert (s1, e1) == (0.0, 1.0)
        assert (s2, e2) == (1.0, 3.0)
        assert node.free_at == 3.0

    def test_earliest_creates_gap(self):
        node = WorkerNode(node_id=0)
        node.occupy(1.0, earliest=5.0)
        assert node.free_at == 6.0

    def test_backfill_into_gap(self):
        """A later-submitted item with early dependencies fills the gap."""
        node = WorkerNode(node_id=0)
        node.occupy(1.0, earliest=10.0)  # creates the [0, 10) gap
        start, end = node.occupy(2.0, earliest=0.0)
        assert (start, end) == (0.0, 2.0)
        assert node.free_at == 11.0  # tail unchanged

    def test_backfill_respects_earliest(self):
        node = WorkerNode(node_id=0)
        node.occupy(1.0, earliest=10.0)
        start, _ = node.occupy(2.0, earliest=3.0)
        assert start == 3.0

    def test_gap_fragment_reuse(self):
        node = WorkerNode(node_id=0)
        node.occupy(1.0, earliest=10.0)  # gap [0, 10)
        node.occupy(4.0, earliest=2.0)  # fills [2, 6), leaves [0,2) + [6,10)
        start, end = node.occupy(2.0, earliest=0.0)
        assert (start, end) == (0.0, 2.0)
        start, end = node.occupy(3.0, earliest=0.0)
        assert (start, end) == (6.0, 9.0)

    def test_too_large_for_gap_appends(self):
        node = WorkerNode(node_id=0)
        node.occupy(1.0, earliest=2.0)  # gap [0, 2)
        start, _ = node.occupy(5.0, earliest=0.0)
        assert start == 3.0  # appended after the tail

    def test_breakdown_charged(self):
        node = WorkerNode(node_id=0)
        node.occupy(1.0, category="computation")
        node.occupy(0.5, category="communication")
        assert node.breakdown.computation == 1.0
        assert node.breakdown.communication == 0.5

    def test_negative_duration_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            WorkerNode(node_id=0).occupy(-1.0)

    def test_reset_time_clears_gaps(self):
        node = WorkerNode(node_id=0)
        node.occupy(1.0, earliest=10.0)
        node.reset_time()
        assert node.free_at == 0.0
        start, _ = node.occupy(1.0, earliest=0.0)
        assert start == 0.0
        assert node.breakdown.total == 1.0


class TestMemoryTracking:
    def test_allocate_release(self):
        node = WorkerNode(node_id=0)
        node.allocate(100)
        node.allocate(50)
        assert node.current_bytes == 150
        assert node.peak_bytes == 150
        node.release(100)
        assert node.current_bytes == 50
        assert node.peak_bytes == 150

    def test_release_floors_at_zero(self):
        node = WorkerNode(node_id=0)
        node.allocate(10)
        node.release(100)
        assert node.current_bytes == 0

    def test_negative_amounts_raise(self):
        node = WorkerNode(node_id=0)
        with pytest.raises(ValueError):
            node.allocate(-1)
        with pytest.raises(ValueError):
            node.release(-1)

    def test_memory_survives_reset_time(self):
        node = WorkerNode(node_id=0)
        node.allocate(42)
        node.reset_time()
        assert node.current_bytes == 42
        assert node.peak_bytes == 42
