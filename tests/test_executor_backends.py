"""Backend selection through HarmonyConfig / HarmonyDB / the CLI."""

import numpy as np
import pytest

from repro.core.config import HarmonyConfig
from repro.core.database import HarmonyDB


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(11)
    base = rng.standard_normal((500, 32)).astype(np.float32)
    queries = rng.standard_normal((16, 32)).astype(np.float32)
    return base, queries


def build_db(data, **config_kwargs):
    base, queries = data
    db = HarmonyDB(
        dim=32,
        config=HarmonyConfig(
            n_machines=4, nlist=16, nprobe=4, **config_kwargs
        ),
    )
    db.build(base, sample_queries=queries)
    return db


class TestHarmonyDBBackends:
    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            HarmonyConfig(backend="mpi")
        with pytest.raises(ValueError, match="n_threads"):
            HarmonyConfig(backend="thread", n_threads=0)

    @pytest.mark.parametrize("backend", ["thread", "serial"])
    def test_host_backends_match_sim(self, data, backend):
        base, queries = data
        sim_result, sim_report = build_db(data).search(queries, k=5)
        db = build_db(data, backend=backend, n_threads=2)
        result, report = db.search(queries, k=5)
        np.testing.assert_array_equal(result.ids, sim_result.ids)
        np.testing.assert_allclose(
            result.distances, sim_result.distances, rtol=1e-9, atol=1e-12
        )
        # Host report: measured wall-clock, labelled as such.
        assert report.simulated_seconds > 0.0
        assert f"[{backend} backend" in report.plan_summary
        assert report.plan_summary.startswith(sim_report.plan_summary)

    def test_host_backend_rejects_arrival_times(self, data):
        base, queries = data
        db = build_db(data, backend="serial")
        with pytest.raises(ValueError, match="sim"):
            db.search(
                queries,
                k=5,
                arrival_times=np.linspace(0, 1, queries.shape[0]),
            )

    def test_host_backend_sees_mutations(self, data):
        base, queries = data
        db = build_db(data, backend="serial")
        before, _ = db.search(queries, k=5)
        rng = np.random.default_rng(3)
        db.add(rng.standard_normal((50, 32)).astype(np.float32))
        victims = np.unique(before.ids[before.ids >= 0])[:10]
        db.remove(victims)
        after, _ = db.search(queries, k=5, nprobe=16)
        assert not (set(after.ids[after.ids >= 0]) & set(victims))

    def test_backend_survives_save_load(self, data, tmp_path):
        db = build_db(data, backend="thread", n_threads=2)
        path = tmp_path / "db.npz"
        db.save(path)
        loaded = HarmonyDB.load(path)
        assert loaded.config.backend == "thread"
        assert loaded.config.n_threads == 2
        base, queries = data
        got, _ = loaded.search(queries, k=5)
        want, _ = db.search(queries, k=5)
        np.testing.assert_array_equal(got.ids, want.ids)


class TestCLIBackend:
    @pytest.mark.parametrize("backend", ["thread", "serial"])
    def test_run_with_host_backend(self, backend, capsys):
        from repro.cli import main

        code = main(
            [
                "run",
                "--dataset",
                "sift1m",
                "--size",
                "400",
                "--queries",
                "10",
                "--backend",
                backend,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"backend {backend}: host wall-clock" in out
        assert "recall@10" in out

    def test_run_default_backend_prints_simulated(self, capsys):
        from repro.cli import main

        code = main(
            ["run", "--dataset", "sift1m", "--size", "400", "--queries", "10"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "simulated QPS" in out
