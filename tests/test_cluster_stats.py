"""Unit tests for repro.cluster.stats."""

import pytest

from repro.cluster.stats import TimeBreakdown


class TestTimeBreakdown:
    def test_empty_total_zero(self):
        assert TimeBreakdown().total == 0.0

    def test_charge_categories(self):
        bd = TimeBreakdown()
        bd.charge("computation", 1.0)
        bd.charge("communication", 0.5)
        bd.charge("other", 0.25)
        assert bd.computation == 1.0
        assert bd.communication == 0.5
        assert bd.other == 0.25
        assert bd.total == 1.75

    def test_charge_unknown_category_raises(self):
        with pytest.raises(ValueError, match="unknown time category"):
            TimeBreakdown().charge("sleep", 1.0)

    def test_charge_negative_raises(self):
        with pytest.raises(ValueError, match="negative"):
            TimeBreakdown().charge("computation", -1.0)

    def test_rejected_charge_leaves_state_untouched(self):
        bd = TimeBreakdown(1.0, 2.0, 3.0)
        with pytest.raises(ValueError):
            bd.charge("sleep", 1.0)
        with pytest.raises(ValueError):
            bd.charge("communication", -0.5)
        assert (bd.computation, bd.communication, bd.other) == (1.0, 2.0, 3.0)

    def test_charge_zero_seconds_is_allowed(self):
        bd = TimeBreakdown()
        bd.charge("other", 0.0)
        assert bd.total == 0.0

    def test_fractions_keys_are_stable(self):
        # These keys feed Figure 2(b)/8 plots and the metrics export.
        assert list(TimeBreakdown().fractions()) == [
            "computation",
            "communication",
            "other",
        ]
        assert list(TimeBreakdown(1.0, 1.0, 1.0).fractions()) == [
            "computation",
            "communication",
            "other",
        ]

    def test_add_accumulates(self):
        a = TimeBreakdown(1.0, 2.0, 3.0)
        b = TimeBreakdown(0.5, 0.5, 0.5)
        a.add(b)
        assert (a.computation, a.communication, a.other) == (1.5, 2.5, 3.5)

    def test_fractions_sum_to_one(self):
        bd = TimeBreakdown(3.0, 1.0, 1.0)
        fracs = bd.fractions()
        assert sum(fracs.values()) == pytest.approx(1.0)
        assert fracs["computation"] == pytest.approx(0.6)

    def test_fractions_of_empty(self):
        fracs = TimeBreakdown().fractions()
        assert all(v == 0.0 for v in fracs.values())

    def test_copy_is_independent(self):
        a = TimeBreakdown(1.0, 1.0, 1.0)
        b = a.copy()
        b.charge("computation", 5.0)
        assert a.computation == 1.0
