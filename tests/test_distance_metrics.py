"""Unit tests for repro.distance.metrics."""

import numpy as np
import pytest

from repro.distance.metrics import (
    Metric,
    cosine_similarity,
    inner_product,
    normalize_rows,
    resolve_metric,
    squared_l2,
)


class TestMetricEnum:
    def test_values(self):
        assert Metric.L2.value == "l2"
        assert Metric.INNER_PRODUCT.value == "ip"
        assert Metric.COSINE.value == "cosine"

    def test_larger_is_better(self):
        assert not Metric.L2.larger_is_better
        assert Metric.INNER_PRODUCT.larger_is_better
        assert Metric.COSINE.larger_is_better

    def test_resolve_from_string(self):
        assert resolve_metric("l2") is Metric.L2
        assert resolve_metric("IP") is Metric.INNER_PRODUCT
        assert resolve_metric("Cosine") is Metric.COSINE

    def test_resolve_passthrough(self):
        assert resolve_metric(Metric.L2) is Metric.L2

    def test_resolve_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown metric"):
            resolve_metric("hamming")


class TestSquaredL2:
    def test_simple_vectors(self):
        assert squared_l2(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 25.0

    def test_identical_vectors_zero(self):
        v = np.array([1.5, -2.5, 3.0])
        assert squared_l2(v, v) == 0.0

    def test_batch_broadcasting(self):
        batch = np.array([[1.0, 0.0], [0.0, 2.0]])
        q = np.array([0.0, 0.0])
        np.testing.assert_allclose(squared_l2(batch, q), [1.0, 4.0])

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        p, q = rng.standard_normal(16), rng.standard_normal(16)
        assert squared_l2(p, q) == pytest.approx(squared_l2(q, p))

    def test_matches_numpy_norm(self):
        rng = np.random.default_rng(1)
        p, q = rng.standard_normal(64), rng.standard_normal(64)
        expected = float(np.linalg.norm(p - q) ** 2)
        assert squared_l2(p, q) == pytest.approx(expected)


class TestInnerProduct:
    def test_simple(self):
        assert inner_product(np.array([1.0, 2.0]), np.array([3.0, 4.0])) == 11.0

    def test_orthogonal(self):
        assert inner_product(np.array([1.0, 0.0]), np.array([0.0, 5.0])) == 0.0

    def test_batch(self):
        batch = np.array([[1.0, 1.0], [2.0, 0.0]])
        q = np.array([1.0, 3.0])
        np.testing.assert_allclose(inner_product(batch, q), [4.0, 2.0])


class TestCosineSimilarity:
    def test_parallel_vectors(self):
        assert cosine_similarity(
            np.array([1.0, 1.0]), np.array([2.0, 2.0])
        ) == pytest.approx(1.0)

    def test_antiparallel(self):
        assert cosine_similarity(
            np.array([1.0, 0.0]), np.array([-3.0, 0.0])
        ) == pytest.approx(-1.0)

    def test_orthogonal(self):
        assert cosine_similarity(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(0.0)

    def test_zero_vector_gives_zero(self):
        assert cosine_similarity(np.zeros(4), np.ones(4)) == 0.0

    def test_bounded(self):
        rng = np.random.default_rng(2)
        p = rng.standard_normal((50, 8))
        q = rng.standard_normal(8)
        sims = cosine_similarity(p, q)
        assert np.all(sims <= 1.0 + 1e-12)
        assert np.all(sims >= -1.0 - 1e-12)


class TestNormalizeRows:
    def test_unit_norms(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((20, 6)).astype(np.float32) * 7
        normed = normalize_rows(x)
        np.testing.assert_allclose(
            np.linalg.norm(normed, axis=1), 1.0, rtol=1e-5
        )

    def test_zero_rows_untouched(self):
        x = np.zeros((2, 4), dtype=np.float32)
        np.testing.assert_array_equal(normalize_rows(x), x)

    def test_returns_float32(self):
        x = np.ones((3, 3), dtype=np.float64)
        assert normalize_rows(x).dtype == np.float32

    def test_does_not_mutate_input(self):
        x = np.full((2, 2), 2.0, dtype=np.float32)
        normalize_rows(x)
        np.testing.assert_array_equal(x, np.full((2, 2), 2.0))
