"""Tests for open-loop (arrival-time) query execution."""

import numpy as np
import pytest

from repro.core.config import HarmonyConfig
from repro.core.database import HarmonyDB
from repro.workload.generators import poisson_arrivals


@pytest.fixture()
def db(tiny_data, tiny_queries):
    db = HarmonyDB(
        dim=32, config=HarmonyConfig(n_machines=4, nlist=16, nprobe=4)
    )
    db.build(tiny_data, sample_queries=tiny_queries)
    return db


class TestPoissonArrivals:
    def test_ascending_from_zero(self):
        arr = poisson_arrivals(100, rate_qps=1000, seed=0)
        assert arr[0] == 0.0
        assert np.all(np.diff(arr) >= 0)

    def test_mean_rate_approximate(self):
        arr = poisson_arrivals(5000, rate_qps=1000, seed=1)
        measured = (len(arr) - 1) / arr[-1]
        assert 0.9 * 1000 < measured < 1.1 * 1000

    def test_deterministic(self):
        np.testing.assert_array_equal(
            poisson_arrivals(50, 100, seed=2), poisson_arrivals(50, 100, seed=2)
        )

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0, 100)
        with pytest.raises(ValueError):
            poisson_arrivals(10, 0)


class TestOpenLoopExecution:
    def test_results_identical_to_closed_loop(self, db, tiny_queries):
        closed, _ = db.search(tiny_queries, k=5)
        arrivals = poisson_arrivals(len(tiny_queries), 1000, seed=3)
        open_, _ = db.search(tiny_queries, k=5, arrival_times=arrivals)
        np.testing.assert_array_equal(closed.ids, open_.ids)
        np.testing.assert_allclose(closed.distances, open_.distances)

    def test_latency_excludes_idle_wait(self, db, tiny_queries):
        """At a trickle rate, per-query latency is the service time, not
        the inter-arrival spacing."""
        arrivals = poisson_arrivals(len(tiny_queries), 100, seed=4)  # 10 ms apart
        _, report = db.search(tiny_queries, k=5, arrival_times=arrivals)
        assert report.mean_latency < 5e-3

    def test_latency_grows_past_saturation(self, db, tiny_queries):
        _, closed = db.search(tiny_queries, k=5)
        capacity = closed.qps
        lats = []
        for fraction in (0.2, 3.0):
            arrivals = poisson_arrivals(
                len(tiny_queries), capacity * fraction, seed=5
            )
            _, report = db.search(
                tiny_queries, k=5, arrival_times=arrivals
            )
            lats.append(report.mean_latency)
        assert lats[1] > lats[0]

    def test_makespan_at_least_last_arrival(self, db, tiny_queries):
        arrivals = poisson_arrivals(len(tiny_queries), 500, seed=6)
        _, report = db.search(tiny_queries, k=5, arrival_times=arrivals)
        assert report.simulated_seconds >= arrivals[-1]

    def test_wrong_length_raises(self, db, tiny_queries):
        with pytest.raises(ValueError, match="one arrival time per query"):
            db.search(
                tiny_queries, k=5, arrival_times=np.zeros(3)
            )

    def test_descending_raises(self, db, tiny_queries):
        bad = np.linspace(1.0, 0.0, len(tiny_queries))
        with pytest.raises(ValueError, match="ascending"):
            db.search(tiny_queries, k=5, arrival_times=bad)

    def test_negative_raises(self, db, tiny_queries):
        bad = np.full(len(tiny_queries), -1.0)
        with pytest.raises(ValueError, match="ascending"):
            db.search(tiny_queries, k=5, arrival_times=bad)
