"""Unit tests for repro.core.pipeline (the execution engine)."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.core.config import HarmonyConfig, Mode
from repro.core.partition import build_plan
from repro.core.pipeline import IN_FLIGHT_SCANS, PipelineEngine


@pytest.fixture()
def cluster():
    return Cluster(n_workers=4)


def make_engine(index, cluster, b_vec, b_dim, **overrides):
    config = HarmonyConfig(
        n_machines=4, nlist=index.nlist, nprobe=4, seed=0, **overrides
    )
    plan = build_plan(index, 4, b_vec, b_dim)
    return PipelineEngine(index, plan, cluster, config)


class TestEngineConstruction:
    def test_untrained_index_raises(self, cluster):
        from repro.index.ivf import IVFFlatIndex

        index = IVFFlatIndex(dim=8, nlist=4)
        config = HarmonyConfig(n_machines=4, nlist=4)
        with pytest.raises(RuntimeError, match="trained"):
            PipelineEngine(index, None, cluster, config)  # type: ignore[arg-type]

    def test_plan_larger_than_cluster_raises(self, trained_index):
        plan = build_plan(trained_index, 8, 8, 1)
        config = HarmonyConfig(n_machines=8, nlist=trained_index.nlist)
        with pytest.raises(ValueError, match="targets 8 machines"):
            PipelineEngine(trained_index, plan, Cluster(4), config)


class TestPlacement:
    def test_place_data_charges_memory(self, trained_index, cluster):
        engine = make_engine(trained_index, cluster, 4, 1)
        report = engine.place_data()
        assert set(report.per_machine_bytes) == {0, 1, 2, 3}
        assert report.total_bytes > 0
        for machine, nbytes in report.per_machine_bytes.items():
            assert cluster.workers[machine].current_bytes == nbytes

    def test_double_place_raises(self, trained_index, cluster):
        engine = make_engine(trained_index, cluster, 4, 1)
        engine.place_data()
        with pytest.raises(RuntimeError, match="already placed"):
            engine.place_data()

    def test_release_then_place(self, trained_index, cluster):
        engine = make_engine(trained_index, cluster, 4, 1)
        engine.place_data()
        engine.release_data()
        assert all(w.current_bytes == 0 for w in cluster.workers)
        engine.place_data()

    def test_vector_and_dimension_hold_same_base_bytes(self, trained_index):
        """Total stored data is NB x D either way (paper Section 4.2)."""
        v_engine = make_engine(trained_index, Cluster(4), 4, 1)
        d_engine = make_engine(trained_index, Cluster(4), 1, 4)
        v_total = v_engine.place_data().total_bytes
        d_total = d_engine.place_data().total_bytes
        # Dimension plans add only small workspace + replicated ids.
        assert d_total >= v_total
        assert d_total < v_total * 1.5

    def test_dimension_preassign_slower(self, trained_index):
        """Restructuring makes dim-including plans pre-assign slower."""
        v = make_engine(trained_index, Cluster(4), 4, 1).place_data()
        d = make_engine(trained_index, Cluster(4), 1, 4).place_data()
        assert d.preassign_seconds > v.preassign_seconds


class TestRunCorrectness:
    @pytest.mark.parametrize("grid", [(4, 1), (2, 2), (1, 4)])
    def test_results_match_single_node_ivf(
        self, trained_index, tiny_queries, grid
    ):
        engine = make_engine(trained_index, Cluster(4), *grid)
        engine.place_data()
        result, _ = engine.run(tiny_queries, k=5, nprobe=4)
        ref_d, ref_i = trained_index.search(tiny_queries, k=5, nprobe=4)
        np.testing.assert_array_equal(result.ids, ref_i)
        np.testing.assert_allclose(result.distances, ref_d, rtol=1e-9)

    def test_pruning_off_same_results(self, trained_index, tiny_queries):
        on = make_engine(trained_index, Cluster(4), 1, 4)
        off = make_engine(
            trained_index, Cluster(4), 1, 4, enable_pruning=False
        )
        r_on, _ = on.run(tiny_queries, k=5)
        r_off, _ = off.run(tiny_queries, k=5)
        np.testing.assert_array_equal(r_on.ids, r_off.ids)

    def test_pipeline_off_same_results(self, trained_index, tiny_queries):
        on = make_engine(trained_index, Cluster(4), 1, 4)
        off = make_engine(
            trained_index, Cluster(4), 1, 4, enable_pipeline=False
        )
        r_on, _ = on.run(tiny_queries, k=5)
        r_off, _ = off.run(tiny_queries, k=5)
        np.testing.assert_array_equal(r_on.ids, r_off.ids)

    def test_load_balance_off_same_results(self, trained_index, tiny_queries):
        on = make_engine(trained_index, Cluster(4), 1, 4)
        off = make_engine(
            trained_index, Cluster(4), 1, 4, enable_load_balance=False
        )
        r_on, _ = on.run(tiny_queries, k=5)
        r_off, _ = off.run(tiny_queries, k=5)
        np.testing.assert_array_equal(r_on.ids, r_off.ids)

    def test_invalid_k_raises(self, trained_index, tiny_queries):
        engine = make_engine(trained_index, Cluster(4), 4, 1)
        with pytest.raises(ValueError, match="k must be positive"):
            engine.run(tiny_queries, k=0)

    def test_single_query_vector_input(self, trained_index, tiny_queries):
        engine = make_engine(trained_index, Cluster(4), 2, 2)
        result, report = engine.run(tiny_queries[0], k=3)
        assert result.ids.shape == (1, 3)
        assert report.n_queries == 1


class TestRunReports:
    def test_report_fields(self, trained_index, tiny_queries):
        engine = make_engine(trained_index, Cluster(4), 1, 4)
        _, report = engine.run(tiny_queries, k=5)
        assert report.simulated_seconds > 0
        assert report.qps > 0
        assert report.worker_loads.shape == (4,)
        assert report.pruning is not None
        assert report.peak_memory_bytes >= 0
        assert "dimension" in report.plan_summary

    def test_vector_plan_has_no_pruning_stats(
        self, trained_index, tiny_queries
    ):
        engine = make_engine(trained_index, Cluster(4), 4, 1)
        _, report = engine.run(tiny_queries, k=5)
        assert report.pruning is None

    def test_pruning_reduces_computation(self, trained_index, tiny_queries):
        on = make_engine(trained_index, Cluster(4), 1, 4)
        off = make_engine(
            trained_index, Cluster(4), 1, 4, enable_pruning=False
        )
        _, r_on = on.run(tiny_queries, k=5)
        _, r_off = off.run(tiny_queries, k=5)
        assert (
            r_on.breakdown.computation < r_off.breakdown.computation
        )

    def test_pipeline_off_slower(self, trained_index, tiny_queries):
        on = make_engine(trained_index, Cluster(4), 1, 4)
        off = make_engine(
            trained_index, Cluster(4), 1, 4, enable_pipeline=False
        )
        _, r_on = on.run(tiny_queries, k=5)
        _, r_off = off.run(tiny_queries, k=5)
        assert r_off.simulated_seconds > r_on.simulated_seconds

    def test_first_pruning_position_zero(self, trained_index, tiny_queries):
        engine = make_engine(trained_index, Cluster(4), 1, 4)
        _, report = engine.run(tiny_queries, k=5)
        assert report.pruning.ratios()[0] == 0.0

    def test_pruning_ratios_nondecreasing(self, trained_index, tiny_queries):
        engine = make_engine(trained_index, Cluster(4), 1, 4)
        _, report = engine.run(tiny_queries, k=5)
        ratios = report.pruning.ratios()
        assert np.all(np.diff(ratios) >= -1e-12)

    def test_run_resets_between_batches(self, trained_index, tiny_queries):
        engine = make_engine(trained_index, Cluster(4), 2, 2)
        _, first = engine.run(tiny_queries, k=5)
        _, second = engine.run(tiny_queries, k=5)
        assert second.simulated_seconds == pytest.approx(
            first.simulated_seconds
        )

    def test_inflight_memory_bounded(self, trained_index, tiny_queries):
        engine = make_engine(trained_index, Cluster(4), 1, 4)
        engine.run(tiny_queries, k=5)
        for window in engine._inflight.values():
            assert len(window) <= IN_FLIGHT_SCANS

    def test_dimension_peaks_higher_than_vector(
        self, trained_index, tiny_queries
    ):
        """Paper Table 5 ordering: vector < dimension peak memory."""
        v_cluster, d_cluster = Cluster(4), Cluster(4)
        v_engine = make_engine(trained_index, v_cluster, 4, 1)
        d_engine = make_engine(trained_index, d_cluster, 1, 4)
        v_engine.place_data()
        d_engine.place_data()
        _, v_report = v_engine.run(tiny_queries, k=5)
        _, d_report = d_engine.run(tiny_queries, k=5)
        assert d_report.peak_memory_bytes > v_report.peak_memory_bytes


class TestModesViaConfig:
    def test_more_workers_not_slower(self, medium_data, medium_queries):
        """Scaling from 2 to 4 workers must not reduce throughput."""
        from repro.index.ivf import IVFFlatIndex

        index = IVFFlatIndex(dim=48, nlist=16, seed=0)
        index.train(medium_data)
        index.add(medium_data)
        qps = {}
        for n in (2, 4):
            config = HarmonyConfig(n_machines=n, nlist=16, nprobe=4, seed=0)
            plan = build_plan(index, n, n, 1)
            engine = PipelineEngine(index, plan, Cluster(n), config)
            _, report = engine.run(medium_queries, k=5)
            qps[n] = report.qps
        assert qps[4] > qps[2]
