"""Tests for the observability subsystem (repro.obs).

Covers the tracer / metrics primitives, the Chrome trace_event and
Prometheus exporters with their validators, and the two stack-level
invariants: (1) attaching a tracer never changes results or simulated
timings on any backend, and (2) a simulated run's span category
totals reconcile with ``ExecutionReport.breakdown``.
"""

import json

import numpy as np
import pytest

from repro.core.config import HarmonyConfig
from repro.core.database import HarmonyDB
from repro.obs import (
    MetricsRegistry,
    Span,
    Trace,
    Tracer,
    chrome_trace,
    report_metrics,
    validate_chrome_trace,
    validate_prometheus,
)
from repro.obs.trace import trace_context

DIM = 24
NQ = 10


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(11)
    base = rng.standard_normal((700, DIM)).astype(np.float32)
    queries = rng.standard_normal((NQ, DIM)).astype(np.float32)
    return base, queries


def make_db(data, **overrides):
    base, queries = data
    config = HarmonyConfig(n_machines=4, nlist=16, nprobe=4, **overrides)
    db = HarmonyDB(dim=DIM, config=config)
    db.build(base, sample_queries=queries)
    return db


class TestTracer:
    def test_record_and_snapshot(self):
        tracer = Tracer()
        tracer.record("scan", "computation", 2, 0.0, 1.5, query=3)
        (span,) = tracer.spans()
        assert span.name == "scan"
        assert span.node == 2
        assert span.duration == 1.5
        assert span.arg("query") == 3
        assert span.arg("missing", -1) == -1

    def test_unknown_category_raises(self):
        with pytest.raises(ValueError, match="unknown category"):
            Tracer().record("x", "sleeping", 0, 0.0, 1.0)

    def test_context_supplies_name_and_args(self):
        tracer = Tracer()
        with tracer.context("scan", query=7, shard=1):
            tracer.record(None, "computation", 0, 0.0, 1.0)
            tracer.record(None, "communication", 0, 1.0, 2.0, shard=9)
        tracer.record(None, "other", 0, 2.0, 3.0)
        spans = tracer.spans()
        assert spans[0].name == "scan"
        assert spans[0].args_dict() == {"query": 7, "shard": 1}
        # Explicit args win over context args.
        assert spans[1].arg("shard") == 9
        # Outside the context the name falls back to the category.
        assert spans[2].name == "other"
        assert spans[2].args == ()

    def test_contexts_nest(self):
        tracer = Tracer()
        with tracer.context("outer", query=1):
            with tracer.context("inner", block=2):
                tracer.record(None, "computation", 0, 0.0, 1.0)
        (span,) = tracer.spans()
        assert span.name == "inner"
        assert span.args_dict() == {"block": 2, "query": 1}

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(capacity=3)
        for i in range(5):
            tracer.record("s", "computation", 0, float(i), float(i) + 1)
        assert tracer.n_dropped == 2
        assert [s.start for s in tracer.spans()] == [2.0, 3.0, 4.0]
        trace = tracer.trace()
        assert trace.n_dropped == 2
        tracer.clear()
        assert tracer.n_dropped == 0
        assert tracer.spans() == ()

    def test_invalid_capacity_raises(self):
        with pytest.raises(ValueError, match="capacity"):
            Tracer(capacity=0)

    def test_wall_span_measures_block(self):
        tracer = Tracer()
        with tracer.wall_span("work", "computation", node=5, shard=2):
            pass
        (span,) = tracer.spans()
        assert span.node == 5
        assert span.end >= span.start
        assert span.arg("shard") == 2

    def test_wall_span_assigns_thread_lane(self):
        tracer = Tracer()
        with tracer.wall_span("work"):
            pass
        (span,) = tracer.spans()
        assert span.node >= 1000

    def test_trace_context_helper_noops_without_tracer(self):
        with trace_context(None, "scan", query=1):
            pass  # must not raise
        tracer = Tracer()
        with trace_context(tracer, "scan", query=1):
            tracer.record(None, "computation", 0, 0.0, 1.0)
        assert tracer.spans()[0].name == "scan"


class TestTrace:
    def make_trace(self):
        return Trace(
            spans=(
                Span("scan", "computation", 0, 0.0, 1.0, (("query", 0),)),
                Span("send", "communication", 1, 1.0, 1.5, (("query", 1),)),
                Span("merge", "other", -2, 1.5, 2.0, (("query", 0),)),
            )
        )

    def test_category_totals(self):
        totals = self.make_trace().category_totals()
        assert totals == {
            "computation": 1.0, "communication": 0.5, "other": 0.5,
        }

    def test_for_query_and_node_ids(self):
        trace = self.make_trace()
        assert len(trace.for_query(0)) == 2
        assert trace.node_ids() == [-2, 0, 1]

    def test_to_dict_json_safe(self):
        json.dumps(self.make_trace().to_dict(), allow_nan=False)


class TestChromeExport:
    def test_valid_and_well_nested(self):
        trace = Trace(
            spans=(
                Span("a", "computation", 0, 0.0, 1.0),
                Span("b", "computation", 0, 1.0, 2.0),
                Span("c", "communication", 1, 0.5, 1.5),
            )
        )
        obj = trace.to_chrome()
        counts = validate_chrome_trace(obj)
        assert counts["B"] == counts["E"] == 3
        json.dumps(obj, allow_nan=False)

    def test_zero_duration_spans_are_dropped(self):
        obj = chrome_trace([Span("a", "computation", 0, 1.0, 1.0)])
        counts = validate_chrome_trace(obj)
        assert counts["B"] == 0

    def test_lane_metadata_names_nodes(self):
        obj = chrome_trace(
            [
                Span("a", "computation", -1, 0.0, 1.0),
                Span("b", "computation", 2, 0.0, 1.0),
                Span("c", "computation", 1001, 0.0, 1.0),
            ]
        )
        names = {
            e["args"]["name"]
            for e in obj["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {"client", "worker 2", "host thread 1"}

    def test_fault_events_become_instants(self):
        from repro.cluster.faults import FaultEvent

        obj = chrome_trace(
            [Span("a", "computation", 1, 0.0, 1.0)],
            fault_events=[FaultEvent(time=0.5, kind="crash", node=1)],
        )
        counts = validate_chrome_trace(obj)
        assert counts["i"] == 1
        (instant,) = [e for e in obj["traceEvents"] if e["ph"] == "i"]
        assert instant["name"] == "fault:crash"

    def test_validator_rejects_unordered_ts(self):
        obj = {
            "traceEvents": [
                {"ph": "B", "pid": 1, "tid": 0, "ts": 5.0, "name": "a"},
                {"ph": "E", "pid": 1, "tid": 0, "ts": 2.0},
            ]
        }
        with pytest.raises(ValueError, match="time-ordered"):
            validate_chrome_trace(obj)

    def test_validator_rejects_unmatched_pairs(self):
        obj = {
            "traceEvents": [
                {"ph": "B", "pid": 1, "tid": 0, "ts": 0.0, "name": "a"},
            ]
        }
        with pytest.raises(ValueError, match="unclosed"):
            validate_chrome_trace(obj)

    def test_validator_rejects_stray_end(self):
        obj = {
            "traceEvents": [
                {"ph": "E", "pid": 1, "tid": 0, "ts": 0.0},
            ]
        }
        with pytest.raises(ValueError, match="no open B"):
            validate_chrome_trace(obj)


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("x_total").inc(2)
        registry.counter("x_total").inc()
        registry.gauge("g", worker="1").set(0.5)
        registry.histogram("h").observe(3e-6)
        assert registry.counter("x_total").value == 3
        assert registry.gauge("g", worker="1").value == 0.5
        assert registry.histogram("h").count == 1

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            MetricsRegistry().counter("c_total").inc(-1)

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("x_total")

    def test_invalid_names_raise(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("2bad")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("ok_total", **{"bad-label": 1})

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 9.0):
            hist.observe(v)
        assert hist.cumulative() == [
            (1.0, 1), (2.0, 2), (float("inf"), 3),
        ]

    def test_prometheus_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "Requests", worker="0").inc(5)
        registry.gauge("busy", "Busy fraction").set(0.25)
        registry.histogram("lat_seconds", "Latency").observe(1e-4)
        text = registry.to_prometheus()
        samples = validate_prometheus(text)
        assert samples["req_total"] == 1
        # buckets + sum + count
        assert samples["lat_seconds"] == len(
            registry.histogram("lat_seconds").bounds
        ) + 3

    def test_to_dict_json_safe(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(0.5)
        registry.counter("c_total").inc()
        json.dumps(registry.to_dict(), allow_nan=False)

    def test_validate_prometheus_rejects_garbage(self):
        with pytest.raises(ValueError, match="unparseable"):
            validate_prometheus("not a metric line at all {{{\n")
        with pytest.raises(ValueError, match="no samples"):
            validate_prometheus("# TYPE lonely counter\n")


class TestSimulatedTracing:
    @pytest.fixture(scope="class")
    def traced_run(self, data):
        base, queries = data
        db = make_db(data)
        baseline_result, baseline_report = db.search(queries, k=5)
        db.enable_tracing()
        db.attach_metrics()
        result, report = db.search(queries, k=5)
        return db, baseline_result, baseline_report, result, report

    def test_tracing_does_not_change_results(self, traced_run):
        _, r0, rep0, r1, rep1 = traced_run
        np.testing.assert_array_equal(r0.ids, r1.ids)
        np.testing.assert_array_equal(r0.distances, r1.distances)
        assert rep1.simulated_seconds == rep0.simulated_seconds
        np.testing.assert_array_equal(rep1.latencies, rep0.latencies)
        np.testing.assert_array_equal(
            rep1.worker_loads, rep0.worker_loads
        )

    def test_trace_attached_and_populated(self, traced_run):
        _, _, _, _, report = traced_run
        assert report.trace is not None
        assert len(report.trace) > 0
        assert report.trace.n_dropped == 0
        names = {s.name for s in report.trace.spans}
        assert {"route", "dispatch", "scan", "query-chunk"} <= names

    def test_category_totals_reconcile_with_breakdown(self, traced_run):
        _, _, _, _, report = traced_run
        totals = report.trace.category_totals()
        for category in ("computation", "communication", "other"):
            expected = getattr(report.breakdown, category)
            assert totals[category] == pytest.approx(
                expected, rel=1e-9, abs=1e-12
            )

    def test_scan_spans_carry_attribution(self, traced_run):
        _, _, _, _, report = traced_run
        scans = [s for s in report.trace.spans if s.name == "scan"]
        assert scans
        for span in scans:
            assert span.arg("query") is not None
            assert span.arg("shard") is not None
            assert span.arg("block") is not None
            assert span.arg("processed") >= span.arg("alive")

    def test_chrome_export_of_run_is_valid(self, traced_run, tmp_path):
        _, _, _, _, report = traced_run
        path = tmp_path / "trace.json"
        report.trace.save_chrome(path)
        with open(path) as f:
            counts = validate_chrome_trace(json.load(f))
        assert counts["B"] == counts["E"] > 0

    def test_cluster_metrics_populated(self, traced_run):
        db, _, _, _, report = traced_run
        registry = db.metrics
        assert registry.counter("harmony_compute_calls_total", node=0).value
        assert registry.counter("harmony_transferred_bytes_total").value > 0
        report_metrics(report, registry=registry)
        samples = validate_prometheus(registry.to_prometheus())
        assert "harmony_qps" in samples
        assert "harmony_time_seconds" in samples

    def test_second_search_gets_fresh_trace(self, data, traced_run):
        db, _, _, _, first = traced_run
        _, queries = data
        _, second = db.search(queries[:3], k=5)
        assert second.trace is not None
        # The earlier snapshot must be unaffected by the new run.
        assert len(first.trace) > 0
        assert {s.arg("query") for s in second.trace.spans if s.arg(
            "query") is not None} <= {0, 1, 2}

    def test_disable_tracing_restores_untraced_path(self, data):
        db = make_db(data)
        _, queries = data
        db.enable_tracing()
        db.disable_tracing()
        _, report = db.search(queries, k=5)
        assert report.trace is None
        assert db.cluster.tracer is None


class TestHostBackendTracing:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_traced_matches_untraced(self, data, backend):
        _, queries = data
        db = make_db(data, backend=backend)
        r0, _ = db.search(queries, k=5)
        db.enable_tracing()
        r1, report = db.search(queries, k=5)
        np.testing.assert_array_equal(r0.ids, r1.ids)
        np.testing.assert_array_equal(r0.distances, r1.distances)
        assert report.trace is not None
        assert len(report.trace) > 0
        counts = validate_chrome_trace(report.trace.to_chrome())
        assert counts["B"] > 0
        # The batched path records a per-(shard, slice) kernel span.
        scans = [s for s in report.trace.spans if s.name == "scan"]
        assert scans
        assert all(
            s.arg("shard") is not None and s.arg("block") is not None
            for s in scans
        )

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_per_query_path_traced(self, data, backend):
        _, queries = data
        db = make_db(data, backend=backend, batch_queries=False)
        db.enable_tracing()
        _, report = db.search(queries, k=5)
        names = {s.name for s in report.trace.spans}
        assert "query" in names
        assert "scan" in names


class TestBackendTracerSurface:
    def test_simulated_backend_forwards_to_cluster(self, data):
        from repro.core.executor.simulated import SimulatedBackend

        base, queries = data
        db = make_db(data)
        backend = SimulatedBackend(db.index, plan=db.plan)
        assert backend.tracer is None
        tracer = Tracer()
        backend.tracer = tracer
        assert backend.cluster.tracer is tracer
        backend.search(queries, k=5, nprobe=4)
        assert len(tracer.spans()) > 0
        registry = MetricsRegistry()
        backend.metrics = registry
        assert backend.cluster.metrics is registry


class TestFaultTracing:
    def test_traced_faulty_run_exports_fault_markers(self, data, tmp_path):
        from repro.cluster.faults import FaultEvent, FaultSchedule

        base, queries = data
        db = make_db(data, replicas=2, degraded_mode=True)
        schedule = FaultSchedule(
            [FaultEvent(time=0.0, kind="straggler", node=0,
                        rate_multiplier=0.25)]
        )
        db.set_fault_schedule(schedule)
        db.enable_tracing()
        _, report = db.search(queries, k=5)
        assert report.trace is not None
        path = tmp_path / "faulty.json"
        report.trace.save_chrome(path, fault_events=schedule.events)
        with open(path) as f:
            counts = validate_chrome_trace(json.load(f))
        assert counts["i"] == 1

    def test_recovery_transfer_is_traced(self, data):
        base, queries = data
        db = make_db(data, replicas=2)
        manager = db.enable_fault_recovery()
        db.enable_tracing()
        db.attach_metrics()
        report = manager.fail(0, now=0.0)
        if report.blocks_copied:
            spans = [
                s for s in db.tracer.spans() if s.name == "re-replicate"
            ]
            assert spans
            assert db.metrics.counter(
                "harmony_repair_bytes_total"
            ).value == report.bytes_copied
