"""Cross-backend exactness: serial == thread == process == simulated.

The executor refactor's contract: every backend runs the one shared
``ScanKernel``, so ids and distances are byte-identical across
execution substrates — for every metric, filter, prewarm size, and
after arbitrary add/remove mutation sequences.

The simulated engine is compared in two configurations: with canonical
slice ordering (pipeline/load-balance ablations off) its float
accumulation order matches the serial loop exactly, so even distances
must be bitwise equal; with the default adaptive ordering the per-slice
partial sums are added in a different order, so ids must still match
exactly while distances may differ only by float associativity.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import HarmonyConfig
from repro.core.executor import (
    ProcessBackend,
    SerialBackend,
    SimulatedBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.core.partition import build_plan
from repro.distance.metrics import Metric
from repro.index.ivf import IVFFlatIndex

METRICS = [Metric.L2, Metric.INNER_PRODUCT, Metric.COSINE]
N_LABELS = 4


def make_index(metric, n=400, dim=24, nlist=16, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((n, dim)).astype(np.float32)
    index = IVFFlatIndex(dim=dim, nlist=nlist, metric=metric, seed=0)
    index.train(base)
    index.add(base, labels=rng.integers(0, N_LABELS, n))
    return index


def make_queries(dim, nq=12, seed=1):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((nq, dim)).astype(np.float32)


def sim_backend(
    index, plan, prewarm_size, canonical_order, scan_precision="fp32"
):
    config = HarmonyConfig(
        n_machines=plan.n_machines,
        nlist=index.nlist,
        metric=index.metric,
        prewarm_size=prewarm_size,
        enable_pipeline=not canonical_order,
        enable_load_balance=not canonical_order,
        scan_precision=scan_precision,
    )
    return SimulatedBackend(index, plan=plan, config=config)


def assert_equivalent(results, ids_ref, dist_ref, bitwise):
    for name, result in results.items():
        np.testing.assert_array_equal(
            result.ids, ids_ref, err_msg=f"ids diverge in {name}"
        )
        if bitwise.get(name, True):
            np.testing.assert_array_equal(
                result.distances, dist_ref,
                err_msg=f"distances diverge in {name}",
            )
        else:
            np.testing.assert_allclose(
                result.distances, dist_ref, rtol=1e-9, atol=1e-12,
                err_msg=f"distances diverge in {name}",
            )


@pytest.mark.parametrize("precision", ["fp32", "sq8"])
@pytest.mark.parametrize("metric", METRICS)
@pytest.mark.parametrize("prewarm", [0, 32])
@pytest.mark.parametrize("filtered", [False, True])
def test_three_backends_identical(metric, prewarm, filtered, precision):
    """All backends == the serial fp32 oracle, under either precision.

    The sq8 rows are the dual-representation contract: quantized
    candidate generation with exact fp32 re-ranking must stay
    *byte-identical* to the full-precision serial scan on every
    backend.
    """
    index = make_index(metric)
    queries = make_queries(index.dim)
    plan = build_plan(index, n_machines=4, n_vector_shards=2, n_dim_blocks=2)
    filter_labels = [0, 2] if filtered else None

    # The oracle is ALWAYS the serial fp32 scan, even on sq8 rows.
    oracle = SerialBackend(index, plan=plan, prewarm_size=prewarm)
    serial = SerialBackend(
        index, plan=plan, prewarm_size=prewarm, scan_precision=precision
    )
    thread = ThreadBackend(
        index, plan=plan, n_threads=4, prewarm_size=prewarm,
        scan_precision=precision,
    )
    sim_canonical = sim_backend(
        index, plan, prewarm, canonical_order=True, scan_precision=precision
    )
    sim_default = sim_backend(
        index, plan, prewarm, canonical_order=False, scan_precision=precision
    )

    kwargs = dict(k=5, nprobe=4, filter_labels=filter_labels)
    reference = oracle.search(queries, **kwargs)
    with ProcessBackend(
        index, plan=plan, n_workers=2, prewarm_size=prewarm,
        scan_precision=precision,
    ) as process:
        results = {
            "serial": serial.search(queries, **kwargs),
            "thread": thread.search(queries, **kwargs),
            "process": process.search(queries, **kwargs),
            "sim-canonical": sim_canonical.search(queries, **kwargs),
            "sim-default": sim_default.search(queries, **kwargs),
        }
        assert not process.fallback_active
    assert_equivalent(
        results,
        reference.ids,
        reference.distances,
        bitwise={
            "serial": True,
            "thread": True,
            "process": True,
            "sim-canonical": True,
            "sim-default": False,
        },
    )


@pytest.mark.parametrize("precision", ["fp32", "sq8"])
@pytest.mark.parametrize("metric", METRICS)
def test_backends_identical_after_mutations(metric, precision):
    index = make_index(metric, n=300)
    rng = np.random.default_rng(5)
    queries = make_queries(index.dim, nq=8, seed=3)
    plan = build_plan(index, n_machines=4, n_vector_shards=2, n_dim_blocks=2)

    # Interleave grows and tombstoned deletes, validating after each.
    # One persistent process pool spans every step, so its shared
    # layout — on sq8 including the code segments and their
    # quantization parameters — must invalidate and rebuild on each
    # version bump.
    with ProcessBackend(
        index, plan=plan, n_workers=2, scan_precision=precision
    ) as process:
        for step in range(3):
            extra = rng.standard_normal((40, index.dim)).astype(np.float32)
            index.add(extra, labels=rng.integers(0, N_LABELS, 40))
            alive = np.flatnonzero(~index._deleted)
            index.remove_ids(rng.choice(alive, size=15, replace=False))

            oracle = SerialBackend(index, plan=plan)
            thread = ThreadBackend(
                index, plan=plan, n_threads=4, scan_precision=precision
            )
            sim = sim_backend(
                index, plan, prewarm_size=32, canonical_order=True,
                scan_precision=precision,
            )
            reference = oracle.search(queries, k=5, nprobe=4)
            results = {
                "thread": thread.search(queries, k=5, nprobe=4),
                "process": process.search(queries, k=5, nprobe=4),
                "sim-canonical": sim.search(queries, k=5, nprobe=4),
            }
            assert_equivalent(
                results, reference.ids, reference.distances, bitwise={}
            )
        assert not process.fallback_active


def test_serial_backend_matches_single_node_scan():
    """Anchor the oracle itself: SerialBackend == IVFFlatIndex.search."""
    for metric in METRICS:
        index = make_index(metric)
        queries = make_queries(index.dim)
        serial = SerialBackend(
            index,
            plan=build_plan(index, 4, 2, 2),
        )
        result = serial.search(queries, k=5, nprobe=4)
        ref_dist, ref_ids = index.search(queries, k=5, nprobe=4)
        np.testing.assert_array_equal(result.ids, ref_ids)
        np.testing.assert_allclose(
            result.distances, ref_dist, rtol=1e-9, atol=1e-12
        )


def test_resolve_backend_names():
    assert resolve_backend("serial") is SerialBackend
    assert resolve_backend("THREAD") is ThreadBackend
    assert resolve_backend("sim") is SimulatedBackend
    assert resolve_backend("process") is ProcessBackend
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("mpi")


@pytest.mark.parametrize("precision", ["fp32", "sq8"])
@pytest.mark.parametrize("metric", METRICS)
@pytest.mark.parametrize("prewarm", [0, 32])
@pytest.mark.parametrize("filtered", [False, True])
def test_batched_search_matches_per_query_loop(
    metric, prewarm, filtered, precision
):
    """search_batch == looping search_one, bitwise, on both host backends.

    The looped reference stays the fp32 serial loop, so the sq8 rows
    additionally pin batched quantized scans to the full-precision
    oracle.
    """
    index = make_index(metric)
    queries = make_queries(index.dim, nq=16)
    plan = build_plan(index, n_machines=4, n_vector_shards=2, n_dim_blocks=2)
    kwargs = dict(
        k=5, nprobe=4, filter_labels=[0, 2] if filtered else None
    )

    looped = SerialBackend(
        index, plan=plan, prewarm_size=prewarm, batch_queries=False
    ).search(queries, **kwargs)
    with ProcessBackend(
        index, plan=plan, n_workers=2, prewarm_size=prewarm,
        batch_queries=True, scan_precision=precision,
    ) as process:
        results = {
            "looped-serial": SerialBackend(
                index, plan=plan, prewarm_size=prewarm, batch_queries=False,
                scan_precision=precision,
            ).search(queries, **kwargs),
            "batched-serial": SerialBackend(
                index, plan=plan, prewarm_size=prewarm, batch_queries=True,
                scan_precision=precision,
            ).search(queries, **kwargs),
            "batched-thread": ThreadBackend(
                index, plan=plan, n_threads=4, prewarm_size=prewarm,
                batch_queries=True, scan_precision=precision,
            ).search(queries, **kwargs),
            "batched-process": process.search(queries, **kwargs),
        }
    assert_equivalent(results, looped.ids, looped.distances, bitwise={})


@pytest.mark.parametrize("precision", ["fp32", "sq8"])
@pytest.mark.parametrize("metric", METRICS)
@pytest.mark.parametrize("batch_queries", [True, False])
def test_process_degraded_mode_parity(metric, batch_queries, precision):
    """Skipped shards and coverage accounting match the serial oracle.

    Degraded mode (shards with no live replica) must produce the same
    partial results AND the same per-query ``[scanned, total]``
    coverage ledger whether the scan ran in-process or across the
    worker pool — under either scan precision (the reference is the
    fp32 serial loop in both cases).
    """
    index = make_index(metric)
    queries = make_queries(index.dim)
    plan = build_plan(index, n_machines=4, n_vector_shards=4, n_dim_blocks=1)
    skip = {1, 3}

    cov_serial = np.zeros((queries.shape[0], 2), dtype=np.int64)
    reference = SerialBackend(
        index, plan=plan, batch_queries=batch_queries
    ).search(queries, k=5, nprobe=4, skip_shards=skip, coverage=cov_serial)

    cov_sq8 = np.zeros((queries.shape[0], 2), dtype=np.int64)
    local = SerialBackend(
        index, plan=plan, batch_queries=batch_queries,
        scan_precision=precision,
    ).search(queries, k=5, nprobe=4, skip_shards=skip, coverage=cov_sq8)
    np.testing.assert_array_equal(local.ids, reference.ids)
    np.testing.assert_array_equal(local.distances, reference.distances)
    np.testing.assert_array_equal(cov_sq8, cov_serial)

    cov_process = np.zeros((queries.shape[0], 2), dtype=np.int64)
    with ProcessBackend(
        index, plan=plan, n_workers=2, batch_queries=batch_queries,
        scan_precision=precision,
    ) as process:
        result = process.search(
            queries, k=5, nprobe=4, skip_shards=skip, coverage=cov_process
        )
        assert not process.fallback_active
    np.testing.assert_array_equal(result.ids, reference.ids)
    np.testing.assert_array_equal(result.distances, reference.distances)
    np.testing.assert_array_equal(cov_process, cov_serial)
    assert (cov_serial[:, 1] >= cov_serial[:, 0]).all()


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10_000),
    metric=st.sampled_from(METRICS),
    n_vector_shards=st.integers(1, 2),
    n_dim_blocks=st.integers(1, 3),
    prewarm=st.sampled_from([0, 8, 32]),
    nprobe=st.integers(1, 8),
    k=st.integers(1, 12),
    filtered=st.booleans(),
    mutate=st.booleans(),
)
def test_property_batched_equals_looped(
    seed,
    metric,
    n_vector_shards,
    n_dim_blocks,
    prewarm,
    nprobe,
    k,
    filtered,
    mutate,
):
    """For ANY small deployment — including after streaming mutations
    that invalidate the packed layout — the fused batched path is
    byte-identical to the per-query loop."""
    index = make_index(metric, n=150, dim=9, nlist=8, seed=seed)
    rng = np.random.default_rng(seed + 2)
    if mutate:
        extra = rng.standard_normal((25, index.dim)).astype(np.float32)
        index.add(extra, labels=rng.integers(0, N_LABELS, 25))
        alive = np.flatnonzero(~index._deleted)
        index.remove_ids(rng.choice(alive, size=10, replace=False))
    queries = make_queries(index.dim, nq=6, seed=seed + 1)
    plan = build_plan(
        index,
        n_machines=n_vector_shards * n_dim_blocks,
        n_vector_shards=n_vector_shards,
        n_dim_blocks=n_dim_blocks,
    )
    kwargs = dict(
        k=k, nprobe=nprobe, filter_labels=[1, 3] if filtered else None
    )

    looped = SerialBackend(
        index, plan=plan, prewarm_size=prewarm, batch_queries=False
    ).search(queries, **kwargs)
    with ProcessBackend(
        index, plan=plan, n_workers=2, prewarm_size=prewarm,
        batch_queries=True,
    ) as process:
        results = {
            "batched-serial": SerialBackend(
                index, plan=plan, prewarm_size=prewarm, batch_queries=True
            ).search(queries, **kwargs),
            "batched-thread": ThreadBackend(
                index, plan=plan, n_threads=2, prewarm_size=prewarm,
                batch_queries=True,
            ).search(queries, **kwargs),
            "batched-process": process.search(queries, **kwargs),
        }
    assert_equivalent(results, looped.ids, looped.distances, bitwise={})


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 10_000),
    metric=st.sampled_from(METRICS),
    n_vector_shards=st.integers(1, 2),
    n_dim_blocks=st.integers(1, 3),
    prewarm=st.sampled_from([0, 8, 32]),
    nprobe=st.integers(1, 8),
    k=st.integers(1, 12),
    filtered=st.booleans(),
    precision=st.sampled_from(["fp32", "sq8"]),
)
def test_property_backend_equivalence(
    seed, metric, n_vector_shards, n_dim_blocks, prewarm, nprobe, k,
    filtered, precision,
):
    """For ANY small deployment, all backends agree byte-for-byte with
    the fp32 serial oracle — under either scan precision."""
    index = make_index(metric, n=150, dim=9, nlist=8, seed=seed)
    queries = make_queries(index.dim, nq=6, seed=seed + 1)
    plan = build_plan(
        index,
        n_machines=n_vector_shards * n_dim_blocks,
        n_vector_shards=n_vector_shards,
        n_dim_blocks=n_dim_blocks,
    )
    filter_labels = [1, 3] if filtered else None
    kwargs = dict(k=k, nprobe=nprobe, filter_labels=filter_labels)

    oracle = SerialBackend(index, plan=plan, prewarm_size=prewarm)
    serial = SerialBackend(
        index, plan=plan, prewarm_size=prewarm, scan_precision=precision
    )
    thread = ThreadBackend(
        index, plan=plan, n_threads=2, prewarm_size=prewarm,
        scan_precision=precision,
    )
    sim = sim_backend(
        index, plan, prewarm, canonical_order=True, scan_precision=precision
    )

    reference = oracle.search(queries, **kwargs)
    with ProcessBackend(
        index, plan=plan, n_workers=2, prewarm_size=prewarm,
        scan_precision=precision,
    ) as process:
        results = {
            "serial": serial.search(queries, **kwargs),
            "thread": thread.search(queries, **kwargs),
            "process": process.search(queries, **kwargs),
            "sim-canonical": sim.search(queries, **kwargs),
        }
    assert_equivalent(results, reference.ids, reference.distances, bitwise={})
