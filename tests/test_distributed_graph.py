"""Tests for the distributed graph-index baseline."""

import numpy as np
import pytest

from repro.baselines.distributed_graph import DistributedGraphANN
from repro.bench.recall import recall_at_k
from repro.data.synthetic import gaussian_blobs, uniform_gaussian
from repro.index.flat import FlatIndex


@pytest.fixture(scope="module")
def corpus():
    data = gaussian_blobs(850, 24, n_blobs=6, cluster_std=0.5, seed=6)
    return data[:800], data[800:830]


@pytest.fixture(scope="module")
def engine(corpus):
    base, _ = corpus
    engine = DistributedGraphANN(
        dim=24, n_machines=4, m=12, ef_construction=60, seed=0
    )
    engine.build(base)
    return engine


class TestConstruction:
    def test_search_before_build_raises(self):
        engine = DistributedGraphANN(dim=8)
        with pytest.raises(RuntimeError, match="build"):
            engine.search(np.ones((1, 8)), k=1)

    def test_invalid_machines(self):
        with pytest.raises(ValueError):
            DistributedGraphANN(dim=8, n_machines=0)

    def test_machine_assignment_complete(self, engine):
        machines = {engine.machine_of(n) for n in range(engine.graph.ntotal)}
        assert machines <= set(range(4))
        assert len(machines) == 4


class TestSearch:
    def test_results_match_single_machine_graph(self, engine, corpus):
        """Distribution changes timing, never results."""
        _, queries = corpus
        result, _ = engine.search(queries, k=5, ef_search=40)
        plain_d, plain_i = engine.graph.search(queries, k=5, ef_search=40)
        np.testing.assert_array_equal(result.ids, plain_i)

    def test_recall(self, engine, corpus):
        base, queries = corpus
        flat = FlatIndex(dim=24)
        flat.add(base)
        _, truth = flat.search(queries, k=5)
        result, _ = engine.search(queries, k=5, ef_search=60)
        assert recall_at_k(result.ids, truth) > 0.75

    def test_report_consistency(self, engine, corpus):
        _, queries = corpus
        _, report = engine.search(queries, k=5, ef_search=40)
        assert report.n_queries == len(queries)
        assert report.simulated_seconds > 0
        assert 0 <= report.cross_machine_hops <= report.total_hops
        assert 0.0 <= report.cross_machine_fraction <= 1.0
        assert report.visited_vertices > 0
        assert report.qps > 0

    def test_uniform_data_crosses_more(self):
        """Without cluster structure, spatial partitioning can't keep
        walks local — the paper's argument in its worst case."""
        def build_and_measure(base, queries):
            engine = DistributedGraphANN(
                dim=16, n_machines=4, m=8, ef_construction=40, seed=0
            )
            engine.build(base)
            _, report = engine.search(queries, k=5, ef_search=40)
            return report.cross_machine_fraction

        blobs = gaussian_blobs(650, 16, n_blobs=4, cluster_std=0.3, seed=7)
        uniform = uniform_gaussian(650, 16, seed=7)
        clustered_frac = build_and_measure(blobs[:600], blobs[600:630])
        uniform_frac = build_and_measure(uniform[:600], uniform[600:630])
        assert uniform_frac > clustered_frac

    def test_more_machines_more_crossings(self, corpus):
        base, queries = corpus
        fractions = []
        for n in (2, 8):
            engine = DistributedGraphANN(
                dim=24, n_machines=n, m=12, ef_construction=60, seed=0
            )
            engine.build(base)
            _, report = engine.search(queries, k=5, ef_search=40)
            fractions.append(report.cross_machine_fraction)
        assert fractions[1] >= fractions[0]
