"""Unit tests for repro.core.database (HarmonyDB facade)."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.core.config import HarmonyConfig, Mode
from repro.core.database import HarmonyDB


class TestLifecycle:
    def test_search_before_build_raises(self):
        db = HarmonyDB(dim=8)
        with pytest.raises(RuntimeError, match="build"):
            db.search(np.ones((1, 8)))

    def test_plan_before_build_raises(self):
        with pytest.raises(RuntimeError, match="build"):
            HarmonyDB(dim=8).plan

    def test_replan_before_build_raises(self):
        with pytest.raises(RuntimeError, match="build"):
            HarmonyDB(dim=8).replan(np.ones((1, 8)))

    def test_build_returns_report(self, tiny_data, tiny_queries, db_factory):
        db = db_factory(tiny_data, tiny_queries)
        assert db.is_built
        assert db.ntotal == len(tiny_data)

    def test_cluster_too_small_raises(self):
        with pytest.raises(ValueError, match="cluster has 2 workers"):
            HarmonyDB(
                dim=8,
                config=HarmonyConfig(n_machines=4),
                cluster=Cluster(2),
            )

    def test_default_cluster_created(self, tiny_data):
        db = HarmonyDB(dim=32, config=HarmonyConfig(n_machines=3, nlist=8))
        assert db.cluster.n_workers == 3


class TestBuildReport:
    def test_stage_times_positive(self, tiny_data, tiny_queries):
        db = HarmonyDB(dim=32, config=HarmonyConfig(n_machines=4, nlist=8))
        report = db.build(tiny_data, sample_queries=tiny_queries)
        assert report.train_seconds > 0
        assert report.add_seconds > 0
        assert report.preassign_seconds > 0
        assert report.total_seconds == pytest.approx(
            report.train_seconds
            + report.add_seconds
            + report.preassign_seconds
        )

    def test_placement_in_report(self, tiny_data, tiny_queries):
        db = HarmonyDB(dim=32, config=HarmonyConfig(n_machines=4, nlist=8))
        report = db.build(tiny_data, sample_queries=tiny_queries)
        assert report.placement.max_machine_bytes > 0
        assert len(report.placement.per_machine_bytes) == 4


class TestModes:
    def test_vector_mode_plan(self, tiny_data, tiny_queries, db_factory):
        db = db_factory(tiny_data, tiny_queries, mode=Mode.VECTOR)
        assert db.plan.kind == "vector"
        assert db.mode() is Mode.VECTOR

    def test_dimension_mode_plan(self, tiny_data, tiny_queries, db_factory):
        db = db_factory(tiny_data, tiny_queries, mode=Mode.DIMENSION)
        assert db.plan.kind == "dimension"

    def test_harmony_mode_evaluates_shapes(
        self, tiny_data, tiny_queries, db_factory
    ):
        db = db_factory(tiny_data, tiny_queries, mode=Mode.HARMONY)
        assert len(db.plan_decision.evaluated) == 3  # (1,4) (2,2) (4,1)

    @pytest.mark.parametrize(
        "mode", [Mode.HARMONY, Mode.VECTOR, Mode.DIMENSION]
    )
    def test_all_modes_match_reference_ivf(
        self, tiny_data, tiny_queries, db_factory, mode
    ):
        """The paper-critical invariant: results identical across modes."""
        from repro.index.ivf import IVFFlatIndex

        ref = IVFFlatIndex(dim=32, nlist=16, seed=0)
        ref.train(tiny_data)
        ref.add(tiny_data)
        ref_d, ref_i = ref.search(tiny_queries, k=5, nprobe=4)
        db = db_factory(tiny_data, tiny_queries, mode=mode)
        result, _ = db.search(tiny_queries, k=5)
        np.testing.assert_array_equal(result.ids, ref_i)
        np.testing.assert_allclose(result.distances, ref_d, rtol=1e-9)


class TestSearch:
    def test_nprobe_override(self, tiny_data, tiny_queries, db_factory):
        # Simulated-cost assertion: nprobe monotonicity only holds for
        # deterministic simulated seconds, not host wall-clock.
        db = db_factory(tiny_data, tiny_queries, backend="sim")
        _, low = db.search(tiny_queries, k=5, nprobe=1)
        _, high = db.search(tiny_queries, k=5, nprobe=8)
        assert high.nprobe == 8
        assert low.nprobe == 1
        assert high.breakdown.computation > low.breakdown.computation

    def test_report_qps_consistent(self, tiny_data, tiny_queries, db_factory):
        db = db_factory(tiny_data, tiny_queries)
        _, report = db.search(tiny_queries, k=5)
        assert report.qps == pytest.approx(
            report.n_queries / report.simulated_seconds
        )

    def test_deterministic_across_calls(
        self, tiny_data, tiny_queries, db_factory
    ):
        # Timing determinism is a simulated-clock property.
        db = db_factory(tiny_data, tiny_queries, backend="sim")
        r1, rep1 = db.search(tiny_queries, k=5)
        r2, rep2 = db.search(tiny_queries, k=5)
        np.testing.assert_array_equal(r1.ids, r2.ids)
        assert rep1.simulated_seconds == pytest.approx(rep2.simulated_seconds)


class TestReplan:
    def test_replan_changes_with_workload(self, medium_data, medium_queries):
        from repro.index.ivf import IVFFlatIndex
        from repro.workload.generators import skewed_workload

        db = HarmonyDB(
            dim=48, config=HarmonyConfig(n_machines=4, nlist=16, nprobe=4)
        )
        db.build(medium_data, sample_queries=medium_queries)
        first_plan = db.plan.describe()
        skewed = skewed_workload(
            medium_queries, db.index, 60, skew=1.0, nprobe=4, seed=0
        )
        decision = db.replan(skewed.queries)
        assert decision.plan is db.plan
        # Results still exact after replanning.
        ref_d, ref_i = db.index.search(medium_queries[:10], k=5, nprobe=4)
        result, _ = db.search(medium_queries[:10], k=5)
        np.testing.assert_array_equal(result.ids, ref_i)

    def test_replan_releases_old_memory(self, tiny_data, tiny_queries):
        db = HarmonyDB(
            dim=32, config=HarmonyConfig(n_machines=4, nlist=16, nprobe=4)
        )
        db.build(tiny_data, sample_queries=tiny_queries)
        before = sum(w.current_bytes for w in db.cluster.workers)
        db.replan(tiny_queries)
        after = sum(w.current_bytes for w in db.cluster.workers)
        assert after == pytest.approx(before, rel=0.2)


class TestMemoryReport:
    def test_memory_report_fields(self, tiny_data, tiny_queries, db_factory):
        db = db_factory(tiny_data, tiny_queries)
        report = db.index_memory_report()
        assert report["single_node_total"] > 0
        assert report["max_machine_bytes"] > 0
        assert len(report["per_machine"]) == 4

    def test_distributed_fraction_of_single_node(
        self, tiny_data, tiny_queries, db_factory
    ):
        """Each machine holds roughly 1/N of the single-node index
        (paper Table 4: 'about 1/4 of the space of Faiss')."""
        db = db_factory(tiny_data, tiny_queries, mode=Mode.VECTOR)
        report = db.index_memory_report()
        fraction = report["max_machine_bytes"] / report["single_node_total"]
        assert 0.15 < fraction < 0.6
