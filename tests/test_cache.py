"""Result cache: SLRU behavior, generation invalidation, semantic tier.

Unit tests drive :class:`repro.cache.ResultCache` directly; the
integration class checks the cache wired through ``HarmonyDB.search``
stays byte-identical to the uncached execution and surfaces its
counters through reports and metrics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import CacheHit, ResultCache, make_filter_key
from repro.core.config import HarmonyConfig
from repro.obs.metrics import MetricsRegistry, report_metrics

from conftest import make_db

GEN_A = ("uid-a", 0, 1)
GEN_B = ("uid-a", 1, 1)


def _query(seed: int, dim: int = 8) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal(dim).astype(np.float32)


def _answer(k: int = 5, offset: int = 0):
    ids = np.arange(offset, offset + k, dtype=np.int64)
    distances = np.linspace(0.0, 1.0, k).astype(np.float32) + offset
    return ids, distances


def _insert(cache, query, offset=0, k=5, nprobe=4, generation=GEN_A,
            filter_key=None):
    ids, distances = _answer(k, offset)
    cache.insert(query, k, nprobe, "l2", filter_key, generation,
                 ids, distances)
    return ids, distances


def _lookup(cache, query, k=5, nprobe=4, generation=GEN_A,
            filter_key=None, record_miss=True):
    return cache.lookup(query, k, nprobe, "l2", filter_key, generation,
                        record_miss=record_miss)


class TestFilterKey:
    def test_none_passthrough(self):
        assert make_filter_key(None) is None

    def test_order_and_duplicates_canonicalized(self):
        assert make_filter_key([3, 1, 3]) == (1, 3)
        assert make_filter_key((1, 3)) == make_filter_key(np.array([3, 1]))


class TestExactTier:
    def test_miss_then_hit_byte_identical(self):
        cache = ResultCache(max_entries=8)
        q = _query(0)
        assert _lookup(cache, q) is None
        ids, distances = _insert(cache, q)
        hit = _lookup(cache, q)
        assert isinstance(hit, CacheHit)
        assert not hit.semantic
        assert hit.distance == 0.0
        np.testing.assert_array_equal(hit.ids, ids)
        np.testing.assert_array_equal(hit.distances, distances)
        assert hit.ids.tobytes() == ids.tobytes()
        assert not hit.ids.flags.writeable
        assert not hit.distances.flags.writeable
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)

    def test_key_includes_every_request_input(self):
        cache = ResultCache(max_entries=8)
        q = _query(1)
        _insert(cache, q)
        assert _lookup(cache, q, k=7) is None
        assert _lookup(cache, q, nprobe=8) is None
        assert cache.lookup(q, 5, 4, "cosine", None, GEN_A) is None
        assert _lookup(cache, q, filter_key=(1, 2)) is None
        assert _lookup(cache, q) is not None

    def test_advisory_probe_does_not_count_miss(self):
        cache = ResultCache(max_entries=8)
        assert _lookup(cache, _query(2), record_miss=False) is None
        assert cache.stats().misses == 0

    def test_duplicate_insert_is_noop(self):
        cache = ResultCache(max_entries=8)
        q = _query(3)
        _insert(cache, q, offset=0)
        before = cache.stats()
        _insert(cache, q, offset=100)  # must not replace the answer
        after = cache.stats()
        assert after.entries == before.entries == 1
        assert after.bytes == before.bytes
        hit = _lookup(cache, q)
        assert int(hit.ids[0]) == 0

    def test_stored_answer_is_a_defensive_copy(self):
        cache = ResultCache(max_entries=8)
        q = _query(4)
        ids, distances = _answer()
        cache.insert(q, 5, 4, "l2", None, GEN_A, ids, distances)
        ids[:] = -1
        distances[:] = -1.0
        hit = _lookup(cache, q)
        assert int(hit.ids[0]) == 0
        assert float(hit.distances[0]) == 0.0


class TestSegmentedLRU:
    def test_hot_entry_survives_cold_flood(self):
        cache = ResultCache(max_entries=4)
        hot = _query(10)
        _insert(cache, hot)
        assert _lookup(cache, hot) is not None  # promoted to protected
        for i in range(10):
            _insert(cache, _query(100 + i))
        assert len(cache) <= 4
        assert cache.stats().evictions > 0
        assert _lookup(cache, hot) is not None

    def test_one_hit_wonder_evicted_first(self):
        cache = ResultCache(max_entries=2)
        hot, cold_a, cold_b = _query(20), _query(21), _query(22)
        _insert(cache, hot)
        assert _lookup(cache, hot) is not None
        _insert(cache, cold_a)
        _insert(cache, cold_b)  # capacity: evicts cold_a (probation LRU)
        assert _lookup(cache, hot) is not None
        assert _lookup(cache, cold_a) is None
        assert cache.stats().evictions == 1

    def test_protected_overflow_demotes_not_evicts(self):
        cache = ResultCache(max_entries=5)  # protected cap = 4
        queries = [_query(30 + i) for i in range(5)]
        for q in queries:
            _insert(cache, q)
        for q in queries:
            assert _lookup(cache, q) is not None  # promote all five
        stats = cache.stats()
        assert stats.entries == 5
        assert stats.evictions == 0
        for q in queries:  # demoted entries are still resident
            assert _lookup(cache, q) is not None

    def test_bytes_accounting_tracks_evictions(self):
        cache = ResultCache(max_entries=2)
        _insert(cache, _query(40))
        one_entry = cache.stats().bytes
        assert one_entry > 0
        _insert(cache, _query(41))
        _insert(cache, _query(42))
        assert cache.stats().bytes == 2 * one_entry
        cache.invalidate()
        assert cache.stats().bytes == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(max_entries=0)
        with pytest.raises(ValueError, match="epsilon"):
            ResultCache(epsilon=-0.1)


class TestGenerationInvalidation:
    def test_generation_move_flushes_and_counts(self):
        cache = ResultCache(max_entries=8)
        _insert(cache, _query(50))
        _insert(cache, _query(51))
        assert _lookup(cache, _query(50), generation=GEN_B) is None
        stats = cache.stats()
        assert stats.invalidations == 2
        assert stats.entries == 0

    def test_stale_insert_flushed_by_next_generation(self):
        cache = ResultCache(max_entries=8)
        _insert(cache, _query(52), generation=GEN_A)
        _insert(cache, _query(53), generation=GEN_B)
        assert cache.stats().invalidations == 1
        assert _lookup(cache, _query(53), generation=GEN_B) is not None

    def test_explicit_invalidate(self):
        cache = ResultCache(max_entries=8)
        _insert(cache, _query(54))
        _insert(cache, _query(55))
        assert cache.invalidate() == 2
        assert cache.stats().invalidations == 2
        assert _lookup(cache, _query(54)) is None

    def test_clear_keeps_counters(self):
        cache = ResultCache(max_entries=8)
        _insert(cache, _query(56))
        _lookup(cache, _query(56))
        cache.clear()
        stats = cache.stats()
        assert stats.entries == 0
        assert stats.hits == 1
        assert stats.invalidations == 0


class TestSemanticTier:
    def test_epsilon_zero_never_serves_neighbors(self):
        cache = ResultCache(max_entries=8, epsilon=0.0)
        q = _query(60)
        _insert(cache, q)
        near = q + np.float32(1e-4)
        assert _lookup(cache, near) is None
        assert cache.stats().semantic_hits == 0

    def test_ball_hit_is_marked_and_measured(self):
        cache = ResultCache(max_entries=8, epsilon=0.5)
        q = _query(61)
        ids, _ = _insert(cache, q)
        near = q.copy()
        near[0] += np.float32(0.1)
        hit = _lookup(cache, near)
        assert hit is not None and hit.semantic
        assert 0.0 < hit.distance <= 0.5
        np.testing.assert_array_equal(hit.ids, ids)
        stats = cache.stats()
        assert stats.semantic_hits == 1
        assert stats.hits == 1
        assert stats.semantic_distance_mean == pytest.approx(hit.distance)
        assert stats.semantic_distance_max == pytest.approx(hit.distance)

    def test_outside_ball_misses(self):
        cache = ResultCache(max_entries=8, epsilon=0.05)
        q = _query(62)
        _insert(cache, q)
        far = q.copy()
        far[0] += np.float32(1.0)
        assert _lookup(cache, far) is None

    def test_exact_match_preferred_over_semantic(self):
        cache = ResultCache(max_entries=8, epsilon=10.0)
        q = _query(63)
        _insert(cache, q)
        hit = _lookup(cache, q)
        assert hit is not None and not hit.semantic

    def test_ball_never_crosses_request_subkeys(self):
        cache = ResultCache(max_entries=8, epsilon=10.0)
        q = _query(64)
        _insert(cache, q, k=5)
        assert _lookup(cache, q + np.float32(0.01), k=7) is None

    def test_nearest_neighbor_wins(self):
        cache = ResultCache(max_entries=8, epsilon=10.0)
        a, b = _query(65), _query(66)
        _insert(cache, a, offset=0)
        ids_b, _ = _insert(cache, b, offset=100)
        probe = b.copy()
        probe[0] += np.float32(0.01)
        hit = _lookup(cache, probe)
        np.testing.assert_array_equal(hit.ids, ids_b)

    def test_evicted_entry_cannot_ghost_hit(self):
        cache = ResultCache(max_entries=1, epsilon=0.5)
        a = _query(67)
        b = a + np.float32(100.0)  # far outside a's ball
        _insert(cache, a)
        _insert(cache, b)  # evicts a
        assert _lookup(cache, a + np.float32(0.01)) is None


class TestConfigValidation:
    def test_cache_knobs_validated(self):
        with pytest.raises(ValueError, match="cache_size"):
            HarmonyConfig(cache_size=0)
        with pytest.raises(ValueError, match="cache_semantic_epsilon"):
            HarmonyConfig(cache_semantic_epsilon=-0.5)
        with pytest.raises(ValueError, match="routing_cache_size"):
            HarmonyConfig(routing_cache_size=0)

    def test_cache_off_by_default(self, tiny_data, tiny_queries):
        db = make_db(tiny_data, tiny_queries)
        try:
            assert db.result_cache is None
            _, report = db.search(tiny_queries, k=5)
            assert report.result_cache_hits == 0
            assert report.result_cache_misses == 0
        finally:
            db.close()


class TestDatabaseIntegration:
    def test_warm_repeat_is_byte_identical(self, tiny_data, tiny_queries):
        db = make_db(tiny_data, tiny_queries, enable_cache=True)
        try:
            n = tiny_queries.shape[0]
            cold, cold_report = db.search(tiny_queries, k=5)
            assert cold_report.result_cache_misses == n
            assert cold_report.result_cache_hits == 0
            warm, warm_report = db.search(tiny_queries, k=5)
            np.testing.assert_array_equal(warm.ids, cold.ids)
            np.testing.assert_array_equal(warm.distances, cold.distances)
            assert warm.ids.tobytes() == cold.ids.tobytes()
            assert warm_report.result_cache_hits == n
            assert warm_report.result_cache_misses == 0
            assert "[result cache]" in warm_report.plan_summary
            stats = db.result_cache.stats()
            assert stats.entries == n
            assert stats.bytes > 0
        finally:
            db.close()

    def test_matches_uncached_deployment(self, tiny_data, tiny_queries):
        cached = make_db(tiny_data, tiny_queries, enable_cache=True)
        plain = make_db(tiny_data, tiny_queries)
        try:
            for _ in range(2):  # cold then warm
                got, _ = cached.search(tiny_queries, k=5)
                ref, _ = plain.search(tiny_queries, k=5)
                np.testing.assert_array_equal(got.ids, ref.ids)
                np.testing.assert_array_equal(got.distances, ref.distances)
        finally:
            cached.close()
            plain.close()

    def test_filtered_searches_keyed_separately(
        self, tiny_data, tiny_queries
    ):
        from repro.core.database import HarmonyDB

        labels = (np.arange(tiny_data.shape[0]) % 3).astype(np.int64)
        db = HarmonyDB(
            dim=tiny_data.shape[1],
            config=HarmonyConfig(
                n_machines=4, nlist=16, nprobe=4, enable_cache=True, seed=0
            ),
        )
        db.build(tiny_data, sample_queries=tiny_queries, labels=labels)
        try:
            plain, _ = db.search(tiny_queries, k=5)
            filtered, report = db.search(
                tiny_queries, k=5, filter_labels=[1]
            )
            # The filter is part of the key: no cross-contamination.
            assert report.result_cache_hits == 0
            assert not np.array_equal(plain.ids, filtered.ids)
            warm, warm_report = db.search(
                tiny_queries, k=5, filter_labels=np.array([1])
            )
            np.testing.assert_array_equal(warm.ids, filtered.ids)
            assert warm_report.result_cache_hits == tiny_queries.shape[0]
        finally:
            db.close()

    def test_mutation_invalidates_and_recovers(
        self, tiny_data, tiny_queries
    ):
        db = make_db(tiny_data, tiny_queries, enable_cache=True)
        try:
            db.search(tiny_queries, k=5)
            rng = np.random.default_rng(7)
            db.add(rng.standard_normal((24, 32)).astype(np.float32))
            # add() flushes eagerly — counted at mutation time.
            assert db.result_cache.stats().invalidations >= 1
            result, report = db.search(tiny_queries, k=5)
            assert report.result_cache_hits == 0
            _, ref_ids = db.index.search(tiny_queries, k=5, nprobe=4)
            np.testing.assert_array_equal(result.ids, ref_ids)
            _, warm_report = db.search(tiny_queries, k=5)
            assert warm_report.result_cache_hits == tiny_queries.shape[0]
        finally:
            db.close()

    def test_remove_invalidates(self, tiny_data, tiny_queries):
        db = make_db(tiny_data, tiny_queries, enable_cache=True)
        try:
            db.search(tiny_queries, k=5)
            db.remove(np.arange(4))
            assert db.result_cache.stats().invalidations >= 1
            _, ref_ids = db.index.search(tiny_queries, k=5, nprobe=4)
            result, _ = db.search(tiny_queries, k=5)
            np.testing.assert_array_equal(result.ids, ref_ids)
        finally:
            db.close()

    def test_cache_probe(self, tiny_data, tiny_queries):
        db = make_db(tiny_data, tiny_queries, enable_cache=True)
        try:
            assert db.cache_probe(tiny_queries[0], k=5) is None
            assert db.result_cache.stats().misses == 0  # advisory only
            db.search(tiny_queries[:1], k=5)
            hit = db.cache_probe(tiny_queries[0], k=5)
            assert hit is not None
            result, _ = db.search(tiny_queries[:1], k=5)
            np.testing.assert_array_equal(hit.ids, result.ids[0])
        finally:
            db.close()

    def test_report_and_metrics_surface_counters(
        self, tiny_data, tiny_queries
    ):
        db = make_db(tiny_data, tiny_queries, enable_cache=True)
        try:
            db.search(tiny_queries, k=5)
            _, report = db.search(tiny_queries, k=5)
            payload = report.to_dict()
            for field in (
                "result_cache_hits",
                "result_cache_misses",
                "result_cache_semantic_hits",
                "result_cache_evictions",
                "result_cache_invalidations",
                "result_cache_bytes",
                "routing_cache_evictions",
            ):
                assert field in payload
            registry = MetricsRegistry()
            report_metrics(report, registry)
            families = registry.families()
            assert "harmony_result_cache_hits_total" in families
            assert "harmony_result_cache_bytes" in families
        finally:
            db.close()

    def test_semantic_epsilon_end_to_end(self, tiny_data, tiny_queries):
        db = make_db(
            tiny_data,
            tiny_queries,
            enable_cache=True,
            cache_semantic_epsilon=0.05,
        )
        try:
            db.search(tiny_queries, k=5)
            jittered = tiny_queries + np.float32(1e-4)
            _, report = db.search(jittered, k=5)
            assert report.result_cache_semantic_hits == tiny_queries.shape[0]
            stats = db.result_cache.stats()
            assert 0.0 < stats.semantic_distance_max <= 0.05
        finally:
            db.close()

    def test_save_load_roundtrip_keeps_cache_config(
        self, tmp_path, tiny_data, tiny_queries
    ):
        from repro.core.database import HarmonyDB

        db = make_db(
            tiny_data,
            tiny_queries,
            enable_cache=True,
            cache_size=33,
            cache_semantic_epsilon=0.25,
            routing_cache_size=77,
        )
        path = tmp_path / "db.npz"
        try:
            db.save(path)
        finally:
            db.close()
        loaded = HarmonyDB.load(path)
        try:
            assert loaded.config.enable_cache is True
            assert loaded.config.cache_size == 33
            assert loaded.config.cache_semantic_epsilon == 0.25
            assert loaded.config.routing_cache_size == 77
            assert loaded.result_cache is not None
            cold, _ = loaded.search(tiny_queries, k=5)
            warm, report = loaded.search(tiny_queries, k=5)
            np.testing.assert_array_equal(warm.ids, cold.ids)
            assert report.result_cache_hits == tiny_queries.shape[0]
        finally:
            loaded.close()
