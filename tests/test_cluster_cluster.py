"""Unit tests for repro.cluster.cluster."""

import numpy as np
import pytest

from repro.cluster.cluster import CLIENT_NODE, Cluster
from repro.cluster.network import CommMode, NetworkModel


@pytest.fixture()
def cluster():
    return Cluster(
        n_workers=4,
        compute_rate=1e9,
        network=NetworkModel(
            bandwidth_bytes_per_s=1e9, latency_s=1e-6, mode=CommMode.NONBLOCKING
        ),
    )


class TestTopology:
    def test_worker_count(self, cluster):
        assert cluster.n_workers == 4
        assert len(cluster.all_nodes()) == 5

    def test_node_lookup(self, cluster):
        assert cluster.node(2).node_id == 2
        assert cluster.node(CLIENT_NODE) is cluster.client

    def test_node_out_of_range(self, cluster):
        with pytest.raises(IndexError):
            cluster.node(4)
        with pytest.raises(IndexError):
            cluster.node(-2)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            Cluster(n_workers=0)

    def test_client_uses_physical_rate_by_default(self):
        from repro.cluster.node import DEFAULT_CLIENT_COMPUTE_RATE

        cluster = Cluster(n_workers=2)
        assert cluster.client.compute_rate == DEFAULT_CLIENT_COMPUTE_RATE


class TestWorkPrimitives:
    def test_compute_charges_timeline(self, cluster):
        start, end = cluster.compute(0, 1e9)
        assert (start, end) == (0.0, 1.0)
        assert cluster.workers[0].breakdown.computation == 1.0

    def test_overhead_charges_other(self, cluster):
        cluster.overhead(1, 0.5)
        assert cluster.workers[1].breakdown.other == 0.5

    def test_transfer_arrival_time(self, cluster):
        arrival = cluster.transfer(0, 1, nbytes=int(1e9))
        # latency + 1 second of payload.
        assert arrival == pytest.approx(1.0 + 1e-6)

    def test_transfer_nonblocking_sender_share(self, cluster):
        cluster.transfer(0, 1, nbytes=int(1e9))
        sender = cluster.workers[0]
        assert sender.breakdown.communication == pytest.approx(
            0.1 * (1.0 + 1e-6)
        )

    def test_transfer_blocking_occupies_sender(self):
        cluster = Cluster(
            n_workers=2,
            network=NetworkModel(
                bandwidth_bytes_per_s=1e9, latency_s=0.0, mode=CommMode.BLOCKING
            ),
        )
        cluster.transfer(0, 1, nbytes=int(1e9))
        assert cluster.workers[0].free_at == pytest.approx(1.0)

    def test_self_transfer_free(self, cluster):
        arrival = cluster.transfer(2, 2, nbytes=10**9, earliest=1.5)
        assert arrival == 1.5
        assert cluster.workers[2].breakdown.communication == 0.0

    def test_transfer_respects_earliest(self, cluster):
        arrival = cluster.transfer(0, 1, nbytes=0, earliest=2.0)
        assert arrival >= 2.0


class TestAggregation:
    def test_makespan(self, cluster):
        cluster.compute(0, 1e9)
        cluster.compute(3, 2e9)
        assert cluster.makespan() == pytest.approx(2.0)

    def test_worker_loads(self, cluster):
        cluster.compute(0, 1e9)
        cluster.compute(2, 3e9)
        np.testing.assert_allclose(
            cluster.worker_loads(), [1.0, 0.0, 3.0, 0.0]
        )

    def test_breakdown_includes_client(self, cluster):
        cluster.compute(CLIENT_NODE, cluster.client.compute_rate)
        cluster.compute(0, 1e9)
        assert cluster.breakdown().computation == pytest.approx(2.0)

    def test_reset_time(self, cluster):
        cluster.compute(0, 1e9)
        cluster.allocate(0, 100)
        cluster.reset_time()
        assert cluster.makespan() == 0.0
        assert cluster.workers[0].current_bytes == 100  # memory persists

    def test_peak_memory(self, cluster):
        cluster.allocate(0, 100)
        cluster.allocate(1, 300)
        cluster.release(1, 200)
        assert cluster.peak_memory_bytes() == 300
