"""Unit tests for repro.cluster.network."""

import pytest

from repro.cluster.network import (
    NONBLOCKING_SENDER_SHARE,
    CommMode,
    NetworkModel,
)


class TestNetworkModel:
    def test_transfer_time_formula(self):
        net = NetworkModel(bandwidth_bytes_per_s=1e6, latency_s=1e-3)
        assert net.transfer_time(1000) == pytest.approx(1e-3 + 1e-3)

    def test_zero_bytes_costs_latency(self):
        net = NetworkModel(bandwidth_bytes_per_s=1e6, latency_s=5e-6)
        assert net.transfer_time(0) == pytest.approx(5e-6)

    def test_negative_bytes_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            NetworkModel().transfer_time(-1)

    def test_invalid_bandwidth_raises(self):
        with pytest.raises(ValueError, match="bandwidth"):
            NetworkModel(bandwidth_bytes_per_s=0)

    def test_invalid_latency_raises(self):
        with pytest.raises(ValueError, match="latency"):
            NetworkModel(latency_s=-1.0)

    def test_blocking_sender_pays_full_transfer(self):
        net = NetworkModel(
            bandwidth_bytes_per_s=1e6, latency_s=1e-3, mode=CommMode.BLOCKING
        )
        assert net.sender_busy_time(1000) == pytest.approx(
            net.transfer_time(1000)
        )

    def test_nonblocking_sender_pays_injection_share(self):
        net = NetworkModel(
            bandwidth_bytes_per_s=1e6, latency_s=1e-3, mode=CommMode.NONBLOCKING
        )
        assert net.sender_busy_time(1000) == pytest.approx(
            net.transfer_time(1000) * NONBLOCKING_SENDER_SHARE
        )

    def test_with_mode_copies(self):
        net = NetworkModel(mode=CommMode.NONBLOCKING)
        blocking = net.with_mode(CommMode.BLOCKING)
        assert blocking.mode is CommMode.BLOCKING
        assert net.mode is CommMode.NONBLOCKING
        assert blocking.bandwidth_bytes_per_s == net.bandwidth_bytes_per_s

    def test_monotone_in_size(self):
        net = NetworkModel()
        assert net.transfer_time(2000) > net.transfer_time(1000)
