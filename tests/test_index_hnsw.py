"""Unit tests for the HNSW graph index."""

import numpy as np
import pytest

from repro.bench.recall import recall_at_k
from repro.data.synthetic import gaussian_blobs, uniform_gaussian
from repro.index.flat import FlatIndex
from repro.index.hnsw import HNSWIndex


@pytest.fixture(scope="module")
def corpus():
    data = gaussian_blobs(900, 24, n_blobs=6, cluster_std=0.5, seed=4)
    return data[:800], data[800:850]


@pytest.fixture(scope="module")
def index(corpus):
    base, _ = corpus
    ix = HNSWIndex(dim=24, m=12, ef_construction=80, seed=0)
    ix.add(base)
    return ix


@pytest.fixture(scope="module")
def ground_truth(corpus):
    base, queries = corpus
    flat = FlatIndex(dim=24)
    flat.add(base)
    _, ids = flat.search(queries, k=10)
    return ids


class TestConstruction:
    def test_params_validated(self):
        with pytest.raises(ValueError):
            HNSWIndex(dim=0)
        with pytest.raises(ValueError):
            HNSWIndex(dim=8, m=1)
        with pytest.raises(ValueError):
            HNSWIndex(dim=8, m=16, ef_construction=4)

    def test_ntotal(self, index, corpus):
        assert index.ntotal == len(corpus[0])

    def test_dim_mismatch_raises(self, index):
        with pytest.raises(ValueError, match="expected dim"):
            index.add(np.ones((2, 7)))

    def test_layer0_covers_all_nodes(self, index):
        for node in range(index.ntotal):
            index.neighbors(node, level=0)  # must not raise

    def test_degree_bounded(self, index):
        for node in range(index.ntotal):
            assert len(index.neighbors(node, 0)) <= 2 * index.m
        if index.max_level >= 1:
            for node in index._adjacency[1]:
                assert len(index.neighbors(node, 1)) <= index.m + 1

    def test_edges_reference_valid_nodes(self, index):
        for level in range(index.max_level + 1):
            for node, links in index._adjacency[level].items():
                assert 0 <= node < index.ntotal
                assert all(0 <= n < index.ntotal for n in links)
                assert node not in links

    def test_memory_report(self, index):
        report = index.memory_report()
        assert report["base_vectors"] == index.ntotal * 24 * 4
        assert report["adjacency"] > 0
        assert report["total"] == (
            report["base_vectors"] + report["adjacency"]
        )


class TestSearch:
    def test_empty_raises(self):
        with pytest.raises(RuntimeError, match="empty"):
            HNSWIndex(dim=4).search(np.ones(4), k=1)

    def test_param_validation(self, index, corpus):
        _, queries = corpus
        with pytest.raises(ValueError, match="k must be positive"):
            index.search(queries, k=0)
        with pytest.raises(ValueError, match="ef_search"):
            index.search(queries, k=10, ef_search=5)

    def test_finds_exact_match(self, index, corpus):
        base, _ = corpus
        dist, ids = index.search(base[37], k=1, ef_search=32)
        assert ids[0, 0] == 37
        assert dist[0, 0] == pytest.approx(0.0, abs=1e-9)

    def test_recall_reasonable(self, index, corpus, ground_truth):
        _, queries = corpus
        _, ids = index.search(queries, k=10, ef_search=64)
        assert recall_at_k(ids, ground_truth) > 0.8

    def test_recall_improves_with_ef(self, index, corpus, ground_truth):
        _, queries = corpus
        recalls = []
        for ef in (10, 40, 160):
            _, ids = index.search(queries, k=10, ef_search=ef)
            recalls.append(recall_at_k(ids, ground_truth))
        assert recalls[0] <= recalls[1] + 0.02
        assert recalls[1] <= recalls[2] + 0.02
        assert recalls[-1] > 0.9

    def test_distances_ascending(self, index, corpus):
        _, queries = corpus
        dist, _ = index.search(queries, k=10, ef_search=40)
        finite = np.isfinite(dist)
        for row, mask in zip(dist, finite):
            vals = row[mask]
            assert np.all(np.diff(vals) >= 0)

    def test_deterministic(self, corpus):
        base, queries = corpus
        a = HNSWIndex(dim=24, m=12, ef_construction=80, seed=7)
        b = HNSWIndex(dim=24, m=12, ef_construction=80, seed=7)
        a.add(base)
        b.add(base)
        _, ia = a.search(queries, k=5, ef_search=40)
        _, ib = b.search(queries, k=5, ef_search=40)
        np.testing.assert_array_equal(ia, ib)

    def test_inner_product_metric(self):
        base = (uniform_gaussian(300, 16, seed=5) + 1.0).astype(np.float32)
        queries = (uniform_gaussian(320, 16, seed=5) + 1.0)[300:].astype(
            np.float32
        )
        ix = HNSWIndex(dim=16, m=8, ef_construction=40, metric="ip", seed=0)
        ix.add(base)
        _, ids = ix.search(queries, k=5, ef_search=60)
        flat = FlatIndex(dim=16, metric="ip")
        flat.add(base)
        _, truth = flat.search(queries, k=5)
        assert recall_at_k(ids, truth) > 0.6


class TestTrace:
    def test_trace_structure(self, index, corpus):
        _, queries = corpus
        dist, ids, trace = index.search_with_trace(
            queries[0], k=5, ef_search=40
        )
        assert len(ids) == 5
        assert len(trace.visited) > 0
        assert len(set(trace.visited)) == len(trace.visited)
        for u, v in trace.edges:
            assert 0 <= u < index.ntotal
            assert 0 <= v < index.ntotal

    def test_trace_results_match_plain_search(self, index, corpus):
        _, queries = corpus
        plain_d, plain_i = index.search(queries[:1], k=5, ef_search=40)
        dist, ids, _ = index.search_with_trace(
            queries[0], k=5, ef_search=40
        )
        np.testing.assert_array_equal(ids, plain_i[0])
        np.testing.assert_allclose(dist, plain_d[0])

    def test_visited_covers_result_ids(self, index, corpus):
        _, queries = corpus
        _, ids, trace = index.search_with_trace(
            queries[0], k=5, ef_search=40
        )
        assert set(ids[ids >= 0]) <= set(trace.visited)
