"""Shared fixtures: small deterministic datasets, indexes, deployments."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.core.config import HarmonyConfig, Mode
from repro.core.database import HarmonyDB
from repro.data.synthetic import gaussian_blobs
from repro.index.ivf import IVFFlatIndex


@pytest.fixture(scope="session")
def tiny_data() -> np.ndarray:
    """400 x 32 clustered vectors; cheap enough for every unit test."""
    return gaussian_blobs(400, 32, n_blobs=8, cluster_std=0.4, seed=11)


@pytest.fixture(scope="session")
def tiny_queries() -> np.ndarray:
    """20 x 32 queries from the same distribution as ``tiny_data``."""
    return gaussian_blobs(420, 32, n_blobs=8, cluster_std=0.4, seed=11)[400:]


@pytest.fixture(scope="session")
def trained_index(tiny_data: np.ndarray) -> IVFFlatIndex:
    """A trained + populated IVF index over ``tiny_data`` (nlist=16)."""
    index = IVFFlatIndex(dim=32, nlist=16, seed=0)
    index.train(tiny_data)
    index.add(tiny_data)
    return index


@pytest.fixture(scope="session")
def medium_data() -> np.ndarray:
    """1600 x 48 clustered vectors for integration-level tests."""
    return gaussian_blobs(1600, 48, n_blobs=12, cluster_std=0.45, seed=5)


@pytest.fixture(scope="session")
def medium_queries() -> np.ndarray:
    return gaussian_blobs(1640, 48, n_blobs=12, cluster_std=0.45, seed=5)[1600:]


def make_db(
    data: np.ndarray,
    queries: np.ndarray | None = None,
    mode: "Mode | str" = Mode.HARMONY,
    n_machines: int = 4,
    nlist: int = 16,
    nprobe: int = 4,
    **overrides: object,
) -> HarmonyDB:
    """Build a small HarmonyDB for tests (deterministic, seed 0).

    ``HARMONY_BACKEND`` (env) overrides the default backend for every
    test that doesn't pin one explicitly — CI uses it to re-run the
    tier-1 suite on the host backends (results are byte-identical, so
    the whole suite doubles as an equivalence check).
    ``HARMONY_SCAN_PRECISION`` (env) likewise overrides the default
    candidate-scan representation (``sq8`` re-runs the suite through
    the quantized scan + exact re-rank path, which must also be
    byte-identical).
    """
    env_backend = os.environ.get("HARMONY_BACKEND")
    if env_backend and "backend" not in overrides:
        overrides["backend"] = env_backend
        if env_backend == "process" and "n_workers" not in overrides:
            overrides["n_workers"] = 2
    env_precision = os.environ.get("HARMONY_SCAN_PRECISION")
    if env_precision and "scan_precision" not in overrides:
        overrides["scan_precision"] = env_precision
    config = HarmonyConfig(
        n_machines=n_machines,
        nlist=nlist,
        nprobe=nprobe,
        mode=mode,  # type: ignore[arg-type]
        seed=0,
        **overrides,  # type: ignore[arg-type]
    )
    db = HarmonyDB(
        dim=data.shape[1], config=config, cluster=Cluster(n_workers=n_machines)
    )
    db.build(data, sample_queries=queries)
    return db


@pytest.fixture()
def db_factory():
    """Factory fixture exposing :func:`make_db` to tests."""
    return make_db
