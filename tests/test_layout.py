"""Unit tests for repro.core.layout (ShardPackedBase + kernel caching)."""

import numpy as np
import pytest

from repro.core.executor import ScanKernel
from repro.core.layout import (
    ShardPackedBase,
    sq8_decode,
    sq8_encode,
    sq8_slice_errors,
    sq8_train_params,
)
from repro.core.partition import build_plan
from repro.core.routing import shard_candidate_lists
from repro.distance.metrics import Metric
from repro.distance.partial import slice_norms
from repro.index.ivf import IVFFlatIndex

N, DIM, NLIST = 300, 12, 8


def make_index(metric=Metric.L2, n=N, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((n, DIM)).astype(np.float32)
    index = IVFFlatIndex(dim=DIM, nlist=NLIST, metric=metric, seed=0)
    index.train(base)
    index.add(base)
    return index


def make_plan(index, n_vector_shards=2, n_dim_blocks=2):
    return build_plan(
        index,
        n_machines=n_vector_shards * n_dim_blocks,
        n_vector_shards=n_vector_shards,
        n_dim_blocks=n_dim_blocks,
    )


class TestBuildAndGather:
    def test_packed_rows_match_base(self):
        index = make_index()
        plan = make_plan(index)
        packed = ShardPackedBase.build(index, plan)
        assert packed.n_shards == 2
        total = sum(packed.shard_size(s) for s in range(packed.n_shards))
        assert total == index.ntotal
        assert packed.nbytes > 0
        for shard in range(plan.n_vector_shards):
            lists = plan.lists_of_shard(shard)
            ids, rows, norms = packed.gather(shard, lists)
            assert norms is None
            np.testing.assert_array_equal(rows, index.base[ids])
            # Same candidate *set* as the unpacked gather.
            np.testing.assert_array_equal(
                np.sort(ids), np.sort(index.candidates(lists))
            )

    def test_gather_subset_of_lists(self):
        index = make_index()
        plan = make_plan(index)
        packed = ShardPackedBase.build(index, plan)
        lists = plan.lists_of_shard(0)[:1]
        ids, rows, _ = packed.gather(0, lists)
        np.testing.assert_array_equal(
            np.sort(ids), np.sort(index.list_members(int(lists[0])))
        )
        np.testing.assert_array_equal(rows, index.base[ids])

    def test_gather_empty_lists(self):
        index = make_index()
        plan = make_plan(index)
        packed = ShardPackedBase.build(index, plan)
        ids, rows, norms = packed.gather(0, np.empty(0, dtype=np.int64))
        assert ids.size == 0
        assert rows.shape == (0, DIM)
        assert norms is None

    def test_gather_allowed_and_exclude_masks(self):
        index = make_index()
        plan = make_plan(index)
        packed = ShardPackedBase.build(index, plan)
        lists = plan.lists_of_shard(0)
        all_ids, _, _ = packed.gather(0, lists)
        allowed = np.zeros(index.ntotal, dtype=bool)
        allowed[all_ids[::2]] = True
        exclude = np.zeros(index.ntotal, dtype=bool)
        exclude[all_ids[:4]] = True
        ids, rows, _ = packed.gather(0, lists, allowed=allowed, exclude=exclude)
        expected = [
            i for i in all_ids if allowed[i] and not exclude[i]
        ]
        np.testing.assert_array_equal(ids, expected)
        np.testing.assert_array_equal(rows, index.base[ids])

    def test_norm_blocks_follow_rows(self):
        index = make_index(metric=Metric.INNER_PRODUCT)
        plan = make_plan(index)
        table = slice_norms(index.base, plan.slices)
        packed = ShardPackedBase.build(index, plan, base_slice_norms=table)
        lists = plan.lists_of_shard(1)
        ids, _, norms = packed.gather(1, lists)
        np.testing.assert_array_equal(norms, table[ids])


class TestInvalidation:
    def test_version_moves_on_add_and_remove(self):
        index = make_index()
        plan = make_plan(index)
        packed = ShardPackedBase.build(index, plan)
        assert packed.matches(index)
        index.add(np.ones((3, DIM), dtype=np.float32))
        assert not packed.matches(index)
        packed = ShardPackedBase.build(index, plan)
        assert packed.matches(index)
        index.remove_ids([0, 1])
        assert not packed.matches(index)
        # Removing already-dead ids is a no-op and must NOT invalidate.
        packed = ShardPackedBase.build(index, plan)
        index.remove_ids([0, 1])
        assert packed.matches(index)

    def test_staleness_survives_persistence_roundtrip(self, tmp_path):
        """A reloaded index must never alias a stale layout.

        Reloading resets the version counter, so a layout built
        against the original object can collide with the clone on
        ``(version, ntotal)`` alone — identity is keyed by ``uid``.
        """
        index = make_index()
        plan = make_plan(index)
        packed = ShardPackedBase.build(index, plan)
        path = tmp_path / "index.npz"
        index.save(path)
        loaded = IVFFlatIndex.load(path)
        # One removal on the clone lines its counters up exactly with
        # the original the layout was built from — the collision.
        loaded.remove_ids([0])
        assert loaded.version == index.version
        assert loaded.ntotal == index.ntotal
        assert not packed.matches(loaded)
        assert not packed.can_refresh(loaded)
        with pytest.raises(RuntimeError, match="cannot be refreshed"):
            packed.refresh(loaded)
        # A layout built against the clone is fresh for it.
        assert ShardPackedBase.build(loaded, plan).matches(loaded)

    def test_kernel_caches_until_stale(self):
        index = make_index()
        plan = make_plan(index)
        kernel = ScanKernel(index, plan)
        first = kernel.packed_base()
        assert first is kernel.packed_base()  # cached, not rebuilt
        assert kernel.layout_builds == 1
        index.add(np.ones((2, DIM), dtype=np.float32))
        refreshed = kernel.packed_base()
        # A small add is absorbed in place as a delta segment — the
        # base generation (and the object identity) survives.
        assert refreshed is first
        assert refreshed.matches(index)
        assert refreshed.delta_rows == 2
        assert kernel.layout_builds == 1
        assert kernel.layout_refreshes == 1
        assert refreshed is kernel.packed_base()

    def test_kernel_auto_compacts_past_ratio(self):
        index = make_index()
        plan = make_plan(index)
        kernel = ScanKernel(index, plan, delta_compact_ratio=0.1)
        first = kernel.packed_base()
        rng = np.random.default_rng(5)
        index.add(rng.standard_normal((N // 5, DIM)).astype(np.float32))
        compacted = kernel.packed_base()
        # N//5 new rows exceed 10% of the base: deltas get merged into
        # a fresh generation.
        assert compacted is not first
        assert compacted.delta_rows == 0
        assert compacted.generation > first.generation
        assert kernel.layout_compactions == 1
        assert kernel.layout_builds == 2

    def test_kernel_explicit_compact(self):
        index = make_index()
        plan = make_plan(index)
        kernel = ScanKernel(index, plan, auto_compact=False)
        first = kernel.packed_base()
        index.add(np.ones((2, DIM), dtype=np.float32))
        index.remove_ids([0])
        assert kernel.packed_base() is first  # auto-compaction is off
        stats = kernel.compact()
        assert stats["compacted"] is True
        assert stats["delta_rows_merged"] == 2
        assert stats["tombstones_cleared"] == 1
        second = kernel.packed_base()
        assert second is not first
        assert second.delta_rows == 0
        assert second.tombstones_since == 0
        # Nothing pending: a second compact is a no-op.
        assert kernel.compact()["compacted"] is False

    def test_rebuilt_layout_sees_mutations(self):
        index = make_index()
        plan = make_plan(index)
        kernel = ScanKernel(index, plan)
        kernel.packed_base()
        new_rows = np.full((2, DIM), 0.5, dtype=np.float32)
        index.add(new_rows)
        removed = index.list_members(int(plan.lists_of_shard(0)[0]))[:3]
        index.remove_ids(removed)
        packed = kernel.packed_base()
        gathered: list[np.ndarray] = []
        for shard in range(plan.n_vector_shards):
            ids, rows, _ = packed.gather(shard, plan.lists_of_shard(shard))
            np.testing.assert_array_equal(rows, index.base[ids])
            gathered.append(ids)
        all_ids = np.concatenate(gathered)
        new_ids = np.arange(N, N + 2)
        assert np.isin(new_ids, all_ids).all()  # added rows present
        assert not np.isin(removed, all_ids).any()  # deleted ids gone

    def test_disabled_packing_returns_none(self):
        index = make_index()
        plan = make_plan(index)
        kernel = ScanKernel(index, plan, use_packed_base=False)
        assert kernel.packed_base() is None

    def test_packed_gather_matches_legacy_candidates(self):
        """Per (query, shard): same candidate set as index.candidates."""
        index = make_index()
        plan = make_plan(index)
        kernel = ScanKernel(index, plan)
        packed = kernel.packed_base()
        rng = np.random.default_rng(3)
        queries = rng.standard_normal((4, DIM)).astype(np.float32)
        probes = index.probe(queries, 4)
        for probe_row in probes:
            for shard in range(plan.n_vector_shards):
                lists_here = shard_candidate_lists(plan, probe_row, shard)
                ids, _, _ = packed.gather(shard, lists_here)
                np.testing.assert_array_equal(
                    np.sort(ids), np.sort(index.candidates(lists_here))
                )


class TestSQ8Codes:
    def test_train_encode_decode_roundtrip_bounds(self):
        rng = np.random.default_rng(7)
        rows = rng.standard_normal((50, DIM)).astype(np.float32)
        lo, scale = sq8_train_params(rows)
        codes = sq8_encode(rows, lo, scale)
        assert codes.dtype == np.uint8
        decoded = sq8_decode(codes, lo, scale)
        # Max reconstruction error is half a quantization step.
        assert np.all(
            np.abs(decoded - rows.astype(np.float64)) <= scale / 2 + 1e-12
        )

    def test_train_params_constant_dimension(self):
        """Zero-span dimensions must still give a positive scale and a
        lossless roundtrip for the constant value."""
        rows = np.ones((10, DIM), dtype=np.float32) * 3.25
        lo, scale = sq8_train_params(rows)
        assert np.all(scale > 0)
        codes = sq8_encode(rows, lo, scale)
        np.testing.assert_array_equal(codes, 0)
        decoded = sq8_decode(codes, lo, scale)
        np.testing.assert_allclose(decoded, 3.25, rtol=0, atol=1e-9)

    def test_empty_base_params(self):
        lo, scale = sq8_train_params(np.empty((0, DIM), dtype=np.float32))
        assert np.all(scale > 0)
        assert lo.shape == (DIM,) and scale.shape == (DIM,)

    def test_slice_errors_bound_decoded_distance(self):
        """err[r, s] >= the true L2 norm of slice-s reconstruction error."""
        index = make_index()
        plan = make_plan(index)
        rows = index.base[:40]
        lo, scale = sq8_train_params(index.base)
        codes = sq8_encode(rows, lo, scale)
        err = sq8_slice_errors(rows, codes, lo, scale, plan.slices)
        assert err.shape == (40, plan.slices.n_slices)
        assert err.dtype == np.float32
        decoded = sq8_decode(codes, lo, scale)
        for s in range(plan.slices.n_slices):
            start, stop = plan.slices.slice_range(s)
            seg = rows[:, start:stop].astype(np.float64) - decoded[:, start:stop]
            true = np.sqrt(np.einsum("ij,ij->i", seg, seg))
            assert np.all(err[:, s].astype(np.float64) >= true)

    def test_build_with_codes_and_gather_sq8(self):
        index = make_index()
        plan = make_plan(index)
        packed = ShardPackedBase.build(index, plan, with_codes=True)
        assert packed.has_codes
        assert packed.codes_nbytes > 0
        # fp32 rows dominate the layout: codes are a quarter of them.
        assert packed.codes_nbytes * 4 == packed.rows_nbytes
        for shard in range(plan.n_vector_shards):
            lists = plan.lists_of_shard(shard)
            ref_ids, ref_rows, _ = packed.gather(shard, lists)
            ids, codes, err, norms, rows_full, local = packed.gather_sq8(
                shard, lists
            )
            np.testing.assert_array_equal(ids, ref_ids)
            # codes decode to within half a step of the fp32 rows, and
            # the local indices recover those exact rows for re-rank.
            np.testing.assert_array_equal(rows_full[local], ref_rows)
            decoded = sq8_decode(codes, packed.code_lo, packed.code_scale)
            assert np.all(
                np.abs(decoded - ref_rows.astype(np.float64))
                <= packed.code_scale / 2 + 1e-12
            )
            assert err.shape == (ids.size, plan.slices.n_slices)

    def test_gather_sq8_masks_match_gather(self):
        index = make_index()
        plan = make_plan(index)
        packed = ShardPackedBase.build(index, plan, with_codes=True)
        lists = plan.lists_of_shard(0)
        all_ids, _, _ = packed.gather(0, lists)
        allowed = np.zeros(index.ntotal, dtype=bool)
        allowed[all_ids[::2]] = True
        exclude = np.zeros(index.ntotal, dtype=bool)
        exclude[all_ids[:4]] = True
        ref_ids, ref_rows, _ = packed.gather(
            0, lists, allowed=allowed, exclude=exclude
        )
        ids, codes, err, _, rows_full, local = packed.gather_sq8(
            0, lists, allowed=allowed, exclude=exclude
        )
        np.testing.assert_array_equal(ids, ref_ids)
        np.testing.assert_array_equal(rows_full[local], ref_rows)
        assert codes.shape[0] == err.shape[0] == ids.size

    def test_gather_sq8_without_codes_raises(self):
        index = make_index()
        plan = make_plan(index)
        packed = ShardPackedBase.build(index, plan)
        assert not packed.has_codes
        assert packed.codes_nbytes == 0
        with pytest.raises(RuntimeError, match="codes"):
            packed.gather_sq8(0, plan.lists_of_shard(0))

    def test_kernel_sq8_requires_packed_layout(self):
        index = make_index()
        plan = make_plan(index)
        with pytest.raises(ValueError, match="packed base layout"):
            ScanKernel(
                index, plan, use_packed_base=False, scan_precision="sq8"
            )
        with pytest.raises(ValueError, match="scan_precision"):
            ScanKernel(index, plan, scan_precision="fp16")

    def test_kernel_sq8_cache_rejects_codeless_layout(self):
        """A cached fp32-only layout is stale for an sq8 kernel."""
        index = make_index()
        plan = make_plan(index)
        kernel = ScanKernel(index, plan, scan_precision="sq8")
        packed = kernel.packed_base()
        assert packed.has_codes
        assert packed is kernel.packed_base()  # cached while fresh
        # Hand the kernel a codeless layout of the right version: it
        # must rebuild rather than scan without codes.
        kernel._packed = ShardPackedBase.build(index, plan)
        rebuilt = kernel.packed_base()
        assert rebuilt.has_codes


def test_gather_is_independent_of_base_size():
    """The point of packing: gather cost scales with the shard, and the
    returned blocks are fresh copies (mutating them must not corrupt
    the layout)."""
    index = make_index()
    plan = make_plan(index)
    packed = ShardPackedBase.build(index, plan)
    lists = plan.lists_of_shard(0)
    ids, rows, _ = packed.gather(0, lists)
    rows[:] = -1.0
    ids2, rows2, _ = packed.gather(0, lists)
    np.testing.assert_array_equal(ids, ids2)
    np.testing.assert_array_equal(rows2, index.base[ids2])
