"""Tests for grid-block replication."""

import numpy as np
import pytest

from repro.core.config import HarmonyConfig, Mode
from repro.core.database import HarmonyDB
from repro.core.partition import build_plan, replicated_placement


class TestReplicatedPlacement:
    def test_shape_and_primary_column(self, trained_index):
        plan = build_plan(trained_index, 4, 4, 1, replicas=3)
        assert plan.replicas == 3
        assert plan.replica_placement.shape == (4, 1, 3)
        np.testing.assert_array_equal(
            plan.replica_placement[:, :, 0], plan.placement
        )

    def test_replicas_on_distinct_machines(self, trained_index):
        plan = build_plan(trained_index, 4, 2, 2, replicas=4)
        for shard in range(2):
            for block in range(2):
                machines = plan.replica_machines(shard, block)
                assert len(set(machines.tolist())) == 4

    def test_no_replication_default(self, trained_index):
        plan = build_plan(trained_index, 4, 4, 1)
        assert plan.replicas == 1
        assert plan.replica_placement is None
        machines = plan.replica_machines(0, 0)
        assert machines.shape == (1,)
        assert machines[0] == plan.machine_of(0, 0)

    def test_too_many_replicas_raises(self):
        with pytest.raises(ValueError, match="cannot place"):
            replicated_placement(np.zeros((2, 1), dtype=np.int64), 2, 3)

    def test_invalid_replica_count(self):
        with pytest.raises(ValueError, match="positive"):
            replicated_placement(np.zeros((2, 1), dtype=np.int64), 2, 0)

    def test_mismatched_primary_column_rejected(self, trained_index):
        from repro.core.partition import PartitionPlan
        from repro.distance.partial import DimensionSlices

        placement = np.array([[0], [1]], dtype=np.int64)
        bad_replicas = np.array([[[1, 0]], [[0, 1]]], dtype=np.int64)
        with pytest.raises(ValueError, match="must equal placement"):
            PartitionPlan(
                n_machines=2,
                n_vector_shards=2,
                n_dim_blocks=1,
                slices=DimensionSlices.even(32, 1),
                shard_of_list=np.zeros(16, dtype=np.int64),
                placement=placement,
                replica_placement=bad_replicas,
            )


class TestReplicatedExecution:
    @pytest.mark.parametrize("mode", [Mode.VECTOR, Mode.DIMENSION])
    @pytest.mark.parametrize("replicas", [2, 4])
    def test_results_exact_with_replication(
        self, tiny_data, tiny_queries, mode, replicas
    ):
        from repro.index.ivf import IVFFlatIndex

        ref = IVFFlatIndex(dim=32, nlist=16, seed=0)
        ref.train(tiny_data)
        ref.add(tiny_data)
        _, ref_ids = ref.search(tiny_queries, k=5, nprobe=4)
        db = HarmonyDB(
            dim=32,
            config=HarmonyConfig(
                n_machines=4, nlist=16, nprobe=4, mode=mode, replicas=replicas
            ),
        )
        db.build(tiny_data, sample_queries=tiny_queries)
        result, _ = db.search(tiny_queries, k=5)
        np.testing.assert_array_equal(result.ids, ref_ids)

    def test_memory_scales_with_replicas(self, tiny_data, tiny_queries):
        def per_node(replicas):
            db = HarmonyDB(
                dim=32,
                config=HarmonyConfig(
                    n_machines=4,
                    nlist=16,
                    nprobe=4,
                    mode=Mode.VECTOR,
                    replicas=replicas,
                ),
            )
            db.build(tiny_data, sample_queries=tiny_queries)
            return db.index_memory_report()["mean_machine_bytes"]

        assert per_node(2) == pytest.approx(2 * per_node(1), rel=0.01)

    def test_replication_spreads_load(self, medium_data, medium_queries):
        """With every query hitting one shard, R=2 must cut the load
        concentration roughly in half."""
        from repro.index.ivf import IVFFlatIndex
        from repro.workload.generators import skewed_workload

        index = IVFFlatIndex(dim=48, nlist=16, seed=0)
        index.train(medium_data)
        index.add(medium_data)

        def top_load_share(replicas):
            db = HarmonyDB.from_trained_index(
                index,
                config=HarmonyConfig(
                    n_machines=4,
                    nlist=16,
                    nprobe=4,
                    mode=Mode.VECTOR,
                    replicas=replicas,
                ),
                sample_queries=medium_queries,
            )
            hot = db.plan.lists_of_shard(0)
            workload = skewed_workload(
                medium_queries, index, 60, skew=1.0, nprobe=4,
                hot_list_ids=hot, seed=33,
            )
            _, report = db.search(workload.queries, k=5)
            return report.worker_loads.max() / report.worker_loads.sum()

        assert top_load_share(2) < top_load_share(1)

    def test_invalid_replica_config(self):
        with pytest.raises(ValueError, match="replicas"):
            HarmonyConfig(n_machines=4, replicas=5)
        with pytest.raises(ValueError, match="replicas"):
            HarmonyConfig(n_machines=4, replicas=0)
