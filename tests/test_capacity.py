"""Tests for the capacity planner."""

import numpy as np
import pytest

from repro.core.capacity import plan_capacity
from repro.data.synthetic import gaussian_blobs
from repro.index.ivf import IVFFlatIndex


@pytest.fixture(scope="module")
def setup():
    data = gaussian_blobs(2500, 32, n_blobs=10, cluster_std=0.5, seed=25)
    queries = gaussian_blobs(2560, 32, n_blobs=10, cluster_std=0.5, seed=25)[2500:]
    index = IVFFlatIndex(dim=32, nlist=16, seed=0)
    index.train(data)
    index.add(data)
    return index, queries


class TestPlanCapacity:
    def test_trivial_target_smallest_cluster(self, setup):
        index, queries = setup
        plan = plan_capacity(
            index, queries, target_recall=0.5, target_qps=1.0
        )
        assert plan.n_machines == 2
        assert plan.target_met
        assert plan.achieved_qps >= 1.0

    def test_higher_target_needs_more_machines(self, setup):
        index, queries = setup
        easy = plan_capacity(
            index, queries, target_recall=0.9, target_qps=1.0
        )
        # Demand just beyond what the small cluster delivered.
        hard = plan_capacity(
            index,
            queries,
            target_recall=0.9,
            target_qps=easy.achieved_qps * 1.3,
        )
        assert hard.n_machines >= easy.n_machines

    def test_unreachable_reports_best_effort(self, setup):
        index, queries = setup
        plan = plan_capacity(
            index,
            queries,
            target_recall=0.9,
            target_qps=1e12,
            machine_candidates=(2, 4),
        )
        assert not plan.target_met
        assert plan.n_machines == 4
        assert len(plan.trace) == 2

    def test_recall_target_respected(self, setup):
        index, queries = setup
        plan = plan_capacity(
            index, queries, target_recall=1.0, target_qps=1.0
        )
        assert plan.achieved_recall == pytest.approx(1.0)
        assert plan.nprobe >= 1

    def test_trace_ascending(self, setup):
        index, queries = setup
        plan = plan_capacity(
            index,
            queries,
            target_recall=0.9,
            target_qps=1e12,
            machine_candidates=(2, 4, 8),
        )
        machines = [m for m, _ in plan.trace]
        assert machines == sorted(machines)

    def test_invalid_args(self, setup):
        index, queries = setup
        with pytest.raises(ValueError, match="target_qps"):
            plan_capacity(index, queries, target_recall=0.9, target_qps=0)
        with pytest.raises(ValueError, match="machine_candidates"):
            plan_capacity(
                index,
                queries,
                target_recall=0.9,
                target_qps=1.0,
                machine_candidates=[],
            )


class TestFailedNodeGuards:
    def test_compute_on_failed_node_raises(self):
        from repro.cluster.cluster import Cluster

        cluster = Cluster(2)
        cluster.fail_worker(0)
        with pytest.raises(RuntimeError, match="failed"):
            cluster.compute(0, 1e6)

    def test_restored_node_computes_again(self):
        from repro.cluster.cluster import Cluster

        cluster = Cluster(2)
        cluster.fail_worker(0)
        cluster.restore_worker(0)
        cluster.compute(0, 1e6)  # no raise
