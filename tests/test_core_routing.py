"""Unit tests for repro.core.routing."""

import numpy as np
import pytest

from repro.core.partition import build_plan
from repro.core.routing import (
    adaptive_order,
    shard_candidate_lists,
    slice_order,
    staggered_order,
    touched_shards,
)


@pytest.fixture()
def hybrid_plan(trained_index):
    return build_plan(trained_index, 4, 2, 2)


@pytest.fixture()
def dim_plan(trained_index):
    return build_plan(trained_index, 4, 1, 4)


class TestTouchedShards:
    def test_unique_sorted(self, hybrid_plan):
        probe_row = np.array([0, 1, 2, 3, 4, 5])
        shards = touched_shards(hybrid_plan, probe_row)
        assert np.all(np.diff(shards) > 0)
        assert set(shards) <= {0, 1}

    def test_single_list(self, hybrid_plan):
        shards = touched_shards(hybrid_plan, np.array([3]))
        assert shards.shape == (1,)
        assert shards[0] == hybrid_plan.shard_of_list[3]

    def test_dimension_plan_single_shard(self, dim_plan):
        shards = touched_shards(dim_plan, np.arange(8))
        np.testing.assert_array_equal(shards, [0])


class TestShardCandidateLists:
    def test_filters_by_shard(self, hybrid_plan):
        probe_row = np.arange(8)
        for shard in (0, 1):
            lists = shard_candidate_lists(hybrid_plan, probe_row, shard)
            assert np.all(hybrid_plan.shard_of_list[lists] == shard)

    def test_union_covers_probes(self, hybrid_plan):
        probe_row = np.arange(8)
        combined = np.concatenate(
            [
                shard_candidate_lists(hybrid_plan, probe_row, s)
                for s in range(2)
            ]
        )
        np.testing.assert_array_equal(np.sort(combined), probe_row)


class TestStaggeredOrder:
    def test_is_permutation(self):
        for q in range(6):
            order = staggered_order(4, q, 0)
            np.testing.assert_array_equal(np.sort(order), np.arange(4))

    def test_rotation_by_query(self):
        np.testing.assert_array_equal(staggered_order(4, 0, 0), [0, 1, 2, 3])
        np.testing.assert_array_equal(staggered_order(4, 1, 0), [1, 2, 3, 0])
        np.testing.assert_array_equal(staggered_order(4, 2, 0), [2, 3, 0, 1])

    def test_shard_offset(self):
        np.testing.assert_array_equal(staggered_order(4, 0, 1), [1, 2, 3, 0])

    def test_consecutive_queries_start_on_different_slices(self):
        starts = {int(staggered_order(4, q, 0)[0]) for q in range(4)}
        assert starts == {0, 1, 2, 3}

    def test_invalid_blocks(self):
        with pytest.raises(ValueError):
            staggered_order(0, 0, 0)


class TestAdaptiveOrder:
    def test_least_loaded_first(self, dim_plan):
        loads = np.array([3.0, 1.0, 2.0, 0.5])
        order = adaptive_order(dim_plan, 0, loads)
        machines = dim_plan.placement[0][order]
        assert np.all(np.diff(loads[machines]) >= 0)

    def test_busiest_machine_last(self, dim_plan):
        """The paper's deferral rule: overloaded machine runs last."""
        loads = np.array([100.0, 0.0, 0.0, 0.0])
        order = adaptive_order(dim_plan, 0, loads)
        last_machine = dim_plan.machine_of(0, int(order[-1]))
        assert last_machine == 0

    def test_tie_break_by_slice_id(self, dim_plan):
        order = adaptive_order(dim_plan, 0, np.zeros(4))
        np.testing.assert_array_equal(order, [0, 1, 2, 3])

    def test_is_permutation(self, dim_plan):
        rng = np.random.default_rng(0)
        order = adaptive_order(dim_plan, 0, rng.uniform(size=4))
        np.testing.assert_array_equal(np.sort(order), np.arange(4))


class TestSliceOrder:
    def test_single_block_trivial(self, trained_index):
        plan = build_plan(trained_index, 4, 4, 1)
        order = slice_order(plan, 0, 5, np.zeros(4), True, True)
        np.testing.assert_array_equal(order, [0])

    def test_load_balance_wins(self, dim_plan):
        loads = np.array([10.0, 0.0, 0.0, 0.0])
        order = slice_order(dim_plan, 0, 0, loads, True, True)
        assert dim_plan.machine_of(0, int(order[-1])) == 0

    def test_pipeline_staggers(self, dim_plan):
        order = slice_order(dim_plan, 0, 3, np.zeros(4), False, True)
        np.testing.assert_array_equal(order, staggered_order(4, 3, 0))

    def test_naive_canonical(self, dim_plan):
        order = slice_order(dim_plan, 0, 3, np.zeros(4), False, False)
        np.testing.assert_array_equal(order, [0, 1, 2, 3])
