"""Tests for the workload drift monitor."""

import numpy as np
import pytest

from repro.core.config import HarmonyConfig, Mode
from repro.core.database import HarmonyDB
from repro.core.monitor import DriftMonitor
from repro.data.synthetic import gaussian_blobs
from repro.workload.generators import skewed_workload


@pytest.fixture(scope="module")
def setup():
    data = gaussian_blobs(2500, 48, n_blobs=12, cluster_std=0.45, seed=8)
    queries = gaussian_blobs(2800, 48, n_blobs=12, cluster_std=0.45, seed=8)[2500:]
    db = HarmonyDB(
        dim=48,
        config=HarmonyConfig(
            n_machines=4, nlist=16, nprobe=4, mode=Mode.HARMONY, seed=0
        ),
    )
    db.build(data, sample_queries=queries[:64])
    return db, queries


class TestConstruction:
    def test_requires_built_db(self):
        with pytest.raises(RuntimeError, match="built"):
            DriftMonitor(HarmonyDB(dim=8))

    def test_invalid_params(self, setup):
        db, _ = setup
        with pytest.raises(ValueError):
            DriftMonitor(db, window=0)
        with pytest.raises(ValueError):
            DriftMonitor(db, imbalance_threshold=-1.0)
        with pytest.raises(ValueError):
            DriftMonitor(db, window=10, min_observations=20)


class TestObservation:
    def test_window_bounded(self, setup):
        db, queries = setup
        monitor = DriftMonitor(db, window=50, min_observations=25)
        for _ in range(4):
            monitor.observe(queries[:30])
        assert monitor.status().n_observed == 50

    def test_no_judgment_before_min_observations(self, setup):
        db, queries = setup
        monitor = DriftMonitor(db, min_observations=64, window=256)
        monitor.observe(queries[:10])
        status = monitor.status()
        assert not status.drifted
        assert status.imbalance == 0.0

    def test_window_keeps_newest_in_order(self, setup):
        db, _ = setup
        monitor = DriftMonitor(db, window=5, min_observations=1)
        dim = db.index.dim
        batches = [
            np.full((n, dim), float(tag), dtype=np.float32)
            for tag, n in [(1, 3), (2, 3), (3, 2)]
        ]
        for batch in batches:
            monitor.observe(batch)
        # Last 5 rows of the concatenated stream, oldest first.
        np.testing.assert_array_equal(
            monitor._recent[:, 0], [2.0, 2.0, 2.0, 3.0, 3.0]
        )

    def test_oversized_batch_keeps_newest_rows(self, setup):
        db, _ = setup
        monitor = DriftMonitor(db, window=4, min_observations=1)
        dim = db.index.dim
        batch = np.arange(7, dtype=np.float32)[:, None] * np.ones(
            (7, dim), dtype=np.float32
        )
        monitor.observe(batch)
        np.testing.assert_array_equal(
            monitor._recent[:, 0], [3.0, 4.0, 5.0, 6.0]
        )

    def test_dim_mismatch_raises(self, setup):
        db, _ = setup
        monitor = DriftMonitor(db, window=8, min_observations=1)
        with pytest.raises(ValueError, match="dim"):
            monitor.observe(np.zeros((2, db.index.dim + 1), np.float32))

    def test_observe_does_not_copy_full_window(self, setup, monkeypatch):
        # Regression: observe() used np.vstack, re-allocating the whole
        # window on every call (O(window) per observed row).
        db, queries = setup
        monitor = DriftMonitor(db, window=64, min_observations=1)
        monitor.observe(queries[:64])  # fill the window first

        def no_stacking(*args, **kwargs):
            raise AssertionError(
                "observe() must not re-stack the window per call"
            )

        monkeypatch.setattr(np, "vstack", no_stacking)
        monkeypatch.setattr(np, "concatenate", no_stacking)
        for i in range(8):
            monitor.observe(queries[64 + i : 65 + i])
        monkeypatch.undo()
        assert monitor.status().n_observed == 64


class TestDriftDetection:
    def test_uniform_traffic_no_replan(self, setup):
        db, queries = setup
        monitor = DriftMonitor(
            db, window=128, min_observations=64, imbalance_threshold=0.5
        )
        monitor.observe(queries[:128])
        assert not monitor.maybe_replan()
        assert monitor.replan_count == 0

    def test_skewed_traffic_triggers_replan_and_balances(self, setup):
        db, queries = setup
        # Rebuild on a uniform sample so the starting plan is generic.
        db.replan(queries[:64])
        hot = skewed_workload(
            queries, db.index, 128, skew=1.0, nprobe=4,
            n_hot_lists=1, seed=9,
        )
        monitor = DriftMonitor(
            db, window=128, min_observations=64, imbalance_threshold=0.05
        )
        monitor.observe(hot.queries)
        before = monitor.status()
        if before.drifted:
            assert monitor.maybe_replan()
            assert monitor.replan_count == 1
            after = monitor.status()
            assert after.imbalance <= before.imbalance + 1e-9
        else:
            # The starting plan already handles this skew; nothing to do.
            assert not monitor.maybe_replan()

    def test_replan_keeps_results_exact(self, setup):
        db, queries = setup
        hot = skewed_workload(
            queries, db.index, 128, skew=1.0, nprobe=4,
            n_hot_lists=1, seed=10,
        )
        monitor = DriftMonitor(
            db, window=128, min_observations=64, imbalance_threshold=0.0
        )
        monitor.observe(hot.queries)
        monitor.maybe_replan()
        result, _ = db.search(queries[:40], k=5)
        _, ref_ids = db.index.search(queries[:40], k=5, nprobe=4)
        np.testing.assert_array_equal(result.ids, ref_ids)
