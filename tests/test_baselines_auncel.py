"""Unit tests for repro.baselines.auncel."""

import numpy as np
import pytest

from repro.baselines.auncel import AuncelLike
from repro.data.ground_truth import exact_knn


@pytest.fixture(scope="module")
def built(tiny_data_module):
    engine = AuncelLike(dim=32, nlist=16, n_machines=4, epsilon=0.5, seed=0)
    engine.build(tiny_data_module)
    return engine


@pytest.fixture(scope="module")
def tiny_data_module():
    from repro.data.synthetic import gaussian_blobs

    return gaussian_blobs(400, 32, n_blobs=8, cluster_std=0.4, seed=11)


@pytest.fixture(scope="module")
def queries_module():
    from repro.data.synthetic import gaussian_blobs

    return gaussian_blobs(420, 32, n_blobs=8, cluster_std=0.4, seed=11)[400:]


class TestConstruction:
    def test_invalid_epsilon(self):
        with pytest.raises(ValueError, match="epsilon"):
            AuncelLike(dim=8, epsilon=-0.1)

    def test_invalid_probe_bounds(self):
        with pytest.raises(ValueError, match="min_probe"):
            AuncelLike(dim=8, min_probe=5, max_probe=2)

    def test_search_before_build_raises(self):
        engine = AuncelLike(dim=8)
        with pytest.raises(RuntimeError, match="build"):
            engine.search(np.ones((1, 8)))


class TestErrorBoundPlanning:
    def test_probe_counts_within_bounds(self, built, queries_module):
        probes = built.plan_probes(queries_module)
        assert np.all(probes >= built.min_probe)
        assert np.all(probes <= built.max_probe)

    def test_tighter_epsilon_fewer_probes(self, tiny_data_module, queries_module):
        tight = AuncelLike(dim=32, nlist=16, epsilon=0.1, seed=0)
        loose = AuncelLike(dim=32, nlist=16, epsilon=2.0, seed=0)
        tight.build(tiny_data_module)
        loose.build(tiny_data_module)
        assert (
            tight.plan_probes(queries_module).mean()
            <= loose.plan_probes(queries_module).mean()
        )


class TestSearch:
    def test_result_shapes(self, built, queries_module):
        result, report = built.search(queries_module, k=5)
        assert result.ids.shape == (len(queries_module), 5)
        assert report.n_queries == len(queries_module)
        assert report.simulated_seconds > 0

    def test_reasonable_recall(self, built, tiny_data_module, queries_module):
        _, true_ids = exact_knn(tiny_data_module, queries_module, k=5)
        result, _ = built.search(queries_module, k=5)
        from repro.bench.recall import recall_at_k

        assert recall_at_k(result.ids, true_ids) > 0.5

    def test_uses_vector_partitioning(self, built):
        _, report = built.search(np.ones((2, 32), dtype=np.float32), k=3)
        assert "vector" in report.plan_summary
