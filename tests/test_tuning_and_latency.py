"""Tests for the nprobe tuner and simulated latency reporting."""

import numpy as np
import pytest

from repro.bench.tuning import tune_nprobe
from repro.core.config import HarmonyConfig
from repro.core.database import HarmonyDB
from repro.index.ivf import IVFFlatIndex


class TestTuneNprobe:
    def test_target_one_needs_more_probes_than_low_target(
        self, trained_index, tiny_queries
    ):
        low = tune_nprobe(trained_index, tiny_queries, target_recall=0.5)
        high = tune_nprobe(trained_index, tiny_queries, target_recall=1.0)
        assert low.nprobe <= high.nprobe
        assert high.achieved_recall == pytest.approx(1.0)

    def test_full_probe_always_meets_target_one(
        self, trained_index, tiny_queries
    ):
        result = tune_nprobe(trained_index, tiny_queries, target_recall=1.0)
        assert result.target_met
        assert result.achieved_recall == 1.0

    def test_trace_is_monotone_in_nprobe(self, trained_index, tiny_queries):
        result = tune_nprobe(
            trained_index,
            tiny_queries,
            target_recall=1.0,
            candidates=[1, 2, 4, 8, 16],
        )
        probes = [p for p, _ in result.trace]
        assert probes == sorted(probes)

    def test_stops_at_first_sufficient(self, trained_index, tiny_queries):
        result = tune_nprobe(
            trained_index, tiny_queries, target_recall=0.01
        )
        assert result.nprobe == 1
        assert len(result.trace) == 1

    def test_unreachable_target_reports_best(self, tiny_data, tiny_queries):
        index = IVFFlatIndex(dim=32, nlist=16, seed=0)
        index.train(tiny_data)
        index.add(tiny_data)
        result = tune_nprobe(
            index, tiny_queries, target_recall=1.0, candidates=[1]
        )
        if not result.target_met:
            assert result.nprobe == 1

    def test_respects_deletes(self, tiny_data, tiny_queries):
        index = IVFFlatIndex(dim=32, nlist=16, seed=0)
        index.train(tiny_data)
        index.add(tiny_data)
        index.remove_ids(np.arange(50))
        result = tune_nprobe(index, tiny_queries, target_recall=1.0)
        assert result.target_met  # ground truth computed on live set

    def test_invalid_target_raises(self, trained_index, tiny_queries):
        with pytest.raises(ValueError):
            tune_nprobe(trained_index, tiny_queries, target_recall=0.0)
        with pytest.raises(ValueError):
            tune_nprobe(trained_index, tiny_queries, target_recall=1.5)

    def test_untrained_raises(self, tiny_queries):
        with pytest.raises(RuntimeError):
            tune_nprobe(
                IVFFlatIndex(dim=32, nlist=4), tiny_queries, target_recall=0.9
            )


class TestLatencyReporting:
    @pytest.fixture()
    def report(self, tiny_data, tiny_queries):
        db = HarmonyDB(
            dim=32, config=HarmonyConfig(n_machines=4, nlist=16, nprobe=4)
        )
        db.build(tiny_data, sample_queries=tiny_queries)
        _, report = db.search(tiny_queries, k=5)
        return report

    def test_latencies_recorded_per_query(self, report, tiny_queries):
        assert report.latencies.shape == (len(tiny_queries),)
        assert np.all(report.latencies > 0)

    def test_percentiles_ordered(self, report):
        p50 = report.latency_percentile(50)
        p95 = report.latency_percentile(95)
        p99 = report.latency_percentile(99)
        assert p50 <= p95 <= p99

    def test_mean_latency_within_range(self, report):
        assert (
            report.latencies.min()
            <= report.mean_latency
            <= report.latencies.max()
        )

    def test_latency_below_makespan(self, report):
        assert report.latency_percentile(100) <= report.simulated_seconds + 1e-12

    def test_invalid_percentile_raises(self, report):
        with pytest.raises(ValueError):
            report.latency_percentile(101)

    def test_latency_grows_with_nprobe(self, tiny_data, tiny_queries):
        db = HarmonyDB(
            dim=32, config=HarmonyConfig(n_machines=4, nlist=16, nprobe=4)
        )
        db.build(tiny_data, sample_queries=tiny_queries)
        _, low = db.search(tiny_queries, k=5, nprobe=1)
        _, high = db.search(tiny_queries, k=5, nprobe=16)
        assert high.mean_latency > low.mean_latency

    def test_empty_report_raises(self):
        from repro.cluster.stats import TimeBreakdown
        from repro.core.results import ExecutionReport

        report = ExecutionReport(
            n_queries=0,
            k=5,
            nprobe=4,
            simulated_seconds=1.0,
            breakdown=TimeBreakdown(),
            worker_loads=np.zeros(4),
            pruning=None,
            peak_memory_bytes=0,
        )
        with pytest.raises(RuntimeError):
            report.mean_latency
        with pytest.raises(RuntimeError):
            report.latency_percentile(50)


class TestHeterogeneousCluster:
    def test_per_worker_rates(self):
        from repro.cluster.cluster import Cluster

        cluster = Cluster(3, compute_rate=[1e9, 2e9, 4e9])
        rates = [w.compute_rate for w in cluster.workers]
        assert rates == [1e9, 2e9, 4e9]

    def test_rate_count_mismatch_raises(self):
        from repro.cluster.cluster import Cluster

        with pytest.raises(ValueError, match="compute rates"):
            Cluster(3, compute_rate=[1e9, 2e9])

    def test_straggler_hurts_naive_more_than_adaptive(
        self, medium_data, medium_queries
    ):
        """Failure injection: one worker at quarter speed. The adaptive
        dimension-order scheduler shifts that machine's slice to late
        pipeline positions (where pruning has shrunk the work), so it
        must beat the load-oblivious schedule."""
        from repro.cluster.cluster import Cluster
        from repro.core.config import HarmonyConfig, Mode

        rates = [1e9, 1e9, 1e9, 0.25e9]

        def qps(load_balance):
            config = HarmonyConfig(
                n_machines=4,
                nlist=16,
                nprobe=8,
                mode=Mode.DIMENSION,
                enable_load_balance=load_balance,
                enable_pipeline=True,
                seed=0,
            )
            db = HarmonyDB(
                dim=48,
                config=config,
                cluster=Cluster(4, compute_rate=rates),
            )
            db.build(medium_data, sample_queries=medium_queries)
            _, report = db.search(medium_queries, k=5)
            return report.qps

        assert qps(True) > qps(False)

    def test_straggler_results_still_exact(self, tiny_data, tiny_queries):
        from repro.cluster.cluster import Cluster
        from repro.index.ivf import IVFFlatIndex

        ref = IVFFlatIndex(dim=32, nlist=16, seed=0)
        ref.train(tiny_data)
        ref.add(tiny_data)
        _, ref_ids = ref.search(tiny_queries, k=5, nprobe=4)
        db = HarmonyDB(
            dim=32,
            config=HarmonyConfig(n_machines=4, nlist=16, nprobe=4),
            cluster=Cluster(4, compute_rate=[1e9, 1e9, 1e9, 1e8]),
        )
        db.build(tiny_data, sample_queries=tiny_queries)
        result, _ = db.search(tiny_queries, k=5)
        np.testing.assert_array_equal(result.ids, ref_ids)
