"""Tests for streaming inserts and deletes (index + HarmonyDB)."""

import numpy as np
import pytest

from repro.core.config import HarmonyConfig, Mode
from repro.core.database import HarmonyDB
from repro.data.synthetic import gaussian_blobs
from repro.index.ivf import IVFFlatIndex


@pytest.fixture()
def index(tiny_data):
    ix = IVFFlatIndex(dim=32, nlist=16, seed=0)
    ix.train(tiny_data)
    ix.add(tiny_data)
    return ix


class TestIndexDeletes:
    def test_remove_reduces_nlive(self, index):
        assert index.nlive == index.ntotal
        removed = index.remove_ids(np.array([0, 1, 2]))
        assert removed == 3
        assert index.nlive == index.ntotal - 3

    def test_remove_idempotent(self, index):
        index.remove_ids(np.array([5]))
        assert index.remove_ids(np.array([5])) == 0

    def test_remove_out_of_range_raises(self, index):
        with pytest.raises(IndexError):
            index.remove_ids(np.array([index.ntotal]))
        with pytest.raises(IndexError):
            index.remove_ids(np.array([-1]))

    def test_remove_empty_noop(self, index):
        assert index.remove_ids(np.empty(0, dtype=np.int64)) == 0

    def test_deleted_never_in_results(self, index, tiny_queries):
        _, ids_before = index.search(tiny_queries, k=5, nprobe=16)
        victims = np.unique(ids_before[ids_before >= 0])[:20]
        index.remove_ids(victims)
        _, ids_after = index.search(tiny_queries, k=5, nprobe=16)
        assert not (set(ids_after[ids_after >= 0]) & set(victims))

    def test_deleted_excluded_from_lists(self, index):
        target = index.list_members(0)[0]
        index.remove_ids(np.array([target]))
        assert target not in index.list_members(0)
        assert target not in index.candidates(np.array([0]))

    def test_list_sizes_reflect_deletes(self, index):
        before = index.list_sizes().sum()
        index.remove_ids(np.arange(10))
        assert index.list_sizes().sum() == before - 10

    def test_is_deleted_flags(self, index):
        index.remove_ids(np.array([3]))
        flags = index.is_deleted(np.array([2, 3, 4]))
        np.testing.assert_array_equal(flags, [False, True, False])

    def test_delete_all_of_a_list(self, index, tiny_queries):
        index.remove_ids(index.list_members(0))
        assert index.list_members(0).size == 0
        # Search still works.
        _, ids = index.search(tiny_queries, k=5, nprobe=16)
        assert ids.shape == (len(tiny_queries), 5)


class TestHarmonyDBMutations:
    @pytest.fixture()
    def db(self, tiny_data, tiny_queries):
        db = HarmonyDB(
            dim=32, config=HarmonyConfig(n_machines=4, nlist=16, nprobe=4)
        )
        db.build(tiny_data, sample_queries=tiny_queries)
        return db

    def test_add_before_build_raises(self):
        db = HarmonyDB(dim=8)
        with pytest.raises(RuntimeError, match="build"):
            db.add(np.ones((2, 8)))

    def test_remove_before_build_raises(self):
        db = HarmonyDB(dim=8)
        with pytest.raises(RuntimeError, match="build"):
            db.remove(np.array([0]))

    def test_add_visible_and_exact(self, db, tiny_queries):
        extra = gaussian_blobs(50, 32, n_blobs=8, seed=99)
        db.add(extra)
        assert db.ntotal == 450
        result, _ = db.search(tiny_queries, k=5)
        _, ref_ids = db.index.search(tiny_queries, k=5, nprobe=4)
        np.testing.assert_array_equal(result.ids, ref_ids)

    def test_added_vector_findable(self, db):
        # A far-away vector added post-build must be its own nearest hit.
        outlier = np.full((1, 32), 40.0, dtype=np.float32)
        db.add(outlier)
        new_id = db.ntotal - 1
        result, _ = db.search(outlier, k=1)
        assert result.ids[0, 0] == new_id

    def test_remove_excluded_and_exact(self, db, tiny_queries):
        result, _ = db.search(tiny_queries, k=5)
        victims = np.unique(result.ids[result.ids >= 0])[:15]
        removed = db.remove(victims)
        assert removed == 15
        after, _ = db.search(tiny_queries, k=5)
        assert not (set(after.ids[after.ids >= 0]) & set(victims))
        _, ref_ids = db.index.search(tiny_queries, k=5, nprobe=4)
        np.testing.assert_array_equal(after.ids, ref_ids)

    def test_remove_nothing_skips_refresh(self, db):
        db.remove(np.empty(0, dtype=np.int64))  # no error, no effect

    def test_add_updates_placement_memory(self, db):
        before = db.index_memory_report()["total_bytes"]
        db.add(gaussian_blobs(200, 32, n_blobs=8, seed=98))
        after = db.index_memory_report()["total_bytes"]
        assert after > before

    def test_mutations_keep_all_modes_consistent(
        self, tiny_data, tiny_queries
    ):
        dbs = {}
        for mode in (Mode.VECTOR, Mode.DIMENSION):
            db = HarmonyDB(
                dim=32,
                config=HarmonyConfig(
                    n_machines=4, nlist=16, nprobe=4, mode=mode
                ),
            )
            db.build(tiny_data, sample_queries=tiny_queries)
            db.add(gaussian_blobs(30, 32, n_blobs=8, seed=77))
            db.remove(np.arange(5))
            dbs[mode] = db.search(tiny_queries, k=5)[0]
        np.testing.assert_array_equal(
            dbs[Mode.VECTOR].ids, dbs[Mode.DIMENSION].ids
        )
