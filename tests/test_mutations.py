"""Tests for streaming inserts and deletes (index + HarmonyDB)."""

import io

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import HarmonyConfig, Mode
from repro.core.database import HarmonyDB
from repro.data.synthetic import gaussian_blobs
from repro.index.ivf import IVFFlatIndex


@pytest.fixture()
def index(tiny_data):
    ix = IVFFlatIndex(dim=32, nlist=16, seed=0)
    ix.train(tiny_data)
    ix.add(tiny_data)
    return ix


class TestIndexDeletes:
    def test_remove_reduces_nlive(self, index):
        assert index.nlive == index.ntotal
        removed = index.remove_ids(np.array([0, 1, 2]))
        assert removed == 3
        assert index.nlive == index.ntotal - 3

    def test_remove_idempotent(self, index):
        index.remove_ids(np.array([5]))
        assert index.remove_ids(np.array([5])) == 0

    def test_remove_out_of_range_raises(self, index):
        with pytest.raises(IndexError):
            index.remove_ids(np.array([index.ntotal]))
        with pytest.raises(IndexError):
            index.remove_ids(np.array([-1]))

    def test_remove_empty_noop(self, index):
        assert index.remove_ids(np.empty(0, dtype=np.int64)) == 0

    def test_deleted_never_in_results(self, index, tiny_queries):
        _, ids_before = index.search(tiny_queries, k=5, nprobe=16)
        victims = np.unique(ids_before[ids_before >= 0])[:20]
        index.remove_ids(victims)
        _, ids_after = index.search(tiny_queries, k=5, nprobe=16)
        assert not (set(ids_after[ids_after >= 0]) & set(victims))

    def test_deleted_excluded_from_lists(self, index):
        target = index.list_members(0)[0]
        index.remove_ids(np.array([target]))
        assert target not in index.list_members(0)
        assert target not in index.candidates(np.array([0]))

    def test_list_sizes_reflect_deletes(self, index):
        before = index.list_sizes().sum()
        index.remove_ids(np.arange(10))
        assert index.list_sizes().sum() == before - 10

    def test_is_deleted_flags(self, index):
        index.remove_ids(np.array([3]))
        flags = index.is_deleted(np.array([2, 3, 4]))
        np.testing.assert_array_equal(flags, [False, True, False])

    def test_delete_all_of_a_list(self, index, tiny_queries):
        index.remove_ids(index.list_members(0))
        assert index.list_members(0).size == 0
        # Search still works.
        _, ids = index.search(tiny_queries, k=5, nprobe=16)
        assert ids.shape == (len(tiny_queries), 5)


class TestHarmonyDBMutations:
    @pytest.fixture()
    def db(self, tiny_data, tiny_queries):
        db = HarmonyDB(
            dim=32, config=HarmonyConfig(n_machines=4, nlist=16, nprobe=4)
        )
        db.build(tiny_data, sample_queries=tiny_queries)
        return db

    def test_add_before_build_raises(self):
        db = HarmonyDB(dim=8)
        with pytest.raises(RuntimeError, match="build"):
            db.add(np.ones((2, 8)))

    def test_remove_before_build_raises(self):
        db = HarmonyDB(dim=8)
        with pytest.raises(RuntimeError, match="build"):
            db.remove(np.array([0]))

    def test_add_visible_and_exact(self, db, tiny_queries):
        extra = gaussian_blobs(50, 32, n_blobs=8, seed=99)
        db.add(extra)
        assert db.ntotal == 450
        result, _ = db.search(tiny_queries, k=5)
        _, ref_ids = db.index.search(tiny_queries, k=5, nprobe=4)
        np.testing.assert_array_equal(result.ids, ref_ids)

    def test_added_vector_findable(self, db):
        # A far-away vector added post-build must be its own nearest hit.
        outlier = np.full((1, 32), 40.0, dtype=np.float32)
        db.add(outlier)
        new_id = db.ntotal - 1
        result, _ = db.search(outlier, k=1)
        assert result.ids[0, 0] == new_id

    def test_remove_excluded_and_exact(self, db, tiny_queries):
        result, _ = db.search(tiny_queries, k=5)
        victims = np.unique(result.ids[result.ids >= 0])[:15]
        removed = db.remove(victims)
        assert removed == 15
        after, _ = db.search(tiny_queries, k=5)
        assert not (set(after.ids[after.ids >= 0]) & set(victims))
        _, ref_ids = db.index.search(tiny_queries, k=5, nprobe=4)
        np.testing.assert_array_equal(after.ids, ref_ids)

    def test_remove_nothing_skips_refresh(self, db):
        db.remove(np.empty(0, dtype=np.int64))  # no error, no effect

    def test_add_updates_placement_memory(self, db):
        before = db.index_memory_report()["total_bytes"]
        db.add(gaussian_blobs(200, 32, n_blobs=8, seed=98))
        after = db.index_memory_report()["total_bytes"]
        assert after > before

    def test_mutations_keep_all_modes_consistent(
        self, tiny_data, tiny_queries
    ):
        dbs = {}
        for mode in (Mode.VECTOR, Mode.DIMENSION):
            db = HarmonyDB(
                dim=32,
                config=HarmonyConfig(
                    n_machines=4, nlist=16, nprobe=4, mode=mode
                ),
            )
            db.build(tiny_data, sample_queries=tiny_queries)
            db.add(gaussian_blobs(30, 32, n_blobs=8, seed=77))
            db.remove(np.arange(5))
            dbs[mode] = db.search(tiny_queries, k=5)[0]
        np.testing.assert_array_equal(
            dbs[Mode.VECTOR].ids, dbs[Mode.DIMENSION].ids
        )


class TestDeltaLayoutMaintenance:
    """The LSM write path: delta-only mutations must not invalidate the
    packed layout, and compaction must be invisible to results."""

    @pytest.fixture()
    def host_db(self, tiny_data, tiny_queries):
        db = HarmonyDB(
            dim=32,
            config=HarmonyConfig(
                n_machines=4, nlist=16, nprobe=4, backend="thread",
                n_threads=2,
            ),
        )
        db.build(tiny_data, sample_queries=tiny_queries)
        yield db
        db.close()

    def test_mutation_batch_keeps_layout_and_pool(
        self, host_db, tiny_queries
    ):
        """The acceptance gate: a delta-absorbable mutation batch does
        not rebuild the packed layout (or the backend holding it)."""
        db = host_db
        db.search(tiny_queries, k=5)
        backend = db._host_backend
        assert backend is not None
        kernel = backend.kernel
        layout = kernel.packed_base()
        builds_before = kernel.layout_builds
        for step in range(3):
            db.add(gaussian_blobs(10, 32, n_blobs=8, seed=50 + step))
            db.remove(np.arange(step * 3, step * 3 + 3))
            result, report = db.search(tiny_queries, k=5)
            _, ref_ids = db.index.search(tiny_queries, k=5, nprobe=4)
            np.testing.assert_array_equal(result.ids, ref_ids)
        assert db._host_backend is backend  # pool survived mutations
        assert kernel.packed_base() is layout  # same base generation
        assert kernel.layout_builds == builds_before
        assert kernel.layout_refreshes >= 3
        assert report.delta_rows == 30
        assert report.tombstones_pending == 9
        assert report.layout_generation == layout.generation

    def test_db_compact_merges_and_stays_exact(
        self, host_db, tiny_queries
    ):
        db = host_db
        db.search(tiny_queries, k=5)
        db.add(gaussian_blobs(25, 32, n_blobs=8, seed=60))
        db.remove(np.arange(7))
        before, _ = db.search(tiny_queries, k=5)
        stats = db.compact()
        assert stats["compacted"] is True
        assert stats["delta_rows_merged"] == 25
        assert stats["tombstones_cleared"] == 7
        after, report = db.search(tiny_queries, k=5)
        np.testing.assert_array_equal(after.ids, before.ids)
        np.testing.assert_array_equal(after.distances, before.distances)
        assert report.delta_rows == 0
        assert report.tombstones_pending == 0
        # Nothing pending → explicit compact is a no-op.
        assert db.compact()["compacted"] is False

    def test_compact_before_any_search_is_noop(self, host_db):
        assert host_db.compact()["compacted"] is False

    def test_auto_compact_triggers_on_ratio(self, tiny_data, tiny_queries):
        db = HarmonyDB(
            dim=32,
            config=HarmonyConfig(
                n_machines=4, nlist=16, nprobe=4, backend="serial",
                delta_compact_ratio=0.05,
            ),
        )
        db.build(tiny_data, sample_queries=tiny_queries)
        db.search(tiny_queries, k=5)
        kernel = db._host_backend.kernel
        # 40 rows > 5% of 400: the next search must compact.
        db.add(gaussian_blobs(40, 32, n_blobs=8, seed=61))
        result, report = db.search(tiny_queries, k=5)
        assert report.layout_compactions == 1
        assert report.delta_rows == 0
        assert kernel.layout_compactions == 1
        _, ref_ids = db.index.search(tiny_queries, k=5, nprobe=4)
        np.testing.assert_array_equal(result.ids, ref_ids)
        db.close()


# ---------------------------------------------------------------------------
# Property matrix: mutation interleavings x backends x precision
# ---------------------------------------------------------------------------

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(1, 12)),
        st.tuples(st.just("remove"), st.integers(1, 8)),
        st.tuples(st.just("compact"), st.just(0)),
        st.tuples(st.just("search"), st.just(0)),
    ),
    min_size=2,
    max_size=6,
)


@pytest.fixture(scope="module")
def saved_index(tiny_data):
    """One trained index, serialized once; examples reload clones so
    each interleaving starts from identical, unshared state."""
    index = IVFFlatIndex(dim=32, nlist=16, seed=0)
    index.train(tiny_data)
    index.add(tiny_data)
    buf = io.BytesIO()
    index.save(buf)
    return buf.getvalue()


@pytest.mark.parametrize("backend", ["serial", "thread", "sim"])
@pytest.mark.parametrize("precision", ["fp32", "sq8"])
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[
        HealthCheck.function_scoped_fixture, HealthCheck.too_slow
    ],
)
@given(ops=_OPS, seed=st.integers(0, 2**16))
def test_interleavings_match_serial_oracle(
    backend, precision, ops, seed, saved_index, tiny_queries
):
    """Arbitrary add/remove/compact/search interleavings stay
    byte-identical to the serial fp32 oracle on every backend and
    scan precision, with deltas and tombstones in play throughout."""
    index = IVFFlatIndex.load(io.BytesIO(saved_index))
    config = HarmonyConfig(
        n_machines=4,
        nlist=16,
        nprobe=4,
        backend=backend,
        n_threads=2,
        scan_precision=precision,
        delta_compact_ratio=0.5,  # keep deltas live across steps
    )
    db = HarmonyDB.from_trained_index(index, config=config)
    rng = np.random.default_rng(seed)
    try:
        for op, arg in ops:
            if op == "add":
                db.add(
                    rng.standard_normal((arg, 32)).astype(np.float32)
                )
            elif op == "remove":
                alive = np.flatnonzero(~db.index.deleted_mask)
                if alive.size:
                    db.remove(
                        rng.choice(
                            alive,
                            size=min(arg, alive.size),
                            replace=False,
                        )
                    )
            elif op == "compact":
                db.compact()
            else:
                result, _ = db.search(tiny_queries, k=5)
                ref_dist, ref_ids = db.index.search(
                    tiny_queries, k=5, nprobe=4
                )
                np.testing.assert_array_equal(result.ids, ref_ids)
        # Always end on a verified search.
        result, _ = db.search(tiny_queries, k=5)
        _, ref_ids = db.index.search(tiny_queries, k=5, nprobe=4)
        np.testing.assert_array_equal(result.ids, ref_ids)
    finally:
        db.close()


@pytest.mark.parametrize("precision", ["fp32", "sq8"])
def test_interleavings_process_backend(
    precision, saved_index, tiny_queries
):
    """The process pool (one persistent pool across the whole
    interleaving) stays byte-identical through deltas, tombstones and
    a mid-sequence compaction, without the shm base ever re-homing."""
    index = IVFFlatIndex.load(io.BytesIO(saved_index))
    config = HarmonyConfig(
        n_machines=4,
        nlist=16,
        nprobe=4,
        backend="process",
        n_workers=2,
        scan_precision=precision,
        delta_compact_ratio=0.5,
    )
    db = HarmonyDB.from_trained_index(index, config=config)
    rng = np.random.default_rng(9)
    try:
        db.search(tiny_queries, k=5)
        backend = db._host_backend
        for step in range(3):
            db.add(rng.standard_normal((12, 32)).astype(np.float32))
            alive = np.flatnonzero(~db.index.deleted_mask)
            db.remove(rng.choice(alive, size=4, replace=False))
            result, _ = db.search(tiny_queries, k=5)
            _, ref_ids = db.index.search(tiny_queries, k=5, nprobe=4)
            np.testing.assert_array_equal(result.ids, ref_ids)
        assert backend.shm_base_rehomes == 1  # never re-homed
        assert backend.shm_overlay_syncs >= 3
        db.compact()
        result, _ = db.search(tiny_queries, k=5)
        _, ref_ids = db.index.search(tiny_queries, k=5, nprobe=4)
        np.testing.assert_array_equal(result.ids, ref_ids)
        assert backend.shm_base_rehomes == 2  # exactly the compaction
        assert not backend.fallback_active
    finally:
        db.close()
