"""Integration tests: whole-system behaviours from the paper.

These exercise the full stack (data -> index -> planner -> engine ->
reports) and assert the *qualitative* results of the evaluation
section at a miniature scale.
"""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.network import CommMode, NetworkModel
from repro.core.config import HarmonyConfig, Mode
from repro.core.database import HarmonyDB
from repro.data.ground_truth import exact_knn
from repro.data.synthetic import gaussian_blobs
from repro.bench.recall import recall_at_k
from repro.workload.generators import skewed_workload


@pytest.fixture(scope="module")
def data():
    return gaussian_blobs(2000, 64, n_blobs=16, cluster_std=0.5, seed=2)


@pytest.fixture(scope="module")
def queries():
    return gaussian_blobs(2100, 64, n_blobs=16, cluster_std=0.5, seed=2)[2000:]


def build(data, queries, mode, **overrides):
    config = HarmonyConfig(
        n_machines=4, nlist=16, nprobe=4, mode=mode, seed=0, **overrides
    )
    db = HarmonyDB(dim=64, config=config, cluster=Cluster(4))
    db.build(data, sample_queries=queries)
    return db


class TestExactnessAcrossTheBoard:
    def test_all_modes_all_flags_identical_results(self, data, queries):
        from repro.index.ivf import IVFFlatIndex

        ref = IVFFlatIndex(dim=64, nlist=16, seed=0)
        ref.train(data)
        ref.add(data)
        _, ref_ids = ref.search(queries, k=10, nprobe=4)
        for mode in (Mode.HARMONY, Mode.VECTOR, Mode.DIMENSION):
            for flags in (
                {},
                {"enable_pruning": False},
                {"enable_pipeline": False},
                {"enable_load_balance": False},
                {"prewarm_size": 0},
            ):
                db = build(data, queries, mode, **flags)
                result, _ = db.search(queries, k=10)
                np.testing.assert_array_equal(
                    result.ids, ref_ids, err_msg=f"{mode} {flags}"
                )

    def test_recall_against_ground_truth(self, data, queries):
        _, gt = exact_knn(data, queries, k=10)
        db = build(data, queries, Mode.HARMONY)
        result, _ = db.search(queries, k=10)
        assert recall_at_k(result.ids, gt) > 0.7


class TestPaperShapes:
    def test_distributed_beats_single_node(self, data, queries):
        """Fig 6 shape: 4-node deployments beat the 1-node baseline."""
        from repro.bench.harness import run_faiss_baseline, make_setup
        from repro.bench.harness import BenchSetup
        from repro.data.datasets import DatasetSpec, Dataset

        db = build(data, queries, Mode.HARMONY)
        _, report = db.search(queries, k=10)

        from repro.index.faiss_like import FaissLikeIVF
        from repro.bench.harness import simulated_faiss_seconds

        baseline = FaissLikeIVF(dim=64, nlist=16, seed=0)
        baseline.train(data)
        baseline.add(data)
        baseline.search(queries, k=10, nprobe=4)
        faiss_seconds = simulated_faiss_seconds(baseline)
        speedup = faiss_seconds / report.simulated_seconds
        assert speedup > 2.0

    def test_vector_degrades_under_skew_harmony_does_not(self, data, queries):
        """Fig 7 shape: skew raises vector-partition imbalance and
        Harmony out-throughputs vector under a skewed workload."""
        from repro.core.partition import build_plan
        from repro.index.ivf import IVFFlatIndex

        probe_index = IVFFlatIndex(dim=64, nlist=16, seed=0)
        probe_index.train(data)
        probe_index.add(data)
        ref_plan = build_plan(probe_index, 4, 4, 1)
        # Target the shard that is already the naturally hottest so the
        # injected skew compounds rather than rebalances.
        sizes = probe_index.list_sizes().astype(float)
        from repro.workload.skew import cluster_histogram

        hist = cluster_histogram(probe_index, queries, nprobe=4)
        shard_mass = np.array(
            [
                (sizes * hist)[ref_plan.lists_of_shard(s)].sum()
                for s in range(4)
            ]
        )
        hot = ref_plan.lists_of_shard(int(np.argmax(shard_mass)))

        def run(mode, skew):
            workload = skewed_workload(
                queries,
                probe_index,
                80,
                skew=skew,
                nprobe=4,
                hot_list_ids=hot,
                seed=3,
            )
            db = build(data, workload.queries, mode)
            _, report = db.search(workload.queries, k=10)
            return report

        vec_balanced = run(Mode.VECTOR, 0.0)
        vec_skewed = run(Mode.VECTOR, 1.0)
        harmony_skewed = run(Mode.HARMONY, 1.0)
        assert (
            vec_skewed.normalized_imbalance
            > vec_balanced.normalized_imbalance
        )
        assert vec_skewed.qps < vec_balanced.qps
        assert harmony_skewed.qps > vec_skewed.qps * 1.2

    def test_vector_has_lowest_communication(self, data, queries):
        """Fig 2(b)/8 shape: vector partitioning communicates least."""
        comm = {}
        for mode in (Mode.VECTOR, Mode.DIMENSION):
            db = build(data, queries, mode)
            _, report = db.search(queries, k=10)
            comm[mode] = report.breakdown.communication
        assert comm[Mode.VECTOR] < comm[Mode.DIMENSION]

    def test_blocking_mode_slower(self, data, queries):
        """Fig 2(b): blocking communication hurts end-to-end time."""
        results = {}
        for mode in (CommMode.NONBLOCKING, CommMode.BLOCKING):
            config = HarmonyConfig(
                n_machines=4, nlist=16, nprobe=4, mode=Mode.DIMENSION, seed=0
            )
            cluster = Cluster(4, network=NetworkModel(mode=mode))
            db = HarmonyDB(dim=64, config=config, cluster=cluster)
            db.build(data, sample_queries=queries)
            _, report = db.search(queries, k=10)
            results[mode] = report.simulated_seconds
        assert results[CommMode.BLOCKING] > results[CommMode.NONBLOCKING]

    def test_ablation_flags_each_cost_throughput(self, data, queries):
        """Fig 9 shape: disabling any optimization reduces QPS."""
        def harmony_qps(**flags):
            db = build(data, queries, Mode.HARMONY, **flags)
            _, report = db.search(queries, k=10)
            return report.qps

        full = harmony_qps()
        assert harmony_qps(enable_pruning=False, prewarm_size=0) < full
        assert harmony_qps(enable_pipeline=False) < full

    def test_scalability_4_to_8_nodes(self):
        """Fig 11(b) shape: more nodes, more throughput.

        Needs enough per-query scan work that compute (not per-query
        client overhead) dominates, as at the paper's full scale.
        """
        data = gaussian_blobs(4000, 64, n_blobs=16, cluster_std=0.5, seed=2)
        queries = gaussian_blobs(
            4060, 64, n_blobs=16, cluster_std=0.5, seed=2
        )[4000:]

        def qps(n):
            config = HarmonyConfig(
                n_machines=n, nlist=16, nprobe=12, mode=Mode.HARMONY, seed=0
            )
            db = HarmonyDB(dim=64, config=config, cluster=Cluster(n))
            db.build(data, sample_queries=queries)
            _, report = db.search(queries, k=10)
            return report.qps

        assert qps(8) > qps(4)


class TestCosineEndToEnd:
    def test_cosine_matches_reference(self, data, queries):
        from repro.index.ivf import IVFFlatIndex

        ref = IVFFlatIndex(dim=64, nlist=16, metric="cosine", seed=0)
        ref.train(data)
        ref.add(data)
        _, ref_ids = ref.search(queries[:40], k=5, nprobe=4)
        db = HarmonyDB(
            dim=64,
            config=HarmonyConfig(
                n_machines=4,
                nlist=16,
                nprobe=4,
                metric="cosine",
                mode=Mode.DIMENSION,
                seed=0,
            ),
        )
        db.build(data, sample_queries=queries)
        result, _ = db.search(queries[:40], k=5)
        np.testing.assert_array_equal(result.ids, ref_ids)
