"""Unit tests for repro.data.datasets (the paper Table 2 registry)."""

import numpy as np
import pytest

from repro.data.datasets import (
    DATASET_REGISTRY,
    SMALL_DATASETS,
    available_datasets,
    load_dataset,
)


class TestRegistry:
    def test_ten_paper_datasets(self):
        assert len(available_datasets()) == 10

    def test_small_dataset_list(self):
        assert len(SMALL_DATASETS) == 8
        assert "sift1b" not in SMALL_DATASETS
        assert "spacev1b" not in SMALL_DATASETS

    def test_paper_dims_match_table2(self):
        expected = {
            "starlightcurves": 1024,
            "msong": 420,
            "sift1m": 128,
            "deep1m": 256,
            "word2vec": 300,
            "handoutlines": 2709,
            "glove1.2m": 200,
            "glove2.2m": 300,
            "spacev1b": 100,
            "sift1b": 128,
        }
        for name, dim in expected.items():
            assert DATASET_REGISTRY[name].paper_dim == dim

    def test_paper_sizes_match_table2(self):
        assert DATASET_REGISTRY["sift1m"].paper_size == 1_000_000
        assert DATASET_REGISTRY["sift1b"].paper_size == 1_000_000_000
        assert DATASET_REGISTRY["glove2.2m"].paper_size == 2_196_017

    def test_scaled_defaults_are_tractable(self):
        for spec in DATASET_REGISTRY.values():
            assert spec.default_size <= 50_000
            assert spec.default_query_size <= 500


class TestLoadDataset:
    def test_default_load(self):
        ds = load_dataset("sift1m", size=500, n_queries=20, seed=0)
        assert ds.base.shape == (500, 128)
        assert ds.queries.shape == (20, 128)
        assert ds.dim == 128
        assert ds.name == "sift1m"

    def test_name_normalization(self):
        ds = load_dataset("Sift1M", size=100, n_queries=5)
        assert ds.name == "sift1m"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("imagenet")

    def test_deterministic(self):
        a = load_dataset("deep1m", size=200, n_queries=10, seed=4)
        b = load_dataset("deep1m", size=200, n_queries=10, seed=4)
        np.testing.assert_array_equal(a.base, b.base)
        np.testing.assert_array_equal(a.queries, b.queries)

    def test_queries_not_duplicates_of_base(self):
        ds = load_dataset("sift1m", size=300, n_queries=20, seed=1)
        from repro.distance.kernels import pairwise_squared_l2

        nearest = pairwise_squared_l2(ds.queries, ds.base).min(axis=1)
        assert float(nearest.min()) > 0.0

    def test_queries_same_distribution(self):
        """Query norms should be statistically similar to base norms."""
        ds = load_dataset("glove1.2m", size=2000, n_queries=200, seed=2)
        base_med = float(np.median(np.linalg.norm(ds.base, axis=1)))
        query_med = float(np.median(np.linalg.norm(ds.queries, axis=1)))
        assert 0.5 < query_med / base_med < 2.0

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            load_dataset("sift1m", size=0)
        with pytest.raises(ValueError):
            load_dataset("sift1m", size=10, n_queries=0)

    @pytest.mark.parametrize("name", available_datasets())
    def test_every_dataset_loads(self, name):
        ds = load_dataset(name, size=100, n_queries=5, seed=0)
        assert ds.base.shape == (100, DATASET_REGISTRY[name].paper_dim)
        assert np.isfinite(ds.base).all()
        assert np.isfinite(ds.queries).all()
