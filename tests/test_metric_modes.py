"""End-to-end tests for inner-product and cosine metrics.

These exercise the Cauchy-Schwarz pruning bound (the non-monotone
metric path) through the whole stack: engine, modes, threaded
searcher, prewarm.
"""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.core.config import HarmonyConfig, Mode
from repro.core.database import HarmonyDB
from repro.core.parallel import ThreadedSearcher
from repro.data.synthetic import gaussian_blobs
from repro.index.ivf import IVFFlatIndex


@pytest.fixture(scope="module", params=["ip", "cosine"])
def metric(request):
    return request.param


@pytest.fixture(scope="module")
def data():
    # Shift off the origin so inner products are not centred on zero.
    base = gaussian_blobs(800, 24, n_blobs=6, cluster_std=0.5, seed=13)
    return (base + 0.5).astype(np.float32)


@pytest.fixture(scope="module")
def queries():
    q = gaussian_blobs(830, 24, n_blobs=6, cluster_std=0.5, seed=13)[800:]
    return (q + 0.5).astype(np.float32)


@pytest.fixture(scope="module")
def index(data, metric):
    ix = IVFFlatIndex(dim=24, nlist=8, metric=metric, seed=0)
    ix.train(data)
    ix.add(data)
    return ix


class TestNonL2EndToEnd:
    @pytest.mark.parametrize(
        "mode", [Mode.HARMONY, Mode.VECTOR, Mode.DIMENSION]
    )
    def test_engine_matches_reference(
        self, index, queries, metric, mode
    ):
        ref_d, ref_i = index.search(queries, k=5, nprobe=4)
        db = HarmonyDB.from_trained_index(
            index,
            config=HarmonyConfig(
                n_machines=4, nlist=8, nprobe=4, metric=metric, mode=mode
            ),
            cluster=Cluster(4),
            sample_queries=queries,
        )
        result, _ = db.search(queries, k=5)
        np.testing.assert_array_equal(result.ids, ref_i)
        np.testing.assert_allclose(result.distances, ref_d, rtol=1e-6)

    def test_cs_bound_pruning_actually_prunes(self, index, queries, metric):
        """The inner-product path must still achieve nonzero pruning."""
        db = HarmonyDB.from_trained_index(
            index,
            config=HarmonyConfig(
                n_machines=4,
                nlist=8,
                nprobe=4,
                metric=metric,
                mode=Mode.DIMENSION,
            ),
            cluster=Cluster(4),
            sample_queries=queries,
        )
        _, report = db.search(queries, k=5)
        assert report.pruning is not None
        # Pruning may be weak under the CS bound but never negative,
        # and the first slice never prunes.
        ratios = report.pruning.ratios()
        assert ratios[0] == 0.0
        assert np.all(ratios >= 0.0)

    def test_threaded_searcher_matches(self, index, queries):
        searcher = ThreadedSearcher(index, n_threads=4)
        result = searcher.search(queries, k=5, nprobe=4)
        _, ref_i = index.search(queries, k=5, nprobe=4)
        np.testing.assert_array_equal(result.ids, ref_i)

    def test_pruning_off_identical(self, index, queries, metric):
        db_on = HarmonyDB.from_trained_index(
            index,
            config=HarmonyConfig(
                n_machines=4, nlist=8, nprobe=4, metric=metric,
                mode=Mode.DIMENSION,
            ),
            cluster=Cluster(4),
            sample_queries=queries,
        )
        db_off = HarmonyDB.from_trained_index(
            index,
            config=HarmonyConfig(
                n_machines=4, nlist=8, nprobe=4, metric=metric,
                mode=Mode.DIMENSION, enable_pruning=False,
            ),
            cluster=Cluster(4),
            sample_queries=queries,
        )
        r_on, _ = db_on.search(queries, k=5)
        r_off, _ = db_off.search(queries, k=5)
        np.testing.assert_array_equal(r_on.ids, r_off.ids)


class TestMetricValidation:
    def test_from_trained_index_metric_mismatch(self, index):
        with pytest.raises(ValueError, match="metric"):
            HarmonyDB.from_trained_index(
                index,
                config=HarmonyConfig(n_machines=4, nlist=8, metric="l2"),
            )

    def test_from_trained_index_nlist_mismatch(self, index, metric):
        with pytest.raises(ValueError, match="nlist"):
            HarmonyDB.from_trained_index(
                index,
                config=HarmonyConfig(n_machines=4, nlist=32, metric=metric),
            )

    def test_from_trained_index_untrained(self, metric):
        with pytest.raises(RuntimeError, match="trained"):
            HarmonyDB.from_trained_index(
                IVFFlatIndex(dim=8, nlist=4, metric=metric)
            )
