"""Tests for distributed (data-parallel) k-means."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.data.synthetic import gaussian_blobs
from repro.index.distributed_kmeans import DistributedKMeans
from repro.index.kmeans import KMeans


@pytest.fixture(scope="module")
def data():
    return gaussian_blobs(1200, 16, n_blobs=8, cluster_std=0.3, seed=14)


class TestCorrectness:
    def test_output_shapes(self, data):
        result, report = DistributedKMeans(8, Cluster(4), seed=0).fit(data)
        assert result.centroids.shape == (8, 16)
        assert result.assignments.shape == (1200,)
        assert report.n_iterations >= 1

    def test_assignments_are_nearest_centroid(self, data):
        from repro.distance.kernels import pairwise_squared_l2

        result, _ = DistributedKMeans(8, Cluster(4), seed=0).fit(data)
        distances = pairwise_squared_l2(data, result.centroids)
        np.testing.assert_array_equal(
            result.assignments, np.argmin(distances, axis=1)
        )

    def test_quality_matches_single_node(self, data):
        """Data-parallel Lloyd is mathematically the same algorithm, so
        inertia must land in the same ballpark as the single-node fit."""
        single = KMeans(n_clusters=8, seed=0, max_train_points=10**9).fit(data)
        distributed, _ = DistributedKMeans(8, Cluster(4), seed=0).fit(data)
        assert distributed.inertia <= single.inertia * 1.25

    def test_deterministic(self, data):
        a, _ = DistributedKMeans(8, Cluster(4), seed=5).fit(data)
        b, _ = DistributedKMeans(8, Cluster(4), seed=5).fit(data)
        np.testing.assert_array_equal(a.centroids, b.centroids)

    def test_worker_count_does_not_change_result(self, data):
        """Partial-sum reduction is exact: the fitted model is identical
        whatever the worker count (up to fp summation order)."""
        two, _ = DistributedKMeans(8, Cluster(2), seed=0).fit(data)
        eight, _ = DistributedKMeans(8, Cluster(8), seed=0).fit(data)
        np.testing.assert_allclose(
            two.centroids, eight.centroids, rtol=1e-4, atol=1e-5
        )

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError, match="cannot fit"):
            DistributedKMeans(10, Cluster(2)).fit(np.ones((5, 4)))

    def test_invalid_clusters(self):
        with pytest.raises(ValueError):
            DistributedKMeans(0, Cluster(2))


class TestScaling:
    def test_more_workers_train_faster(self, data):
        _, two = DistributedKMeans(8, Cluster(2), seed=0).fit(data)
        _, eight = DistributedKMeans(8, Cluster(8), seed=0).fit(data)
        assert eight.simulated_seconds < two.simulated_seconds

    def test_communication_accounted(self, data):
        cluster = Cluster(4)
        _, report = DistributedKMeans(8, cluster, seed=0).fit(data)
        assert report.broadcast_bytes > 0
        assert report.reduce_bytes > 0
        assert cluster.breakdown().communication > 0

    def test_broadcast_scales_with_workers_and_iterations(self, data):
        _, report = DistributedKMeans(8, Cluster(4), seed=0).fit(data)
        per_round = 4  # workers
        assert (
            report.broadcast_bytes
            >= report.n_iterations * per_round * 8 * 16 * 4
        )
