"""Tests for index / deployment persistence (save & load)."""

import numpy as np
import pytest

from repro.core.config import HarmonyConfig, Mode
from repro.core.database import HarmonyDB
from repro.index.ivf import IVFFlatIndex


class TestIndexPersistence:
    def test_round_trip_results_identical(
        self, trained_index, tiny_queries, tmp_path
    ):
        path = tmp_path / "index.npz"
        trained_index.save(path)
        loaded = IVFFlatIndex.load(path)
        d1, i1 = trained_index.search(tiny_queries, k=5, nprobe=4)
        d2, i2 = loaded.search(tiny_queries, k=5, nprobe=4)
        np.testing.assert_array_equal(i1, i2)
        np.testing.assert_allclose(d1, d2)

    def test_round_trip_preserves_structure(self, trained_index, tmp_path):
        path = tmp_path / "index.npz"
        trained_index.save(path)
        loaded = IVFFlatIndex.load(path)
        assert loaded.dim == trained_index.dim
        assert loaded.nlist == trained_index.nlist
        assert loaded.ntotal == trained_index.ntotal
        np.testing.assert_array_equal(
            loaded.centroids, trained_index.centroids
        )
        for list_id in range(trained_index.nlist):
            np.testing.assert_array_equal(
                loaded.list_members(list_id),
                trained_index.list_members(list_id),
            )

    def test_round_trip_preserves_deletes(
        self, tiny_data, tiny_queries, tmp_path
    ):
        index = IVFFlatIndex(dim=32, nlist=16, seed=0)
        index.train(tiny_data)
        index.add(tiny_data)
        index.remove_ids(np.arange(25))
        path = tmp_path / "index.npz"
        index.save(path)
        loaded = IVFFlatIndex.load(path)
        assert loaded.nlive == index.nlive
        _, i1 = index.search(tiny_queries, k=5, nprobe=16)
        _, i2 = loaded.search(tiny_queries, k=5, nprobe=16)
        np.testing.assert_array_equal(i1, i2)

    def test_round_trip_build_stats(self, trained_index, tmp_path):
        path = tmp_path / "index.npz"
        trained_index.save(path)
        loaded = IVFFlatIndex.load(path)
        assert (
            loaded.build_stats().train_elements
            == trained_index.build_stats().train_elements
        )

    def test_save_untrained_raises(self, tmp_path):
        with pytest.raises(RuntimeError, match="untrained"):
            IVFFlatIndex(dim=8, nlist=4).save(tmp_path / "x.npz")


class TestDatabasePersistence:
    @pytest.fixture()
    def db(self, tiny_data, tiny_queries):
        db = HarmonyDB(
            dim=32,
            config=HarmonyConfig(
                n_machines=4, nlist=16, nprobe=4, mode=Mode.HARMONY
            ),
        )
        db.build(tiny_data, sample_queries=tiny_queries)
        return db

    def test_round_trip_results_identical(self, db, tiny_queries, tmp_path):
        path = tmp_path / "db.npz"
        db.save(path)
        loaded = HarmonyDB.load(path)
        r1, _ = db.search(tiny_queries, k=5)
        r2, _ = loaded.search(tiny_queries, k=5)
        np.testing.assert_array_equal(r1.ids, r2.ids)
        np.testing.assert_allclose(r1.distances, r2.distances)

    def test_round_trip_preserves_plan(self, db, tmp_path):
        path = tmp_path / "db.npz"
        db.save(path)
        loaded = HarmonyDB.load(path)
        assert loaded.plan.describe() == db.plan.describe()
        np.testing.assert_array_equal(
            loaded.plan.shard_of_list, db.plan.shard_of_list
        )
        np.testing.assert_array_equal(
            loaded.plan.placement, db.plan.placement
        )

    def test_round_trip_preserves_config(self, db, tmp_path):
        path = tmp_path / "db.npz"
        db.save(path)
        loaded = HarmonyDB.load(path)
        assert loaded.config.nprobe == db.config.nprobe
        assert loaded.config.mode is db.config.mode
        assert loaded.config.metric is db.config.metric

    def test_loaded_db_supports_mutations(self, db, tiny_queries, tmp_path):
        path = tmp_path / "db.npz"
        db.save(path)
        loaded = HarmonyDB.load(path)
        loaded.remove(np.arange(5))
        result, _ = loaded.search(tiny_queries, k=5)
        _, ref_ids = loaded.index.search(tiny_queries, k=5, nprobe=4)
        np.testing.assert_array_equal(result.ids, ref_ids)

    def test_save_unbuilt_raises(self, tmp_path):
        with pytest.raises(RuntimeError, match="build"):
            HarmonyDB(dim=8).save(tmp_path / "db.npz")

    def test_load_onto_custom_cluster(self, db, tiny_queries, tmp_path):
        from repro.cluster.cluster import Cluster

        path = tmp_path / "db.npz"
        db.save(path)
        loaded = HarmonyDB.load(path, cluster=Cluster(8))
        r, _ = loaded.search(tiny_queries, k=5)
        assert r.ids.shape == (len(tiny_queries), 5)
