"""Unit tests for repro.cluster.messages."""

import pytest

from repro.cluster.messages import (
    FLOAT_BYTES,
    MESSAGE_HEADER_BYTES,
    PARTIAL_ENTRY_BYTES,
    RESULT_ENTRY_BYTES,
    PartialResult,
    QueryChunk,
    ResultSet,
    partial_result_bytes,
    query_chunk_bytes,
    result_set_bytes,
)


class TestSizeHelpers:
    def test_query_chunk_bytes(self):
        assert query_chunk_bytes(32) == MESSAGE_HEADER_BYTES + 32 * FLOAT_BYTES

    def test_partial_result_bytes(self):
        assert (
            partial_result_bytes(100)
            == MESSAGE_HEADER_BYTES + 100 * PARTIAL_ENTRY_BYTES
        )

    def test_result_set_bytes(self):
        assert result_set_bytes(10) == MESSAGE_HEADER_BYTES + 10 * RESULT_ENTRY_BYTES

    def test_zero_payload_still_has_header(self):
        assert query_chunk_bytes(0) == MESSAGE_HEADER_BYTES
        assert partial_result_bytes(0) == MESSAGE_HEADER_BYTES
        assert result_set_bytes(0) == MESSAGE_HEADER_BYTES

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            query_chunk_bytes(-1)
        with pytest.raises(ValueError):
            partial_result_bytes(-1)
        with pytest.raises(ValueError):
            result_set_bytes(-1)

    def test_partials_smaller_than_vectors(self):
        """Paper Section 1: intermediate results are much smaller than
        the vectors they describe for realistic dimensionalities."""
        dim = 128
        n = 1000
        assert partial_result_bytes(n) < n * dim * FLOAT_BYTES


class TestMessageDataclasses:
    def test_query_chunk_nbytes(self):
        chunk = QueryChunk(query_id=1, shard_id=0, slice_id=2, width=16)
        assert chunk.nbytes == query_chunk_bytes(16)

    def test_partial_result_nbytes(self):
        msg = PartialResult(query_id=1, shard_id=0, slice_id=2, n_survivors=7)
        assert msg.nbytes == partial_result_bytes(7)

    def test_result_set_nbytes(self):
        msg = ResultSet(query_id=3, k=10)
        assert msg.nbytes == result_set_bytes(10)
