"""Unit tests for repro.core.partition."""

import numpy as np
import pytest

from repro.core.partition import (
    PartitionPlan,
    assign_lists_balanced,
    assign_lists_contiguous,
    build_plan,
    grid_shapes,
    round_robin_placement,
)
from repro.distance.partial import DimensionSlices


class TestGridShapes:
    def test_four_machines(self):
        assert grid_shapes(4) == [(1, 4), (2, 2), (4, 1)]

    def test_six_machines(self):
        assert grid_shapes(6) == [(1, 6), (2, 3), (3, 2), (6, 1)]

    def test_prime_machines(self):
        assert grid_shapes(7) == [(1, 7), (7, 1)]

    def test_one_machine(self):
        assert grid_shapes(1) == [(1, 1)]

    def test_contains_extremes(self):
        for n in (2, 8, 12, 16):
            shapes = grid_shapes(n)
            assert (n, 1) in shapes
            assert (1, n) in shapes

    def test_products_equal_n(self):
        for b_vec, b_dim in grid_shapes(16):
            assert b_vec * b_dim == 16

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            grid_shapes(0)


class TestListAssignment:
    def test_balanced_covers_all_lists(self):
        weights = np.arange(20, dtype=np.float64)
        assignment = assign_lists_balanced(weights, 4)
        assert assignment.shape == (20,)
        assert set(np.unique(assignment)) <= set(range(4))

    def test_balanced_is_actually_balanced(self):
        rng = np.random.default_rng(0)
        weights = rng.uniform(1, 10, size=64)
        assignment = assign_lists_balanced(weights, 4)
        totals = np.array(
            [weights[assignment == s].sum() for s in range(4)]
        )
        assert totals.max() / totals.min() < 1.2

    def test_balanced_beats_contiguous_on_skewed_weights(self):
        weights = np.zeros(16)
        weights[:4] = 100.0  # first four lists are hot
        weights += 1.0
        balanced = assign_lists_balanced(weights, 4)
        contiguous = assign_lists_contiguous(16, 4)

        def spread(assign):
            totals = np.array(
                [weights[assign == s].sum() for s in range(4)]
            )
            return float(np.std(totals))

        assert spread(balanced) < spread(contiguous)

    def test_contiguous_layout(self):
        assignment = assign_lists_contiguous(8, 4)
        np.testing.assert_array_equal(assignment, [0, 0, 1, 1, 2, 2, 3, 3])

    def test_invalid_shards_raise(self):
        with pytest.raises(ValueError):
            assign_lists_balanced(np.ones(4), 0)
        with pytest.raises(ValueError):
            assign_lists_contiguous(4, 0)


class TestPlacement:
    def test_exact_grid_unique_machines(self):
        placement = round_robin_placement(2, 2, 4)
        assert placement.shape == (2, 2)
        assert set(placement.ravel()) == {0, 1, 2, 3}

    def test_wraparound(self):
        placement = round_robin_placement(3, 2, 4)
        assert placement.max() < 4

    def test_vector_grid(self):
        placement = round_robin_placement(4, 1, 4)
        np.testing.assert_array_equal(placement.ravel(), [0, 1, 2, 3])


class TestPartitionPlan:
    def test_kind_detection(self, trained_index):
        vector = build_plan(trained_index, 4, 4, 1)
        dimension = build_plan(trained_index, 4, 1, 4)
        hybrid = build_plan(trained_index, 4, 2, 2)
        assert vector.kind == "vector"
        assert dimension.kind == "dimension"
        assert hybrid.kind == "hybrid"

    def test_lists_of_shard_partition(self, trained_index):
        plan = build_plan(trained_index, 4, 4, 1)
        all_lists = np.concatenate(
            [plan.lists_of_shard(s) for s in range(4)]
        )
        np.testing.assert_array_equal(
            np.sort(all_lists), np.arange(trained_index.nlist)
        )

    def test_machine_of(self, trained_index):
        plan = build_plan(trained_index, 4, 2, 2)
        machines = {
            plan.machine_of(v, d) for v in range(2) for d in range(2)
        }
        assert machines == {0, 1, 2, 3}

    def test_describe_mentions_grid(self, trained_index):
        plan = build_plan(trained_index, 4, 2, 2)
        assert "2 vector shard(s)" in plan.describe()
        assert "hybrid" in plan.describe()

    def test_untrained_index_raises(self):
        from repro.index.ivf import IVFFlatIndex

        with pytest.raises(RuntimeError, match="untrained"):
            build_plan(IVFFlatIndex(dim=8, nlist=4), 4, 2, 2)

    def test_validation_slice_count(self, trained_index):
        with pytest.raises(ValueError, match="slices has"):
            PartitionPlan(
                n_machines=4,
                n_vector_shards=2,
                n_dim_blocks=2,
                slices=DimensionSlices.even(32, 4),
                shard_of_list=np.zeros(16, dtype=np.int64),
                placement=np.zeros((2, 2), dtype=np.int64),
            )

    def test_validation_placement_shape(self, trained_index):
        with pytest.raises(ValueError, match="placement shape"):
            PartitionPlan(
                n_machines=4,
                n_vector_shards=2,
                n_dim_blocks=2,
                slices=DimensionSlices.even(32, 2),
                shard_of_list=np.zeros(16, dtype=np.int64),
                placement=np.zeros((2, 3), dtype=np.int64),
            )

    def test_validation_out_of_range_machine(self, trained_index):
        with pytest.raises(ValueError, match="machine ids"):
            PartitionPlan(
                n_machines=2,
                n_vector_shards=2,
                n_dim_blocks=1,
                slices=DimensionSlices.even(32, 1),
                shard_of_list=np.zeros(16, dtype=np.int64),
                placement=np.array([[0], [5]]),
            )

    def test_build_plan_balanced_vs_contiguous(self, trained_index):
        balanced = build_plan(trained_index, 4, 4, 1, balanced=True)
        contiguous = build_plan(trained_index, 4, 4, 1, balanced=False)
        sizes = trained_index.list_sizes().astype(float)

        def spread(plan):
            return np.std(
                [sizes[plan.lists_of_shard(s)].sum() for s in range(4)]
            )

        assert spread(balanced) <= spread(contiguous) + 1e-9
