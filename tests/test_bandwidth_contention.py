"""Memory-bandwidth contention model (node roofline + sq8 advantage).

The simulated cluster optionally caps each node's memory bandwidth,
shared by that node's concurrent scans. Under the cap, full-width fp32
scans become bandwidth-bound: adding concurrent scans stretches every
scan ("more cores hurts"), while 1-byte SQ8 codes stream a quarter of
the bytes and stay compute-bound. With no cap configured (the default)
every timing is identical to the pre-existing compute-only model.
"""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.node import (
    DEFAULT_COMPUTE_RATE,
    DEFAULT_MEMORY_BANDWIDTH,
    WorkerNode,
)
from repro.core.config import HarmonyConfig
from repro.core.executor import SerialBackend, SimulatedBackend
from repro.index.ivf import IVFFlatIndex


def make_index(n=600, dim=32, nlist=8):
    rng = np.random.default_rng(0)
    base = rng.standard_normal((n, dim)).astype(np.float32)
    index = IVFFlatIndex(dim=dim, nlist=nlist, seed=0)
    index.train(base)
    index.add(base)
    return index


class TestNodeRoofline:
    def test_no_cap_is_pure_compute(self):
        node = WorkerNode(node_id=0, compute_rate=1e9)
        base = node.compute_duration(1e6)
        assert base == 1e6 / 1e9
        # bytes_touched is ignored without a bandwidth cap.
        assert node.compute_duration(1e6, bytes_touched=1e12) == base
        assert (
            node.compute_duration(1e6, bytes_touched=1e12, concurrency=16)
            == base
        )

    def test_cap_takes_the_max_of_compute_and_stream_time(self):
        node = WorkerNode(
            node_id=0, compute_rate=1e9, memory_bandwidth=2e9
        )
        # Compute-bound: few bytes per element.
        assert node.compute_duration(1e6, bytes_touched=1e6) == 1e6 / 1e9
        # Bandwidth-bound: 4 bytes per element wants 4e9 B/s > 2e9.
        assert node.compute_duration(1e6, bytes_touched=4e6) == 4e6 / 2e9
        # No bytes hint -> legacy compute-only duration.
        assert node.compute_duration(1e6) == 1e6 / 1e9

    def test_more_concurrency_hurts_bandwidth_bound_scans(self):
        """The contention paradox: concurrent scans share the cap, so
        each one slows down — more active cores, slower scans."""
        node = WorkerNode(
            node_id=0, compute_rate=1e9, memory_bandwidth=2e9
        )
        solo = node.compute_duration(1e6, bytes_touched=4e6, concurrency=1)
        crowded = node.compute_duration(
            1e6, bytes_touched=4e6, concurrency=8
        )
        assert crowded == pytest.approx(solo * 8)
        # Compute-bound work is immune to the contention.
        assert node.compute_duration(
            1e6, bytes_touched=1e5, concurrency=8
        ) == 1e6 / 1e9

    def test_sq8_streams_quarter_the_bytes(self):
        """At the default derated rates, fp32 full-width scans are
        bandwidth-bound while SQ8 codes stay compute-bound."""
        node = WorkerNode(
            node_id=0,
            compute_rate=DEFAULT_COMPUTE_RATE,
            memory_bandwidth=DEFAULT_MEMORY_BANDWIDTH,
        )
        elements = 1e6
        fp32 = node.compute_duration(elements, bytes_touched=elements * 4)
        sq8 = node.compute_duration(elements, bytes_touched=elements * 1)
        assert fp32 > elements / DEFAULT_COMPUTE_RATE  # bandwidth-bound
        assert sq8 == elements / DEFAULT_COMPUTE_RATE  # compute-bound
        assert fp32 > sq8

    def test_validation(self):
        with pytest.raises(ValueError, match="memory_bandwidth"):
            WorkerNode(node_id=0, memory_bandwidth=0.0)
        node = WorkerNode(node_id=0, memory_bandwidth=1e9)
        with pytest.raises(ValueError, match="bytes_touched"):
            node.compute_duration(10.0, bytes_touched=-1.0)
        with pytest.raises(ValueError, match="concurrency"):
            node.compute_duration(10.0, bytes_touched=1.0, concurrency=0)


class TestClusterPassthrough:
    def test_cluster_applies_cap_to_all_workers(self):
        cluster = Cluster(n_workers=3, memory_bandwidth=5e8)
        assert all(n.memory_bandwidth == 5e8 for n in cluster.workers)
        # The client keeps the uncapped compute-only model.
        assert cluster.client.memory_bandwidth is None

    def test_cluster_default_has_no_cap(self):
        cluster = Cluster(n_workers=2)
        assert all(n.memory_bandwidth is None for n in cluster.workers)

    def test_compute_charges_stretched_duration(self):
        cluster = Cluster(
            n_workers=1, compute_rate=1e9, memory_bandwidth=2e9
        )
        start, end = cluster.compute(
            0, 1e6, bytes_touched=4e6, concurrency=2
        )
        assert end - start == pytest.approx(2 * 4e6 / 2e9)

    def test_projected_seconds_sees_the_cap(self):
        cluster = Cluster(
            n_workers=1, compute_rate=1e9, memory_bandwidth=2e9
        )
        assert cluster.projected_compute_seconds(
            0, 1e6, bytes_touched=4e6
        ) == pytest.approx(4e6 / 2e9)
        assert cluster.projected_compute_seconds(0, 1e6) == pytest.approx(
            1e6 / 1e9
        )


class TestSimulatedContention:
    def run_sim(self, index, queries, scan_precision, memory_bandwidth):
        backend = SimulatedBackend(
            index,
            scan_precision=scan_precision,
            memory_bandwidth=memory_bandwidth,
        )
        result = backend.search(queries, k=5, nprobe=4)
        return result, backend.last_report

    def test_cap_slows_fp32_but_sq8_relieves_it(self):
        """Under a tight bandwidth cap the fp32 makespan inflates;
        sq8's 4x smaller scan representation wins it back — with
        byte-identical answers throughout."""
        index = make_index()
        rng = np.random.default_rng(1)
        queries = rng.standard_normal((24, index.dim)).astype(np.float32)
        reference = SerialBackend(index).search(queries, k=5, nprobe=4)

        tight = DEFAULT_COMPUTE_RATE / 4  # fp32 wants 4 B/elem/s
        _, fp32_free = self.run_sim(index, queries, "fp32", None)
        r_fp32, fp32_capped = self.run_sim(index, queries, "fp32", tight)
        r_sq8, sq8_capped = self.run_sim(index, queries, "sq8", tight)

        assert fp32_capped.simulated_seconds > fp32_free.simulated_seconds
        assert (
            sq8_capped.simulated_seconds < fp32_capped.simulated_seconds
        )
        # Default sim config uses adaptive slice ordering, so ids are
        # exact and distances match up to float associativity (the
        # bitwise contract under canonical ordering is pinned in
        # test_executor_equivalence.py).
        for result in (r_fp32, r_sq8):
            np.testing.assert_array_equal(result.ids, reference.ids)
            np.testing.assert_allclose(
                result.distances, reference.distances, rtol=1e-9, atol=1e-12
            )
        assert sq8_capped.rerank_candidates > 0
        assert sq8_capped.code_bytes > 0

    def test_uncapped_timings_unchanged(self):
        """memory_bandwidth=None must be timing-identical to the
        pre-existing compute-only model."""
        index = make_index()
        rng = np.random.default_rng(2)
        queries = rng.standard_normal((8, index.dim)).astype(np.float32)
        _, default_report = self.run_sim(index, queries, "fp32", None)
        backend = SimulatedBackend(index)
        backend.search(queries, k=5, nprobe=4)
        assert (
            default_report.simulated_seconds
            == backend.last_report.simulated_seconds
        )

    def test_config_validation(self):
        with pytest.raises(ValueError, match="memory_bandwidth"):
            HarmonyConfig(memory_bandwidth=-1.0)
        with pytest.raises(ValueError, match="scan_precision"):
            HarmonyConfig(scan_precision="int4")
