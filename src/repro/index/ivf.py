"""IVF-Flat inverted-file index.

The cluster-based index family the paper builds on (Sections 2.1, 6.1):
k-means partitions the base vectors into ``nlist`` inverted lists; a
query scans the ``nprobe`` lists whose centroids are nearest, computing
exact distances within them. All HARMONY variants share one trained
IVF structure — only the *placement* of its lists/dimensions differs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.distance.kernels import (
    pairwise_inner_product,
    pairwise_squared_l2,
    top_k_smallest,
)
from repro.distance.metrics import Metric, normalize_rows, resolve_metric
from repro.index.kmeans import KMeans
from repro.util.growable import GrowableArray

#: Process-wide source of index identities. Every constructed index —
#: including one rebuilt by ``load()`` — gets a fresh uid, so derived
#: caches (packed layouts, shm segments) can never alias across index
#: *objects* even when their ``(version, ntotal)`` counters collide
#: (e.g. a reloaded index whose version restarted at 0).
_UIDS = itertools.count(1)


class _InvertedLists:
    """Per-list id storage behind amortized-doubling growth buffers.

    Looks like the ``list[np.ndarray]`` it replaces — item access
    returns the live id view, item assignment adopts a fresh array
    (the persistence loaders do this), iteration yields views — while
    ``append`` extends a single list without copying the others.
    """

    __slots__ = ("_bufs",)

    def __init__(self, nlist: int) -> None:
        self._bufs = [
            GrowableArray(dtype=np.int64) for _ in range(nlist)
        ]

    def __len__(self) -> int:
        return len(self._bufs)

    def __getitem__(self, list_id: int) -> np.ndarray:
        return self._bufs[list_id].view

    def __setitem__(self, list_id: int, ids: np.ndarray) -> None:
        self._bufs[list_id] = GrowableArray.adopt(
            np.asarray(ids, dtype=np.int64)
        )

    def __iter__(self):
        return (buf.view for buf in self._bufs)

    def append(self, list_id: int, ids: np.ndarray) -> None:
        self._bufs[list_id].append(ids)

    @property
    def bytes_copied(self) -> int:
        return sum(buf.bytes_copied for buf in self._bufs)


@dataclass(frozen=True)
class IVFBuildStats:
    """Element counts from index construction, for simulated timing.

    Attributes:
        train_elements: multiply-accumulate count during k-means.
        add_elements: count during base-to-centroid assignment.
    """

    train_elements: int
    add_elements: int


class IVFFlatIndex:
    """Inverted-file index with exact in-list distances.

    Args:
        dim: vector dimensionality.
        nlist: number of inverted lists (k-means clusters).
        metric: ``"l2"``, ``"ip"`` or ``"cosine"``. Clustering always
            uses L2 geometry (as Faiss does); only candidate scoring
            changes with the metric.
        seed: RNG seed for training.
        max_iterations: k-means iteration cap.
    """

    def __init__(
        self,
        dim: int,
        nlist: int,
        metric: "Metric | str" = Metric.L2,
        seed: int = 0,
        max_iterations: int = 20,
    ) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if nlist <= 0:
            raise ValueError(f"nlist must be positive, got {nlist}")
        self.dim = dim
        self.nlist = nlist
        self.metric = resolve_metric(metric)
        self.seed = seed
        self.max_iterations = max_iterations
        self._centroids: np.ndarray | None = None
        self._base_buf = GrowableArray(row_shape=(dim,), dtype=np.float32)
        self._list_ids = _InvertedLists(nlist)
        self._deleted_buf = GrowableArray(dtype=bool)
        self._labels_buf = GrowableArray(dtype=np.int64)
        self._assign_buf = GrowableArray(dtype=np.int64)
        self._train_elements = 0
        self._add_elements = 0
        self._version = 0
        self._uid = next(_UIDS)

    @property
    def version(self) -> int:
        """Mutation counter: bumps on every add and effective delete.

        Derived caches (packed shard layouts, per-slice norm tables)
        compare this against their build-time value to detect
        staleness without content hashing.
        """
        return self._version

    @property
    def uid(self) -> int:
        """Process-unique index identity, fresh on every construction.

        A version counter alone cannot distinguish "this index
        mutated" from "a different index whose counter happens to
        match" — notably an index reloaded from disk restarts at
        version 0 with the same ntotal. Caches key on ``(uid,
        version)`` so a reloaded index can never alias a stale layout.
        """
        return self._uid

    # Storage properties: the private names predate the growth
    # buffers, and the persistence loaders assign them wholesale, so
    # they stay as read/write views over the buffers.

    @property
    def _base(self) -> np.ndarray:
        return self._base_buf.view

    @_base.setter
    def _base(self, array: np.ndarray) -> None:
        self._base_buf = GrowableArray.adopt(
            np.asarray(array, dtype=np.float32)
        )

    @property
    def _deleted(self) -> np.ndarray:
        return self._deleted_buf.view

    @_deleted.setter
    def _deleted(self, array: np.ndarray) -> None:
        self._deleted_buf = GrowableArray.adopt(np.asarray(array, dtype=bool))

    @property
    def _labels(self) -> np.ndarray:
        return self._labels_buf.view

    @_labels.setter
    def _labels(self, array: np.ndarray) -> None:
        self._labels_buf = GrowableArray.adopt(
            np.asarray(array, dtype=np.int64)
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @property
    def is_trained(self) -> bool:
        return self._centroids is not None

    @property
    def ntotal(self) -> int:
        return self._base.shape[0]

    @property
    def centroids(self) -> np.ndarray:
        if self._centroids is None:
            raise RuntimeError("index is not trained")
        return self._centroids

    @property
    def base(self) -> np.ndarray:
        """Full base matrix in insertion order."""
        return self._base

    def train(self, data: np.ndarray) -> None:
        """Learn the ``nlist`` centroids from ``data`` (k-means)."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float32))
        if data.shape[1] != self.dim:
            raise ValueError(
                f"expected dim {self.dim}, got training data of dim {data.shape[1]}"
            )
        if self.metric is Metric.COSINE:
            data = normalize_rows(data)
        kmeans = KMeans(
            n_clusters=self.nlist,
            max_iterations=self.max_iterations,
            seed=self.seed,
        )
        result = kmeans.fit(data)
        self._centroids = result.centroids
        self._train_elements = result.elements_processed

    def add(
        self, vectors: np.ndarray, labels: np.ndarray | None = None
    ) -> None:
        """Assign ``vectors`` to their nearest centroid's inverted list.

        Args:
            vectors: ``(n, dim)`` batch to index.
            labels: optional per-vector int64 metadata label (e.g. a
                tenant, category, or shard key) usable as a search
                filter; defaults to 0.
        """
        if not self.is_trained:
            raise RuntimeError("train() must be called before add()")
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if vectors.shape[1] != self.dim:
            raise ValueError(
                f"expected dim {self.dim}, got vectors of dim {vectors.shape[1]}"
            )
        if labels is None:
            labels = np.zeros(vectors.shape[0], dtype=np.int64)
        else:
            labels = np.atleast_1d(np.asarray(labels, dtype=np.int64))
            if labels.shape != (vectors.shape[0],):
                raise ValueError(
                    f"need one label per vector, got {labels.shape} for "
                    f"{vectors.shape[0]} vectors"
                )
        if self.metric is Metric.COSINE:
            vectors = normalize_rows(vectors)
        first_id = self.ntotal
        distances = pairwise_squared_l2(vectors, self._centroids)
        self._add_elements += vectors.shape[0] * self.nlist * self.dim
        assignment = np.argmin(distances, axis=1).astype(np.int64)
        self._assignments()  # materialize before ntotal moves
        self._base_buf.append(vectors)
        self._deleted_buf.append(np.zeros(vectors.shape[0], dtype=bool))
        self._labels_buf.append(labels)
        self._assign_buf.append(assignment)
        ids = np.arange(first_id, first_id + vectors.shape[0], dtype=np.int64)
        # Only the lists that actually received rows are touched;
        # each append is amortized O(batch), not O(list length).
        for list_id in np.unique(assignment):
            self._list_ids.append(int(list_id), ids[assignment == list_id])
        self._version += 1

    def build_stats(self) -> IVFBuildStats:
        """Element counts accumulated so far by train/add."""
        return IVFBuildStats(
            train_elements=self._train_elements,
            add_elements=self._add_elements,
        )

    # ------------------------------------------------------------------
    # Deletion (tombstones)
    # ------------------------------------------------------------------

    @property
    def nlive(self) -> int:
        """Vectors that are stored and not deleted."""
        return int(self.ntotal - self._deleted.sum())

    def remove_ids(self, ids: np.ndarray) -> int:
        """Tombstone the given vector ids.

        Deleted vectors stay in storage (ids are never reused) but are
        excluded from every list/candidate accessor, so they can never
        appear in search results on any engine.

        Returns:
            Number of vectors newly deleted (already-deleted ids are
            counted zero; duplicates are fine).

        Raises:
            IndexError: for ids outside ``[0, ntotal)``.
        """
        ids = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        if ids.size == 0:
            return 0
        if ids.min() < 0 or ids.max() >= self.ntotal:
            raise IndexError(
                f"ids must be in [0, {self.ntotal}), got range "
                f"[{ids.min()}, {ids.max()}]"
            )
        before = int(self._deleted.sum())
        self._deleted[ids] = True
        removed = int(self._deleted.sum()) - before
        if removed:
            self._version += 1
        return removed

    def is_deleted(self, ids: np.ndarray) -> np.ndarray:
        """Boolean deletion flags for the given ids.

        Raises:
            IndexError: for ids outside ``[0, ntotal)`` — like
                :meth:`remove_ids`, instead of letting negative ids
                silently wrap to valid rows.
        """
        return self._deleted[self._validate_ids(ids)]

    @property
    def deleted_mask(self) -> np.ndarray:
        """Tombstone flags for every stored id (read-only view)."""
        return self._deleted

    def _validate_ids(self, ids: np.ndarray) -> np.ndarray:
        ids = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        if ids.size and (ids.min() < 0 or ids.max() >= self.ntotal):
            raise IndexError(
                f"ids must be in [0, {self.ntotal}), got range "
                f"[{ids.min()}, {ids.max()}]"
            )
        return ids

    # ------------------------------------------------------------------
    # Metadata labels / filtering
    # ------------------------------------------------------------------

    def labels_of(self, ids: np.ndarray) -> np.ndarray:
        """Metadata labels of the given ids.

        Raises:
            IndexError: for ids outside ``[0, ntotal)``.
        """
        return self._labels[self._validate_ids(ids)]

    def allowed_mask(
        self, filter_labels: "np.ndarray | list[int] | tuple[int, ...] | None"
    ) -> np.ndarray | None:
        """Per-id admissibility mask for a label filter.

        Returns None when ``filter_labels`` is None (no filtering);
        otherwise a boolean array over all ids, True where the vector's
        label is in the filter set.
        """
        if filter_labels is None:
            return None
        wanted = np.atleast_1d(np.asarray(filter_labels, dtype=np.int64))
        if wanted.size == 0:
            raise ValueError("filter_labels must be non-empty when given")
        return np.isin(self._labels, wanted)

    # ------------------------------------------------------------------
    # Introspection used by the distributed engines
    # ------------------------------------------------------------------

    def _assignments(self) -> np.ndarray:
        """Per-row inverted-list assignment, shape ``(ntotal,)``.

        Maintained incrementally by :meth:`add`; rebuilt from the
        inverted lists when a persistence loader assigned storage
        wholesale (the buffer length then lags ``ntotal``).
        """
        if len(self._assign_buf) != self.ntotal:
            assignment = np.full(self.ntotal, -1, dtype=np.int64)
            for list_id, ids in enumerate(self._list_ids):
                assignment[ids] = list_id
            self._assign_buf = GrowableArray.adopt(assignment)
        return self._assign_buf.view

    def assignment_of(self, ids: np.ndarray) -> np.ndarray:
        """Inverted-list id of each given vector id.

        Incremental layout maintenance uses this to route appended
        rows to their vector shard without re-walking every list.
        """
        return self._assignments()[self._validate_ids(ids)]

    @property
    def mutation_bytes_copied(self) -> int:
        """Total bytes moved by storage reallocations since creation.

        Amortized-doubling growth keeps this linear in the rows ever
        added; the pre-fix ``vstack``-per-add path was quadratic. A
        regression test pins the bound.
        """
        return int(
            self._base_buf.bytes_copied
            + self._deleted_buf.bytes_copied
            + self._labels_buf.bytes_copied
            + self._assign_buf.bytes_copied
            + self._list_ids.bytes_copied
        )

    def list_members(self, list_id: int) -> np.ndarray:
        """Live (non-deleted) vector ids in inverted list ``list_id``."""
        if not 0 <= list_id < self.nlist:
            raise IndexError(f"list_id {list_id} out of range [0, {self.nlist})")
        ids = self._list_ids[list_id]
        if not self._deleted.any():
            return ids
        return ids[~self._deleted[ids]]

    def list_sizes(self) -> np.ndarray:
        """Live length of every inverted list, shape ``(nlist,)``."""
        if not self._deleted.any():
            return np.array(
                [ids.size for ids in self._list_ids], dtype=np.int64
            )
        return np.array(
            [self.list_members(l).size for l in range(self.nlist)],
            dtype=np.int64,
        )

    def probe(self, queries: np.ndarray, nprobe: int) -> np.ndarray:
        """The ``nprobe`` nearest-centroid list ids per query.

        Returns an ``(nq, nprobe)`` int array ordered by ascending
        centroid distance (ties broken by list id). This is the
        "identify cluster centroids" step of the paper's Figure 4.
        """
        if not self.is_trained:
            raise RuntimeError("index is not trained")
        if nprobe <= 0:
            raise ValueError(f"nprobe must be positive, got {nprobe}")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        if queries.shape[1] != self.dim:
            raise ValueError(
                f"expected dim {self.dim}, got queries of dim {queries.shape[1]}"
            )
        if self.metric is Metric.COSINE:
            queries = normalize_rows(queries)
        nprobe = min(nprobe, self.nlist)
        distances = pairwise_squared_l2(queries, self._centroids)
        out = np.empty((queries.shape[0], nprobe), dtype=np.int64)
        for i in range(queries.shape[0]):
            ids, _ = top_k_smallest(distances[i], nprobe)
            out[i] = ids
        return out

    def candidates(
        self,
        probe_lists: np.ndarray,
        allowed: np.ndarray | None = None,
    ) -> np.ndarray:
        """Union of live member ids of the probed lists, ascending.

        Args:
            probe_lists: inverted-list ids to gather from.
            allowed: optional per-id boolean mask (see
                :meth:`allowed_mask`); excluded ids are dropped.
        """
        parts = [self.list_members(int(lid)) for lid in probe_lists]
        if not parts:
            return np.empty(0, dtype=np.int64)
        ids = np.sort(np.concatenate(parts))
        if allowed is not None:
            ids = ids[allowed[ids]]
        return ids

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int = 1,
        filter_labels: "np.ndarray | list[int] | None" = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Single-node IVF search.

        Scans the ``nprobe`` nearest lists exhaustively and returns the
        top ``k`` candidates per query, optionally restricted to
        vectors whose metadata label is in ``filter_labels``.

        Returns:
            ``(distances, ids)`` of shape ``(nq, k)``; rows are padded
            with ``(inf, -1)`` when fewer than ``k`` candidates exist.
            Distance convention matches :class:`FlatIndex` (L2 squared
            ascending; negated similarity for IP/cosine).
        """
        if self.ntotal == 0:
            raise RuntimeError("search on empty index")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        if self.metric is Metric.COSINE:
            queries = normalize_rows(queries)
        allowed = self.allowed_mask(filter_labels)
        probes = self.probe(queries, nprobe)
        nq = queries.shape[0]
        out_dist = np.full((nq, k), np.inf, dtype=np.float64)
        out_ids = np.full((nq, k), -1, dtype=np.int64)
        for i in range(nq):
            cand = self.candidates(probes[i], allowed=allowed)
            if cand.size == 0:
                continue
            block = self._base[cand]
            if self.metric is Metric.L2:
                scores = pairwise_squared_l2(queries[i : i + 1], block)[0]
            else:
                scores = -pairwise_inner_product(queries[i : i + 1], block)[0]
            take = min(k, cand.size)
            # Tie-break on global id for determinism across engines.
            order = np.lexsort((cand, scores))[:take]
            out_ids[i, :take] = cand[order]
            out_dist[i, :take] = scores[order]
        return out_dist, out_ids

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: "str | object") -> None:
        """Serialize the index to a ``.npz`` file.

        Stores base vectors, centroids, per-vector list assignment,
        tombstones and metadata; :meth:`load` reconstructs an index
        that returns byte-identical search results.
        """
        if not self.is_trained:
            raise RuntimeError("cannot save an untrained index")
        assignment = self._assignments()
        meta = np.array(
            [self.dim, self.nlist, self.seed, self.max_iterations,
             self._train_elements, self._add_elements],
            dtype=np.int64,
        )
        np.savez_compressed(
            path,
            base=self._base,
            centroids=self._centroids,
            assignment=assignment,
            deleted=self._deleted,
            labels=self._labels,
            meta=meta,
            metric=np.array(self.metric.value),
        )

    @classmethod
    def load(cls, path: "str | object") -> "IVFFlatIndex":
        """Reconstruct an index saved with :meth:`save`."""
        with np.load(path, allow_pickle=False) as data:
            meta = data["meta"]
            index = cls(
                dim=int(meta[0]),
                nlist=int(meta[1]),
                metric=str(data["metric"]),
                seed=int(meta[2]),
                max_iterations=int(meta[3]),
            )
            index._train_elements = int(meta[4])
            index._add_elements = int(meta[5])
            index._centroids = data["centroids"]
            index._base = data["base"]
            index._deleted = data["deleted"]
            index._labels = data["labels"]
            assignment = data["assignment"]
        for list_id in range(index.nlist):
            # Ids within a list are ascending == insertion order.
            index._list_ids[list_id] = np.flatnonzero(
                assignment == list_id
            ).astype(np.int64)
        return index

    def reconstruct(self, ids: np.ndarray) -> np.ndarray:
        """Stored vectors for the given ids (cosine returns normalized
        rows, matching what distances were computed against).

        Tombstoned ids reconstruct too — deletion hides vectors from
        search, it does not reclaim their storage.
        """
        ids = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        if ids.size and (ids.min() < 0 or ids.max() >= self.ntotal):
            raise IndexError(f"ids must be in [0, {self.ntotal})")
        return self._base[ids].copy()

    def range_search(
        self,
        queries: np.ndarray,
        radius: float,
        nprobe: int = 1,
        filter_labels: "np.ndarray | list[int] | None" = None,
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """All candidates within a score radius, per query.

        Scores follow the library convention (squared L2, or negated
        similarity), so ``radius`` is a squared-L2 distance for L2 and
        ``-min_similarity`` for IP/cosine. Like :meth:`search`, only
        the ``nprobe`` nearest lists are scanned — standard IVF range
        semantics.

        Returns:
            One ``(ids, scores)`` pair per query, ids ascending.
        """
        if self.ntotal == 0:
            raise RuntimeError("range_search on empty index")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        if self.metric is Metric.COSINE:
            queries = normalize_rows(queries)
        allowed = self.allowed_mask(filter_labels)
        probes = self.probe(queries, nprobe)
        out: list[tuple[np.ndarray, np.ndarray]] = []
        for i in range(queries.shape[0]):
            cand = self.candidates(probes[i], allowed=allowed)
            if cand.size == 0:
                out.append(
                    (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
                )
                continue
            block = self._base[cand]
            if self.metric is Metric.L2:
                scores = pairwise_squared_l2(queries[i : i + 1], block)[0]
            else:
                scores = -pairwise_inner_product(queries[i : i + 1], block)[0]
            keep = scores <= radius
            out.append((cand[keep], scores[keep]))
        return out

    def memory_report(self) -> dict[str, int]:
        """Byte counts of the index components (paper Table 4 substrate)."""
        if self._centroids is None:
            centroid_bytes = 0
        else:
            centroid_bytes = int(self._centroids.nbytes)
        id_bytes = int(sum(ids.nbytes for ids in self._list_ids))
        # nbytes of the logical views, so the report tracks stored
        # rows, not growth-buffer capacity slack.
        return {
            "base_vectors": int(self._base.nbytes),
            "centroids": centroid_bytes,
            "inverted_list_ids": id_bytes,
            "total": int(self._base.nbytes) + centroid_bytes + id_bytes,
        }
