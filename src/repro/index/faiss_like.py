"""Single-node baseline engine ("Faiss" in the paper's evaluation).

The paper compares HARMONY against Faiss IVF-Flat running on one node
(Section 6.1). :class:`FaissLikeIVF` wraps :class:`IVFFlatIndex` with
per-query operation counting so the benchmark harness can charge the
same simulated compute rate to the baseline as to HARMONY's workers,
making throughput ratios meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distance.metrics import Metric
from repro.index.ivf import IVFFlatIndex


@dataclass(frozen=True)
class SearchCost:
    """Work performed by one search call, in simulator units.

    Attributes:
        centroid_elements: elements processed while ranking centroids.
        scan_elements: elements processed scanning inverted lists.
        candidates: total candidate vectors scored.
    """

    centroid_elements: int
    scan_elements: int
    candidates: int

    @property
    def total_elements(self) -> int:
        return self.centroid_elements + self.scan_elements


class FaissLikeIVF:
    """Single-node IVF-Flat engine with cost accounting.

    Mirrors the Faiss usage in the paper: ``train`` -> ``add`` ->
    ``search(k, nprobe)``. The underlying index object is shared with
    the distributed engines so that every strategy searches exactly the
    same clustering.
    """

    def __init__(
        self,
        dim: int,
        nlist: int,
        metric: "Metric | str" = Metric.L2,
        seed: int = 0,
    ) -> None:
        self.index = IVFFlatIndex(dim=dim, nlist=nlist, metric=metric, seed=seed)
        self._last_cost: SearchCost | None = None

    @property
    def dim(self) -> int:
        return self.index.dim

    @property
    def nlist(self) -> int:
        return self.index.nlist

    @property
    def ntotal(self) -> int:
        return self.index.ntotal

    def train(self, data: np.ndarray) -> None:
        self.index.train(data)

    def add(self, vectors: np.ndarray) -> None:
        self.index.add(vectors)

    def search(
        self, queries: np.ndarray, k: int, nprobe: int = 1
    ) -> tuple[np.ndarray, np.ndarray]:
        """IVF search that also records a :class:`SearchCost`."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        probes = self.index.probe(queries, nprobe)
        candidates = int(
            sum(self.index.candidates(probes[i]).size for i in range(len(probes)))
        )
        dim = self.index.dim
        self._last_cost = SearchCost(
            centroid_elements=queries.shape[0] * self.index.nlist * dim,
            scan_elements=candidates * dim,
            candidates=candidates,
        )
        return self.index.search(queries, k=k, nprobe=nprobe)

    @property
    def last_search_cost(self) -> SearchCost:
        """Cost of the most recent :meth:`search` call."""
        if self._last_cost is None:
            raise RuntimeError("no search has been performed yet")
        return self._last_cost

    def memory_report(self) -> dict[str, int]:
        return self.index.memory_report()
