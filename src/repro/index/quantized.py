"""Scalar-quantized (SQ8) IVF index: the lossy alternative HARMONY avoids.

Paper Section 2.1: "Since full-dimensionality is necessary to compute
vector distances accurately, reducing storage costs without resorting
to lossy compression techniques such as quantization remains a
challenge. As a result, attention is shifting towards distributed
vector ANNS schemes."

This index is that road not taken: per-dimension 8-bit scalar
quantization shrinks the stored vectors 4x — the same per-node saving a
4-way HARMONY deployment gets — but pays for it with approximate
distances and hence recall loss. `benchmarks/bench_quantization_
motivation.py` puts the two options side by side.
"""

from __future__ import annotations

import numpy as np

from repro.distance.kernels import top_k_smallest
from repro.distance.metrics import Metric, resolve_metric
from repro.index.ivf import IVFFlatIndex


class SQ8IVFIndex:
    """IVF with 8-bit scalar-quantized storage.

    Training learns both the k-means clustering (reusing
    :class:`IVFFlatIndex`) and per-dimension (min, max) ranges; stored
    vectors are uint8 codes ``round(255 * (x - min) / (max - min))``.
    Search scans probed lists over *decoded* vectors, so distances are
    approximate within quantization error.

    Args:
        dim / nlist / seed: as for :class:`IVFFlatIndex`.
        metric: only L2 is supported (quantization ranges are learned
            per dimension in the original space).
    """

    def __init__(
        self,
        dim: int,
        nlist: int,
        metric: "Metric | str" = Metric.L2,
        seed: int = 0,
    ) -> None:
        metric = resolve_metric(metric)
        if metric is not Metric.L2:
            raise ValueError("SQ8IVFIndex supports the L2 metric only")
        self._ivf = IVFFlatIndex(dim=dim, nlist=nlist, metric=metric, seed=seed)
        self._codes = np.empty((0, dim), dtype=np.uint8)
        self._lo: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        return self._ivf.dim

    @property
    def nlist(self) -> int:
        return self._ivf.nlist

    @property
    def ntotal(self) -> int:
        return self._codes.shape[0]

    @property
    def is_trained(self) -> bool:
        return self._ivf.is_trained and self._lo is not None

    def train(self, data: np.ndarray) -> None:
        """Learn the clustering and the per-dimension code ranges."""
        data = np.atleast_2d(np.asarray(data, dtype=np.float32))
        self._ivf.train(data)
        lo = data.min(axis=0).astype(np.float64)
        hi = data.max(axis=0).astype(np.float64)
        span = hi - lo
        self._lo = lo
        # Constant dimensions have zero span; clamp the *scale* (not
        # just the span) to a positive epsilon so encode's division is
        # finite and decode maps code 0 back to the constant exactly.
        self._scale = np.maximum(span / 255.0, 1e-12)

    def encode(self, vectors: np.ndarray) -> np.ndarray:
        """Quantize float vectors to uint8 codes (clipped to range)."""
        if self._lo is None or self._scale is None:
            raise RuntimeError("train() must be called before encoding")
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        codes = np.rint((vectors - self._lo) / self._scale)
        return np.clip(codes, 0, 255).astype(np.uint8)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate float vectors from codes."""
        if self._lo is None or self._scale is None:
            raise RuntimeError("train() must be called before decoding")
        return (
            np.atleast_2d(codes).astype(np.float64) * self._scale + self._lo
        ).astype(np.float32)

    def add(self, vectors: np.ndarray) -> None:
        """Quantize and index a batch of vectors."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        # The IVF keeps list membership (and the paper-faithful probe
        # behaviour); we replace its storage role with uint8 codes.
        self._ivf.add(vectors)
        self._codes = np.vstack([self._codes, self.encode(vectors)])

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(
        self, queries: np.ndarray, k: int, nprobe: int = 1
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate IVF search over decoded (lossy) vectors."""
        if self.ntotal == 0:
            raise RuntimeError("search on empty index")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        probes = self._ivf.probe(queries, nprobe)
        nq = queries.shape[0]
        out_dist = np.full((nq, k), np.inf, dtype=np.float64)
        out_ids = np.full((nq, k), -1, dtype=np.int64)
        for i in range(nq):
            cand = self._ivf.candidates(probes[i])
            if cand.size == 0:
                continue
            decoded = self.decode(self._codes[cand])
            diff = decoded.astype(np.float64) - queries[i].astype(np.float64)
            scores = np.einsum("ij,ij->i", diff, diff)
            take = min(k, cand.size)
            order, _ = top_k_smallest(scores, take)
            out_ids[i, :take] = cand[order]
            out_dist[i, :take] = scores[order]
        return out_dist, out_ids

    def memory_report(self) -> dict[str, int]:
        """Bytes held: uint8 codes + centroids + list ids + ranges.

        The full-precision base kept inside the inner IVF exists only
        as training scaffolding here and is excluded — a production
        SQ8 index stores codes only.
        """
        inner = self._ivf.memory_report()
        range_bytes = 0
        if self._lo is not None:
            range_bytes = int(self._lo.nbytes + self._scale.nbytes)
        return {
            "codes": int(self._codes.nbytes),
            "centroids": inner["centroids"],
            "inverted_list_ids": inner["inverted_list_ids"],
            "quantization_ranges": range_bytes,
            "total": int(self._codes.nbytes)
            + inner["centroids"]
            + inner["inverted_list_ids"]
            + range_bytes,
        }
