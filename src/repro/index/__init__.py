"""Indexing substrate: k-means clustering and cluster-based (IVF) indexes.

HARMONY is evaluated against Faiss IVF-Flat and all of its distributed
variants share Faiss's clustering (paper Section 6.1). This package
provides that substrate from scratch:

- :class:`~repro.index.kmeans.KMeans`: k-means++ initialization + Lloyd
  iterations with empty-cluster repair,
- :class:`~repro.index.flat.FlatIndex`: exact brute-force search (used
  for ground truth and recall measurement),
- :class:`~repro.index.ivf.IVFFlatIndex`: inverted-file index over the
  k-means centroids,
- :class:`~repro.index.faiss_like.FaissLikeIVF`: the single-node
  baseline engine with operation counting for simulated timing.
"""

from repro.index.flat import FlatIndex
from repro.index.faiss_like import FaissLikeIVF
from repro.index.hnsw import HNSWIndex, SearchTrace
from repro.index.ivf import IVFFlatIndex
from repro.index.kmeans import KMeans, KMeansResult
from repro.index.quantized import SQ8IVFIndex

__all__ = [
    "FaissLikeIVF",
    "FlatIndex",
    "HNSWIndex",
    "IVFFlatIndex",
    "KMeans",
    "KMeansResult",
    "SQ8IVFIndex",
    "SearchTrace",
]
