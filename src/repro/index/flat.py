"""Exact brute-force index.

Used for ground-truth nearest neighbours (recall measurement) and as the
exhaustive-search degenerate case of the IVF index.
"""

from __future__ import annotations

import numpy as np

from repro.distance.kernels import (
    pairwise_inner_product,
    pairwise_squared_l2,
    top_k_smallest,
)
from repro.distance.metrics import Metric, normalize_rows, resolve_metric


class FlatIndex:
    """Exact k-NN over an in-memory matrix of base vectors.

    Args:
        dim: vector dimensionality.
        metric: one of ``"l2"``, ``"ip"``, ``"cosine"``.
    """

    def __init__(self, dim: int, metric: "Metric | str" = Metric.L2) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self.metric = resolve_metric(metric)
        self._base = np.empty((0, dim), dtype=np.float32)

    @property
    def ntotal(self) -> int:
        """Number of indexed vectors."""
        return self._base.shape[0]

    @property
    def base(self) -> np.ndarray:
        """The stored base matrix (cosine metric stores normalized rows)."""
        return self._base

    def add(self, vectors: np.ndarray) -> None:
        """Append ``(n, dim)`` vectors to the index."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if vectors.shape[1] != self.dim:
            raise ValueError(
                f"expected dim {self.dim}, got vectors of dim {vectors.shape[1]}"
            )
        if self.metric is Metric.COSINE:
            vectors = normalize_rows(vectors)
        self._base = np.vstack([self._base, vectors])

    def search(
        self, queries: np.ndarray, k: int, chunk_size: int = 4096
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact top-``k`` search.

        Args:
            queries: ``(nq, dim)`` query matrix (or a single vector).
            k: neighbours per query.
            chunk_size: base rows scanned per block, bounding peak memory.

        Returns:
            ``(distances, ids)`` arrays of shape ``(nq, k)``. For L2 the
            distances are squared-L2 ascending; for IP/cosine they are
            *negated* similarities ascending (so smaller is always
            better), matching the convention used across the library.
        """
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        if self.ntotal == 0:
            raise RuntimeError("search on empty index")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if self.metric is Metric.COSINE:
            queries = normalize_rows(queries)
        k = min(k, self.ntotal)
        nq = queries.shape[0]
        out_dist = np.empty((nq, k), dtype=np.float64)
        out_ids = np.empty((nq, k), dtype=np.int64)
        scores = np.empty((nq, self.ntotal), dtype=np.float64)
        for start in range(0, self.ntotal, chunk_size):
            stop = min(start + chunk_size, self.ntotal)
            block = self._base[start:stop]
            if self.metric is Metric.L2:
                scores[:, start:stop] = pairwise_squared_l2(queries, block)
            else:
                scores[:, start:stop] = -pairwise_inner_product(queries, block)
        for i in range(nq):
            ids, dist = top_k_smallest(scores[i], k)
            out_ids[i] = ids
            out_dist[i] = dist
        return out_dist, out_ids

    def memory_bytes(self) -> int:
        """Bytes held by the base matrix."""
        return int(self._base.nbytes)
