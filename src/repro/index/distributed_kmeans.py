"""Distributed (data-parallel) k-means on the simulated cluster.

The paper builds its index on one node (Figure 10's Train/Add stages
are identical across strategies). At billion scale, training itself
wants distribution; this module provides the standard data-parallel
Lloyd formulation as an extension:

- base rows are range-partitioned across the workers;
- each iteration broadcasts the centroids, computes local assignments
  and per-cluster partial sums on every worker in parallel, and
  reduces the partials on the client;
- the client updates centroids (with the same empty-cluster repair as
  the single-node trainer) and checks convergence.

Computation and communication are charged to the simulated cluster, so
build-time scaling can be measured the same way query time is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import CLIENT_NODE, Cluster
from repro.cluster.messages import MESSAGE_HEADER_BYTES
from repro.distance.kernels import pairwise_squared_l2
from repro.index.kmeans import KMeansResult


@dataclass(frozen=True)
class DistributedTrainReport:
    """Timing of a distributed k-means fit.

    Attributes:
        simulated_seconds: makespan of the whole fit.
        n_iterations: Lloyd iterations run.
        broadcast_bytes: centroid bytes shipped over all iterations.
        reduce_bytes: partial-sum bytes shipped over all iterations.
    """

    simulated_seconds: float
    n_iterations: int
    broadcast_bytes: int
    reduce_bytes: int


class DistributedKMeans:
    """Data-parallel Lloyd's algorithm.

    Args:
        n_clusters: centroid count.
        cluster: simulated cluster to run on.
        max_iterations / tolerance / seed: as for
            :class:`repro.index.kmeans.KMeans`.
    """

    def __init__(
        self,
        n_clusters: int,
        cluster: Cluster,
        max_iterations: int = 20,
        tolerance: float = 1e-4,
        seed: int = 0,
    ) -> None:
        if n_clusters <= 0:
            raise ValueError(f"n_clusters must be positive, got {n_clusters}")
        self.n_clusters = n_clusters
        self.cluster = cluster
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.seed = seed

    def fit(
        self, data: np.ndarray
    ) -> tuple[KMeansResult, DistributedTrainReport]:
        """Cluster ``data``; returns the result plus simulated timing."""
        data = np.ascontiguousarray(np.asarray(data, dtype=np.float32))
        n, dim = data.shape
        if n < self.n_clusters:
            raise ValueError(
                f"cannot fit {self.n_clusters} clusters to {n} points"
            )
        cluster = self.cluster
        cluster.reset_time()
        rng = np.random.default_rng(self.seed)
        workers = cluster.n_workers
        bounds = np.linspace(0, n, workers + 1).astype(int)
        row_ranges = [
            (int(bounds[w]), int(bounds[w + 1])) for w in range(workers)
        ]

        k = self.n_clusters
        centroid_bytes = k * dim * 4 + MESSAGE_HEADER_BYTES
        partial_bytes = k * dim * 8 + k * 8 + MESSAGE_HEADER_BYTES
        broadcast_total = 0
        reduce_total = 0

        # k-means++ seeding on the client (it holds the raw data before
        # distribution anyway); charged at the client's rate.
        centroids = self._init_plus_plus(data, rng)
        cluster.compute(CLIENT_NODE, k * n * dim)

        inertia = math.inf
        iterations = 0
        elements = k * n * dim  # seeding work
        for iterations in range(1, self.max_iterations + 1):
            # Broadcast centroids; every worker computes local partials.
            reduce_ready = 0.0
            sums = np.zeros((k, dim), dtype=np.float64)
            counts = np.zeros(k, dtype=np.float64)
            new_inertia = 0.0
            for w, (lo, hi) in enumerate(row_ranges):
                rows = hi - lo
                if rows == 0:
                    continue
                arrival = cluster.transfer(
                    CLIENT_NODE, w, centroid_bytes
                )
                broadcast_total += centroid_bytes
                _, end = cluster.compute(
                    w, rows * k * dim, earliest=arrival
                )
                elements += rows * k * dim
                local = data[lo:hi]
                distances = pairwise_squared_l2(local, centroids)
                labels = np.argmin(distances, axis=1)
                new_inertia += float(
                    distances[np.arange(rows), labels].sum()
                )
                np.add.at(sums, labels, local.astype(np.float64))
                counts += np.bincount(labels, minlength=k)
                reduce_ready = max(
                    reduce_ready,
                    cluster.transfer(w, CLIENT_NODE, partial_bytes,
                                     earliest=end),
                )
                reduce_total += partial_bytes
            # Client reduces and updates centroids.
            cluster.overhead(
                CLIENT_NODE, k * dim * 1e-9, earliest=reduce_ready
            )
            centroids = self._update(data, centroids, sums, counts, rng)
            converged = math.isfinite(inertia) and (
                inertia - new_inertia <= self.tolerance * inertia
            )
            inertia = new_inertia
            if converged:
                break

        # Final full assignment (the Add stage reuses this), parallel.
        assignments = np.empty(n, dtype=np.int64)
        for w, (lo, hi) in enumerate(row_ranges):
            rows = hi - lo
            if rows == 0:
                continue
            cluster.compute(w, rows * k * dim)
            elements += rows * k * dim
            distances = pairwise_squared_l2(data[lo:hi], centroids)
            assignments[lo:hi] = np.argmin(distances, axis=1)
        inertia = float(
            pairwise_squared_l2(data, centroids)[
                np.arange(n), assignments
            ].sum()
        )

        result = KMeansResult(
            centroids=centroids.astype(np.float32),
            assignments=assignments,
            inertia=inertia,
            n_iterations=iterations,
            elements_processed=elements,
        )
        report = DistributedTrainReport(
            simulated_seconds=cluster.makespan(),
            n_iterations=iterations,
            broadcast_bytes=broadcast_total,
            reduce_bytes=reduce_total,
        )
        return result, report

    def _init_plus_plus(
        self, data: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n, dim = data.shape
        centroids = np.empty((self.n_clusters, dim), dtype=np.float64)
        centroids[0] = data[int(rng.integers(n))]
        closest = pairwise_squared_l2(data, centroids[0:1])[:, 0]
        for i in range(1, self.n_clusters):
            total = float(closest.sum())
            if total <= 0.0:
                pick = int(rng.integers(n))
            else:
                pick = int(rng.choice(n, p=closest / total))
            centroids[i] = data[pick]
            np.minimum(
                closest,
                pairwise_squared_l2(data, centroids[i : i + 1])[:, 0],
                out=closest,
            )
        return centroids

    def _update(
        self,
        data: np.ndarray,
        previous: np.ndarray,
        sums: np.ndarray,
        counts: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Mean update with farthest-point empty-cluster repair."""
        centroids = previous.copy()
        nonempty = counts > 0
        centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
        empty = np.flatnonzero(~nonempty)
        if empty.size:
            residual = pairwise_squared_l2(data, centroids).min(axis=1)
            worst = np.argsort(-residual)
            for rank, cid in enumerate(empty):
                centroids[cid] = data[worst[rank % data.shape[0]]]
        return centroids
