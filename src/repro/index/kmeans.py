"""k-means clustering (k-means++ initialization, Lloyd iterations).

This is the "Train" stage of IVF index construction (paper Figure 10).
The implementation counts the floating-point elements it processes so
that build-time benchmarks can charge deterministic simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.distance.kernels import pairwise_squared_l2


@dataclass
class KMeansResult:
    """Outcome of a k-means fit.

    Attributes:
        centroids: ``(k, d)`` float32 cluster centers.
        assignments: per-point cluster id, ``(n,)`` int64.
        inertia: final sum of squared distances to assigned centroids.
        n_iterations: Lloyd iterations actually run.
        elements_processed: count of (point x centroid x dim) products
            evaluated during training; drives simulated build time.
    """

    centroids: np.ndarray
    assignments: np.ndarray
    inertia: float
    n_iterations: int
    elements_processed: int


@dataclass
class KMeans:
    """Lloyd's k-means with k-means++ seeding.

    Attributes:
        n_clusters: number of centroids ``k``.
        max_iterations: Lloyd iteration cap.
        tolerance: relative inertia improvement below which we stop.
        seed: RNG seed; fits are fully deterministic for a given seed.
        max_train_points: training subsample cap, mirroring Faiss's
            default behaviour of training on a bounded sample.
    """

    n_clusters: int
    max_iterations: int = 20
    tolerance: float = 1e-4
    seed: int = 0
    max_train_points: int = 65536
    _elements: int = field(default=0, init=False, repr=False)

    def fit(self, data: np.ndarray) -> KMeansResult:
        """Cluster ``data`` and return centroids plus assignments.

        Args:
            data: ``(n, d)`` array with ``n >= n_clusters``.

        Raises:
            ValueError: when there are fewer points than clusters.
        """
        data = np.ascontiguousarray(np.asarray(data, dtype=np.float32))
        n, dim = data.shape
        if n < self.n_clusters:
            raise ValueError(
                f"cannot fit {self.n_clusters} clusters to {n} points"
            )
        rng = np.random.default_rng(self.seed)
        self._elements = 0

        train = data
        if n > self.max_train_points:
            subset = rng.choice(n, size=self.max_train_points, replace=False)
            train = data[subset]

        centroids = self._init_plus_plus(train, rng)
        inertia = np.inf
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            distances = pairwise_squared_l2(train, centroids)
            self._elements += train.shape[0] * self.n_clusters * dim
            labels = np.argmin(distances, axis=1)
            new_inertia = float(distances[np.arange(train.shape[0]), labels].sum())
            centroids = self._recompute_centroids(train, labels, centroids, rng)
            converged = np.isfinite(inertia) and (
                inertia - new_inertia <= self.tolerance * inertia
            )
            inertia = new_inertia
            if converged:
                break

        # Final assignment over the full dataset (the "Add" path reuses
        # this result when training ran on the full data).
        full_distances = pairwise_squared_l2(data, centroids)
        self._elements += n * self.n_clusters * dim
        assignments = np.argmin(full_distances, axis=1).astype(np.int64)
        inertia = float(
            full_distances[np.arange(n), assignments].sum()
        )
        return KMeansResult(
            centroids=centroids.astype(np.float32),
            assignments=assignments,
            inertia=inertia,
            n_iterations=iterations,
            elements_processed=self._elements,
        )

    def _init_plus_plus(
        self, data: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """k-means++ seeding: spread initial centroids by D^2 sampling."""
        n, dim = data.shape
        centroids = np.empty((self.n_clusters, dim), dtype=np.float64)
        first = int(rng.integers(n))
        centroids[0] = data[first]
        closest = pairwise_squared_l2(data, centroids[0:1])[:, 0]
        self._elements += n * dim
        for i in range(1, self.n_clusters):
            total = float(closest.sum())
            if total <= 0.0:
                # All remaining points coincide with chosen centroids;
                # fall back to uniform sampling.
                pick = int(rng.integers(n))
            else:
                pick = int(rng.choice(n, p=closest / total))
            centroids[i] = data[pick]
            new_dist = pairwise_squared_l2(data, centroids[i : i + 1])[:, 0]
            self._elements += n * dim
            np.minimum(closest, new_dist, out=closest)
        return centroids

    def _recompute_centroids(
        self,
        data: np.ndarray,
        labels: np.ndarray,
        previous: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Mean update with empty-cluster repair.

        An empty cluster is re-seeded at the point currently farthest
        from its assigned centroid, the standard Faiss-style repair.
        """
        k, dim = previous.shape
        sums = np.zeros((k, dim), dtype=np.float64)
        counts = np.bincount(labels, minlength=k).astype(np.float64)
        np.add.at(sums, labels, data.astype(np.float64))
        centroids = previous.copy()
        nonempty = counts > 0
        centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
        empty = np.flatnonzero(~nonempty)
        if empty.size:
            residual = pairwise_squared_l2(data, centroids)
            self._elements += data.shape[0] * k * dim
            worst = np.argsort(
                -residual[np.arange(data.shape[0]), labels]
            )
            for rank, cluster in enumerate(empty):
                centroids[cluster] = data[worst[rank % data.shape[0]]]
        return centroids
