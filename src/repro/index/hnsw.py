"""HNSW graph index (Malkov & Yashunin, TPAMI'20), from scratch.

The paper's related work divides ANN indexes into partition-based
(HARMONY's substrate) and graph-based families, and motivates the
partition choice with a distribution argument: "the popular graph-based
segmentation ... is not well compatible with distributed features, as
query paths for vectors tend to introduce edges across machines,
resulting in high latency" (Section 1). This module provides the graph
family so that claim can be *measured*: searches can return their full
hop trace, which `repro.baselines.distributed_graph` replays against a
machine partition to count cross-machine traversals.

The implementation is a compact, standard HNSW: geometric level
assignment, greedy descent through upper layers, beam (ef) search on
the base layer, and simple closest-first neighbour selection.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.distance.kernels import pairwise_squared_l2
from repro.distance.metrics import Metric, normalize_rows, resolve_metric


@dataclass(frozen=True)
class SearchTrace:
    """Hop-level record of one HNSW search.

    Attributes:
        visited: node ids in first-visit order (all layers).
        edges: traversed graph edges ``(u, v)`` in traversal order —
            every neighbour expansion, which is what a distributed
            deployment would turn into messages when ``u`` and ``v``
            live on different machines.
    """

    visited: tuple[int, ...]
    edges: tuple[tuple[int, int], ...]


class HNSWIndex:
    """Hierarchical Navigable Small World graph.

    Args:
        dim: vector dimensionality.
        m: max neighbours per node on upper layers (layer 0 keeps 2M).
        ef_construction: beam width while inserting.
        metric: ``l2``, ``ip`` or ``cosine``.
        seed: RNG seed for level assignment.
    """

    def __init__(
        self,
        dim: int,
        m: int = 16,
        ef_construction: int = 100,
        metric: "Metric | str" = Metric.L2,
        seed: int = 0,
    ) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if m <= 1:
            raise ValueError(f"m must be > 1, got {m}")
        if ef_construction < m:
            raise ValueError("ef_construction must be >= m")
        self.dim = dim
        self.m = m
        self.ef_construction = ef_construction
        self.metric = resolve_metric(metric)
        self._rng = np.random.default_rng(seed)
        self._level_mult = 1.0 / math.log(m)
        self._base = np.empty((0, dim), dtype=np.float32)
        self._levels: list[int] = []
        # adjacency[level][node] -> list of neighbour ids
        self._adjacency: list[dict[int, list[int]]] = []
        self._entry_point: int | None = None

    # ------------------------------------------------------------------
    # Basics
    # ------------------------------------------------------------------

    @property
    def ntotal(self) -> int:
        return self._base.shape[0]

    @property
    def max_level(self) -> int:
        return len(self._adjacency) - 1

    @property
    def base(self) -> np.ndarray:
        return self._base

    def neighbors(self, node: int, level: int = 0) -> list[int]:
        """Neighbour ids of ``node`` at ``level``."""
        if not 0 <= level < len(self._adjacency):
            raise IndexError(f"level {level} out of range")
        return list(self._adjacency[level].get(node, ()))

    def _score(self, query: np.ndarray, ids: np.ndarray) -> np.ndarray:
        """Smaller-is-better scores of ``ids`` against ``query``."""
        rows = self._base[ids]
        if self.metric is Metric.L2:
            return pairwise_squared_l2(query[None, :], rows)[0]
        return -(rows.astype(np.float64) @ query.astype(np.float64))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add(self, vectors: np.ndarray) -> None:
        """Insert vectors one by one (standard HNSW construction)."""
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if vectors.shape[1] != self.dim:
            raise ValueError(
                f"expected dim {self.dim}, got vectors of dim {vectors.shape[1]}"
            )
        if self.metric is Metric.COSINE:
            vectors = normalize_rows(vectors)
        for row in vectors:
            self._insert(row)

    def _insert(self, vector: np.ndarray) -> None:
        node = self.ntotal
        self._base = np.vstack([self._base, vector[None, :]])
        level = int(-math.log(self._rng.random() + 1e-300) * self._level_mult)
        self._levels.append(level)
        while len(self._adjacency) <= level:
            self._adjacency.append({})
        for lvl in range(level + 1):
            self._adjacency[lvl].setdefault(node, [])

        if self._entry_point is None:
            self._entry_point = node
            return

        entry = self._entry_point
        # Greedy descent through layers above the node's level.
        for lvl in range(self.max_level, level, -1):
            entry = self._greedy_step(vector, entry, lvl)
        # Beam search + connect on the node's layers.
        for lvl in range(min(level, self.max_level), -1, -1):
            candidates = self._search_layer(
                vector, [entry], lvl, self.ef_construction
            )
            max_degree = self.m if lvl > 0 else 2 * self.m
            chosen = [nid for _, nid in candidates[: self.m]]
            self._adjacency[lvl][node] = list(chosen)
            for neighbour in chosen:
                links = self._adjacency[lvl].setdefault(neighbour, [])
                links.append(node)
                if len(links) > max_degree:
                    scores = self._score(
                        self._base[neighbour], np.asarray(links)
                    )
                    keep = np.argsort(scores, kind="stable")[:max_degree]
                    self._adjacency[lvl][neighbour] = [
                        links[i] for i in keep
                    ]
            entry = candidates[0][1]

        if self._levels[node] > self._levels[self._entry_point]:
            self._entry_point = node

    def _greedy_step(
        self, query: np.ndarray, entry: int, level: int
    ) -> int:
        """Greedy walk at one layer until no neighbour improves."""
        current = entry
        current_score = float(self._score(query, np.asarray([current]))[0])
        improved = True
        while improved:
            improved = False
            links = self._adjacency[level].get(current, [])
            if links:
                scores = self._score(query, np.asarray(links))
                best = int(np.argmin(scores))
                if scores[best] < current_score:
                    current = links[best]
                    current_score = float(scores[best])
                    improved = True
        return current

    def _search_layer(
        self,
        query: np.ndarray,
        entries: list[int],
        level: int,
        ef: int,
        trace_visited: list[int] | None = None,
        trace_edges: list[tuple[int, int]] | None = None,
    ) -> list[tuple[float, int]]:
        """Beam search at one layer; returns (score, id) ascending."""
        visited = set(entries)
        entry_scores = self._score(query, np.asarray(entries))
        candidates = [
            (float(s), int(n)) for s, n in zip(entry_scores, entries)
        ]
        heapq.heapify(candidates)
        # Max-heap of the ef best (store negated scores).
        best = [(-s, n) for s, n in candidates]
        heapq.heapify(best)
        if trace_visited is not None:
            trace_visited.extend(entries)

        while candidates:
            score, node = heapq.heappop(candidates)
            if best and score > -best[0][0] and len(best) >= ef:
                break
            links = [
                n for n in self._adjacency[level].get(node, []) if n not in visited
            ]
            if trace_edges is not None:
                trace_edges.extend(
                    (node, n) for n in self._adjacency[level].get(node, [])
                )
            if not links:
                continue
            visited.update(links)
            if trace_visited is not None:
                trace_visited.extend(links)
            scores = self._score(query, np.asarray(links))
            for s, n in zip(scores, links):
                s = float(s)
                if len(best) < ef or s < -best[0][0]:
                    heapq.heappush(candidates, (s, int(n)))
                    heapq.heappush(best, (-s, int(n)))
                    if len(best) > ef:
                        heapq.heappop(best)
        return sorted((-s, n) for s, n in best)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------

    def search(
        self, queries: np.ndarray, k: int, ef_search: int = 64
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` search; returns ``(distances, ids)`` like the IVF."""
        results = self._search_impl(queries, k, ef_search, want_trace=False)
        return results[0], results[1]

    def search_with_trace(
        self, query: np.ndarray, k: int, ef_search: int = 64
    ) -> tuple[np.ndarray, np.ndarray, SearchTrace]:
        """Single-query search returning the full hop trace."""
        dist, ids, traces = self._search_impl(
            query, k, ef_search, want_trace=True
        )
        return dist[0], ids[0], traces[0]

    def _search_impl(
        self, queries: np.ndarray, k: int, ef_search: int, want_trace: bool
    ):
        if self._entry_point is None:
            raise RuntimeError("search on empty index")
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if ef_search < k:
            raise ValueError("ef_search must be >= k")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        if self.metric is Metric.COSINE:
            queries = normalize_rows(queries)
        nq = queries.shape[0]
        out_dist = np.full((nq, k), np.inf, dtype=np.float64)
        out_ids = np.full((nq, k), -1, dtype=np.int64)
        traces: list[SearchTrace] = []
        for i in range(nq):
            visited: list[int] | None = [] if want_trace else None
            edges: list[tuple[int, int]] | None = [] if want_trace else None
            entry = self._entry_point
            if visited is not None:
                visited.append(entry)
            for lvl in range(self.max_level, 0, -1):
                previous = entry
                entry = self._greedy_step(queries[i], entry, lvl)
                if edges is not None and entry != previous:
                    edges.append((previous, entry))
                if visited is not None and entry != previous:
                    visited.append(entry)
            found = self._search_layer(
                queries[i], [entry], 0, ef_search,
                trace_visited=visited, trace_edges=edges,
            )
            take = min(k, len(found))
            for rank in range(take):
                out_dist[i, rank] = found[rank][0]
                out_ids[i, rank] = found[rank][1]
            if want_trace:
                assert visited is not None and edges is not None
                seen: set[int] = set()
                ordered = [
                    v for v in visited if not (v in seen or seen.add(v))
                ]
                traces.append(
                    SearchTrace(visited=tuple(ordered), edges=tuple(edges))
                )
        if want_trace:
            return out_dist, out_ids, traces
        return out_dist, out_ids

    def memory_report(self) -> dict[str, int]:
        """Byte counts: vectors plus adjacency lists."""
        adjacency_bytes = sum(
            8 * len(links)
            for layer in self._adjacency
            for links in layer.values()
        )
        return {
            "base_vectors": int(self._base.nbytes),
            "adjacency": adjacency_bytes,
            "total": int(self._base.nbytes) + adjacency_bytes,
        }
