"""HARMONY reproduction: a scalable distributed vector database.

Python reproduction of "HARMONY: A Scalable Distributed Vector Database
for High-Throughput Approximate Nearest Neighbor Search" (SIGMOD 2025).

Quickstart::

    import numpy as np
    from repro import HarmonyConfig, HarmonyDB

    rng = np.random.default_rng(0)
    base = rng.standard_normal((10_000, 128)).astype(np.float32)
    queries = rng.standard_normal((100, 128)).astype(np.float32)

    db = HarmonyDB(dim=128, config=HarmonyConfig(n_machines=4))
    db.build(base, sample_queries=queries)
    result, report = db.search(queries, k=10)
    print(result.ids[0], report.qps, report.plan_summary)

Architecture (bottom-up):

- :mod:`repro.distance` — metrics, batch kernels, partial distances.
- :mod:`repro.index` — k-means, IVF-Flat, the Faiss-like baseline.
- :mod:`repro.cluster` — discrete-event cluster simulator.
- :mod:`repro.data` / :mod:`repro.workload` — dataset analogues and
  (skewed) query workloads.
- :mod:`repro.core` — partition plans, cost model, planner, pipelined
  pruning engine, and the :class:`HarmonyDB` facade.
- :mod:`repro.cache` — the result cache (:class:`ResultCache`): exact
  byte-identical and opt-in semantic (ε-ball) hits for repeated,
  skewed serving traffic.
- :mod:`repro.serve` — the coalescing online-serving front end
  (:class:`HarmonyServer`) and its open-loop load harness.
- :mod:`repro.baselines` — the Auncel-like comparator.
- :mod:`repro.bench` — benchmark harness utilities.
"""

from repro.cache import CacheHit, CacheStats, ResultCache
from repro.cluster.faults import (
    FaultEvent,
    FaultSchedule,
    WorkerUnavailableError,
)
from repro.cluster.recovery import RecoveryManager, ReplicaDirectory
from repro.core.config import HarmonyConfig, Mode
from repro.core.database import HarmonyDB
from repro.core.executor import (
    Backend,
    ScanKernel,
    SerialBackend,
    SimulatedBackend,
    ThreadBackend,
)
from repro.core.parallel import ThreadedSearcher
from repro.core.results import (
    BuildReport,
    DegradedReport,
    ExecutionReport,
    FaultStats,
    SearchResult,
)
from repro.distance.metrics import Metric
from repro.serve import HarmonyServer, ServeResponse
from repro.validation import ExactnessReport, check_exactness

__version__ = "1.0.0"

__all__ = [
    "Backend",
    "BuildReport",
    "CacheHit",
    "CacheStats",
    "DegradedReport",
    "ExactnessReport",
    "ExecutionReport",
    "FaultEvent",
    "FaultSchedule",
    "FaultStats",
    "HarmonyConfig",
    "HarmonyDB",
    "HarmonyServer",
    "Metric",
    "Mode",
    "RecoveryManager",
    "ReplicaDirectory",
    "ResultCache",
    "ScanKernel",
    "SearchResult",
    "SerialBackend",
    "ServeResponse",
    "SimulatedBackend",
    "ThreadBackend",
    "ThreadedSearcher",
    "WorkerUnavailableError",
    "check_exactness",
    "__version__",
]
