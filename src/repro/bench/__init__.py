"""Benchmark harness: recall measurement, sweeps, and table formatting.

Shared plumbing for the scripts in ``benchmarks/`` that regenerate each
table and figure of the paper's evaluation (Section 6).
"""

from repro.bench.harness import (
    BenchSetup,
    make_setup,
    run_mode,
    simulated_faiss_seconds,
)
from repro.bench.recall import recall_at_k
from repro.bench.reporting import format_series, format_table
from repro.bench.timeline import render_timeline, utilization_grid
from repro.bench.tuning import TuneResult, tune_nprobe

__all__ = [
    "BenchSetup",
    "TuneResult",
    "format_series",
    "format_table",
    "make_setup",
    "recall_at_k",
    "render_timeline",
    "run_mode",
    "simulated_faiss_seconds",
    "tune_nprobe",
    "utilization_grid",
]
