"""Recall@K measurement."""

from __future__ import annotations

import numpy as np


def recall_at_k(found_ids: np.ndarray, true_ids: np.ndarray) -> float:
    """Mean fraction of true top-K neighbours retrieved per query.

    Args:
        found_ids: ``(nq, k)`` ids returned by the system under test
            (``-1`` padding is ignored).
        true_ids: ``(nq, k)`` exact ground-truth ids.
    """
    found_ids = np.atleast_2d(found_ids)
    true_ids = np.atleast_2d(true_ids)
    if found_ids.shape[0] != true_ids.shape[0]:
        raise ValueError(
            f"query counts differ: {found_ids.shape[0]} vs {true_ids.shape[0]}"
        )
    k = true_ids.shape[1]
    if k == 0:
        raise ValueError("ground truth has k=0 columns")
    hits = 0
    for found, truth in zip(found_ids, true_ids):
        hits += len(set(found[found >= 0]) & set(truth))
    return hits / (found_ids.shape[0] * k)
