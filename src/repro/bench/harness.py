"""Shared experiment plumbing for the benchmark scripts.

Every benchmark builds the same shapes: a dataset analogue, a Harmony
deployment in one of the three modes (plus the single-node Faiss-like
baseline), a workload, and a simulated-performance report. This module
centralizes those steps so the per-figure scripts stay small and

deterministic (fixed seeds everywhere).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.network import NetworkModel
from repro.core.config import HarmonyConfig, Mode
from repro.core.database import HarmonyDB
from repro.core.results import ExecutionReport, SearchResult
from repro.data.datasets import Dataset, load_dataset
from repro.data.ground_truth import exact_knn
from repro.index.faiss_like import FaissLikeIVF


@dataclass
class BenchSetup:
    """A dataset plus the cluster/config parameters of one experiment.

    Attributes:
        dataset: materialized dataset analogue.
        n_machines / nlist / nprobe / k: deployment parameters.
        seed: seed shared by clustering and workload sampling.
    """

    dataset: Dataset
    n_machines: int = 4
    nlist: int = 64
    nprobe: int = 8
    k: int = 10
    seed: int = 0
    _ground_truth: np.ndarray | None = field(default=None, repr=False)

    def ground_truth(self) -> np.ndarray:
        """Exact top-``k`` ids for the dataset's queries (cached)."""
        if self._ground_truth is None:
            _, ids = exact_knn(
                self.dataset.base, self.dataset.queries, k=self.k
            )
            self._ground_truth = ids
        return self._ground_truth


def make_setup(
    dataset_name: str,
    n_machines: int = 4,
    nlist: int = 64,
    nprobe: int = 8,
    k: int = 10,
    size: int | None = None,
    n_queries: int | None = None,
    seed: int = 0,
) -> BenchSetup:
    """Materialize a dataset analogue and experiment parameters."""
    dataset = load_dataset(dataset_name, size=size, n_queries=n_queries, seed=seed)
    return BenchSetup(
        dataset=dataset,
        n_machines=n_machines,
        nlist=nlist,
        nprobe=nprobe,
        k=k,
        seed=seed,
    )


def build_db(
    setup: BenchSetup,
    mode: "Mode | str" = Mode.HARMONY,
    network: NetworkModel | None = None,
    sample_queries: np.ndarray | None = None,
    **config_overrides: object,
) -> HarmonyDB:
    """Build a HarmonyDB for a setup in the given mode."""
    config = HarmonyConfig(
        n_machines=setup.n_machines,
        nlist=setup.nlist,
        nprobe=setup.nprobe,
        mode=mode,  # type: ignore[arg-type]
        seed=setup.seed,
        **config_overrides,  # type: ignore[arg-type]
    )
    cluster = Cluster(n_workers=setup.n_machines, network=network)
    db = HarmonyDB(dim=setup.dataset.dim, config=config, cluster=cluster)
    sample = (
        sample_queries if sample_queries is not None else setup.dataset.queries
    )
    db.build(setup.dataset.base, sample_queries=sample, k=setup.k)
    return db


def run_mode(
    setup: BenchSetup,
    mode: "Mode | str" = Mode.HARMONY,
    queries: np.ndarray | None = None,
    network: NetworkModel | None = None,
    nprobe: int | None = None,
    **config_overrides: object,
) -> tuple[SearchResult, ExecutionReport, HarmonyDB]:
    """Build + search in one step; returns results, report and the DB."""
    queries = queries if queries is not None else setup.dataset.queries
    db = build_db(
        setup,
        mode=mode,
        network=network,
        sample_queries=queries,
        **config_overrides,
    )
    result, report = db.search(queries, k=setup.k, nprobe=nprobe)
    return result, report, db


def simulated_faiss_seconds(
    engine: FaissLikeIVF, compute_rate: float | None = None
) -> float:
    """Simulated single-node time of the last Faiss-like search.

    The baseline runs on one machine with no communication. Its scan
    work is priced at the (scale-derated) worker rate Harmony's workers
    use, while centroid ranking — whose cost does not scale with
    dataset size — is priced at the physical rate, mirroring how the
    Harmony client is modeled. See ``repro.cluster.node``.
    """
    from repro.cluster.node import (
        DEFAULT_COMPUTE_RATE,
        PHYSICAL_COMPUTE_RATE,
    )

    rate = compute_rate if compute_rate is not None else DEFAULT_COMPUTE_RATE
    cost = engine.last_search_cost
    return (
        cost.scan_elements / rate
        + cost.centroid_elements / PHYSICAL_COMPUTE_RATE
    )


def run_faiss_baseline(
    setup: BenchSetup,
    queries: np.ndarray | None = None,
    nprobe: int | None = None,
    compute_rate: float | None = None,
) -> tuple[SearchResult, float]:
    """Run the single-node baseline and return (results, simulated s)."""
    from repro.cluster.node import DEFAULT_COMPUTE_RATE
    from repro.core.results import SearchResult as SR

    queries = queries if queries is not None else setup.dataset.queries
    nprobe = nprobe if nprobe is not None else setup.nprobe
    rate = compute_rate if compute_rate is not None else DEFAULT_COMPUTE_RATE
    engine = FaissLikeIVF(
        dim=setup.dataset.dim, nlist=setup.nlist, seed=setup.seed
    )
    engine.train(setup.dataset.base)
    engine.add(setup.dataset.base)
    distances, ids = engine.search(queries, k=setup.k, nprobe=nprobe)
    seconds = simulated_faiss_seconds(engine, rate)
    return SR(distances=distances, ids=ids), seconds
