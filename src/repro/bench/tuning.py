"""Operating-point tuning: pick nprobe for a recall target.

ANN deployments choose their recall/throughput trade-off by tuning the
probed-cluster count. :func:`tune_nprobe` finds the smallest ``nprobe``
that reaches a recall target on a calibration query sample, using
exact ground truth computed on the fly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.recall import recall_at_k
from repro.data.ground_truth import exact_knn
from repro.index.ivf import IVFFlatIndex


@dataclass(frozen=True)
class TuneResult:
    """Outcome of an nprobe calibration.

    Attributes:
        nprobe: smallest candidate meeting the target (the largest
            candidate when none does).
        achieved_recall: measured recall at that nprobe.
        target_met: whether the target was reached.
        trace: every (nprobe, recall) pair measured, ascending.
    """

    nprobe: int
    achieved_recall: float
    target_met: bool
    trace: tuple[tuple[int, float], ...]


def tune_nprobe(
    index: IVFFlatIndex,
    queries: np.ndarray,
    target_recall: float,
    k: int = 10,
    candidates: "tuple[int, ...] | list[int] | None" = None,
) -> TuneResult:
    """Find the smallest ``nprobe`` reaching ``target_recall``.

    Args:
        index: trained+populated IVF index.
        queries: calibration queries (a few dozen suffice).
        target_recall: recall@k target in ``(0, 1]``.
        k: neighbours per query.
        candidates: ascending nprobe values to try (default: powers of
            two up to ``nlist``).

    Raises:
        ValueError: for an empty candidate list or bad target.
        RuntimeError: if the index is not ready.
    """
    if not 0.0 < target_recall <= 1.0:
        raise ValueError(
            f"target_recall must be in (0, 1], got {target_recall}"
        )
    if not index.is_trained or index.ntotal == 0:
        raise RuntimeError("index must be trained and populated")
    if candidates is None:
        candidates = []
        nprobe = 1
        while nprobe < index.nlist:
            candidates.append(nprobe)
            nprobe *= 2
        candidates.append(index.nlist)
    candidates = sorted(set(int(c) for c in candidates))
    if not candidates:
        raise ValueError("candidates must be non-empty")

    queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    live = np.flatnonzero(~index.is_deleted(np.arange(index.ntotal)))
    _, truth_local = exact_knn(
        index.base[live], queries, k=k, metric=index.metric
    )
    truth = live[truth_local]

    trace: list[tuple[int, float]] = []
    for nprobe in candidates:
        _, ids = index.search(queries, k=k, nprobe=nprobe)
        recall = recall_at_k(ids, truth)
        trace.append((nprobe, recall))
        if recall >= target_recall:
            return TuneResult(
                nprobe=nprobe,
                achieved_recall=recall,
                target_met=True,
                trace=tuple(trace),
            )
    nprobe, recall = trace[-1]
    return TuneResult(
        nprobe=nprobe,
        achieved_recall=recall,
        target_met=False,
        trace=tuple(trace),
    )
