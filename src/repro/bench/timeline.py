"""ASCII utilization timelines from cluster traces.

Enable tracing on a cluster, run a batch, and render what every node
was doing over simulated time::

    db.cluster.enable_tracing()
    db.search(queries, k=10)
    print(render_timeline(db.cluster))

Each row is one node; each column a time bucket shaded by the node's
busy fraction within it (`` .:-=#`` from idle to saturated). Invaluable
for seeing pipeline bubbles, stragglers, and dispatch bottlenecks.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import CLIENT_NODE, Cluster

#: Shade characters from idle to fully busy.
SHADES = " .:-=#"


def utilization_grid(
    cluster: Cluster, buckets: int = 60
) -> tuple[list[int], np.ndarray]:
    """Busy fraction per (node, time bucket) from the recorded trace.

    Returns:
        ``(node_ids, grid)`` where ``grid[i, j]`` is node
        ``node_ids[i]``'s busy fraction in bucket ``j``.

    Raises:
        RuntimeError: when tracing was not enabled.
        ValueError: for a non-positive bucket count.
    """
    if cluster.events is None:
        raise RuntimeError(
            "tracing is not enabled; call cluster.enable_tracing() first"
        )
    if buckets <= 0:
        raise ValueError(f"buckets must be positive, got {buckets}")
    node_ids = [CLIENT_NODE] + [w.node_id for w in cluster.workers]
    index_of = {nid: i for i, nid in enumerate(node_ids)}
    grid = np.zeros((len(node_ids), buckets), dtype=np.float64)
    if not cluster.events:
        return node_ids, grid
    horizon = max(end for _, _, _, end in cluster.events)
    if horizon <= 0:
        return node_ids, grid
    width = horizon / buckets
    for _, node_id, start, end in cluster.events:
        row = index_of[node_id]
        first = int(start / width)
        last = min(int(end / width), buckets - 1)
        for b in range(first, last + 1):
            lo = max(start, b * width)
            hi = min(end, (b + 1) * width)
            grid[row, b] += max(0.0, hi - lo) / width
    np.clip(grid, 0.0, 1.0, out=grid)
    return node_ids, grid


def render_timeline(cluster: Cluster, buckets: int = 60) -> str:
    """Render the utilization grid as aligned ASCII rows."""
    node_ids, grid = utilization_grid(cluster, buckets)
    lines = []
    for node_id, row in zip(node_ids, grid):
        name = "client" if node_id == CLIENT_NODE else f"worker {node_id}"
        shades = "".join(
            SHADES[min(int(v * (len(SHADES) - 1) + 0.5), len(SHADES) - 1)]
            for v in row
        )
        busy = float(row.mean())
        lines.append(f"{name:>9} |{shades}| {busy:4.0%}")
    return "\n".join(lines)
