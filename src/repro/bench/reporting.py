"""Plain-text table/series formatting for benchmark output."""

from __future__ import annotations

from typing import Iterable, Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: column names.
        rows: row value sequences (same length as headers).
        title: optional caption printed above the table.
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in str_rows)) if str_rows else len(headers[c])
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, xs: Sequence[object], ys: Sequence[object]
) -> str:
    """Render an (x, y) series as ``name: (x1, y1) (x2, y2) ...``."""
    if len(xs) != len(ys):
        raise ValueError(f"series lengths differ: {len(xs)} vs {len(ys)}")
    pairs = " ".join(f"({_cell(x)}, {_cell(y)})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"
