"""Command-line interface mirroring the paper's parameters (Section 5).

The paper's binary exposes ``-NMachine``, ``-Mode``,
``-Pruning_Configuration``, ``-Indexing_Parameters`` and ``-alpha``;
this CLI exposes the same knobs over the dataset analogues::

    python -m repro run --dataset sift1m --nmachine 4 --mode harmony \
        --nlist 64 --nprobe 8 --k 10

    python -m repro datasets          # list available analogues
    python -m repro plan --dataset msong --nmachine 4   # planner view
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.bench.recall import recall_at_k
from repro.core.config import HarmonyConfig, Mode
from repro.core.database import HarmonyDB
from repro.data.datasets import DATASET_REGISTRY, available_datasets, load_dataset
from repro.data.ground_truth import exact_knn


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HARMONY reproduction: distributed ANN search",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="build a deployment and run queries")
    run.add_argument("--dataset", default="sift1m", help="dataset analogue")
    run.add_argument("--size", type=int, default=None, help="base vectors")
    run.add_argument("--queries", type=int, default=None, help="query count")
    run.add_argument(
        "--nmachine", type=int, default=4, help="worker nodes (-NMachine)"
    )
    run.add_argument(
        "--mode",
        default="harmony",
        choices=[m.value for m in Mode],
        help="partitioning mode (-Mode)",
    )
    run.add_argument("--nlist", type=int, default=64)
    run.add_argument("--nprobe", type=int, default=8)
    run.add_argument("--k", type=int, default=10)
    run.add_argument(
        "--alpha", type=float, default=4.0, help="imbalance weight (-alpha)"
    )
    run.add_argument(
        "--no-pruning",
        action="store_true",
        help="disable dimension-level pruning (-Pruning_Configuration)",
    )
    run.add_argument(
        "--backend",
        default="sim",
        choices=["sim", "thread", "process", "serial"],
        help="execution backend: simulated cluster (timing model), "
        "host threads, worker processes over shared memory, or the "
        "serial reference loop",
    )
    run.add_argument(
        "--threads",
        type=int,
        default=None,
        help="worker threads for --backend thread",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --backend process "
        "(default: one per CPU core)",
    )
    run.add_argument(
        "--no-batch-queries",
        action="store_true",
        help="disable the fused multi-query scan path on host "
        "backends (results are bitwise identical either way)",
    )
    run.add_argument(
        "--scan-precision",
        default="fp32",
        choices=["fp32", "sq8"],
        dest="scan_precision",
        help="candidate-scan representation: full-precision rows, or "
        "SQ8 codes with exact float32 re-ranking (byte-identical "
        "results, a quarter of the scan bandwidth)",
    )
    run.add_argument(
        "--scan-timeout",
        type=float,
        default=None,
        dest="scan_timeout",
        metavar="SECONDS",
        help="per-task scan watchdog on host backends: tasks running "
        "longer are hedged onto a fresh attempt (stragglers), and "
        "abandoned with coverage accounting in degraded mode",
    )
    run.add_argument(
        "--scan-retries",
        type=int,
        default=3,
        dest="scan_retries",
        help="hedged re-issues per task before it is abandoned "
        "(degraded mode) or the batch fails",
    )
    run.add_argument(
        "--cache",
        action="store_true",
        help="attach the result cache: exact repeats replay cached "
        "answers byte-identically, skipping routing and scanning",
    )
    run.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        dest="cache_size",
        help="result-cache capacity in entries (segmented LRU)",
    )
    run.add_argument(
        "--cache-epsilon",
        type=float,
        default=0.0,
        dest="cache_epsilon",
        metavar="EPSILON",
        help="semantic hit radius (L2 over query embeddings); 0 "
        "serves only exact byte matches, a positive value also "
        "serves cached neighbors within the epsilon ball (bounded, "
        "measured recall trade)",
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record per-query spans and write a Chrome trace_event "
        "JSON timeline (loadable in about:tracing / Perfetto)",
    )
    run.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="write a Prometheus text dump of the run's metrics "
        "('-' for stdout)",
    )
    run.add_argument("--seed", type=int, default=0)

    sub.add_parser("datasets", help="list dataset analogues")

    trace = sub.add_parser(
        "trace",
        help="run a small traced search and export its cluster timeline",
    )
    trace.add_argument("--dataset", default="sift1m")
    trace.add_argument("--size", type=int, default=None)
    trace.add_argument("--queries", type=int, default=8)
    trace.add_argument("--nmachine", type=int, default=4)
    trace.add_argument(
        "--mode", default="harmony", choices=[m.value for m in Mode]
    )
    trace.add_argument("--nlist", type=int, default=64)
    trace.add_argument("--nprobe", type=int, default=8)
    trace.add_argument("--k", type=int, default=10)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--output", default="trace.json", help="Chrome trace JSON path"
    )
    trace.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="also write a Prometheus text dump ('-' for stdout)",
    )

    plan = sub.add_parser("plan", help="show the cost model's grid choices")
    plan.add_argument("--dataset", default="sift1m")
    plan.add_argument("--size", type=int, default=None)
    plan.add_argument("--nmachine", type=int, default=4)
    plan.add_argument("--nlist", type=int, default=64)
    plan.add_argument("--nprobe", type=int, default=8)
    plan.add_argument("--alpha", type=float, default=4.0)
    plan.add_argument("--seed", type=int, default=0)

    tune = sub.add_parser(
        "tune", help="pick the smallest nprobe for a recall target"
    )
    tune.add_argument("--dataset", default="sift1m")
    tune.add_argument("--size", type=int, default=None)
    tune.add_argument("--nlist", type=int, default=64)
    tune.add_argument("--k", type=int, default=10)
    tune.add_argument(
        "--target-recall", type=float, default=0.95, dest="target_recall"
    )
    tune.add_argument("--seed", type=int, default=0)

    capacity = sub.add_parser(
        "capacity",
        help="size the smallest cluster for a recall + QPS target",
    )
    capacity.add_argument("--dataset", default="sift1m")
    capacity.add_argument("--size", type=int, default=None)
    capacity.add_argument("--nlist", type=int, default=64)
    capacity.add_argument("--k", type=int, default=10)
    capacity.add_argument(
        "--target-recall", type=float, default=0.95, dest="target_recall"
    )
    capacity.add_argument(
        "--target-qps", type=float, required=True, dest="target_qps"
    )
    capacity.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve-bench",
        help="open-loop vs closed-loop serving study "
        "(micro-batch coalescing QPS / latency curves)",
    )
    serve.add_argument("--dataset", default="sift1m")
    serve.add_argument("--size", type=int, default=None)
    serve.add_argument("--queries", type=int, default=None)
    serve.add_argument("--nmachine", type=int, default=4)
    serve.add_argument("--nlist", type=int, default=None)
    serve.add_argument("--nprobe", type=int, default=8)
    serve.add_argument(
        "--grid",
        type=int,
        nargs=2,
        default=None,
        metavar=("B_VEC", "B_DIM"),
        help="force the partition grid instead of the cost model "
        "(the smoke gate defaults to 4 1: pure vector sharding, "
        "where batched shard-major scans parallelize cleanly)",
    )
    serve.add_argument("--k", type=int, default=10)
    serve.add_argument(
        "--backend",
        default="thread",
        choices=["thread", "process", "serial"],
        help="host backend the server executes batches on",
    )
    serve.add_argument(
        "--max-batch", type=int, default=None, dest="max_batch",
        help="coalescing micro-batch cap (default: config serve_max_batch)",
    )
    serve.add_argument(
        "--slo-ms", type=float, default=None, dest="slo_ms",
        help="end-to-end latency SLO; the flush deadline is "
        "slo * deadline fraction",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=None, dest="queue_depth",
        help="admission-control queue bound for the overload study",
    )
    serve.add_argument(
        "--shed-policy",
        default=None,
        dest="shed_policy",
        choices=["reject", "shed_oldest", "degrade_nprobe"],
        help="overload policy for the admission study rows",
    )
    serve.add_argument(
        "--deadline-policy",
        default=None,
        dest="deadline_policy",
        choices=["block", "partial", "timeout"],
        help="what a request whose SLO deadline expires mid-batch "
        "gets: block (wait for the full result), partial (degraded "
        "empty response, flagged), or timeout (typed RequestTimeout)",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run that also gates on byte-identical results "
        "and a coalescing speedup at saturating load",
    )
    return parser


def _cmd_datasets() -> int:
    print(f"{'name':<18} {'paper size':>13} {'dim':>5} {'type':<12} scaled default")
    for name in available_datasets():
        spec = DATASET_REGISTRY[name]
        print(
            f"{name:<18} {spec.paper_size:>13,} {spec.paper_dim:>5} "
            f"{spec.data_type:<12} {spec.default_size:,}"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    dataset = load_dataset(
        args.dataset, size=args.size, n_queries=args.queries, seed=args.seed
    )
    config = HarmonyConfig(
        n_machines=args.nmachine,
        nlist=args.nlist,
        nprobe=args.nprobe,
        mode=args.mode,
        alpha=args.alpha,
        enable_pruning=not args.no_pruning,
        seed=args.seed,
        backend=args.backend,
        n_threads=args.threads,
        n_workers=args.workers,
        batch_queries=not args.no_batch_queries,
        scan_precision=args.scan_precision,
        scan_timeout=args.scan_timeout,
        scan_retries=args.scan_retries,
        enable_cache=args.cache,
        cache_size=args.cache_size,
        cache_semantic_epsilon=args.cache_epsilon,
    )
    print(
        f"dataset {dataset.name}: {dataset.size:,} x {dataset.dim} vectors, "
        f"{dataset.n_queries} queries"
    )
    db = HarmonyDB(dim=dataset.dim, config=config)
    build = db.build(dataset.base, sample_queries=dataset.queries)
    print(f"plan: {db.plan.describe()}")
    print(
        f"build (simulated): train {build.train_seconds * 1e3:.1f} ms, "
        f"add {build.add_seconds * 1e3:.1f} ms, "
        f"pre-assign {build.preassign_seconds * 1e3:.1f} ms"
    )
    if args.trace is not None:
        db.enable_tracing()
    result, report = db.search(dataset.queries, k=args.k)
    _, truth = exact_knn(dataset.base, dataset.queries, k=args.k)
    print(f"recall@{args.k}: {recall_at_k(result.ids, truth):.3f}")
    if args.backend == "sim":
        print(f"simulated QPS: {report.qps:,.0f}")
        if report.latencies.size:
            p99 = f"{report.latency_percentile(99) * 1e6:.0f} us"
            mean = f"{report.mean_latency * 1e6:.0f} us"
        else:
            p99 = mean = "n/a"
        print(f"latency (simulated): mean {mean}, p99 {p99}")
        print(f"load imbalance (CV): {report.normalized_imbalance:.3f}")
        if report.pruning is not None:
            ratios = " ".join(f"{r:.0%}" for r in report.pruning.ratios())
            print(f"pruned per slice: {ratios}")
    else:
        print(
            f"backend {args.backend}: host wall-clock "
            f"{report.simulated_seconds * 1e3:.1f} ms "
            f"({report.qps:,.0f} QPS)"
        )
    if db.result_cache is not None:
        stats = db.result_cache.stats()
        print(
            f"result cache: {stats.hits} hits / {stats.misses} misses "
            f"({stats.semantic_hits} semantic), {stats.entries} entries, "
            f"{stats.bytes:,} bytes"
        )
    _export_observability(db, report, args.trace, args.metrics)
    db.close()
    return 0


def _export_observability(
    db: HarmonyDB, report, trace_path, metrics_path
) -> None:
    """Write the report's trace / metrics exports where requested."""
    if trace_path is not None and report.trace is not None:
        events = (
            db.cluster.fault_schedule.events
            if db.cluster.fault_schedule is not None
            else ()
        )
        report.trace.save_chrome(trace_path, fault_events=events)
        print(
            f"trace: {len(report.trace)} spans -> {trace_path} "
            "(load in about:tracing or https://ui.perfetto.dev)"
        )
    if metrics_path is not None:
        from repro.obs.metrics import report_metrics

        registry = report_metrics(report, registry=db.metrics)
        text = registry.to_prometheus()
        if metrics_path == "-":
            print(text, end="")
        else:
            with open(metrics_path, "w") as f:
                f.write(text)
            print(f"metrics: {len(registry.families())} families "
                  f"-> {metrics_path}")


def _cmd_trace(args: argparse.Namespace) -> int:
    dataset = load_dataset(
        args.dataset, size=args.size, n_queries=args.queries, seed=args.seed
    )
    config = HarmonyConfig(
        n_machines=args.nmachine,
        nlist=args.nlist,
        nprobe=args.nprobe,
        mode=args.mode,
        seed=args.seed,
    )
    db = HarmonyDB(dim=dataset.dim, config=config)
    db.build(dataset.base, sample_queries=dataset.queries)
    db.enable_tracing()
    db.attach_metrics()
    _, report = db.search(dataset.queries, k=args.k)
    totals = report.trace.category_totals()
    print(f"plan: {db.plan.describe()}")
    print(
        f"traced {report.n_queries} queries: {len(report.trace)} spans, "
        + ", ".join(f"{c} {s * 1e6:.0f} us" for c, s in totals.items())
    )
    _export_observability(db, report, args.output, args.metrics)
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.cluster.cluster import Cluster
    from repro.core.cost_model import CostParameters
    from repro.core.planner import QueryPlanner
    from repro.index.ivf import IVFFlatIndex

    dataset = load_dataset(args.dataset, size=args.size, seed=args.seed)
    index = IVFFlatIndex(dim=dataset.dim, nlist=args.nlist, seed=args.seed)
    index.train(dataset.base)
    index.add(dataset.base)
    cluster = Cluster(args.nmachine)
    planner = QueryPlanner(
        index, CostParameters.from_cluster(cluster, alpha=args.alpha)
    )
    profile = planner.profile(dataset.queries, args.nprobe)
    decision = planner.choose(args.nmachine, Mode.HARMONY, profile)
    print(f"dataset {dataset.name}, {args.nmachine} machines:")
    for (b_vec, b_dim), cost in decision.evaluated:
        chosen = (
            " <== chosen"
            if (b_vec, b_dim)
            == (decision.plan.n_vector_shards, decision.plan.n_dim_blocks)
            else ""
        )
        print(
            f"  {b_vec} x {b_dim}: comp {cost.computation_seconds * 1e3:8.2f} ms  "
            f"comm {cost.communication_seconds * 1e3:7.2f} ms  "
            f"imbalance {cost.imbalance_seconds * 1e3:7.3f} ms  "
            f"total {cost.total * 1e3:8.2f} ms{chosen}"
        )
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.bench.tuning import tune_nprobe
    from repro.index.ivf import IVFFlatIndex

    dataset = load_dataset(args.dataset, size=args.size, seed=args.seed)
    index = IVFFlatIndex(dim=dataset.dim, nlist=args.nlist, seed=args.seed)
    index.train(dataset.base)
    index.add(dataset.base)
    result = tune_nprobe(
        index, dataset.queries, target_recall=args.target_recall, k=args.k
    )
    print(f"dataset {dataset.name}, target recall@{args.k} >= "
          f"{args.target_recall}:")
    for nprobe, recall in result.trace:
        marker = " <== chosen" if nprobe == result.nprobe else ""
        print(f"  nprobe {nprobe:4d}: recall {recall:.3f}{marker}")
    if not result.target_met:
        print("  target not reachable; best candidate reported")
    return 0


def _cmd_capacity(args: argparse.Namespace) -> int:
    from repro.core.capacity import plan_capacity
    from repro.index.ivf import IVFFlatIndex

    dataset = load_dataset(args.dataset, size=args.size, seed=args.seed)
    index = IVFFlatIndex(dim=dataset.dim, nlist=args.nlist, seed=args.seed)
    index.train(dataset.base)
    index.add(dataset.base)
    plan = plan_capacity(
        index,
        dataset.queries,
        target_recall=args.target_recall,
        target_qps=args.target_qps,
        k=args.k,
        seed=args.seed,
    )
    print(
        f"target: recall@{args.k} >= {args.target_recall}, "
        f">= {args.target_qps:,.0f} QPS"
    )
    for machines, qps in plan.trace:
        marker = " <== chosen" if machines == plan.n_machines else ""
        print(f"  {machines:3d} machines: {qps:>12,.0f} QPS{marker}")
    print(
        f"recommendation: {plan.n_machines} machines, nprobe "
        f"{plan.nprobe} ({plan.plan_summary})"
    )
    print(
        f"achieves recall {plan.achieved_recall:.3f} at "
        f"{plan.achieved_qps:,.0f} QPS"
        + ("" if plan.target_met else "  [target NOT met]")
    )
    return 0 if plan.target_met else 2


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve.harness import admission_study, throughput_study

    if args.smoke:
        # Operating point where coalescing clearly pays: pure vector
        # sharding parallelizes the fused shard-major batch scan, and
        # a finer list grid keeps per-query candidate sets small so
        # per-call dispatch overhead dominates the unbatched baseline.
        size = args.size if args.size is not None else 12_000
        n_queries = args.queries if args.queries is not None else 256
        nlist = args.nlist if args.nlist is not None else 256
        grid = tuple(args.grid) if args.grid is not None else (4, 1)
    else:
        size = args.size
        n_queries = args.queries if args.queries is not None else 512
        nlist = args.nlist if args.nlist is not None else 64
        grid = tuple(args.grid) if args.grid is not None else None
    dataset = load_dataset(
        args.dataset, size=size, n_queries=n_queries, seed=args.seed
    )
    config = HarmonyConfig(
        n_machines=args.nmachine,
        nlist=nlist,
        nprobe=args.nprobe,
        backend=args.backend,
        forced_grid=grid,
        seed=args.seed,
        serve_deadline_policy=(
            args.deadline_policy
            if args.deadline_policy is not None
            else "block"
        ),
    )
    db = HarmonyDB(dim=dataset.dim, config=config)
    db.build(dataset.base, sample_queries=dataset.queries)
    print(
        f"dataset {dataset.name}: {dataset.size:,} x {dataset.dim}, "
        f"{dataset.n_queries} requests, backend {args.backend}, "
        f"plan {db.plan.describe()}"
    )
    overrides = {}
    if args.max_batch is not None:
        overrides["max_batch"] = args.max_batch
    elif args.smoke:
        overrides["max_batch"] = 64
    if args.slo_ms is not None:
        overrides["slo_ms"] = args.slo_ms
    study = throughput_study(
        db,
        dataset.queries,
        k=args.k,
        # The saturating row runs well past capacity so the coalescing
        # queue reaches steady state quickly and batches stay deep.
        fractions=(0.5, 1.0, 3.0) if args.smoke else (0.5, 1.0, 2.0),
        seed=args.seed,
        **overrides,
    )
    seq = study["sequential"]
    print(
        f"closed-loop unbatched: {seq['qps']:,.0f} QPS, "
        f"p50 {seq['p50_ms']:.2f} ms, p99 {seq['p99_ms']:.2f} ms"
    )
    print(
        f"{'arrival':<9} {'offered':>9} {'sustained':>10} {'x seq':>6} "
        f"{'batch':>6} {'p50 ms':>8} {'p99 ms':>8}"
    )
    for row in study["rows"]:
        print(
            f"{row['arrival']:<9} {row['offered_qps']:>9,.0f} "
            f"{row['sustained_qps']:>10,.0f} "
            f"{row['speedup_vs_sequential']:>6.2f} "
            f"{row['mean_batch_size']:>6.1f} "
            f"{row['p50_ms']:>8.2f} {row['p99_ms']:>8.2f}"
        )
    queue_depth = args.queue_depth if args.queue_depth is not None else 16
    policies = (
        (args.shed_policy,)
        if args.shed_policy is not None
        else ("reject", "shed_oldest", "degrade_nprobe")
    )
    admission = admission_study(
        db,
        dataset.queries,
        k=args.k,
        queue_depth=queue_depth,
        policies=policies,
        seed=args.seed,
        **overrides,
    )
    print(
        f"admission control at 6x sequential capacity, "
        f"queue depth {queue_depth}:"
    )
    for row in admission:
        print(
            f"  {row['policy']:<15} completed {row['completed']:>4} "
            f"rejected {row['rejected']:>4} shed {row['shed']:>4} "
            f"degraded {row['degraded']:>4} p99 {row['p99_ms']:>7.2f} ms "
            f"accounted {'yes' if row['accounted'] else 'NO'}"
        )
    db.close()
    failures = []
    if study["oracle_mismatches"]:
        failures.append(
            f"{study['oracle_mismatches']} responses mismatched the "
            "serial oracle"
        )
    failures.extend(
        f"admission accounting failed for {row['policy']}"
        for row in admission
        if not row["accounted"]
    )
    failures.extend(
        f"{row['oracle_mismatches']} degraded-path mismatches "
        f"({row['policy']})"
        for row in admission
        if row["oracle_mismatches"]
    )
    if args.smoke:
        speedup = study["speedup_at_saturation"]
        if speedup < 1.3:
            failures.append(
                f"coalescing speedup {speedup:.2f}x < 1.3x at "
                "saturating load"
            )
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print(
            f"OK: coalescing {study['speedup_at_saturation']:.2f}x vs "
            "unbatched sequential at saturating load; all responses "
            "byte-identical to the serial oracle"
        )
    return 1 if failures else 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "datasets":
        return _cmd_datasets()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "tune":
        return _cmd_tune(args)
    if args.command == "capacity":
        return _cmd_capacity(args)
    if args.command == "serve-bench":
        return _cmd_serve_bench(args)
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
