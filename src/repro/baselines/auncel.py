"""Auncel-like baseline: error-bounded, vector-partitioned ANN serving.

Auncel (NSDI'23) answers vector queries under a user-specified error
bound: it plans, per query, how much of the index must be scanned for
the requested precision, and distributes whole-vector shards across
machines ("a fixed partitioning strategy similar to Harmony-vector",
paper Section 6.5.4). This stand-in reproduces the two properties the
comparison relies on:

- per-query *adaptive termination*: a query probes only as many
  inverted lists as its error-bound model predicts it needs, instead of
  a fixed ``nprobe``;
- *vector-based partitioning*: whole shards per machine, hence the same
  sensitivity to skewed workloads as Harmony-vector.

The error model is a centroid-distance ratio test: probing stops once
the next list's centroid is ``(1 + epsilon)`` times farther than the
nearest centroid, with the floor/ceiling given by ``min_probe`` /
``nprobe``. Smaller ``epsilon`` means tighter bounds (fewer lists).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.config import HarmonyConfig, Mode
from repro.core.pipeline import PipelineEngine
from repro.core.planner import QueryPlanner
from repro.core.cost_model import CostParameters
from repro.core.results import ExecutionReport, SearchResult
from repro.distance.kernels import pairwise_squared_l2
from repro.index.ivf import IVFFlatIndex


class AuncelLike:
    """Error-bounded distributed ANN engine on vector partitioning.

    Args:
        dim: vector dimensionality.
        nlist: IVF cluster count.
        n_machines: worker count.
        epsilon: error-bound looseness; probing stops at the first list
            whose centroid distance exceeds ``(1 + epsilon)`` times the
            nearest centroid's distance.
        min_probe / max_probe: per-query probe bounds.
        cluster: simulated cluster (a default one is created if None).
        seed: clustering seed.
    """

    def __init__(
        self,
        dim: int,
        nlist: int = 64,
        n_machines: int = 4,
        epsilon: float = 0.5,
        min_probe: int = 1,
        max_probe: int = 16,
        cluster: Cluster | None = None,
        seed: int = 0,
    ) -> None:
        if epsilon < 0:
            raise ValueError(f"epsilon must be non-negative, got {epsilon}")
        if not 1 <= min_probe <= max_probe:
            raise ValueError(
                f"need 1 <= min_probe <= max_probe, got {min_probe}, {max_probe}"
            )
        self.epsilon = epsilon
        self.min_probe = min_probe
        self.max_probe = max_probe
        self.cluster = cluster or Cluster(n_workers=n_machines)
        self.config = HarmonyConfig(
            n_machines=n_machines,
            nlist=nlist,
            nprobe=max_probe,
            mode=Mode.VECTOR,
            enable_pruning=True,
            enable_pipeline=True,
            enable_load_balance=False,
            seed=seed,
        )
        self.index = IVFFlatIndex(dim=dim, nlist=nlist, seed=seed)
        self._engine: PipelineEngine | None = None

    def build(self, base: np.ndarray) -> None:
        """Train and distribute the index under a fixed vector plan."""
        base = np.atleast_2d(np.asarray(base, dtype=np.float32))
        self.index.train(base)
        self.index.add(base)
        params = CostParameters.from_cluster(self.cluster)
        planner = QueryPlanner(self.index, params)
        decision = planner.choose(
            n_machines=self.config.n_machines,
            mode=Mode.VECTOR,
            profile=None,
            load_aware=False,
            balanced=True,
        )
        self._engine = PipelineEngine(
            index=self.index,
            plan=decision.plan,
            cluster=self.cluster,
            config=self.config,
        )
        self._engine.place_data()

    def plan_probes(self, queries: np.ndarray) -> np.ndarray:
        """Per-query probe counts from the error-bound model."""
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        max_probe = min(self.max_probe, self.index.nlist)
        centroid_dist = pairwise_squared_l2(queries, self.index.centroids)
        sorted_dist = np.sort(centroid_dist, axis=1)[:, :max_probe]
        nearest = sorted_dist[:, 0:1]
        within = sorted_dist <= (1.0 + self.epsilon) ** 2 * np.maximum(
            nearest, 1e-12
        )
        counts = within.sum(axis=1)
        return np.clip(counts, self.min_probe, max_probe).astype(np.int64)

    def search(
        self, queries: np.ndarray, k: int = 10
    ) -> tuple[SearchResult, ExecutionReport]:
        """Error-bounded distributed search.

        Queries are grouped by their planned probe count and executed
        through the shared pipeline engine; reports are merged into a
        single batch-level :class:`ExecutionReport`. Node timelines are
        carried across groups so the makespan reflects the whole batch.
        """
        if self._engine is None:
            raise RuntimeError("build() must be called before search()")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        probes = self.plan_probes(queries)
        nq = queries.shape[0]
        out_dist = np.full((nq, k), np.inf, dtype=np.float64)
        out_ids = np.full((nq, k), -1, dtype=np.int64)

        makespan = 0.0
        breakdown = None
        loads = np.zeros(self.cluster.n_workers, dtype=np.float64)
        peak = 0
        for nprobe in np.unique(probes):
            group = np.flatnonzero(probes == nprobe)
            result, report = self._engine.run(
                queries[group], k=k, nprobe=int(nprobe)
            )
            out_dist[group] = result.distances
            out_ids[group] = result.ids
            makespan += report.simulated_seconds
            loads += report.worker_loads
            peak = max(peak, report.peak_memory_bytes)
            if breakdown is None:
                breakdown = report.breakdown
            else:
                breakdown.add(report.breakdown)
        assert breakdown is not None
        merged = ExecutionReport(
            n_queries=nq,
            k=k,
            nprobe=int(probes.max()),
            simulated_seconds=makespan,
            breakdown=breakdown,
            worker_loads=loads,
            pruning=None,
            peak_memory_bytes=peak,
            plan_summary="auncel-like vector plan (error-bounded probes)",
        )
        return SearchResult(distances=out_dist, ids=out_ids), merged
