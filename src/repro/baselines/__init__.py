"""Comparator systems re-implemented for the evaluation.

- :class:`~repro.baselines.auncel.AuncelLike` — a stand-in for Auncel
  (Zhang et al., NSDI'23), the error-bounded distributed vector query
  engine the paper compares against in Section 6.5.4. It uses a fixed
  vector-based partition plus per-query adaptive termination, which is
  why it behaves like Harmony-vector under skewed workloads.
- :class:`~repro.baselines.distributed_graph.DistributedGraphANN` — an
  HNSW graph sharded across machines, quantifying the paper's Section 1
  argument that graph indexes distribute poorly (sequential
  cross-machine hops on every query path).

The single-node Faiss baseline lives in :mod:`repro.index.faiss_like`.
"""

from repro.baselines.auncel import AuncelLike
from repro.baselines.distributed_graph import (
    DistributedGraphANN,
    GraphSearchReport,
)

__all__ = ["AuncelLike", "DistributedGraphANN", "GraphSearchReport"]
