"""Distributed graph-index baseline: the strawman the paper rules out.

Paper Section 1: "the popular graph-based segmentation in standalone
machines is not well compatible with distributed features, as query
paths for vectors tend to introduce edges across machines, resulting in
high latency."

This baseline makes that argument quantitative. It partitions an HNSW
graph's nodes across machines (by k-means region, the best case for
locality), then replays each query's hop trace: every traversed edge
whose endpoints live on different machines becomes a sequential network
round trip, because graph search is an inherently serial walk — the
next hop's neighbourhood is known only after the previous vertex's
machine answers. Compute is charged per visited vertex on its machine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.cluster import CLIENT_NODE, Cluster
from repro.cluster.messages import MESSAGE_HEADER_BYTES, query_chunk_bytes
from repro.core.results import SearchResult
from repro.index.hnsw import HNSWIndex
from repro.index.kmeans import KMeans


@dataclass
class GraphSearchReport:
    """Hop statistics plus simulated timing of a distributed graph search.

    Attributes:
        n_queries: batch size.
        simulated_seconds: makespan on the simulated cluster.
        total_hops: traversed edges across the batch.
        cross_machine_hops: edges whose endpoints live on different
            machines (each one a sequential round trip).
        visited_vertices: distance computations performed.
    """

    n_queries: int
    simulated_seconds: float
    total_hops: int
    cross_machine_hops: int
    visited_vertices: int

    @property
    def qps(self) -> float:
        if self.simulated_seconds <= 0:
            return float("inf")
        return self.n_queries / self.simulated_seconds

    @property
    def cross_machine_fraction(self) -> float:
        if self.total_hops == 0:
            return 0.0
        return self.cross_machine_hops / self.total_hops


class DistributedGraphANN:
    """HNSW sharded across machines by spatial (k-means) regions.

    Args:
        dim: vector dimensionality.
        n_machines: machines the graph is partitioned over.
        m / ef_construction: HNSW parameters.
        cluster: simulated cluster (a default one is created if None).
        seed: construction seed.
    """

    def __init__(
        self,
        dim: int,
        n_machines: int = 4,
        m: int = 16,
        ef_construction: int = 100,
        cluster: Cluster | None = None,
        seed: int = 0,
    ) -> None:
        if n_machines <= 0:
            raise ValueError(f"n_machines must be positive, got {n_machines}")
        self.graph = HNSWIndex(
            dim=dim, m=m, ef_construction=ef_construction, seed=seed
        )
        self.n_machines = n_machines
        self.cluster = cluster or Cluster(n_workers=n_machines)
        self.seed = seed
        self._machine_of: np.ndarray | None = None

    def build(self, base: np.ndarray) -> None:
        """Insert the vectors and partition the graph spatially.

        K-means regions give the partition its best chance: nodes that
        are close (and therefore densely connected) land on the same
        machine. The measured cross-machine hop fraction is thus a
        *lower bound* on what naive graph sharding would see.
        """
        base = np.atleast_2d(np.asarray(base, dtype=np.float32))
        self.graph.add(base)
        kmeans = KMeans(n_clusters=self.n_machines, seed=self.seed)
        result = kmeans.fit(base)
        self._machine_of = result.assignments % self.n_machines

    def machine_of(self, node: int) -> int:
        if self._machine_of is None:
            raise RuntimeError("build() must be called first")
        return int(self._machine_of[node])

    def search(
        self, queries: np.ndarray, k: int, ef_search: int = 64
    ) -> tuple[SearchResult, GraphSearchReport]:
        """Distributed beam search with per-hop communication charges.

        Every cross-machine hop costs a request/response round trip on
        the network (header-sized control plus the query residing with
        the walk); per-vertex distance computations are charged to the
        vertex's machine.
        """
        if self._machine_of is None:
            raise RuntimeError("build() must be called first")
        queries = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        cluster = self.cluster
        cluster.reset_time()
        dim = self.graph.dim

        nq = queries.shape[0]
        out_dist = np.full((nq, k), np.inf, dtype=np.float64)
        out_ids = np.full((nq, k), -1, dtype=np.int64)
        total_hops = 0
        cross_hops = 0
        visited_total = 0

        for i in range(nq):
            dist, ids, trace = self.graph.search_with_trace(
                queries[i], k=k, ef_search=ef_search
            )
            out_dist[i, : len(dist)] = dist
            out_ids[i, : len(ids)] = ids
            total_hops += len(trace.edges)
            visited_total += len(trace.visited)

            # The walk starts at the entry point's machine: the client
            # ships the query there.
            current_machine = self.machine_of(trace.visited[0])
            t = cluster.transfer(
                CLIENT_NODE,
                current_machine,
                query_chunk_bytes(dim),
            )
            # Replay: visits charge compute on their machine; machine
            # changes charge a sequential round trip (the query state
            # migrates, then the answer unblocks the walk).
            for u, v in trace.edges:
                mu, mv = self.machine_of(u), self.machine_of(v)
                _, t = cluster.compute(mu, dim, earliest=t)
                if mv != mu:
                    cross_hops += 1
                    t = cluster.transfer(
                        mu, mv, query_chunk_bytes(dim), earliest=t
                    )
            # Results return to the client.
            t = cluster.transfer(
                self.machine_of(trace.edges[-1][1]) if trace.edges else current_machine,
                CLIENT_NODE,
                MESSAGE_HEADER_BYTES + k * 16,
                earliest=t,
            )

        report = GraphSearchReport(
            n_queries=nq,
            simulated_seconds=cluster.makespan(),
            total_hops=total_hops,
            cross_machine_hops=cross_hops,
            visited_vertices=visited_total,
        )
        return SearchResult(distances=out_dist, ids=out_ids), report
