"""Query workload generation and skew control.

The paper's skewed-workload experiments (Section 6.2.2) manipulate
query sets "to ensure different load differences on each machine" and
quantify the imbalance with the variance from Section 4.2.1. This
package provides:

- uniform query workloads,
- skewed workloads whose queries concentrate on a controllable subset
  of "hot" inverted lists (Zipf-weighted),
- measurement helpers that compute the achieved per-node load variance
  under any partition plan.
"""

from repro.workload.generators import (
    Workload,
    bursty_arrivals,
    poisson_arrivals,
    skewed_workload,
    uniform_workload,
)
from repro.workload.skew import (
    cluster_histogram,
    load_imbalance,
    normalized_imbalance,
    zipf_query_stream,
)

__all__ = [
    "Workload",
    "bursty_arrivals",
    "cluster_histogram",
    "load_imbalance",
    "normalized_imbalance",
    "poisson_arrivals",
    "skewed_workload",
    "uniform_workload",
    "zipf_query_stream",
]
