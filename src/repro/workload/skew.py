"""Load-imbalance measurement.

Implements the imbalance metric of paper Section 4.2.1: the standard
deviation of per-node load, where a node's load is the computation it
performs for the workload.
"""

from __future__ import annotations

import numpy as np

from repro.index.ivf import IVFFlatIndex


def cluster_histogram(
    index: IVFFlatIndex, queries: np.ndarray, nprobe: int
) -> np.ndarray:
    """Expected probe counts per inverted list for a workload.

    Entry ``h[l]`` is the number of (query, probe) pairs that touch
    list ``l``. Together with list sizes this determines the scan work
    each list generates — the cost model's load estimator.
    """
    probes = index.probe(queries, nprobe)
    return np.bincount(probes.ravel(), minlength=index.nlist).astype(np.float64)


def zipf_query_stream(
    queries: np.ndarray,
    alpha: float,
    n: int,
    seed: int = 0,
    jitter: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Sample a repeated-query stream with Zipf-distributed popularity.

    Models the skewed serving traffic of production workloads: a small
    pool of ``queries`` is replayed ``n`` times, with pool entry of
    popularity rank ``r`` drawn with probability proportional to
    ``r ** -alpha``. Ranks are assigned by a seeded permutation of the
    pool so popularity does not correlate with row order.

    With ``jitter > 0``, every occurrence of a pool query *after its
    first* receives i.i.d. Gaussian noise with standard deviation
    ``jitter`` — near-duplicate traffic for exercising semantic
    (ε-ball) cache hits. The first occurrence stays byte-exact so exact
    caches still see each pool query verbatim.

    Returns ``(stream, picks)`` where ``stream`` is the ``(n, dim)``
    float32 query stream and ``picks`` the pool row index behind each
    stream entry.
    """
    pool = np.atleast_2d(np.asarray(queries, dtype=np.float32))
    if pool.shape[0] == 0:
        raise ValueError("queries must be non-empty")
    if alpha < 0.0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if jitter < 0.0:
        raise ValueError(f"jitter must be >= 0, got {jitter}")

    rng = np.random.default_rng(seed)
    n_pool = pool.shape[0]
    # Popularity rank r (1-based) is assigned to pool rows by a seeded
    # permutation; p(r) ∝ r^-alpha.
    order = rng.permutation(n_pool)
    weights = np.arange(1, n_pool + 1, dtype=np.float64) ** -float(alpha)
    probs = np.empty(n_pool, dtype=np.float64)
    probs[order] = weights / weights.sum()
    picks = rng.choice(n_pool, size=n, p=probs)

    stream = pool[picks].copy()
    if jitter > 0.0:
        seen: set[int] = set()
        repeat_rows = np.empty(n, dtype=bool)
        for i, pick in enumerate(picks):
            pick = int(pick)
            repeat_rows[i] = pick in seen
            seen.add(pick)
        n_repeat = int(repeat_rows.sum())
        if n_repeat:
            noise = rng.normal(
                0.0, jitter, size=(n_repeat, pool.shape[1])
            ).astype(np.float32)
            stream[repeat_rows] += noise
    return stream, picks


def load_imbalance(loads: np.ndarray) -> float:
    """Standard deviation of per-node loads (the paper's ``I(pi)``)."""
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size == 0:
        raise ValueError("loads must be non-empty")
    return float(np.std(loads))


def normalized_imbalance(loads: np.ndarray) -> float:
    """Coefficient of variation of per-node loads.

    Scale-free version of :func:`load_imbalance` used to compare
    imbalance across datasets of different sizes; 0 means perfectly
    balanced. Returns 0 when total load is 0.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size == 0:
        raise ValueError("loads must be non-empty")
    mean = float(np.mean(loads))
    if mean <= 0.0:
        return 0.0
    return float(np.std(loads) / mean)
