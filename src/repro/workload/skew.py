"""Load-imbalance measurement.

Implements the imbalance metric of paper Section 4.2.1: the standard
deviation of per-node load, where a node's load is the computation it
performs for the workload.
"""

from __future__ import annotations

import numpy as np

from repro.index.ivf import IVFFlatIndex


def cluster_histogram(
    index: IVFFlatIndex, queries: np.ndarray, nprobe: int
) -> np.ndarray:
    """Expected probe counts per inverted list for a workload.

    Entry ``h[l]`` is the number of (query, probe) pairs that touch
    list ``l``. Together with list sizes this determines the scan work
    each list generates — the cost model's load estimator.
    """
    probes = index.probe(queries, nprobe)
    return np.bincount(probes.ravel(), minlength=index.nlist).astype(np.float64)


def load_imbalance(loads: np.ndarray) -> float:
    """Standard deviation of per-node loads (the paper's ``I(pi)``)."""
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size == 0:
        raise ValueError("loads must be non-empty")
    return float(np.std(loads))


def normalized_imbalance(loads: np.ndarray) -> float:
    """Coefficient of variation of per-node loads.

    Scale-free version of :func:`load_imbalance` used to compare
    imbalance across datasets of different sizes; 0 means perfectly
    balanced. Returns 0 when total load is 0.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size == 0:
        raise ValueError("loads must be non-empty")
    mean = float(np.mean(loads))
    if mean <= 0.0:
        return 0.0
    return float(np.std(loads) / mean)
