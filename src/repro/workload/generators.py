"""Workload generators: uniform and cluster-skewed query sets."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.index.ivf import IVFFlatIndex


@dataclass(frozen=True)
class Workload:
    """A query workload.

    Attributes:
        queries: ``(nq, dim)`` query matrix.
        skew: the concentration parameter the workload was built with
            (0 = uniform over clusters, 1 = maximally concentrated).
        hot_lists: inverted-list ids the workload was concentrated on
            (empty for uniform workloads).
    """

    queries: np.ndarray
    skew: float = 0.0
    hot_lists: tuple[int, ...] = ()

    @property
    def n_queries(self) -> int:
        return int(self.queries.shape[0])


def poisson_arrivals(
    n_queries: int, rate_qps: float, seed: int = 0
) -> np.ndarray:
    """Open-loop Poisson arrival timestamps.

    Models clients issuing queries independently at an average offered
    load of ``rate_qps`` queries per (simulated) second — the standard
    open-loop methodology for latency-under-load curves.

    Returns:
        Ascending array of ``n_queries`` arrival times starting at 0.
    """
    if n_queries <= 0:
        raise ValueError(f"n_queries must be positive, got {n_queries}")
    if rate_qps <= 0:
        raise ValueError(f"rate_qps must be positive, got {rate_qps}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_qps, size=n_queries)
    gaps[0] = 0.0
    return np.cumsum(gaps)


def bursty_arrivals(
    n_queries: int,
    rate_qps: float,
    burst_factor: float = 5.0,
    burst_fraction: float = 0.2,
    seed: int = 0,
) -> np.ndarray:
    """On/off bursty arrival timestamps (Markov-modulated Poisson).

    The process alternates between a quiet state and a burst state
    whose instantaneous rate is ``burst_factor`` times higher; state
    flips are sampled per arrival so that roughly ``burst_fraction`` of
    queries arrive inside bursts. The *average* rate is ``rate_qps``,
    making latency directly comparable to :func:`poisson_arrivals` at
    the same offered load — burstiness shows up purely in the tail.

    Returns:
        Ascending array of ``n_queries`` arrival times starting at 0.
    """
    if n_queries <= 0:
        raise ValueError(f"n_queries must be positive, got {n_queries}")
    if rate_qps <= 0:
        raise ValueError(f"rate_qps must be positive, got {rate_qps}")
    if burst_factor < 1.0:
        raise ValueError(f"burst_factor must be >= 1, got {burst_factor}")
    if not 0.0 <= burst_fraction < 1.0:
        raise ValueError(
            f"burst_fraction must be in [0, 1), got {burst_fraction}"
        )
    rng = np.random.default_rng(seed)
    in_burst = rng.random(n_queries) < burst_fraction
    # Rates chosen so the mixture's mean inter-arrival equals 1/rate:
    # E[gap] = f/(c*q) + (1-f)/q = 1/rate  =>  q = rate*(f/c + 1 - f).
    quiet_rate = rate_qps * (
        burst_fraction / burst_factor + 1.0 - burst_fraction
    )
    burst_rate = quiet_rate * burst_factor
    gaps = np.where(
        in_burst,
        rng.exponential(1.0 / burst_rate, size=n_queries),
        rng.exponential(1.0 / quiet_rate, size=n_queries),
    )
    gaps[0] = 0.0
    return np.cumsum(gaps)


def uniform_workload(
    queries_pool: np.ndarray, n_queries: int, seed: int = 0
) -> Workload:
    """Sample ``n_queries`` uniformly from a pool of candidate queries."""
    pool = np.atleast_2d(np.asarray(queries_pool, dtype=np.float32))
    if n_queries <= 0:
        raise ValueError(f"n_queries must be positive, got {n_queries}")
    rng = np.random.default_rng(seed)
    picks = rng.choice(pool.shape[0], size=n_queries, replace=True)
    return Workload(queries=pool[picks], skew=0.0)


def skewed_workload(
    queries_pool: np.ndarray,
    index: IVFFlatIndex,
    n_queries: int,
    skew: float,
    nprobe: int = 8,
    n_hot_lists: int = 2,
    hot_list_ids: "tuple[int, ...] | list[int] | np.ndarray | None" = None,
    hot_fraction: float = 0.1,
    seed: int = 0,
) -> Workload:
    """Build a workload concentrated on a hot set of inverted lists.

    Every pool query is scored by its *probe-mass concentration*: the
    fraction of its candidate mass (probed-list sizes over its
    ``nprobe`` nearest lists) that falls inside the hot list set. The
    most-concentrated ``hot_fraction`` of the pool forms the hot pool.
    With probability ``skew`` a workload query is drawn from the hot
    pool, otherwise uniformly from the whole pool. ``skew=0`` reduces
    to a uniform workload; ``skew=1`` sends every query's work to the
    machines hosting the hot lists — the adversarial case for
    vector-based partitioning.

    The paper's skewed-load experiments (Section 6.2.2) manipulate the
    query set so particular *machines* become hot; passing the lists
    hosted by one machine of a vector plan as ``hot_list_ids``
    reproduces exactly that.

    Args:
        queries_pool: candidate queries, ``(n, dim)``.
        index: trained IVF index supplying the clustering.
        n_queries: queries to draw.
        skew: concentration in ``[0, 1]``.
        nprobe: probes per query used to compute probe mass.
        n_hot_lists: how many of the most populous lists count as hot
            (ignored when ``hot_list_ids`` is given).
        hot_list_ids: explicit hot inverted-list ids.
        hot_fraction: share of the pool forming the hot pool.
        seed: RNG seed.
    """
    if not 0.0 <= skew <= 1.0:
        raise ValueError(f"skew must be in [0, 1], got {skew}")
    if n_hot_lists <= 0:
        raise ValueError(f"n_hot_lists must be positive, got {n_hot_lists}")
    if not 0.0 < hot_fraction <= 1.0:
        raise ValueError(f"hot_fraction must be in (0, 1], got {hot_fraction}")
    pool = np.atleast_2d(np.asarray(queries_pool, dtype=np.float32))
    if n_queries <= 0:
        raise ValueError(f"n_queries must be positive, got {n_queries}")
    rng = np.random.default_rng(seed)

    sizes = index.list_sizes().astype(np.float64)
    if hot_list_ids is not None:
        hot = tuple(int(x) for x in hot_list_ids)
        if not hot:
            raise ValueError("hot_list_ids must be non-empty when given")
    else:
        hot = tuple(int(x) for x in np.argsort(-sizes)[:n_hot_lists])
    hot_mask = np.zeros(index.nlist, dtype=bool)
    hot_mask[list(hot)] = True

    probes = index.probe(pool, nprobe=nprobe)
    probe_mass = sizes[probes]
    total_mass = probe_mass.sum(axis=1)
    hot_mass = np.where(hot_mask[probes], probe_mass, 0.0).sum(axis=1)
    concentration = hot_mass / np.maximum(total_mass, 1e-12)

    n_hot_pool = max(1, int(round(pool.shape[0] * hot_fraction)))
    hot_pool = np.argsort(-concentration, kind="stable")[:n_hot_pool]

    picks = np.empty(n_queries, dtype=np.int64)
    for i in range(n_queries):
        if rng.random() < skew:
            picks[i] = hot_pool[int(rng.integers(hot_pool.size))]
        else:
            picks[i] = int(rng.integers(pool.shape[0]))
    return Workload(queries=pool[picks], skew=skew, hot_lists=hot)
