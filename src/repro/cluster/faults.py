"""Deterministic fault injection for the simulated cluster.

A :class:`FaultSchedule` is a seeded, immutable list of timed events in
*simulated* time that the :class:`~repro.cluster.cluster.Cluster`
consults on every ``compute()`` / ``transfer()`` call:

- ``crash`` / ``recover`` — a worker leaves service at time ``t`` and
  (optionally) returns later. Work routed to a down worker raises
  :class:`WorkerUnavailableError`, which the execution engine turns
  into timed retries, replica failover, or (under ``degraded_mode``)
  an explicitly coverage-flagged partial result.
- ``straggler`` — a per-node compute-rate multiplier takes effect at
  time ``t`` (``0.25`` means the node runs 4x slower; ``1.0`` clears
  it). Stragglers trigger hedged requests when the engine's
  ``hedge_latency_threshold`` is set.
- ``link`` — the shared interconnect degrades at time ``t``: a
  bandwidth multiplier and/or a per-message drop probability. Dropped
  messages are retransmitted after a detection delay, charging the
  sender each attempt; drops are decided by a counter-based seeded
  RNG, so a fixed schedule replays **byte-identically** run to run.

The schedule is purely declarative — it never mutates the cluster.
Availability is sampled at each work item's requested start time, so a
single pipelined batch can straddle crash, recovery, and degradation
windows mid-run.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

#: Recognised event kinds.
EVENT_KINDS = ("crash", "recover", "straggler", "link")

#: Per-message drop probabilities above this are rejected: they make
#: expected retransmit counts explode and model a partition, which is
#: what ``crash`` is for.
MAX_DROP_PROBABILITY = 0.9

#: Retransmits per message are capped so a pathological schedule cannot
#: stall the simulation; past the cap the message goes through.
MAX_RETRANSMITS = 16


class WorkerUnavailableError(RuntimeError):
    """A simulated RPC reached a worker that is failed or crashed.

    Subclasses ``RuntimeError`` so pre-existing callers that treated
    failed-worker computes as fatal keep matching; fault-aware engines
    catch this type specifically and retry / fail over / degrade.
    """


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault transition.

    Attributes:
        time: simulated timestamp at which the event takes effect.
        kind: one of :data:`EVENT_KINDS`.
        node: target worker id (``crash`` / ``recover`` / ``straggler``);
            ignored for ``link`` events, which affect the shared fabric.
        rate_multiplier: straggler compute-rate multiplier from ``time``
            on (``1.0`` restores full speed).
        bandwidth_factor: link bandwidth multiplier from ``time`` on.
        drop_probability: per-message drop probability from ``time`` on.
    """

    time: float
    kind: str
    node: int = -1
    rate_multiplier: float = 1.0
    bandwidth_factor: float = 1.0
    drop_probability: float = 0.0

    @property
    def label(self) -> str:
        """Short marker text (the trace exporter's instant-event name)."""
        if self.kind == "straggler":
            return f"straggler x{self.rate_multiplier:g}"
        if self.kind == "link":
            parts = [f"bw x{self.bandwidth_factor:g}"]
            if self.drop_probability > 0:
                parts.append(f"drop {self.drop_probability:g}")
            return "link " + ", ".join(parts)
        return self.kind

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; supported: "
                f"{', '.join(EVENT_KINDS)}"
            )
        if self.time < 0:
            raise ValueError(f"event time must be >= 0, got {self.time}")
        if self.kind in ("crash", "recover", "straggler") and self.node < 0:
            raise ValueError(f"{self.kind} events need a worker id >= 0")
        if self.rate_multiplier <= 0:
            raise ValueError(
                f"rate_multiplier must be positive, got {self.rate_multiplier}"
            )
        if not 0 < self.bandwidth_factor <= 1.0:
            raise ValueError(
                f"bandwidth_factor must be in (0, 1], got "
                f"{self.bandwidth_factor}"
            )
        if not 0 <= self.drop_probability <= MAX_DROP_PROBABILITY:
            raise ValueError(
                f"drop_probability must be in [0, {MAX_DROP_PROBABILITY}], "
                f"got {self.drop_probability}"
            )


class FaultSchedule:
    """An immutable, seeded timeline of fault events.

    Args:
        events: fault events in any order; sorted by time internally.
        seed: seeds the counter-based RNG deciding message drops (and
            records which seed generated a random schedule).
        drop_detect_seconds: simulated delay before a sender notices a
            dropped message and retransmits.
    """

    def __init__(
        self,
        events: "list[FaultEvent] | tuple[FaultEvent, ...]",
        seed: int = 0,
        drop_detect_seconds: float = 5e-5,
    ) -> None:
        if drop_detect_seconds < 0:
            raise ValueError(
                f"drop_detect_seconds must be >= 0, got {drop_detect_seconds}"
            )
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.time, e.kind, e.node))
        )
        self.seed = int(seed)
        self.drop_detect_seconds = float(drop_detect_seconds)
        # Per-node availability toggles and straggler steps, presorted
        # for bisect lookups at arbitrary simulated times.
        self._down_times: dict[int, list[float]] = {}
        self._down_state: dict[int, list[bool]] = {}
        self._rate_times: dict[int, list[float]] = {}
        self._rate_mult: dict[int, list[float]] = {}
        self._link_times: list[float] = []
        self._link_state: list[tuple[float, float]] = []
        for event in self.events:
            if event.kind in ("crash", "recover"):
                self._down_times.setdefault(event.node, []).append(event.time)
                self._down_state.setdefault(event.node, []).append(
                    event.kind == "crash"
                )
            elif event.kind == "straggler":
                self._rate_times.setdefault(event.node, []).append(event.time)
                self._rate_mult.setdefault(event.node, []).append(
                    event.rate_multiplier
                )
            else:  # link
                self._link_times.append(event.time)
                self._link_state.append(
                    (event.bandwidth_factor, event.drop_probability)
                )

    # ------------------------------------------------------------------
    # State queries (all sampled at a simulated time t)
    # ------------------------------------------------------------------

    def is_down(self, node: int, t: float) -> bool:
        """Whether ``node`` is crashed at simulated time ``t``."""
        times = self._down_times.get(node)
        if not times:
            return False
        pos = bisect.bisect_right(times, t)
        if pos == 0:
            return False
        return self._down_state[node][pos - 1]

    def rate_multiplier(self, node: int, t: float) -> float:
        """Compute-rate multiplier in effect on ``node`` at ``t``."""
        times = self._rate_times.get(node)
        if not times:
            return 1.0
        pos = bisect.bisect_right(times, t)
        if pos == 0:
            return 1.0
        return self._rate_mult[node][pos - 1]

    def link_state(self, t: float) -> tuple[float, float]:
        """``(bandwidth_factor, drop_probability)`` in effect at ``t``."""
        if not self._link_times:
            return 1.0, 0.0
        pos = bisect.bisect_right(self._link_times, t)
        if pos == 0:
            return 1.0, 0.0
        return self._link_state[pos - 1]

    def drop_roll(self, message_index: int) -> float:
        """Deterministic uniform draw in ``[0, 1)`` for one message.

        Counter-based (seed, message index) seeding makes drop
        decisions independent of call history, so identical runs see
        identical drops.
        """
        return float(
            np.random.default_rng((self.seed, int(message_index))).random()
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def horizon(self) -> float:
        """Timestamp of the last scheduled event (0.0 when empty)."""
        if not self.events:
            return 0.0
        return self.events[-1].time

    def events_between(
        self, start: float, end: float
    ) -> tuple[FaultEvent, ...]:
        """Events with ``start <= time < end`` (timeline windowing)."""
        return tuple(e for e in self.events if start <= e.time < end)

    def nodes_touched(self) -> frozenset:
        """Workers named by any node-scoped event."""
        return frozenset(
            e.node for e in self.events if e.kind != "link"
        )

    def describe(self) -> str:
        return (
            f"FaultSchedule({len(self.events)} events, seed={self.seed}, "
            f"horizon={self.horizon:.3g}s)"
        )

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    @classmethod
    def random(
        cls,
        n_workers: int,
        duration: float,
        seed: int = 0,
        crash_prob: float = 0.5,
        recover_prob: float = 0.7,
        straggler_prob: float = 0.4,
        link_prob: float = 0.3,
        min_rate_multiplier: float = 0.1,
        max_drop_probability: float = 0.15,
    ) -> "FaultSchedule":
        """A deterministic random schedule over ``[0, duration]``.

        Every worker independently may crash once (recovering with
        probability ``recover_prob``) and may straggle for a window;
        the shared link may degrade for a window. Two calls with the
        same arguments produce identical schedules — the backbone of
        the chaos property tests.
        """
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        rng = np.random.default_rng(seed)
        events: list[FaultEvent] = []
        for node in range(n_workers):
            if rng.random() < crash_prob:
                t0 = float(rng.uniform(0.05, 0.7) * duration)
                events.append(FaultEvent(time=t0, kind="crash", node=node))
                if rng.random() < recover_prob:
                    t1 = t0 + float(rng.uniform(0.05, 0.3) * duration)
                    events.append(
                        FaultEvent(time=t1, kind="recover", node=node)
                    )
            if rng.random() < straggler_prob:
                t0 = float(rng.uniform(0.0, 0.6) * duration)
                mult = float(rng.uniform(min_rate_multiplier, 0.5))
                events.append(
                    FaultEvent(
                        time=t0,
                        kind="straggler",
                        node=node,
                        rate_multiplier=mult,
                    )
                )
                t1 = t0 + float(rng.uniform(0.1, 0.4) * duration)
                events.append(
                    FaultEvent(
                        time=t1,
                        kind="straggler",
                        node=node,
                        rate_multiplier=1.0,
                    )
                )
        if rng.random() < link_prob:
            t0 = float(rng.uniform(0.0, 0.6) * duration)
            events.append(
                FaultEvent(
                    time=t0,
                    kind="link",
                    bandwidth_factor=float(rng.uniform(0.25, 0.9)),
                    drop_probability=float(
                        rng.uniform(0.0, max_drop_probability)
                    ),
                )
            )
            t1 = t0 + float(rng.uniform(0.1, 0.4) * duration)
            events.append(FaultEvent(time=t1, kind="link"))
        return cls(events, seed=seed)
