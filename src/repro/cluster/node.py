"""Simulated worker node.

A node is a single-resource timeline: work items (compute or blocking
sends) occupy it from ``max(free_at, earliest)`` for their duration.

Scale-preserving derating
-------------------------
The dataset analogues are roughly ``SCALE_FACTOR`` times smaller than
the paper's (e.g. 20k vs 1M vectors), which shrinks per-query scan work
by the same factor while leaving per-message latency and per-query
orchestration untouched. To keep the paper's compute : communication :
overhead ratios — the quantities every relative result depends on —
worker compute rate and link bandwidth are both derated by
``SCALE_FACTOR`` from the physical platform (56-thread Xeon Gold 6258R,
100 Gb/s links). The *client* keeps the full hardware rate because its
work (ranking ``nlist`` centroids, seeding the heap) does not scale
with dataset size. See DESIGN.md, "Scaling conventions".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.stats import TimeBreakdown

#: Dataset scale-down factor the simulation compensates for.
SCALE_FACTOR = 50.0

#: Physical fp32 element rate of one node (56 threads x AVX-512,
#: derated for memory-bound inverted-list scans).
PHYSICAL_COMPUTE_RATE = 5.0e10

#: Effective worker rate after scale-preserving derating.
DEFAULT_COMPUTE_RATE = PHYSICAL_COMPUTE_RATE / SCALE_FACTOR

#: Client rate: full hardware speed (client work does not scale with
#: dataset size, so it must not be derated).
DEFAULT_CLIENT_COMPUTE_RATE = PHYSICAL_COMPUTE_RATE

#: Physical per-node memory bandwidth (bytes/s) of the reference
#: platform (~6-channel DDR4-2933 per socket). At the fp32 rate above
#: a full-width scan wants 4 bytes per element per second — more than
#: one socket's bandwidth — which is exactly the bandwidth-bound
#: regime SQ8 codes (1 byte/element) relieve.
PHYSICAL_MEMORY_BANDWIDTH = 1.0e11

#: Effective per-node bandwidth after scale-preserving derating,
#: matching DEFAULT_COMPUTE_RATE so compute : bandwidth ratios match
#: the physical platform.
DEFAULT_MEMORY_BANDWIDTH = PHYSICAL_MEMORY_BANDWIDTH / SCALE_FACTOR


#: Idle intervals a node remembers for backfilling. Bounds memory and
#: per-occupy cost; when the list overflows, the *narrowest* gap is
#: forgotten (wide idle windows are the ones later work can use).
MAX_TRACKED_GAPS = 1024


@dataclass
class WorkerNode:
    """One machine in the simulated cluster.

    The node is a single-resource timeline *with backfilling*: work is
    normally appended at ``max(free_at, earliest)``, but when a work
    item's dependencies force an idle gap, the gap is remembered and
    later-submitted items whose dependencies allow it may run inside it.
    This makes the makespan insensitive to the engine's submission
    order, as a real multi-threaded node would be.

    Attributes:
        node_id: identifier (client uses ``-1``).
        compute_rate: fp32 elements processed per simulated second.
        memory_bandwidth: bytes/second the node's memory system can
            stream, shared by all scans concurrently resident on the
            node. ``None`` (the default) models a compute-bound node —
            the pre-existing behaviour, with no bandwidth term at all.
        free_at: simulated time at which the node's tail becomes idle.
        breakdown: per-category time accumulated on this node.
        current_bytes / peak_bytes: resident memory tracking for the
            paper's peak-memory experiments (Table 5).
    """

    node_id: int
    compute_rate: float = DEFAULT_COMPUTE_RATE
    memory_bandwidth: "float | None" = None
    free_at: float = 0.0
    breakdown: TimeBreakdown = field(default_factory=TimeBreakdown)
    current_bytes: int = 0
    peak_bytes: int = 0
    _gaps: list[list[float]] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.compute_rate <= 0:
            raise ValueError("compute_rate must be positive")
        if self.memory_bandwidth is not None and self.memory_bandwidth <= 0:
            raise ValueError("memory_bandwidth must be positive or None")

    def compute_duration(
        self,
        elements: float,
        bytes_touched: "float | None" = None,
        concurrency: int = 1,
    ) -> float:
        """Seconds needed to process ``elements`` fp32 elements.

        With a ``memory_bandwidth`` cap set and ``bytes_touched``
        provided, the duration is a roofline: the larger of the
        compute time and the time to stream the scan's bytes through a
        memory system shared with ``concurrency - 1`` other in-flight
        scans (each concurrent scan sees ``1/concurrency`` of the
        cap). More concurrency therefore *stretches* bandwidth-bound
        scans — the "more cores hurts" contention regime — while
        compute-bound scans (e.g. 1-byte SQ8 codes) are unaffected.
        """
        if elements < 0:
            raise ValueError(f"elements must be non-negative, got {elements}")
        duration = elements / self.compute_rate
        if self.memory_bandwidth is not None and bytes_touched is not None:
            if bytes_touched < 0:
                raise ValueError(
                    f"bytes_touched must be non-negative, got {bytes_touched}"
                )
            if concurrency < 1:
                raise ValueError(
                    f"concurrency must be at least 1, got {concurrency}"
                )
            duration = max(
                duration,
                bytes_touched * concurrency / self.memory_bandwidth,
            )
        return duration

    def occupy(
        self, duration: float, earliest: float = 0.0, category: str = "computation"
    ) -> tuple[float, float]:
        """Reserve the node for ``duration`` seconds.

        The work starts no earlier than ``earliest`` (its dependencies)
        and runs either inside a remembered idle gap or after the
        current timeline tail.

        Returns:
            ``(start, end)`` simulated timestamps.
        """
        if duration < 0:
            raise ValueError(f"duration must be non-negative, got {duration}")
        self.breakdown.charge(category, duration)
        # Backfill: earliest-fitting gap wins.
        for i, gap in enumerate(self._gaps):
            start = max(gap[0], earliest)
            if start + duration <= gap[1]:
                end = start + duration
                replacement = []
                if start - gap[0] > 0.0:
                    replacement.append([gap[0], start])
                if gap[1] - end > 0.0:
                    replacement.append([end, gap[1]])
                self._gaps[i : i + 1] = replacement
                return start, end
        start = max(self.free_at, earliest)
        if start > self.free_at:
            self._gaps.append([self.free_at, start])
            if len(self._gaps) > MAX_TRACKED_GAPS:
                narrowest = min(
                    range(len(self._gaps)),
                    key=lambda i: self._gaps[i][1] - self._gaps[i][0],
                )
                del self._gaps[narrowest]
        end = start + duration
        self.free_at = end
        return start, end

    def allocate(self, nbytes: int) -> None:
        """Track a resident-memory allocation."""
        if nbytes < 0:
            raise ValueError(f"allocation must be non-negative, got {nbytes}")
        self.current_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)

    def release(self, nbytes: int) -> None:
        """Release previously tracked memory."""
        if nbytes < 0:
            raise ValueError(f"release must be non-negative, got {nbytes}")
        self.current_bytes = max(0, self.current_bytes - nbytes)

    def reset_time(self) -> None:
        """Clear the timeline and accounting (memory tracking persists)."""
        self.free_at = 0.0
        self.breakdown = TimeBreakdown()
        self._gaps = []
