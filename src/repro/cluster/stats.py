"""Time-breakdown accounting (computation / communication / other).

Matches the categories of the paper's Figures 2(b) and 8.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class TimeBreakdown:
    """Accumulated simulated seconds per activity category.

    Attributes:
        computation: time spent in distance kernels.
        communication: time spent transferring data (including latency).
        other: everything else (planning, heap maintenance, dispatch).
    """

    computation: float = 0.0
    communication: float = 0.0
    other: float = 0.0

    @property
    def total(self) -> float:
        return self.computation + self.communication + self.other

    def add(self, other: "TimeBreakdown") -> None:
        """Accumulate another breakdown into this one in place."""
        self.computation += other.computation
        self.communication += other.communication
        self.other += other.other

    def charge(self, category: str, seconds: float) -> None:
        """Add ``seconds`` to the named category.

        Raises:
            ValueError: for negative durations or unknown categories.
        """
        if seconds < 0:
            raise ValueError(f"cannot charge negative time {seconds}")
        if category == "computation":
            self.computation += seconds
        elif category == "communication":
            self.communication += seconds
        elif category == "other":
            self.other += seconds
        else:
            raise ValueError(f"unknown time category {category!r}")

    def fractions(self) -> dict[str, float]:
        """Category shares of the total (all zero for an empty breakdown)."""
        total = self.total
        if total <= 0.0:
            return {"computation": 0.0, "communication": 0.0, "other": 0.0}
        return {
            "computation": self.computation / total,
            "communication": self.communication / total,
            "other": self.other / total,
        }

    def copy(self) -> "TimeBreakdown":
        return TimeBreakdown(self.computation, self.communication, self.other)
