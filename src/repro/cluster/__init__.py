"""Discrete-event cluster simulator.

The paper evaluates HARMONY on a 20-node cluster (56-thread Xeon nodes,
100 Gb/s links, OpenMPI with blocking and non-blocking modes). This
package reproduces that platform's *cost structure* deterministically:

- :class:`~repro.cluster.node.WorkerNode` charges compute time as
  ``elements / compute_rate`` to a per-node timeline,
- :class:`~repro.cluster.network.NetworkModel` charges transfers as
  ``latency + bytes / bandwidth``, with blocking transfers occupying the
  sender and non-blocking ones overlapping with computation,
- :class:`~repro.cluster.cluster.Cluster` tracks per-node timelines,
  computation/communication/other breakdowns, per-node load, and peak
  memory — everything the paper's Figures 2(b), 8 and Tables 5 report.

Simulated QPS is ``queries / makespan`` where the makespan emerges from
queueing on the node timelines, so load imbalance and pruning both show
up exactly as they would on real hardware.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.faults import (
    FaultEvent,
    FaultSchedule,
    WorkerUnavailableError,
)
from repro.cluster.messages import (
    MESSAGE_HEADER_BYTES,
    partial_result_bytes,
    query_chunk_bytes,
    result_set_bytes,
)
from repro.cluster.host_faults import (
    DelayScan,
    DropSharedMemory,
    HostFaultCounters,
    HostFaultError,
    HostFaultInjector,
    InjectedWorkerKill,
    KillWorker,
)
from repro.cluster.network import CommMode, NetworkModel
from repro.cluster.node import WorkerNode
from repro.cluster.recovery import (
    RecoveryManager,
    RecoveryReport,
    ReplicaDirectory,
    unavailable_shards,
)
from repro.cluster.stats import TimeBreakdown

__all__ = [
    "Cluster",
    "CommMode",
    "DelayScan",
    "DropSharedMemory",
    "FaultEvent",
    "FaultSchedule",
    "HostFaultCounters",
    "HostFaultError",
    "HostFaultInjector",
    "InjectedWorkerKill",
    "KillWorker",
    "MESSAGE_HEADER_BYTES",
    "NetworkModel",
    "RecoveryManager",
    "RecoveryReport",
    "ReplicaDirectory",
    "TimeBreakdown",
    "WorkerNode",
    "WorkerUnavailableError",
    "partial_result_bytes",
    "query_chunk_bytes",
    "result_set_bytes",
    "unavailable_shards",
]
