"""Network cost model.

Models the paper's 100 Gb/s interconnect with per-message latency.
Transfer time is ``latency + bytes / bandwidth``; the communication
*mode* decides whether the sender is occupied for the whole transfer
(blocking, MPI_Send) or only for a small injection overhead
(non-blocking, MPI_Isend overlapping with local computation) — the
B / NB distinction of the paper's Figure 2(b).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class CommMode(str, enum.Enum):
    """Blocking vs non-blocking (overlapped) communication."""

    BLOCKING = "blocking"
    NONBLOCKING = "nonblocking"


#: Sender-side cost of posting a non-blocking send, as a fraction of the
#: full transfer time. Captures MPI_Isend descriptor setup; the payload
#: itself moves concurrently with computation.
NONBLOCKING_SENDER_SHARE = 0.1


@dataclass(frozen=True)
class NetworkModel:
    """Point-to-point link characteristics shared by all node pairs.

    Attributes:
        bandwidth_bytes_per_s: link bandwidth. Default is the paper's
            100 Gb/s fabric derated by the dataset scale factor (see
            ``repro.cluster.node``) so payload transfer times keep their
            full-scale proportion to compute times. Latency is *not*
            derated: message counts per query are scale-invariant.
        latency_s: per-message latency (switch + software stack).
        mode: blocking or non-blocking sends.
    """

    bandwidth_bytes_per_s: float = 100e9 / 8 / 50.0
    latency_s: float = 3e-6
    mode: CommMode = CommMode.NONBLOCKING

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be non-negative")

    def transfer_time(
        self, nbytes: int, bandwidth_factor: float = 1.0
    ) -> float:
        """End-to-end time for one message of ``nbytes`` payload.

        ``bandwidth_factor`` scales the effective bandwidth (degraded
        links under fault injection); ``1.0`` is the healthy fabric.
        """
        if nbytes < 0:
            raise ValueError(f"message size must be non-negative, got {nbytes}")
        if bandwidth_factor <= 0:
            raise ValueError(
                f"bandwidth_factor must be positive, got {bandwidth_factor}"
            )
        return self.latency_s + nbytes / (
            self.bandwidth_bytes_per_s * bandwidth_factor
        )

    def sender_busy_time(
        self, nbytes: int, bandwidth_factor: float = 1.0
    ) -> float:
        """Time the *sender* is occupied by the transfer.

        Blocking sends occupy the sender for the full transfer;
        non-blocking sends only for the injection overhead.
        """
        full = self.transfer_time(nbytes, bandwidth_factor=bandwidth_factor)
        if self.mode is CommMode.BLOCKING:
            return full
        return full * NONBLOCKING_SENDER_SHARE

    def with_mode(self, mode: CommMode) -> "NetworkModel":
        """Copy of this model with a different communication mode."""
        return NetworkModel(
            bandwidth_bytes_per_s=self.bandwidth_bytes_per_s,
            latency_s=self.latency_s,
            mode=mode,
        )
