"""Wire-format size accounting for the messages HARMONY exchanges.

The simulator only needs message *sizes*; these helpers centralize the
byte math so computation and tests agree on it. Sizes follow the
paper's observation that intermediate (partial-distance) results are
far smaller than the raw vectors they describe (Section 1).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Fixed per-message envelope: MPI/tcp headers, query id, shard/slice ids.
MESSAGE_HEADER_BYTES = 64

#: Bytes per transmitted vector coordinate (fp32).
FLOAT_BYTES = 4

#: Bytes per partial-result entry: fp64 accumulated distance + int32
#: candidate index within the shard.
PARTIAL_ENTRY_BYTES = 12

#: Bytes per final result entry: fp64 distance + int64 global id.
RESULT_ENTRY_BYTES = 16


def query_chunk_bytes(width: int) -> int:
    """Size of a query fragment covering ``width`` dimensions."""
    if width < 0:
        raise ValueError(f"width must be non-negative, got {width}")
    return MESSAGE_HEADER_BYTES + width * FLOAT_BYTES


def partial_result_bytes(n_survivors: int) -> int:
    """Size of a partial-distance message for ``n_survivors`` candidates."""
    if n_survivors < 0:
        raise ValueError(f"n_survivors must be non-negative, got {n_survivors}")
    return MESSAGE_HEADER_BYTES + n_survivors * PARTIAL_ENTRY_BYTES


def result_set_bytes(k: int) -> int:
    """Size of a top-``k`` result message."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    return MESSAGE_HEADER_BYTES + k * RESULT_ENTRY_BYTES


@dataclass(frozen=True)
class QueryChunk:
    """A query restricted to one dimension slice, bound for one machine."""

    query_id: int
    shard_id: int
    slice_id: int
    width: int

    @property
    def nbytes(self) -> int:
        return query_chunk_bytes(self.width)


@dataclass(frozen=True)
class PartialResult:
    """Accumulated partial distances forwarded between pipeline stages."""

    query_id: int
    shard_id: int
    slice_id: int
    n_survivors: int

    @property
    def nbytes(self) -> int:
        return partial_result_bytes(self.n_survivors)


@dataclass(frozen=True)
class ResultSet:
    """Final top-K answer returned to the client."""

    query_id: int
    k: int

    @property
    def nbytes(self) -> int:
        return result_set_bytes(self.k)
