"""Replica tracking and simulated re-replication after node loss.

The partition plan says where grid blocks *should* live; the
:class:`ReplicaDirectory` tracks where live copies *actually* are as
machines crash, blocks are re-replicated, and machines return. The
:class:`RecoveryManager` drives the repair loop the paper's evaluation
never exercises:

- on failure detection, every block that lost a copy is re-copied from
  a surviving replica to the least-loaded live machine, charging the
  simulated transfer and reporting the time to full redundancy;
- blocks whose every copy is gone stay *unavailable* — searches under
  ``degraded_mode`` skip them with an explicit coverage flag;
- on restore, the returning machine's copies come back (crash = the
  machine went offline with its data intact) and the extra copies
  created during repair are trimmed, returning the cluster to the
  plan's original placement.

Everything is deterministic: targets break ties by machine id and all
timing flows through the cluster's discrete-event primitives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.cluster import Cluster
from repro.core.partition import PartitionPlan
from repro.obs.trace import trace_context

#: Bytes per fp32 coordinate / int64 id, mirroring PipelineEngine's
#: placement accounting.
_FLOAT_BYTES = 4
_ID_BYTES = 8


def block_bytes(index, plan: PartitionPlan, shard: int, block: int) -> int:
    """Data bytes of grid block ``(shard, block)``: rows + global ids.

    Matches the placement accounting in ``PipelineEngine.place_data``
    minus the partial-result workspace (workspaces are rebuilt, not
    copied, during recovery).
    """
    widths = plan.slices.widths()
    shard_rows = int(index.list_sizes()[plan.lists_of_shard(shard)].sum())
    return shard_rows * (widths[block] * _FLOAT_BYTES + _ID_BYTES)


def unavailable_shards(
    cluster: Cluster,
    plan: PartitionPlan,
    directory: "ReplicaDirectory | None" = None,
) -> set[int]:
    """Vector shards with at least one grid block lacking a live copy.

    A shard whose dimension pipeline cannot complete (any block dead)
    contributes nothing; degraded-mode searches skip exactly this set,
    on every backend, which is what keeps the semantics consistent
    between the simulator and the host backends.
    """
    dead: set[int] = set()
    for shard in range(plan.n_vector_shards):
        for block in range(plan.n_dim_blocks):
            if directory is not None:
                holders = directory.holders(shard, block)
            else:
                holders = tuple(
                    int(m) for m in plan.replica_machines(shard, block)
                )
            if not any(not cluster.is_failed(m) for m in holders):
                dead.add(shard)
                break
    return dead


class ReplicaDirectory:
    """Where every grid block's live copies currently reside.

    Initialized from the plan's replica placement; mutated only through
    the explicit transitions below, so the engine's replica routing can
    trust it as the single source of truth once attached.
    """

    def __init__(self, plan: PartitionPlan, index) -> None:
        self.plan = plan
        self.index = index
        self._holders: dict[tuple[int, int], list[int]] = {}
        self._extras: dict[tuple[int, int], list[int]] = {}
        self._offline: dict[int, list[tuple[int, int]]] = {}
        for shard in range(plan.n_vector_shards):
            for block in range(plan.n_dim_blocks):
                machines = [
                    int(m) for m in plan.replica_machines(shard, block)
                ]
                self._holders[(shard, block)] = sorted(set(machines))

    def holders(self, shard: int, block: int) -> tuple[int, ...]:
        """Machines holding a live copy of ``(shard, block)``, ascending."""
        return tuple(self._holders[(shard, block)])

    def redundancy(self, shard: int, block: int) -> int:
        return len(self._holders[(shard, block)])

    @property
    def target_redundancy(self) -> int:
        return self.plan.replicas

    def blocks_on(self, machine: int) -> list[tuple[int, int]]:
        """Grid blocks with a live copy on ``machine``."""
        return [key for key, held in self._holders.items() if machine in held]

    def lost_blocks(self) -> list[tuple[int, int]]:
        """Blocks with zero live copies (coverage holes)."""
        return [key for key, held in self._holders.items() if not held]

    def under_replicated(self) -> list[tuple[int, int]]:
        """Blocks below the target redundancy, sorted."""
        return sorted(
            key
            for key, held in self._holders.items()
            if len(held) < self.target_redundancy
        )

    def block_nbytes(self, shard: int, block: int) -> int:
        return block_bytes(self.index, self.plan, shard, block)

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------

    def take_offline(self, machine: int) -> list[tuple[int, int]]:
        """A machine crashed: its copies leave service (data intact)."""
        stranded = self.blocks_on(machine)
        placed: list[tuple[int, int]] = []
        for key in stranded:
            self._holders[key].remove(machine)
            extras = self._extras.get(key, [])
            if machine in extras:
                # Repair-era copies die with the machine; only the
                # plan-placed copies return on restore.
                extras.remove(machine)
            else:
                placed.append(key)
        self._offline[machine] = placed
        return stranded

    def bring_online(self, machine: int) -> list[tuple[int, int]]:
        """A machine returned: its stranded copies rejoin service."""
        restored = self._offline.pop(machine, [])
        for key in restored:
            if machine not in self._holders[key]:
                self._holders[key].append(machine)
                self._holders[key].sort()
        return restored

    def add_copy(
        self, shard: int, block: int, machine: int, extra: bool = True
    ) -> None:
        """Register a freshly copied replica (from re-replication)."""
        key = (shard, block)
        if machine in self._holders[key]:
            raise ValueError(
                f"machine {machine} already holds block {key}"
            )
        self._holders[key].append(machine)
        self._holders[key].sort()
        if extra:
            self._extras.setdefault(key, []).append(machine)

    def drop_extra_copies(self, shard: int, block: int) -> list[int]:
        """Trim repair-created copies above the target redundancy.

        Returns the machines whose copy was dropped (memory to release).
        """
        key = (shard, block)
        dropped: list[int] = []
        extras = self._extras.get(key, [])
        while extras and len(self._holders[key]) > self.target_redundancy:
            machine = extras.pop()
            self._holders[key].remove(machine)
            dropped.append(machine)
        return dropped


@dataclass
class RecoveryReport:
    """Outcome of one repair or rebalance pass.

    Attributes:
        node: the machine that failed or returned.
        action: ``"re-replicate"`` or ``"rebalance"``.
        started_at: simulated time the pass began.
        completed_at: simulated arrival of the last copied block
            (equals ``started_at`` when nothing moved).
        blocks_copied / bytes_copied: repair traffic.
        blocks_lost: blocks left with zero live copies (coverage holes
            until the machine returns).
        blocks_trimmed: repair-era extra copies dropped by a rebalance.
    """

    node: int
    action: str
    started_at: float
    completed_at: float
    blocks_copied: int = 0
    bytes_copied: int = 0
    blocks_lost: int = 0
    blocks_trimmed: int = 0

    @property
    def time_to_full_redundancy(self) -> float:
        """Simulated seconds from detection to the last copy landing."""
        return self.completed_at - self.started_at

    def to_dict(self) -> dict:
        return {
            "node": self.node,
            "action": self.action,
            "started_at": self.started_at,
            "completed_at": self.completed_at,
            "time_to_full_redundancy": self.time_to_full_redundancy,
            "blocks_copied": self.blocks_copied,
            "bytes_copied": self.bytes_copied,
            "blocks_lost": self.blocks_lost,
            "blocks_trimmed": self.blocks_trimmed,
        }


@dataclass
class RecoveryManager:
    """Failure detection response: re-replicate, then rebalance.

    Args:
        cluster: the simulated cluster (timelines are charged here).
        plan: the active partition plan.
        index: the deployed index (block sizes).
        directory: live replica locations; the engine routing must be
            attached to the *same* directory for repairs to take effect.
    """

    cluster: Cluster
    plan: PartitionPlan
    index: object
    directory: ReplicaDirectory
    history: list[RecoveryReport] = field(default_factory=list)

    def _least_loaded_target(
        self, excluded: "set[int] | tuple[int, ...]"
    ) -> int | None:
        """Live machine with the fewest resident bytes, id as tiebreak."""
        options = [
            m
            for m in range(self.cluster.n_workers)
            if m not in excluded and not self.cluster.is_failed(m)
        ]
        if not options:
            return None
        return min(
            options,
            key=lambda m: (self.cluster.node(m).current_bytes, m),
        )

    def mark_failed(self, node: int) -> list[tuple[int, int]]:
        """Crash ``node`` without repairing (pre-detection window).

        Returns the grid blocks that lost a copy. Use :meth:`repair`
        once the simulated failure detector fires; :meth:`fail` does
        both in one step for zero-delay detection.
        """
        self.cluster.fail_worker(node)
        return self.directory.take_offline(node)

    def _repair_blocks(
        self,
        keys: "list[tuple[int, int]]",
        now: float,
        report: RecoveryReport,
    ) -> None:
        for shard, block in keys:
            survivors = [
                m
                for m in self.directory.holders(shard, block)
                if not self.cluster.is_failed(m)
            ]
            if not survivors:
                report.blocks_lost += 1
                continue
            if len(survivors) >= self.directory.target_redundancy:
                continue
            target = self._least_loaded_target(
                excluded=set(self.directory.holders(shard, block))
            )
            if target is None:
                continue
            nbytes = self.directory.block_nbytes(shard, block)
            with trace_context(
                self.cluster.tracer, "re-replicate",
                shard=shard, block=block,
            ):
                arrival = self.cluster.transfer(
                    survivors[0], target, nbytes, earliest=now
                )
            if self.cluster.metrics is not None:
                self.cluster.metrics.counter(
                    "harmony_repair_bytes_total",
                    "Bytes re-replicated after failures",
                ).inc(nbytes)
            self.cluster.allocate(target, nbytes)
            self.directory.add_copy(shard, block, target, extra=True)
            report.blocks_copied += 1
            report.bytes_copied += nbytes
            report.completed_at = max(report.completed_at, arrival)

    def repair(self, now: float = 0.0) -> RecoveryReport:
        """Re-replicate every under-replicated block in the directory.

        One failure-detector pass: blocks below the target redundancy
        are copied from a surviving replica to the least-loaded live
        machine, charging the simulated transfer; blocks with zero
        live copies are reported lost (coverage holes until their
        machine returns).
        """
        report = RecoveryReport(
            node=-1,
            action="re-replicate",
            started_at=now,
            completed_at=now,
        )
        self._repair_blocks(self.directory.under_replicated(), now, report)
        self.history.append(report)
        return report

    def fail(self, node: int, now: float = 0.0) -> RecoveryReport:
        """Crash ``node`` and repair every block that lost a copy.

        Each under-replicated block is copied from a surviving replica
        to the least-loaded live machine; the copy charges the real
        simulated transfer, so time-to-full-redundancy reflects block
        sizes and the network model. Blocks with no surviving copy are
        reported lost (and stay lost until the node returns).
        """
        stranded = self.mark_failed(node)
        report = RecoveryReport(
            node=node,
            action="re-replicate",
            started_at=now,
            completed_at=now,
        )
        self._repair_blocks(stranded, now, report)
        self.history.append(report)
        return report

    def restore(self, node: int, now: float = 0.0) -> RecoveryReport:
        """Return ``node`` to service and rebalance back to the plan.

        The machine comes back with its originally placed copies
        (crash = offline, not disk loss), closing any coverage holes it
        caused; repair-era extra copies above the target redundancy are
        then trimmed and their memory released.
        """
        self.cluster.restore_worker(node)
        restored = self.directory.bring_online(node)
        report = RecoveryReport(
            node=node,
            action="rebalance",
            started_at=now,
            completed_at=now,
        )
        for shard, block in restored:
            for machine in self.directory.drop_extra_copies(shard, block):
                self.cluster.release(
                    machine, self.directory.block_nbytes(shard, block)
                )
                report.blocks_trimmed += 1
        self.history.append(report)
        return report

    def total_repair_bytes(self) -> int:
        return sum(r.bytes_copied for r in self.history)
