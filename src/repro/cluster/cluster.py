"""Cluster: a client node plus N workers joined by a network model.

This is the execution substrate every distributed engine runs on. The
engines describe *what* work happens where (compute this many elements
on node 3, ship this many bytes from node 3 to node 0); the cluster
turns that into per-node timelines and aggregated statistics.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.faults import (
    MAX_RETRANSMITS,
    FaultSchedule,
    WorkerUnavailableError,
)
from repro.cluster.network import NetworkModel
from repro.cluster.node import (
    DEFAULT_CLIENT_COMPUTE_RATE,
    DEFAULT_COMPUTE_RATE,
    WorkerNode,
)
from repro.cluster.stats import TimeBreakdown

#: Node id used for the client / master node.
CLIENT_NODE = -1


class Cluster:
    """A simulated client + worker-pool deployment.

    Args:
        n_workers: number of worker machines (the paper uses 4/8/16
            workers plus one client).
        compute_rate: per-worker fp32 element rate — either one rate
            shared by all workers, or a sequence of ``n_workers`` rates
            for heterogeneous clusters (stragglers, mixed hardware).
        network: link model shared by all node pairs.
        client_compute_rate: client node rate (defaults to the
            physical, non-derated rate; see ``repro.cluster.node``).
        memory_bandwidth: per-worker memory bandwidth cap in
            bytes/second, shared by each node's concurrent scans.
            ``None`` (the default) keeps workers compute-bound and
            every existing timing byte-identical.
    """

    def __init__(
        self,
        n_workers: int,
        compute_rate: "float | list[float] | tuple[float, ...]" = (
            DEFAULT_COMPUTE_RATE
        ),
        network: NetworkModel | None = None,
        client_compute_rate: float | None = None,
        memory_bandwidth: "float | None" = None,
    ) -> None:
        if n_workers <= 0:
            raise ValueError(f"n_workers must be positive, got {n_workers}")
        if isinstance(compute_rate, (int, float)):
            rates = [float(compute_rate)] * n_workers
        else:
            rates = [float(r) for r in compute_rate]
            if len(rates) != n_workers:
                raise ValueError(
                    f"got {len(rates)} compute rates for {n_workers} workers"
                )
        self.network = network or NetworkModel()
        self.workers = [
            WorkerNode(
                node_id=i,
                compute_rate=rate,
                memory_bandwidth=memory_bandwidth,
            )
            for i, rate in enumerate(rates)
        ]
        self.client = WorkerNode(
            node_id=CLIENT_NODE,
            compute_rate=client_compute_rate or DEFAULT_CLIENT_COMPUTE_RATE,
        )
        self._failed: set[int] = set()
        self._fault_schedule: FaultSchedule | None = None
        self._message_counter = 0
        #: Per-run fault bookkeeping (reset by reset_time): message
        #: drops and retransmits observed by transfer().
        self.fault_counters: dict[str, int] = {"dropped_messages": 0}
        #: Optional event trace: (category, node_id, start, end) tuples
        #: recorded while tracing is enabled (see enable_tracing).
        self.events: list[tuple[str, int, float, float]] | None = None
        #: Optional structured span recorder (repro.obs.Tracer). Every
        #: compute / transfer / overhead charge is recorded with the
        #: producer's attribution context; None (the default) keeps the
        #: hot path one attribute check from the untraced build.
        self.tracer = None
        #: Optional live metrics registry (repro.obs.MetricsRegistry):
        #: scan counts, queue waits, transferred bytes, message drops.
        self.metrics = None

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    def node(self, node_id: int) -> WorkerNode:
        """Look up a node by id (``CLIENT_NODE`` for the client)."""
        if node_id == CLIENT_NODE:
            return self.client
        if not 0 <= node_id < self.n_workers:
            raise IndexError(
                f"node_id {node_id} out of range [0, {self.n_workers})"
            )
        return self.workers[node_id]

    def all_nodes(self) -> list[WorkerNode]:
        return [self.client, *self.workers]

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------

    def fail_worker(self, node_id: int) -> None:
        """Mark a worker as failed (it accepts no further work).

        Engines route around failed workers using block replicas; a
        block whose every replica is failed makes searches raise.
        """
        self.node(node_id)  # validates the id
        if node_id == CLIENT_NODE:
            raise ValueError("the client node cannot be failed")
        self._failed.add(node_id)

    def restore_worker(self, node_id: int) -> None:
        """Bring a failed worker back into service.

        Raises:
            IndexError: for out-of-range worker ids.
            ValueError: for ``CLIENT_NODE`` (it can never fail, so it
                can never be restored either).
        """
        self.node(node_id)  # validates the id
        if node_id == CLIENT_NODE:
            raise ValueError("the client node cannot be restored")
        self._failed.discard(node_id)

    def is_failed(self, node_id: int, at_time: float | None = None) -> bool:
        """Whether a worker is out of service.

        Manual ``fail_worker`` marks are time-independent; with a fault
        schedule attached and ``at_time`` given, scheduled crash
        windows are also consulted at that simulated time.
        """
        if node_id in self._failed:
            return True
        if self._fault_schedule is not None and at_time is not None:
            return self._fault_schedule.is_down(node_id, at_time)
        return False

    @property
    def failed_workers(self) -> frozenset:
        return frozenset(self._failed)

    # ------------------------------------------------------------------
    # Fault schedule (timed crash / straggler / link events)
    # ------------------------------------------------------------------

    @property
    def fault_schedule(self) -> FaultSchedule | None:
        return self._fault_schedule

    def set_fault_schedule(self, schedule: FaultSchedule | None) -> None:
        """Attach (or clear, with ``None``) a timed fault schedule.

        The schedule is consulted by :meth:`compute` / :meth:`transfer`
        at each work item's requested start time, so crashes,
        stragglers, and link degradation hit mid-run. With no schedule
        attached every code path is bit-identical to the fault-free
        simulator.
        """
        if schedule is not None and not isinstance(schedule, FaultSchedule):
            raise TypeError(
                f"expected a FaultSchedule or None, got {type(schedule)!r}"
            )
        self._fault_schedule = schedule
        self._message_counter = 0

    def rate_multiplier(self, node_id: int, at_time: float) -> float:
        """Straggler compute-rate multiplier on a node at ``at_time``."""
        if self._fault_schedule is None:
            return 1.0
        return self._fault_schedule.rate_multiplier(node_id, at_time)

    def projected_compute_seconds(
        self,
        node_id: int,
        elements: float,
        at_time: float = 0.0,
        bytes_touched: "float | None" = None,
        concurrency: int = 1,
    ) -> float:
        """Straggler-aware duration estimate for a compute request.

        This is what hedging policies compare against their latency
        threshold before committing to a replica.
        """
        duration = self.node(node_id).compute_duration(
            elements, bytes_touched=bytes_touched, concurrency=concurrency
        )
        multiplier = self.rate_multiplier(node_id, at_time)
        if multiplier != 1.0:
            duration /= multiplier
        return duration

    # ------------------------------------------------------------------
    # Work primitives
    # ------------------------------------------------------------------

    def enable_tracing(self) -> None:
        """Start recording (category, node, start, end) events.

        Tracing feeds :func:`repro.bench.timeline.render_timeline`;
        it costs memory proportional to the event count, so it is off
        by default.
        """
        self.events = []

    def disable_tracing(self) -> None:
        self.events = None

    def _record(
        self,
        category: str,
        node_id: int,
        start: float,
        end: float,
        **args,
    ) -> None:
        if end <= start:
            return
        if self.events is not None:
            self.events.append((category, node_id, start, end))
        if self.tracer is not None:
            # The span name comes from the producer's tracer context
            # (e.g. the engine's "scan" / "query-chunk" attribution);
            # None falls back to the category.
            self.tracer.record(None, category, node_id, start, end, **args)

    def compute(
        self,
        node_id: int,
        elements: float,
        earliest: float = 0.0,
        bytes_touched: "float | None" = None,
        concurrency: int = 1,
    ) -> tuple[float, float]:
        """Charge a distance-kernel computation to a node's timeline.

        ``bytes_touched`` / ``concurrency`` feed the node's optional
        memory-bandwidth roofline (see ``WorkerNode.compute_duration``);
        they are ignored on nodes without a bandwidth cap.

        Returns the ``(start, end)`` simulated timestamps.

        Raises:
            WorkerUnavailableError: when the node is manually failed,
                or a fault schedule has it crashed at ``earliest``.
        """
        if node_id in self._failed:
            raise WorkerUnavailableError(
                f"worker {node_id} is failed and cannot compute"
            )
        node = self.node(node_id)
        duration = node.compute_duration(
            elements, bytes_touched=bytes_touched, concurrency=concurrency
        )
        if self._fault_schedule is not None:
            if self._fault_schedule.is_down(node_id, earliest):
                raise WorkerUnavailableError(
                    f"worker {node_id} is crashed at simulated time "
                    f"{earliest:.6g}"
                )
            multiplier = self._fault_schedule.rate_multiplier(
                node_id, earliest
            )
            if multiplier != 1.0:
                duration /= multiplier
        start, end = node.occupy(duration, earliest, "computation")
        self._record("computation", node_id, start, end, elements=elements)
        if self.metrics is not None:
            self.metrics.counter(
                "harmony_compute_calls_total",
                "Compute charges per node",
                node=node_id,
            ).inc()
            self.metrics.histogram(
                "harmony_queue_wait_seconds",
                "Delay between a work item's readiness and its start",
            ).observe(start - earliest)
        return start, end

    def overhead(
        self, node_id: int, seconds: float, earliest: float = 0.0
    ) -> tuple[float, float]:
        """Charge non-kernel work (planning, heap updates, dispatch)."""
        start, end = self.node(node_id).occupy(seconds, earliest, "other")
        self._record("other", node_id, start, end)
        return start, end

    def transfer(
        self, src_id: int, dst_id: int, nbytes: int, earliest: float = 0.0
    ) -> float:
        """Move ``nbytes`` from ``src`` to ``dst``.

        The sender is occupied per the network mode (full transfer when
        blocking, injection overhead when non-blocking); the payload
        arrives ``latency + bytes/bandwidth`` after the send begins.

        Returns:
            Simulated arrival time of the data at ``dst``. Transfers
            between a node and itself are free and instantaneous.
        """
        if src_id == dst_id:
            return earliest
        src = self.node(src_id)
        if self.metrics is not None:
            self.metrics.counter(
                "harmony_transferred_bytes_total",
                "Payload bytes moved between nodes",
            ).inc(nbytes)
        schedule = self._fault_schedule
        if schedule is None:
            full = self.network.transfer_time(nbytes)
            busy = self.network.sender_busy_time(nbytes)
            start, end = src.occupy(busy, earliest, "communication")
            self._record(
                "communication", src_id, start, end,
                nbytes=nbytes, dst=dst_id,
            )
            return start + full
        bandwidth_factor, drop_p = schedule.link_state(earliest)
        full = self.network.transfer_time(
            nbytes, bandwidth_factor=bandwidth_factor
        )
        busy = self.network.sender_busy_time(
            nbytes, bandwidth_factor=bandwidth_factor
        )
        # Dropped messages: the sender pays the send, waits out the
        # detection delay, and retransmits. Drops are decided by the
        # schedule's counter-based RNG, so replays are byte-identical.
        clock = earliest
        if drop_p > 0.0:
            for _ in range(MAX_RETRANSMITS):
                roll = schedule.drop_roll(self._message_counter)
                self._message_counter += 1
                if roll >= drop_p:
                    break
                self.fault_counters["dropped_messages"] += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "harmony_dropped_messages_total",
                        "Simulated message drops (each retransmitted)",
                    ).inc()
                start, end = src.occupy(busy, clock, "communication")
                self._record(
                    "communication", src_id, start, end,
                    nbytes=nbytes, dst=dst_id, dropped=True,
                )
                clock = start + full + schedule.drop_detect_seconds
        start, end = src.occupy(busy, clock, "communication")
        self._record(
            "communication", src_id, start, end, nbytes=nbytes, dst=dst_id
        )
        return start + full

    # ------------------------------------------------------------------
    # Memory tracking
    # ------------------------------------------------------------------

    def allocate(self, node_id: int, nbytes: int) -> None:
        self.node(node_id).allocate(nbytes)

    def release(self, node_id: int, nbytes: int) -> None:
        self.node(node_id).release(nbytes)

    def peak_memory_bytes(self) -> int:
        """Maximum resident bytes observed on any worker."""
        return max(node.peak_bytes for node in self.workers)

    def mean_peak_memory_bytes(self) -> float:
        """Average of per-worker peak resident bytes."""
        return float(
            np.mean([node.peak_bytes for node in self.workers])
        )

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def makespan(self) -> float:
        """Completion time of the last work item on any node."""
        return max(node.free_at for node in self.all_nodes())

    def worker_loads(self) -> np.ndarray:
        """Per-worker computation seconds (the Load(n, pi) measurement)."""
        return np.array(
            [node.breakdown.computation for node in self.workers],
            dtype=np.float64,
        )

    def breakdown(self) -> TimeBreakdown:
        """Cluster-wide category totals (client + workers)."""
        total = TimeBreakdown()
        for node in self.all_nodes():
            total.add(node.breakdown)
        return total

    def reset_time(self) -> None:
        """Clear all timelines; keeps memory-tracking state.

        Fault bookkeeping (message counter, drop counts) is also
        cleared so repeated runs under the same schedule replay
        byte-identically.
        """
        for node in self.all_nodes():
            node.reset_time()
        if self.events is not None:
            self.events = []
        if self.tracer is not None:
            self.tracer.clear()
        self._message_counter = 0
        self.fault_counters = {"dropped_messages": 0}
