"""Deterministic chaos injection for the *host* execution path.

:mod:`repro.cluster.faults` scripts failures on the simulated
timeline; this module is its wall-clock twin for the real backends.
A :class:`HostFaultInjector` carries a seeded schedule of injection
points that the thread and process backends consult at well-defined
moments:

- **kill** (:class:`KillWorker`) — worker ``N`` dies when it *starts*
  its ``T``-th task. On the process backend the worker process calls
  ``os._exit`` (a genuine SIGKILL-equivalent death the supervisor must
  detect, requeue around, and respawn); on the thread backend the task
  raises :class:`InjectedWorkerKill` at entry — before any shared
  state is touched — so the supervisor can re-run it safely.
- **delay** (:class:`DelayScan`) — straggler emulation: matching
  tasks run ``multiplier``x slower (the task is timed and the excess
  slept) or sleep a fixed ``seconds``. Exercises the scan-timeout
  watchdog and hedged re-issue.
- **drop shm** (:class:`DropSharedMemory`) — the shared layout
  segment disappears before dispatch ``at_batch``; the process
  backend must treat this as total pool loss and fall back to the
  thread path (the only case fallback is still allowed for).

Kills fire at task *boundaries* — never inside a deque lock or a
half-merged heap — so every schedule is replayable and the recovery
contract stays testable: coverage 1.0 results must be byte-identical
to the serial oracle no matter which schedule ran.

The injector is parent-owned. Worker processes receive only a plain
picklable spec (:meth:`HostFaultInjector.process_spec`); the parent
disarms a kill rule once it observes the death
(:meth:`on_worker_death`), so a respawned worker does not re-die on
the same rule and crash-loop.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

#: Exit code used by chaos-killed worker processes (visible in
#: ``Process.exitcode`` — distinguishes injected deaths from bugs).
CHAOS_EXIT_CODE = 42


class HostFaultError(RuntimeError):
    """Base class of injected host-path failures."""


class InjectedWorkerKill(HostFaultError):
    """A thread-backend task was chaos-killed at entry (retry-safe)."""


@dataclass(frozen=True)
class KillWorker:
    """Kill worker ``worker`` when it starts its ``at_task``-th task.

    ``at_task`` counts tasks *started by that worker slot* since the
    injector was armed (0-based). On the thread backend, where pool
    threads have no stable identity, the ordinal counts all tasks
    globally and ``worker`` is ignored.
    """

    worker: int
    at_task: int


@dataclass(frozen=True)
class DelayScan:
    """Slow matching scans down (straggler emulation).

    Attributes:
        multiplier: run matching tasks this many times slower (the
            task is timed, then ``(multiplier - 1) x elapsed`` is
            slept). Mirrors the sim schedule's straggler
            ``rate_multiplier``.
        seconds: alternatively, a fixed extra sleep per matching task.
        worker: restrict to one worker slot (None = any).
        every: apply to every ``every``-th matching task (1 = all).
    """

    multiplier: float = 1.0
    seconds: float = 0.0
    worker: "int | None" = None
    every: int = 1

    def __post_init__(self) -> None:
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.seconds < 0:
            raise ValueError(
                f"seconds must be non-negative, got {self.seconds}"
            )
        if self.every <= 0:
            raise ValueError(f"every must be positive, got {self.every}")


@dataclass(frozen=True)
class DropSharedMemory:
    """Drop the shared layout segment before dispatch ``at_batch``.

    ``at_batch`` is the 0-based ordinal of ``ProcessBackend`` batch
    dispatches since the injector was armed.
    """

    at_batch: int


@dataclass
class HostFaultCounters:
    """Recovery activity a host backend accumulated since last reset.

    Mirrors the ``harmony_*_total`` families the supervisor publishes:
    every counter here surfaces through
    ``ExecutionReport.fault_stats`` and ``repro.obs.report_metrics``.
    """

    worker_respawns: int = 0
    tasks_requeued: int = 0
    scan_timeouts: int = 0
    abandoned_scans: int = 0

    @property
    def any_activity(self) -> bool:
        return bool(
            self.worker_respawns
            or self.tasks_requeued
            or self.scan_timeouts
            or self.abandoned_scans
        )

    def take(self) -> "HostFaultCounters":
        """Snapshot-and-reset (per-search report accounting)."""
        out = HostFaultCounters(
            worker_respawns=self.worker_respawns,
            tasks_requeued=self.tasks_requeued,
            scan_timeouts=self.scan_timeouts,
            abandoned_scans=self.abandoned_scans,
        )
        self.worker_respawns = 0
        self.tasks_requeued = 0
        self.scan_timeouts = 0
        self.abandoned_scans = 0
        return out


def apply_task_chaos(
    spec: "dict | None", worker: int, ordinal: int, flush=None
):
    """Worker-process side: act on a picklable chaos spec.

    Called at task start with the worker's own task ordinal. Kills
    exit the process immediately with :data:`CHAOS_EXIT_CODE` —
    after running ``flush()`` (if given), so results already handed
    to the queue's feeder thread reach the parent and the schedule
    stays replayable. Returns the :class:`DelayScan`-shaped delay
    descriptor to apply (``(multiplier, seconds)``) or ``None``.
    """
    if not spec:
        return None
    kill_at = spec.get("kills", {}).get(worker)
    if kill_at is not None and ordinal >= int(kill_at):
        import os

        if flush is not None:
            try:
                flush()
            except Exception:
                pass
        os._exit(CHAOS_EXIT_CODE)
    for rule in spec.get("delays", ()):
        if rule["worker"] is not None and rule["worker"] != worker:
            continue
        if (ordinal + 1) % rule["every"] == 0:
            return (rule["multiplier"], rule["seconds"])
    return None


def sleep_for_delay(delay, elapsed: float) -> None:
    """Apply one chaos delay descriptor after a timed task body."""
    if delay is None:
        return
    multiplier, seconds = delay
    extra = max(0.0, (float(multiplier) - 1.0) * elapsed) + float(seconds)
    if extra > 0:
        time.sleep(extra)


class HostFaultInjector:
    """A seeded, replayable schedule of host-path fault injections.

    Attach to any host backend (``backend.chaos = injector`` or
    ``HarmonyDB.set_host_faults``); thread-safe — the thread backend's
    pool consults it concurrently.
    """

    def __init__(
        self,
        kills: "tuple[KillWorker, ...] | list[KillWorker]" = (),
        delays: "tuple[DelayScan, ...] | list[DelayScan]" = (),
        shm_drops: (
            "tuple[DropSharedMemory, ...] | list[DropSharedMemory]"
        ) = (),
        seed: int = 0,
    ) -> None:
        self.seed = int(seed)
        self.delays = tuple(delays)
        self.shm_drops = tuple(shm_drops)
        self._kills: dict[int, int] = {}
        for kill in kills:
            at = int(kill.at_task)
            worker = int(kill.worker)
            self._kills[worker] = min(
                self._kills.get(worker, at), at
            )
        self._lock = threading.Lock()
        self._thread_ordinal = 0
        self._batch_ordinal = 0
        #: Injections that actually fired (for assertions in tests).
        self.fired: list[str] = []

    # -- construction ---------------------------------------------------

    @classmethod
    def random(
        cls,
        n_workers: int,
        seed: int,
        p_kill: float = 0.7,
        p_delay: float = 0.7,
        max_kill_task: int = 6,
        max_delay_seconds: float = 0.01,
        max_multiplier: float = 4.0,
    ) -> "HostFaultInjector":
        """A random-but-replayable schedule (property-test driver)."""
        rng = np.random.default_rng(seed)
        kills = []
        if n_workers > 0 and rng.random() < p_kill:
            kills.append(
                KillWorker(
                    worker=int(rng.integers(0, n_workers)),
                    at_task=int(rng.integers(0, max_kill_task)),
                )
            )
        delays = []
        if rng.random() < p_delay:
            delays.append(
                DelayScan(
                    multiplier=float(rng.uniform(1.0, max_multiplier)),
                    seconds=float(rng.uniform(0.0, max_delay_seconds)),
                    worker=(
                        int(rng.integers(0, n_workers))
                        if n_workers > 0 and rng.random() < 0.5
                        else None
                    ),
                    every=int(rng.integers(1, 4)),
                )
            )
        return cls(kills=kills, delays=delays, seed=seed)

    # -- parent-side hooks ----------------------------------------------

    def process_spec(self) -> "dict | None":
        """Picklable spec shipped to worker processes per dispatch.

        Only the still-armed rules; the parent disarms a kill once the
        death is observed so respawned workers do not crash-loop.
        """
        with self._lock:
            kills = dict(self._kills)
        delays = [
            {
                "worker": rule.worker,
                "every": rule.every,
                "multiplier": rule.multiplier,
                "seconds": rule.seconds,
            }
            for rule in self.delays
        ]
        if not kills and not delays:
            return None
        return {"kills": kills, "delays": delays}

    def on_worker_death(self, worker: int) -> None:
        """Disarm the kill rule that (presumably) just fired."""
        with self._lock:
            if self._kills.pop(int(worker), None) is not None:
                self.fired.append(f"kill:worker={worker}")

    def check_shared_memory(self, backend) -> None:
        """Raise ``OSError`` when a shm-drop event covers this dispatch.

        Called by ``ProcessBackend`` before each batch dispatch; also
        unlinks the live segment so the loss is real, not simulated.
        """
        with self._lock:
            ordinal = self._batch_ordinal
            self._batch_ordinal += 1
            due = [d for d in self.shm_drops if d.at_batch == ordinal]
            if due:
                self.fired.append(f"shm-drop:batch={ordinal}")
        if not due:
            return
        layout = getattr(backend, "_shared_layout", None)
        if layout is not None:
            layout.unlink()
            backend._shared_layout = None
        raise OSError(f"chaos: shared layout segment dropped (batch {ordinal})")

    # -- thread-backend side --------------------------------------------

    def thread_task_event(self):
        """Per-task event for the thread backend's global task stream.

        Returns ``(delay_descriptor | None, kill: bool)``; a kill is
        one-shot (the rule is consumed) and must be raised by the
        caller *before* touching shared state.
        """
        with self._lock:
            ordinal = self._thread_ordinal
            self._thread_ordinal += 1
            kill = False
            for worker, at_task in list(self._kills.items()):
                if ordinal >= at_task:
                    del self._kills[worker]
                    self.fired.append(f"kill:task={ordinal}")
                    kill = True
                    break
        delay = None
        for rule in self.delays:
            if (ordinal + 1) % rule.every == 0:
                delay = (rule.multiplier, rule.seconds)
                break
        return delay, kill

    def describe(self) -> dict:
        """JSON-safe summary (benchmark manifests)."""
        with self._lock:
            kills = dict(self._kills)
        return {
            "seed": self.seed,
            "kills": {str(k): int(v) for k, v in kills.items()},
            "delays": [
                {
                    "worker": rule.worker,
                    "every": rule.every,
                    "multiplier": rule.multiplier,
                    "seconds": rule.seconds,
                }
                for rule in self.delays
            ],
            "shm_drops": [int(d.at_batch) for d in self.shm_drops],
            "fired": list(self.fired),
        }
