"""HARMONY core: partition plans, cost model, planner, pipelined engine.

This package is the paper's primary contribution:

- :mod:`~repro.core.partition` — multi-granularity (vector x dimension)
  partition plans (Section 4.1),
- :mod:`~repro.core.cost_model` / :mod:`~repro.core.planner` — the
  fine-grained query planner (Section 4.2),
- :mod:`~repro.core.routing` — query load distribution and dimension-
  order scheduling (Sections 4.2.2, 4.3),
- :mod:`~repro.core.executor` — the backend-agnostic execution core:
  one :class:`ScanKernel` (Section 4.3, Algorithm 1) behind the
  serial, thread, and simulated backends,
- :mod:`~repro.core.pruning` / :mod:`~repro.core.pipeline` — lossless
  dimension-level early-stop pruning and the simulated timing shell,
- :mod:`~repro.core.database` — the :class:`HarmonyDB` facade.
"""

from repro.core.config import HarmonyConfig, Mode, resolve_mode
from repro.core.cost_model import (
    CostParameters,
    PlanCost,
    WorkloadProfile,
    communication_seconds,
    imbalance_factor,
    node_loads,
    plan_cost,
)
from repro.core.capacity import CapacityPlan, plan_capacity
from repro.core.database import HarmonyDB
from repro.core.executor import (
    Backend,
    QueryState,
    ScanKernel,
    SerialBackend,
    SimulatedBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.core.heap import TopKHeap
from repro.core.monitor import DriftMonitor, DriftStatus
from repro.core.parallel import ThreadedSearcher
from repro.core.partition import (
    PartitionPlan,
    assign_lists_balanced,
    assign_lists_contiguous,
    build_plan,
    grid_shapes,
    round_robin_placement,
)
from repro.core.pipeline import PipelineEngine
from repro.core.planner import PlanDecision, QueryPlanner
from repro.core.pruning import PruningStats, ShardScan
from repro.core.results import (
    BuildReport,
    ExecutionReport,
    PlacementReport,
    SearchResult,
)
from repro.core.routing import (
    adaptive_order,
    shard_candidate_lists,
    slice_order,
    staggered_order,
    touched_shards,
)

__all__ = [
    "Backend",
    "BuildReport",
    "CapacityPlan",
    "CostParameters",
    "DriftMonitor",
    "DriftStatus",
    "ExecutionReport",
    "HarmonyConfig",
    "HarmonyDB",
    "Mode",
    "PartitionPlan",
    "PipelineEngine",
    "PlacementReport",
    "PlanCost",
    "PlanDecision",
    "PruningStats",
    "QueryPlanner",
    "QueryState",
    "ScanKernel",
    "SearchResult",
    "SerialBackend",
    "ShardScan",
    "SimulatedBackend",
    "ThreadBackend",
    "ThreadedSearcher",
    "TopKHeap",
    "WorkloadProfile",
    "adaptive_order",
    "assign_lists_balanced",
    "assign_lists_contiguous",
    "build_plan",
    "communication_seconds",
    "grid_shapes",
    "imbalance_factor",
    "node_loads",
    "plan_capacity",
    "plan_cost",
    "resolve_backend",
    "resolve_mode",
    "round_robin_placement",
    "shard_candidate_lists",
    "slice_order",
    "staggered_order",
    "touched_shards",
]
