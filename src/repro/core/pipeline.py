"""Flexible pipelined execution engine (paper Section 4.3, Algorithm 1).

The engine runs a query batch against a partition plan on the simulated
cluster. It interleaves two concerns that the paper deliberately
couples:

1. *Real computation* — every algorithm step is delegated to the shared
   :class:`~repro.core.executor.kernel.ScanKernel` (the same code the
   serial and thread backends run), so every partial distance is
   actually computed, every pruning decision is taken on real numbers,
   and the returned top-K sets are exact for the probed lists.
2. *Simulated timing* — each kernel step is charged to the hosting
   machine's timeline and each message to the network, so the batch
   makespan reflects queueing, load imbalance, pipelining, and the
   communication mode, just like the paper's MPI deployment.

This module owns only the *timing shell*: machine selection, message
transfers, timeline charging, and the stage-synchronous round loop.
The search algorithm itself lives in ``repro.core.executor``.

Execution is *stage-synchronous*, mirroring the paper's Figure 5: all
in-flight (query, shard) scans advance one dimension block per round,
so machine timelines receive work in arrival order and the pipeline
overlaps queries naturally. Per query (Algorithm 1):

- **Prewarm**: the client scores a few candidates from the nearest
  probed list to seed the top-K heap with a finite threshold.
- **Vector pipeline**: a query's shards enter the rounds staggered
  (shard ``j`` starts at round ``j``), so survivors of earlier shards
  tighten the heap threshold before later shards scan — Figure 5(a)'s
  Stage A / Stage B rotation.
- **Dimension pipeline**: within a shard, one block per round, hosted
  on its machine; partial results flow machine-to-machine, and in the
  non-pipelined ablation every stage boundary additionally synchronizes
  through a client control round-trip (barrier semantics); candidates
  whose lossless lower bound exceeds the threshold leave the pipeline
  immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster import CLIENT_NODE, Cluster
from repro.cluster.faults import WorkerUnavailableError
from repro.cluster.messages import (
    MESSAGE_HEADER_BYTES,
    PARTIAL_ENTRY_BYTES,
    partial_result_bytes,
    query_chunk_bytes,
    result_set_bytes,
)
from repro.core.config import HarmonyConfig
from repro.core.executor.kernel import (
    QueryState,
    ScanKernel,
    collect_results,
    recall_vs_healthy,
)
from repro.core.heap import TopKHeap
from repro.core.partition import PartitionPlan
from repro.core.pruning import PruningStats, ShardScan
from repro.util.retry import RetryPolicy
from repro.core.results import (
    DegradedReport,
    ExecutionReport,
    FaultStats,
    PlacementReport,
    SearchResult,
)
from repro.core.routing import staggered_order
from repro.index.ivf import IVFFlatIndex
from repro.obs.trace import trace_context

#: Client-side cost of merging one partial-result batch (barrier mode).
MERGE_OVERHEAD_SECONDS = 2e-6

#: Client-side per-candidate heap maintenance cost.
HEAP_COST_PER_CANDIDATE = 2e-9

#: Fixed per-query dispatch overhead on the client.
DISPATCH_OVERHEAD_SECONDS = 1e-6

#: Concurrent (query, shard) scans whose partial-result accumulators a
#: machine keeps resident at once. The pipelined engine overlaps this
#: many scans in steady state, so their workspaces coexist — the
#: "intermediate results" memory that makes dimension-partitioned plans
#: peak higher than vector plans (paper Table 5).
IN_FLIGHT_SCANS = 8

#: Memory-restructure rate for dimension-sliced blocks during
#: pre-assignment (bytes per second): one copy pass into column-sliced
#: layout plus workspace initialization.
RESTRUCTURE_BYTES_PER_SECOND = 2e9


@dataclass
class _ScanState:
    """One in-flight (query, shard) pass through the dimension pipeline."""

    query_index: int
    shard: int
    scan: ShardScan
    heap: TopKHeap
    chunk_arrival: dict[int, float]
    involved: frozenset[int]
    start_round: int
    fixed_order: np.ndarray | None
    machine_for: dict[int, int] = field(default_factory=dict)
    position: int = 0
    prev_end: float = 0.0
    prev_machine: int | None = None
    finished: bool = False
    remaining: list[int] = field(default_factory=list)


class PipelineEngine:
    """Distributed query executor for one (index, plan, cluster) triple.

    Args:
        index: trained+populated IVF index (shared across strategies).
        plan: the partition plan to execute under.
        cluster: simulated cluster whose timelines are charged.
        config: flags controlling pruning / pipelining / load balance.
    """

    def __init__(
        self,
        index: IVFFlatIndex,
        plan: PartitionPlan,
        cluster: Cluster,
        config: HarmonyConfig,
    ) -> None:
        if not index.is_trained:
            raise RuntimeError("engine requires a trained index")
        if plan.n_machines > cluster.n_workers:
            raise ValueError(
                f"plan targets {plan.n_machines} machines but cluster has "
                f"{cluster.n_workers}"
            )
        self.index = index
        self.plan = plan
        self.cluster = cluster
        self.config = config
        self._static_allocations: dict[int, int] = {}
        self._inflight: dict[int, list[int]] = {}
        # The client's result-merge side runs on its own timeline: the
        # 56-thread client overlaps dispatching new queries with merging
        # arriving partials, so merge work must not stall dispatch. A
        # backfilling WorkerNode keeps the timeline insensitive to the
        # engine's submission order (merges run when their inputs
        # arrive, not when the program happens to reach them).
        from repro.cluster.node import WorkerNode

        self._merge_timeline = WorkerNode(node_id=-2, compute_rate=1.0)
        self._query_submit = np.zeros(0, dtype=np.float64)
        self._query_complete = np.zeros(0, dtype=np.float64)
        # Projected per-worker compute seconds assigned at dispatch;
        # replica routing balances against this because real loads are
        # still zero while a batch is being dispatched.
        self._dispatch_loads = np.zeros(cluster.n_workers, dtype=np.float64)
        # Live replica locations; when a recovery manager is wired in
        # (HarmonyDB.enable_fault_recovery) this directory overrides the
        # plan's static placement, so re-replicated copies are routable.
        self.replica_directory = None
        # Per-run fault bookkeeping, rebuilt by run().
        self._fault_stats = FaultStats()
        self._coverage: np.ndarray | None = None
        # The algorithm itself: shared with the serial/thread backends.
        self.kernel = ScanKernel(
            index,
            plan,
            metric=config.metric,
            prewarm_size=config.prewarm_size,
            enable_pruning=config.enable_pruning,
            scan_precision=config.scan_precision,
        )
        #: Bytes each scanned element streams through a worker's memory
        #: system: 1-byte SQ8 codes vs 4-byte fp32 rows. Feeds the
        #: optional bandwidth roofline in ``Cluster.compute``.
        self._scan_bytes_per_element = (
            1 if config.scan_precision == "sq8" else 4
        )

    # ------------------------------------------------------------------
    # Data placement
    # ------------------------------------------------------------------

    def place_data(self) -> PlacementReport:
        """Distribute index blocks to machines (the Pre-assign stage).

        Charges static memory to each worker and computes the simulated
        pre-assignment time: the client streams each grid block over
        the network, and machines hosting *dimension-sliced* blocks
        additionally restructure them into column-sliced layout and
        initialize partial-result workspaces — the data-size-dependent
        extra cost the paper observes for Harmony / Harmony-dimension.
        """
        if self._static_allocations:
            raise RuntimeError("data already placed; call release_data() first")
        plan = self.plan
        widths = plan.slices.widths()
        sizes = self.index.list_sizes()
        network = self.cluster.network
        per_machine: dict[int, int] = {m: 0 for m in range(plan.n_machines)}
        send_clock = 0.0
        ready_at: dict[int, float] = {m: 0.0 for m in range(plan.n_machines)}

        expected_candidates = int(
            np.ceil(
                self.index.ntotal * self.config.nprobe / self.index.nlist
            )
        )
        for shard in range(plan.n_vector_shards):
            shard_rows = int(sizes[plan.lists_of_shard(shard)].sum())
            for block in range(plan.n_dim_blocks):
                block_bytes = shard_rows * widths[block] * 4
                if self.config.scan_precision == "sq8":
                    # Dual representation: uint8 codes ride alongside
                    # the fp32 rows (scans stream the codes; survivors
                    # re-rank against the full-precision block).
                    block_bytes += shard_rows * widths[block]
                id_bytes = shard_rows * 8
                nbytes = block_bytes + id_bytes
                restructure = 0.0
                if plan.n_dim_blocks > 1:
                    nbytes += expected_candidates * PARTIAL_ENTRY_BYTES
                    restructure = block_bytes / RESTRUCTURE_BYTES_PER_SECOND
                # Every replica holds (and receives) a full copy.
                for machine in plan.replica_machines(shard, block):
                    machine = int(machine)
                    per_machine[machine] += nbytes
                    send_clock += network.transfer_time(nbytes)
                    ready_at[machine] = max(
                        ready_at[machine], send_clock + restructure
                    )
        for machine, nbytes in per_machine.items():
            self.cluster.allocate(machine, nbytes)
        self._static_allocations = dict(per_machine)
        preassign = max(ready_at.values()) if ready_at else 0.0
        return PlacementReport(
            per_machine_bytes=per_machine, preassign_seconds=preassign
        )

    def release_data(self) -> None:
        """Release statically placed blocks (used when re-planning)."""
        for machine, nbytes in self._static_allocations.items():
            self.cluster.release(machine, nbytes)
        self._static_allocations = {}
        self._drain_inflight()

    def _charge_inflight(self, machine: int, nbytes: int) -> None:
        """Track a scan workspace; evict the oldest past the window."""
        window = self._inflight.setdefault(machine, [])
        window.append(nbytes)
        self.cluster.allocate(machine, nbytes)
        if len(window) > IN_FLIGHT_SCANS:
            self.cluster.release(machine, window.pop(0))

    def _drain_inflight(self) -> None:
        """Release every outstanding scan workspace."""
        for machine, window in self._inflight.items():
            for nbytes in window:
                self.cluster.release(machine, nbytes)
        self._inflight = {}

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------

    def run(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int | None = None,
        arrival_times: np.ndarray | None = None,
        filter_labels: "np.ndarray | list[int] | None" = None,
    ) -> tuple[SearchResult, ExecutionReport]:
        """Execute a query batch; returns answers plus a timing report.

        Results are exactly those of a single-node IVF scan with the
        same nlist/nprobe — pruning is lossless by construction.

        Args:
            queries: ``(nq, dim)`` query batch.
            k: neighbours per query.
            nprobe: probed lists (defaults to the config's).
            arrival_times: optional per-query simulated arrival
                timestamps (ascending) for open-loop load experiments;
                a query is not dispatched before it arrives, and its
                reported latency includes any queueing delay. When
                omitted, the batch is treated closed-loop (all queries
                available at time zero).
            filter_labels: optional metadata labels; only vectors whose
                label is in this set are searched.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        nprobe = nprobe if nprobe is not None else self.config.nprobe
        queries = self.kernel.prepare_queries(queries)
        if arrival_times is not None:
            arrival_times = np.asarray(arrival_times, dtype=np.float64)
            if arrival_times.shape != (queries.shape[0],):
                raise ValueError(
                    f"need one arrival time per query, got "
                    f"{arrival_times.shape} for {queries.shape[0]} queries"
                )
            if np.any(np.diff(arrival_times) < 0) or np.any(
                arrival_times < 0
            ):
                raise ValueError("arrival_times must be ascending and >= 0")
        cluster = self.cluster
        cluster.reset_time()
        self._drain_inflight()
        self._merge_timeline.reset_time()
        self._dispatch_loads[:] = 0.0
        plan = self.plan
        index = self.index
        nq = queries.shape[0]
        dim = index.dim

        probes = index.probe(queries, nprobe)
        allowed = index.allowed_mask(filter_labels)

        stats = PruningStats(plan.n_dim_blocks)
        heaps: list[TopKHeap] = []
        states: list[_ScanState] = []
        rerank_before = self.kernel.rerank_candidates_total
        self._query_submit = np.zeros(nq, dtype=np.float64)
        self._query_complete = np.zeros(nq, dtype=np.float64)
        self._fault_stats = FaultStats()
        # [scanned, total] candidate counts per query; only maintained
        # under degraded_mode (the healthy fast path stays untouched).
        self._coverage = (
            np.zeros((nq, 2), dtype=np.int64)
            if self.config.degraded_mode
            else None
        )

        # Dispatch phase: prewarm every query's heap (a kernel step,
        # charged to the client) and create the in-flight scan states
        # with their chunk transfers.
        tracer = cluster.tracer
        for i in range(nq):
            arrival = (
                float(arrival_times[i]) if arrival_times is not None else 0.0
            )
            # Client-side centroid ranking for this query.
            with trace_context(tracer, "route", query=i):
                cluster.compute(
                    CLIENT_NODE, index.nlist * dim, earliest=arrival
                )
            query_state = self.kernel.begin_query(
                i, queries[i], probes[i], k, allowed
            )
            heaps.append(query_state.heap)
            if self._coverage is not None:
                self._coverage[i, :] += query_state.prewarmed.size
            self._charge_prewarm(query_state, earliest=arrival)
            with trace_context(tracer, "dispatch", query=i):
                _, dispatch_t = cluster.overhead(
                    CLIENT_NODE, DISPATCH_OVERHEAD_SECONDS, earliest=arrival
                )
            # Latency is measured from arrival (open loop) or batch
            # start (closed loop), so client queueing counts.
            self._query_submit[i] = arrival
            self._query_complete[i] = dispatch_t
            for shard_pos, shard in enumerate(
                self.kernel.shards_for(query_state)
            ):
                state = self._make_state(
                    query_state=query_state,
                    shard=int(shard),
                    shard_pos=shard_pos,
                    dispatch_t=dispatch_t,
                    allowed=allowed,
                )
                if state is not None:
                    states.append(state)

        # Stage-synchronous rounds: every live state advances one block
        # per round; shard j of a query enters at round j (vector-level
        # staggering), so earlier shards tighten the threshold first.
        if states:
            last_round = max(
                st.start_round + plan.n_dim_blocks for st in states
            )
            for round_index in range(last_round):
                for state in states:
                    if state.finished or round_index < state.start_round:
                        continue
                    self._advance(state, stats, k)

        result = collect_results(heaps, k)
        fault_stats = self._fault_stats
        fault_stats.dropped_messages = cluster.fault_counters[
            "dropped_messages"
        ]
        degraded = None
        if self._coverage is not None:
            scanned = self._coverage[:, 0]
            total = self._coverage[:, 1]
            coverage = np.where(
                total > 0, scanned / np.maximum(total, 1), 1.0
            )
            degraded_idx = np.flatnonzero(scanned < total)
            degraded = DegradedReport(
                coverage=coverage,
                n_degraded_queries=int(degraded_idx.size),
                skipped_scans=fault_stats.skipped_scans,
                abandoned_scans=fault_stats.abandoned_scans,
                recall_vs_healthy=recall_vs_healthy(
                    self.kernel, queries, probes, k, allowed,
                    degraded_idx, result.ids,
                ),
            )
        report = ExecutionReport(
            n_queries=nq,
            k=k,
            nprobe=nprobe,
            simulated_seconds=max(
                cluster.makespan(),
                self._merge_timeline.free_at,
                float(self._query_complete.max(initial=0.0)),
            ),
            breakdown=cluster.breakdown(),
            worker_loads=cluster.worker_loads(),
            pruning=stats if plan.n_dim_blocks > 1 else None,
            peak_memory_bytes=cluster.peak_memory_bytes(),
            mean_peak_memory_bytes=cluster.mean_peak_memory_bytes(),
            plan_summary=plan.describe(),
            latencies=self._query_complete - self._query_submit,
            fault_stats=(
                fault_stats
                if cluster.fault_schedule is not None
                or fault_stats.any_activity
                else None
            ),
            degraded=degraded,
            trace=tracer.trace() if tracer is not None else None,
            rerank_candidates=(
                self.kernel.rerank_candidates_total - rerank_before
            ),
            code_bytes=(
                int(self.kernel._packed.codes_nbytes)
                if self.kernel._packed is not None
                else 0
            ),
        )
        return result, report

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _charge_prewarm(
        self, query_state: QueryState, earliest: float
    ) -> None:
        """Charge the kernel's prewarm scoring to the client timeline.

        Prewarm is base-vector scan work displaced from the workers, so
        it is priced at the (scale-derated) worker rate even though it
        runs on the client. No-op when nothing was prewarmed.
        """
        n_scored = query_state.prewarmed.size
        if n_scored == 0:
            return
        worker_rate = self.cluster.workers[0].compute_rate
        start, end = self.cluster.client.occupy(
            n_scored * self.index.dim / worker_rate,
            earliest=earliest,
            category="computation",
        )
        if self.cluster.tracer is not None:
            # Direct client.occupy bypasses Cluster.compute, so the
            # span must be recorded here for category totals to
            # reconcile with the report breakdown.
            self.cluster.tracer.record(
                "prewarm",
                "computation",
                CLIENT_NODE,
                start,
                end,
                query=query_state.query_index,
                candidates=int(n_scored),
            )

    def _make_state(
        self,
        query_state: QueryState,
        shard: int,
        shard_pos: int,
        dispatch_t: float,
        allowed: np.ndarray | None = None,
    ) -> _ScanState | None:
        """Create the scan state for one (query, shard) pair."""
        plan = self.plan
        cluster = self.cluster
        config = self.config
        scan = self.kernel.make_scan(query_state, shard, allowed)
        if scan is None:
            return None
        candidates = scan.candidate_ids
        qidx = query_state.query_index
        if self._coverage is not None:
            self._coverage[qidx, 1] += scan.n_candidates

        fixed_order: np.ndarray | None
        if plan.n_dim_blocks == 1:
            fixed_order = np.zeros(1, dtype=np.int64)
        elif config.enable_load_balance:
            fixed_order = None  # chosen lazily per round, load-aware
        elif config.enable_pipeline:
            fixed_order = staggered_order(
                plan.n_dim_blocks, query_state.query_index, shard
            )
        else:
            fixed_order = np.arange(plan.n_dim_blocks, dtype=np.int64)

        # Pick each block's serving machine at dispatch time: with
        # replication, the replica with the least *projected* load wins
        # (real loads are still zero during the dispatch phase). Failed
        # workers are routed around; a block with no live replica makes
        # the search fail loudly — unless degraded_mode accepts the
        # coverage loss and skips the whole shard instead.
        machine_for: dict[int, int] = {}
        widths_all = plan.slices.widths()
        for block in range(plan.n_dim_blocks):
            options = [
                m
                for m in self._replica_options(shard, block)
                if not cluster.is_failed(m)
            ]
            if not options:
                if config.degraded_mode:
                    self._fault_stats.skipped_scans += 1
                    return None
                raise RuntimeError(
                    f"no live replica of grid block (shard {shard}, "
                    f"block {block}); failed workers: "
                    f"{sorted(cluster.failed_workers)}"
                )
            chosen = min(
                options, key=lambda m: (self._dispatch_loads[m], m)
            )
            machine_for[block] = chosen
            self._dispatch_loads[chosen] += (
                candidates.size
                * widths_all[block]
                / cluster.workers[chosen].compute_rate
            )
        if self._coverage is not None:
            self._coverage[qidx, 0] += scan.n_candidates

        # Query chunks are dispatched to every involved machine up front.
        widths = plan.slices.widths()
        chunk_arrival: dict[int, float] = {}
        for block in range(plan.n_dim_blocks):
            with trace_context(
                cluster.tracer, "query-chunk",
                query=qidx, shard=shard, block=block,
            ):
                chunk_arrival[block] = cluster.transfer(
                    CLIENT_NODE,
                    machine_for[block],
                    query_chunk_bytes(widths[block]),
                    earliest=dispatch_t,
                )

        involved = frozenset(machine_for.values())
        if plan.n_dim_blocks > 1:
            acc_bytes = candidates.size * PARTIAL_ENTRY_BYTES
            for machine in involved:
                self._charge_inflight(machine, acc_bytes)

        return _ScanState(
            query_index=query_state.query_index,
            shard=shard,
            scan=scan,
            heap=query_state.heap,
            chunk_arrival=chunk_arrival,
            involved=involved,
            start_round=shard_pos,
            fixed_order=fixed_order,
            machine_for=machine_for,
            remaining=list(range(plan.n_dim_blocks)),
        )

    def _replica_options(self, shard: int, block: int) -> list[int]:
        """Machines currently holding (shard, block), ascending.

        The live replica directory (when recovery is enabled) overrides
        the plan's static placement, so blocks re-replicated after a
        crash — or trimmed after a restore — route correctly.
        """
        if self.replica_directory is not None:
            return [int(m) for m in self.replica_directory.holders(shard, block)]
        return [int(m) for m in self.plan.replica_machines(shard, block)]

    def _pick_alternate(
        self, state: _ScanState, block: int, exclude: int, at_time: float
    ) -> int | None:
        """Least-loaded live replica of a block other than ``exclude``."""
        options = [
            m
            for m in self._replica_options(state.shard, block)
            if m != exclude and not self.cluster.is_failed(m, at_time=at_time)
        ]
        if not options:
            return None
        return min(options, key=lambda m: (self._dispatch_loads[m], m))

    def _robust_compute(
        self,
        state: _ScanState,
        block: int,
        elements: float,
        ready: float,
        bytes_touched: "float | None" = None,
        concurrency: int = 1,
    ) -> "tuple[int, float] | tuple[None, None]":
        """Fault-tolerant replacement for one ``cluster.compute`` call.

        Retries with exponential backoff when the chosen machine is
        crashed (each attempt charging simulated wait time), fails over
        to another live replica when one exists (re-shipping the query
        chunk), and — when ``hedge_latency_threshold`` is set — hedges
        a duplicate request to a second replica if the primary's
        projected latency (straggler-aware) exceeds the threshold,
        keeping whichever finishes first.

        Returns ``(machine, end_time)`` on success, ``(None, None)``
        after exhausting retries (degraded mode abandons the scan;
        otherwise the caller's contract is to raise).
        """
        cluster = self.cluster
        config = self.config
        fstats = self._fault_stats
        widths = self.plan.slices.widths()
        machine = state.machine_for[block]
        clock = ready
        # Jitter-free policy: simulated fault timelines must replay
        # byte-identically, so attempt i waits exactly base * 2**i.
        backoff = RetryPolicy(
            base=config.retry_timeout, max_attempts=config.max_retries
        )
        for attempt in range(config.max_retries + 1):
            hedge_machine = None
            hedge_end = None
            if (
                config.hedge_latency_threshold is not None
                and cluster.projected_compute_seconds(
                    machine, elements, at_time=clock,
                    bytes_touched=bytes_touched, concurrency=concurrency,
                )
                > config.hedge_latency_threshold
            ):
                hedge_machine = self._pick_alternate(
                    state, block, machine, clock
                )
                if hedge_machine is not None:
                    with trace_context(
                        cluster.tracer, "hedge-scan", hedged=1
                    ):
                        chunk = cluster.transfer(
                            CLIENT_NODE,
                            hedge_machine,
                            query_chunk_bytes(widths[block]),
                            earliest=clock,
                        )
                        try:
                            _, hedge_end = cluster.compute(
                                hedge_machine, elements, earliest=chunk,
                                bytes_touched=bytes_touched,
                                concurrency=concurrency,
                            )
                            fstats.hedges += 1
                        except WorkerUnavailableError:
                            hedge_end = None
            try:
                _, end = cluster.compute(
                    machine, elements, earliest=clock,
                    bytes_touched=bytes_touched, concurrency=concurrency,
                )
            except WorkerUnavailableError:
                end = None
            if end is not None:
                if hedge_end is not None and hedge_end < end:
                    fstats.hedge_wins += 1
                    return hedge_machine, hedge_end
                return machine, end
            if hedge_end is not None:
                # Primary crashed but the hedge already landed.
                fstats.hedge_wins += 1
                return hedge_machine, hedge_end
            # Timed retry: wait out the backoff, then either fail over
            # to another live replica (re-shipping the query chunk) or
            # knock on the same machine again — it may have recovered.
            fstats.retries += 1
            clock += backoff.delay(attempt)
            alternate = self._pick_alternate(state, block, machine, clock)
            if alternate is not None:
                fstats.failovers += 1
                with trace_context(
                    cluster.tracer, "failover-chunk", failover=1
                ):
                    chunk = cluster.transfer(
                        CLIENT_NODE,
                        alternate,
                        query_chunk_bytes(widths[block]),
                        earliest=clock,
                    )
                clock = max(clock, chunk)
                machine = alternate
        return None, None

    def _next_block(self, state: _ScanState) -> int:
        """Pick the state's next dimension block.

        Load-aware mode defers the busiest machine's block to later
        positions (the paper's adaptive reordering); otherwise the
        precomputed staggered/canonical order applies.
        """
        if state.fixed_order is not None:
            return int(state.fixed_order[state.position])
        loads = {
            m.node_id: m.breakdown.computation for m in self.cluster.workers
        }
        return min(
            state.remaining,
            key=lambda b: (loads[state.machine_for[b]], b),
        )

    def _advance(self, state: _ScanState, stats: PruningStats, k: int) -> None:
        """Advance one state by one dimension block (one round)."""
        plan = self.plan
        cluster = self.cluster
        config = self.config
        scan = state.scan

        stats.record(
            state.position,
            n_pruned=scan.n_candidates - scan.n_alive,
            n_total=scan.n_candidates,
        )
        if scan.n_alive == 0:
            # Everything pruned: remaining positions are pure skips.
            for position in range(state.position + 1, plan.n_dim_blocks):
                stats.record(
                    position,
                    n_pruned=scan.n_candidates,
                    n_total=scan.n_candidates,
                )
            state.finished = True
            self._query_complete[state.query_index] = max(
                self._query_complete[state.query_index], state.prev_end
            )
            return

        block = self._next_block(state)
        state.remaining.remove(block)
        machine = state.machine_for[block]
        widths = plan.slices.widths()
        tracer = cluster.tracer
        qidx = state.query_index

        # Data availability: the query chunk, plus (after position 0)
        # the partial results forwarded from the previous machine.
        ready = state.chunk_arrival[block]
        if state.position > 0 and state.prev_machine is not None:
            nbytes = partial_result_bytes(scan.n_alive)
            with trace_context(
                tracer, "partial-forward",
                query=qidx, shard=state.shard, block=block,
            ):
                arrival = cluster.transfer(
                    state.prev_machine, machine, nbytes,
                    earliest=state.prev_end,
                )
            if not config.enable_pipeline:
                # Barrier semantics: the next stage may not start until
                # the client has acknowledged the previous one. Data
                # still moves worker-to-worker, but a control round
                # trip (header-sized messages) plus a client merge sits
                # on the critical path of every stage boundary.
                with trace_context(
                    tracer, "barrier-notify",
                    query=qidx, shard=state.shard, block=block,
                ):
                    notify = cluster.transfer(
                        state.prev_machine,
                        CLIENT_NODE,
                        MESSAGE_HEADER_BYTES,
                        earliest=state.prev_end,
                    )
                merged = self._client_merge(
                    MERGE_OVERHEAD_SECONDS, earliest=notify,
                    name="barrier-merge", query=qidx,
                )
                with trace_context(
                    tracer, "barrier-go",
                    query=qidx, shard=state.shard, block=block,
                ):
                    go_ahead = cluster.transfer(
                        CLIENT_NODE, machine, MESSAGE_HEADER_BYTES,
                        earliest=merged,
                    )
                arrival = max(arrival, go_ahead)
            ready = max(ready, arrival)

        # One kernel step: accumulate the slice, prune against the
        # query heap. The compute charge covers the rows that were
        # actually processed (pruning shrinks later stages).
        processed = self.kernel.step(scan, state.heap, block)
        elements = processed * widths[block]
        # Memory-bandwidth roofline inputs: the bytes this scan streams
        # (codes on sq8, fp32 rows otherwise) and how many in-flight
        # scans currently share the machine's memory system.
        bytes_touched = elements * self._scan_bytes_per_element
        concurrency = max(1, len(self._inflight.get(machine, ())))
        with trace_context(
            tracer, "scan",
            query=qidx, shard=state.shard, block=block,
            position=state.position, processed=int(processed),
            alive=int(scan.n_alive),
            pruned=int(processed - scan.n_alive),
        ):
            if (
                cluster.fault_schedule is None
                and config.hedge_latency_threshold is None
            ):
                _, end = cluster.compute(
                    machine, elements, earliest=ready,
                    bytes_touched=bytes_touched, concurrency=concurrency,
                )
            else:
                machine, end = self._robust_compute(
                    state, block, elements, ready,
                    bytes_touched=bytes_touched, concurrency=concurrency,
                )
        if machine is None:
            self._abandon_scan(state)
            return
        state.prev_end = end
        state.prev_machine = machine
        state.position += 1

        if state.position == plan.n_dim_blocks:
            state.finished = True
            with trace_context(
                tracer, "result", query=qidx, shard=state.shard,
            ):
                result_arrival = cluster.transfer(
                    machine,
                    CLIENT_NODE,
                    result_set_bytes(min(k, max(scan.n_alive, 1))),
                    earliest=end,
                )
            done_at = result_arrival
            if scan.n_alive:
                n_merged = self.kernel.merge_survivors(scan, state.heap)
                done_at = self._client_merge(
                    DISPATCH_OVERHEAD_SECONDS
                    + n_merged * HEAP_COST_PER_CANDIDATE,
                    earliest=result_arrival,
                    name="merge", query=qidx,
                )
            self._query_complete[state.query_index] = max(
                self._query_complete[state.query_index], done_at
            )

    def _abandon_scan(self, state: _ScanState) -> None:
        """Drop a scan whose every retry failed.

        Under ``degraded_mode`` the scan's candidates leave the
        coverage numerator (they were counted as scheduled work at
        dispatch) and the query completes partial; otherwise the
        failure is fatal, matching the no-live-replica dispatch error.
        """
        if not self.config.degraded_mode:
            raise WorkerUnavailableError(
                f"scan of shard {state.shard} for query "
                f"{state.query_index} exhausted its "
                f"{self.config.max_retries} retries with no live replica"
            )
        self._fault_stats.abandoned_scans += 1
        if self._coverage is not None:
            self._coverage[state.query_index, 0] -= state.scan.n_candidates
        state.finished = True
        self._query_complete[state.query_index] = max(
            self._query_complete[state.query_index], state.prev_end
        )

    def _client_merge(
        self,
        seconds: float,
        earliest: float,
        name: str = "merge",
        query: int | None = None,
    ) -> float:
        """Charge result-merge work to the client's merge timeline.

        Runs no earlier than ``earliest`` (the results' arrival) but
        does not stall the client's dispatch timeline; the backfilling
        timeline keeps it independent of submission order. Returns the
        merge completion time.
        """
        start, end = self._merge_timeline.occupy(seconds, earliest, "other")
        self.cluster.client.breakdown.charge("other", seconds)
        tracer = self.cluster.tracer
        if tracer is not None:
            # The merge timeline bypasses Cluster methods, so record
            # the span here (lane -2) to keep category totals aligned
            # with the report breakdown.
            args = {} if query is None else {"query": query}
            tracer.record(
                name, "other", self._merge_timeline.node_id,
                start, end, **args,
            )
        return end
