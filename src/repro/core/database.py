"""HarmonyDB: the public facade of the distributed vector database.

Typical usage::

    from repro import HarmonyConfig, HarmonyDB

    config = HarmonyConfig(n_machines=4, nlist=64, nprobe=8)
    db = HarmonyDB(dim=128, config=config)
    build = db.build(base_vectors, sample_queries=queries[:128])
    result, report = db.search(queries, k=10)
    print(report.qps, report.plan_summary)

``build`` trains the shared IVF clustering, lets the cost-model planner
choose the partition grid for the configured mode, and distributes the
index blocks onto the simulated cluster. ``search`` executes the
pipelined engine and returns exact-for-the-probed-lists answers plus a
full simulated-performance report.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.config import HarmonyConfig, Mode
from repro.core.cost_model import CostParameters, WorkloadProfile
from repro.core.partition import PartitionPlan
from repro.core.pipeline import PipelineEngine
from repro.core.planner import PlanDecision, QueryPlanner
from repro.core.results import BuildReport, ExecutionReport, SearchResult


class HarmonyDB:
    """A HARMONY deployment: index + planner + cluster + engine.

    Args:
        dim: vector dimensionality.
        config: deployment configuration (see :class:`HarmonyConfig`).
        cluster: simulated cluster to run on; a default one with
            ``config.n_machines`` workers is created when omitted.
    """

    def __init__(
        self,
        dim: int,
        config: HarmonyConfig | None = None,
        cluster: Cluster | None = None,
    ) -> None:
        self.config = config or HarmonyConfig()
        if cluster is None:
            cluster = Cluster(
                n_workers=self.config.n_machines,
                memory_bandwidth=self.config.memory_bandwidth,
            )
        if cluster.n_workers < self.config.n_machines:
            raise ValueError(
                f"config wants {self.config.n_machines} machines but the "
                f"cluster has {cluster.n_workers} workers"
            )
        self.cluster = cluster
        from repro.index.ivf import IVFFlatIndex

        self.index = IVFFlatIndex(
            dim=dim,
            nlist=self.config.nlist,
            metric=self.config.metric,
            seed=self.config.seed,
            max_iterations=self.config.kmeans_iterations,
        )
        self._engine: PipelineEngine | None = None
        self._decision: PlanDecision | None = None
        self._placement = None
        self._host_backend = None
        self._host_faults = None
        # Serializes lazy host-backend construction and teardown:
        # concurrent first searches used to race the spawn (two pools,
        # one leaked). The search path itself stays lock-free.
        self._backend_lock = threading.Lock()
        self._tracer = None
        self._metrics = None
        self._result_cache = None
        if self.config.enable_cache:
            from repro.cache import ResultCache

            self._result_cache = ResultCache(
                max_entries=self.config.cache_size,
                epsilon=self.config.cache_semantic_epsilon,
            )

    @classmethod
    def from_trained_index(
        cls,
        index: "IVFFlatIndex",
        config: HarmonyConfig | None = None,
        cluster: Cluster | None = None,
        sample_queries: np.ndarray | None = None,
        k: int = 10,
    ) -> "HarmonyDB":
        """Deploy an already trained+populated IVF index.

        All HARMONY variants in the paper's evaluation share one
        clustering (Section 6.1); this constructor lets callers build
        that index once and attach it to several deployments without
        re-running k-means. Planning and data placement run
        immediately, so the returned DB is ready to search.

        Raises:
            RuntimeError: if the index is untrained or empty.
            ValueError: if the config disagrees with the index's
                nlist or metric.
        """
        from repro.index.ivf import IVFFlatIndex  # noqa: F811

        if not index.is_trained or index.ntotal == 0:
            raise RuntimeError("index must be trained and populated")
        config = config or HarmonyConfig(nlist=index.nlist, metric=index.metric)
        if config.nlist != index.nlist:
            raise ValueError(
                f"config nlist {config.nlist} != index nlist {index.nlist}"
            )
        if config.metric is not index.metric:
            raise ValueError(
                f"config metric {config.metric} != index metric {index.metric}"
            )
        db = cls(dim=index.dim, config=config, cluster=cluster)
        db.index = index
        db._plan_and_place(sample_queries, k)
        return db

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @property
    def is_built(self) -> bool:
        return self._engine is not None

    @property
    def ntotal(self) -> int:
        return self.index.ntotal

    @property
    def plan(self) -> PartitionPlan:
        """The active partition plan."""
        if self._decision is None:
            raise RuntimeError("build() has not been called")
        return self._decision.plan

    @property
    def result_cache(self):
        """The attached :class:`repro.cache.ResultCache`, or None.

        Built when the deployment was configured with
        ``enable_cache=True``; inspect ``result_cache.stats()`` for
        live hit/miss/invalidation counters.
        """
        return self._result_cache

    @property
    def plan_decision(self) -> PlanDecision:
        """The full planning outcome, including rejected grid shapes."""
        if self._decision is None:
            raise RuntimeError("build() has not been called")
        return self._decision

    def build(
        self,
        base: np.ndarray,
        sample_queries: np.ndarray | None = None,
        k: int = 10,
        labels: np.ndarray | None = None,
    ) -> BuildReport:
        """Train, populate, plan, and distribute the index.

        Args:
            base: ``(n, dim)`` base vectors.
            sample_queries: workload sample for the cost model; when
                omitted the planner assumes uniform probe frequencies.
            k: top-K size assumed when pricing result messages.
            labels: optional per-vector metadata labels for filtered
                search.

        Returns:
            A :class:`BuildReport` with simulated Train / Add /
            Pre-assign stage times (paper Figure 10).
        """
        base = np.atleast_2d(np.asarray(base, dtype=np.float32))
        self.index.train(base)
        self.index.add(base, labels=labels)
        stats = self.index.build_stats()
        client_rate = self.cluster.client.compute_rate
        train_seconds = stats.train_elements / client_rate
        add_seconds = stats.add_elements / client_rate

        self._plan_and_place(sample_queries, k)
        assert self._placement is not None
        return BuildReport(
            train_seconds=train_seconds,
            add_seconds=add_seconds,
            preassign_seconds=self._placement.preassign_seconds,
            placement=self._placement,
        )

    def add(self, vectors: np.ndarray, labels: np.ndarray | None = None):
        """Insert vectors into a built deployment (streaming ingest).

        New vectors join their nearest centroid's inverted list under
        the existing clustering and partition plan; the affected grid
        blocks are re-shipped to their machines. Subsequent searches
        see the new vectors immediately and remain exact w.r.t. a
        single-node scan. Optional per-vector metadata ``labels`` are
        usable as search filters.

        Returns:
            The refreshed :class:`PlacementReport`.
        """
        if not self.is_built:
            raise RuntimeError("build() must be called before add()")
        assert self._engine is not None
        self.index.add(vectors, labels=labels)
        if self._result_cache is not None:
            self._result_cache.invalidate()
        return self._refresh_engine()

    def remove(self, ids: np.ndarray) -> int:
        """Delete vectors by id (tombstoned, never returned again).

        Returns:
            Number of vectors newly deleted.
        """
        if not self.is_built:
            raise RuntimeError("build() must be called before remove()")
        removed = self.index.remove_ids(ids)
        if removed:
            if self._result_cache is not None:
                self._result_cache.invalidate()
            self._refresh_engine()
        return removed

    def _refresh_engine(self):
        """Rebuild the sim engine/placement after an index mutation.

        The host backend (thread/process pools, shared segments) is
        deliberately *kept*: the plan is unchanged, so its kernel
        absorbs the mutation lazily as delta rows / tombstone bits on
        the next search instead of paying a full layout repack.
        """
        assert self._engine is not None and self._decision is not None
        self._engine.release_data()
        self._engine = PipelineEngine(
            index=self.index,
            plan=self._decision.plan,
            cluster=self.cluster,
            config=self.config,
        )
        self._tune_engine_kernel()
        self._placement = self._engine.place_data()
        return self._placement

    def compact(self) -> dict:
        """Merge pending delta segments and tombstones into a fresh
        base-generation layout now, instead of waiting for the
        ``delta_compact_ratio`` trigger.

        Searches are byte-identical before and after; compaction only
        restores packed-layout density after heavy mutation churn (and,
        on the process backend, re-homes the shared segment once on the
        next search). Returns a stats dict with ``compacted``,
        ``generation``, ``delta_rows_merged`` and
        ``tombstones_cleared``; a no-op (nothing pending, or no host
        backend active yet) reports ``compacted: False``.
        """
        if not self.is_built:
            raise RuntimeError("build() must be called before compact()")
        with self._backend_lock:
            backend = self._host_backend
        if backend is None:
            return {
                "compacted": False,
                "generation": 0,
                "delta_rows_merged": 0,
                "tombstones_cleared": 0,
            }
        stats = backend.kernel.compact()
        if stats.get("compacted") and self._result_cache is not None:
            # Compaction opens a new layout generation; cached entries
            # must never be served across it.
            self._result_cache.invalidate()
        return stats

    def replan(
        self, sample_queries: np.ndarray, k: int = 10
    ) -> PlanDecision:
        """Re-run the planner for a new workload and redistribute.

        This is HARMONY's adaptation path: when the observed workload
        shifts (e.g. becomes skewed), the cost model may select a
        different grid; blocks are re-placed accordingly.
        """
        if not self.is_built:
            raise RuntimeError("build() has not been called")
        assert self._engine is not None
        self._engine.release_data()
        self._plan_and_place(sample_queries, k)
        assert self._decision is not None
        return self._decision

    def _plan_and_place(
        self, sample_queries: np.ndarray | None, k: int
    ) -> None:
        config = self.config
        params = CostParameters.from_cluster(self.cluster, alpha=config.alpha)
        planner = QueryPlanner(self.index, params, k=k)

        # Every strategy calibrates its partition against a *typical*
        # workload (a sample of the base distribution), as deployed
        # systems do. Only HARMONY additionally adapts to the observed
        # query sample — that adaptivity is the paper's contribution;
        # the vector/dimension baselines stay static (Section 6.1).
        adapt = config.mode is Mode.HARMONY and sample_queries is not None
        if adapt:
            sample = np.atleast_2d(np.asarray(sample_queries, dtype=np.float32))
            if sample.shape[0] > config.plan_sample:
                rng = np.random.default_rng(config.seed)
                picks = rng.choice(
                    sample.shape[0], size=config.plan_sample, replace=False
                )
                sample = sample[picks]
        else:
            rng = np.random.default_rng(config.seed)
            picks = rng.choice(
                self.index.ntotal,
                size=min(config.plan_sample, self.index.ntotal),
                replace=False,
            )
            sample = self.index.base[picks]
        profile: WorkloadProfile | None = planner.profile(
            sample, config.nprobe
        )
        self._decision = planner.choose(
            n_machines=config.n_machines,
            mode=config.mode,
            profile=profile,
            load_aware=config.enable_load_balance,
            balanced=config.enable_load_balance,
            pruning=config.enable_pruning,
            forced_grid=config.forced_grid,
            replicas=config.replicas,
        )
        self._engine = PipelineEngine(
            index=self.index,
            plan=self._decision.plan,
            cluster=self.cluster,
            config=config,
        )
        self._tune_engine_kernel()
        self._placement = self._engine.place_data()
        self._drop_host_backend()

    def _tune_engine_kernel(self) -> None:
        """Apply config knobs the engine doesn't thread through itself
        (currently the routing-cache capacity)."""
        assert self._engine is not None
        from repro.core.routing import RoutingCache

        self._engine.kernel.routing_cache = RoutingCache(
            max_entries=self.config.routing_cache_size
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def search(
        self,
        queries: np.ndarray,
        k: int = 10,
        nprobe: int | None = None,
        arrival_times: np.ndarray | None = None,
        filter_labels: "np.ndarray | list[int] | None" = None,
    ) -> tuple[SearchResult, ExecutionReport]:
        """Distributed top-K search for a batch of queries.

        Returns the exact same result sets a single-node IVF scan with
        identical nlist/nprobe (and the same label filter) would
        produce, plus the simulated performance report of the
        distributed execution.

        Pass ``arrival_times`` (ascending simulated timestamps, one per
        query) for open-loop load experiments: latencies then include
        queueing delay behind earlier queries. Pass ``filter_labels``
        to restrict the search to vectors carrying one of the given
        metadata labels (see ``IVFFlatIndex.add``'s ``labels``).

        The execution substrate follows ``config.backend``: under
        ``"sim"`` (default) the report carries simulated cluster
        timings; under ``"thread"`` / ``"process"`` / ``"serial"``
        the batch runs on the host and the report's
        ``simulated_seconds`` is measured host wall-clock instead.
        """
        if not self.is_built:
            raise RuntimeError("build() must be called before search()")
        assert self._engine is not None
        if self._result_cache is not None and arrival_times is None:
            return self._cached_search(
                queries, k=k, nprobe=nprobe, filter_labels=filter_labels
            )
        if self.config.backend == "sim":
            return self._engine.run(
                queries,
                k=k,
                nprobe=nprobe,
                arrival_times=arrival_times,
                filter_labels=filter_labels,
            )
        if arrival_times is not None:
            raise ValueError(
                "arrival_times (open-loop simulation) requires the "
                "'sim' backend"
            )
        return self._host_search(
            queries, k=k, nprobe=nprobe, filter_labels=filter_labels
        )

    def _uncached_search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int | None,
        filter_labels: "np.ndarray | list[int] | None",
    ) -> tuple[SearchResult, ExecutionReport]:
        """The configured backend's search, bypassing the result cache."""
        assert self._engine is not None
        if self.config.backend == "sim":
            return self._engine.run(
                queries, k=k, nprobe=nprobe, filter_labels=filter_labels
            )
        return self._host_search(
            queries, k=k, nprobe=nprobe, filter_labels=filter_labels
        )

    def _search_kernel(self):
        """The scan kernel the configured backend searches through."""
        assert self._engine is not None
        if self.config.backend == "sim":
            return self._engine.kernel
        return self._get_host_backend().kernel

    def _cache_generation(self) -> tuple:
        """The ``(index uid, index version, layout generation)`` tuple
        current cache entries must match. Mutations move the version,
        compactions (and full rebuilds) move the layout generation, and
        a whole new index object moves the uid — any of the three
        invalidates the cache."""
        if self.config.backend == "sim":
            kernel = self._engine.kernel if self._engine is not None else None
        else:
            backend = self._host_backend
            kernel = backend.kernel if backend is not None else None
        layout_generation = (
            kernel.layout_stats()["layout_generation"]
            if kernel is not None
            else 0
        )
        return (self.index.uid, self.index.version, layout_generation)

    def cache_probe(
        self,
        query: np.ndarray,
        k: int,
        nprobe: int | None = None,
        filter_labels: "np.ndarray | list[int] | None" = None,
    ):
        """Advisory single-query result-cache probe (serve fast path).

        Returns a :class:`repro.cache.CacheHit` when the prepared query
        can be answered from the cache right now, else None. Misses are
        *not* counted — the authoritative lookup happens when the query
        flows through :meth:`search`. Returns None when caching is
        disabled.
        """
        cache = self._result_cache
        if cache is None or not self.is_built:
            return None
        from repro.cache import make_filter_key

        prepared = self._search_kernel().prepare_queries(query)
        if prepared.shape[0] != 1:
            raise ValueError(
                f"cache_probe takes a single query, got "
                f"{prepared.shape[0]}"
            )
        nprobe = nprobe if nprobe is not None else self.config.nprobe
        return cache.lookup(
            prepared[0],
            k,
            nprobe,
            self.config.metric.value,
            make_filter_key(filter_labels),
            self._cache_generation(),
            record_miss=False,
        )

    def _cached_search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int | None,
        filter_labels: "np.ndarray | list[int] | None",
    ) -> tuple[SearchResult, ExecutionReport]:
        """Search through the result cache: serve hit rows from cached
        answers, dispatch only the miss rows to the backend, and cache
        fresh non-degraded answers for next time.

        Exact hits are byte-identical by construction (the key includes
        the prepared query bytes and every answer-shaping parameter);
        semantic hits (ε > 0) serve a cached neighbor's answer and are
        flagged in the report's ``result_cache_semantic_hits``.
        """
        import time

        from repro.cache import make_filter_key
        from repro.cache.result_cache import CACHE_LANE
        from repro.cluster.stats import TimeBreakdown

        cache = self._result_cache
        assert cache is not None
        nprobe = nprobe if nprobe is not None else self.config.nprobe
        kernel = self._search_kernel()
        prepared = kernel.prepare_queries(queries)
        nq = prepared.shape[0]
        if nq == 0:
            return self._uncached_search(
                queries, k=k, nprobe=nprobe, filter_labels=filter_labels
            )
        metric = self.config.metric.value
        filter_key = make_filter_key(filter_labels)
        stats_before = cache.stats()
        generation = self._cache_generation()
        lookup_start = time.perf_counter()
        hits = [
            cache.lookup(
                prepared[i], k, nprobe, metric, filter_key, generation
            )
            for i in range(nq)
        ]
        lookup_end = time.perf_counter()
        miss_rows = [i for i, hit in enumerate(hits) if hit is None]

        if not miss_rows:
            # Whole batch served from cache: no routing, no scan.
            elapsed = lookup_end - lookup_start
            if self._tracer is not None:
                self._tracer.clear()
                self._tracer.record(
                    "cache-lookup", "other", CACHE_LANE,
                    lookup_start, lookup_end,
                    batch=nq, hits=nq,
                )
            stats_after = cache.stats()
            report = ExecutionReport(
                n_queries=nq,
                k=k,
                nprobe=nprobe,
                simulated_seconds=elapsed,
                breakdown=TimeBreakdown(other=elapsed),
                worker_loads=np.zeros(
                    self.config.n_machines, dtype=np.float64
                ),
                pruning=None,
                peak_memory_bytes=0,
                plan_summary=f"{self.plan.describe()} [result cache]",
                trace=(
                    self._tracer.trace()
                    if self._tracer is not None
                    else None
                ),
            )
            self._fill_cache_report(report, stats_before, stats_after)
            result = SearchResult(
                distances=np.stack([hit.distances for hit in hits]),
                ids=np.stack([hit.ids for hit in hits]),
            )
            return result, report

        # Dispatch the misses as one sub-batch through the configured
        # backend. Raw (unprepared) rows go in so the backend prepares
        # them exactly as an uncached batch would — per-query results
        # are independent of batch composition, so the merged batch is
        # byte-identical to an uncached run.
        raw = np.atleast_2d(np.asarray(queries, dtype=np.float32))
        sub = np.ascontiguousarray(raw[miss_rows])
        sub_result, report = self._uncached_search(
            sub, k=k, nprobe=nprobe, filter_labels=filter_labels
        )

        # Only cache answers that are (a) fully covered — degraded
        # partial results are wrong to replay once the cluster heals —
        # and (b) still current: a concurrent mutation between lookup
        # and completion moves uid/version, making these answers stale
        # before they land.
        post_generation = self._cache_generation()
        if post_generation[:2] == generation[:2]:
            coverage = (
                report.degraded.coverage
                if report.degraded is not None
                else None
            )
            for j, row in enumerate(miss_rows):
                if coverage is not None and coverage[j] < 1.0:
                    continue
                cache.insert(
                    prepared[row], k, nprobe, metric, filter_key,
                    post_generation,
                    sub_result.ids[j], sub_result.distances[j],
                )

        if self._tracer is not None and self.config.backend != "sim":
            # The backend cleared the tracer at sub-batch start, so the
            # lookup span is stamped afterwards (host wall-clock lanes
            # only — the sim trace runs on simulated time).
            self._tracer.record(
                "cache-lookup", "other", CACHE_LANE,
                lookup_start, lookup_end,
                batch=nq, hits=nq - len(miss_rows),
            )
            report.trace = self._tracer.trace()

        stats_after = cache.stats()
        self._fill_cache_report(report, stats_before, stats_after)
        if len(miss_rows) == nq:
            return sub_result, report

        ids = np.empty((nq,) + sub_result.ids.shape[1:],
                       dtype=sub_result.ids.dtype)
        distances = np.empty(
            (nq,) + sub_result.distances.shape[1:],
            dtype=sub_result.distances.dtype,
        )
        for j, row in enumerate(miss_rows):
            ids[row] = sub_result.ids[j]
            distances[row] = sub_result.distances[j]
        for i, hit in enumerate(hits):
            if hit is not None:
                ids[i] = hit.ids
                distances[i] = hit.distances
        report.n_queries = nq
        return SearchResult(distances=distances, ids=ids), report

    @staticmethod
    def _fill_cache_report(report, stats_before, stats_after) -> None:
        """Stamp per-batch result-cache deltas (+ bytes gauge) onto a
        finished report."""
        report.result_cache_hits = stats_after.hits - stats_before.hits
        report.result_cache_misses = (
            stats_after.misses - stats_before.misses
        )
        report.result_cache_semantic_hits = (
            stats_after.semantic_hits - stats_before.semantic_hits
        )
        report.result_cache_evictions = (
            stats_after.evictions - stats_before.evictions
        )
        report.result_cache_invalidations = (
            stats_after.invalidations - stats_before.invalidations
        )
        report.result_cache_bytes = stats_after.bytes

    def _host_search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int | None,
        filter_labels: "np.ndarray | list[int] | None",
    ) -> tuple[SearchResult, ExecutionReport]:
        """Run the batch on a host backend; report host wall-clock.

        Host backends honor the cluster's failure state the same way
        the simulator does: a shard whose every replica of some block
        is failed either raises (default) or is skipped with coverage
        accounting (``degraded_mode``). Timed fault schedules need the
        simulated timeline and are rejected here.
        """
        import time

        from repro.cluster.stats import TimeBreakdown

        if self.cluster.fault_schedule is not None:
            raise ValueError(
                "fault schedules require the 'sim' backend; the "
                f"{self.config.backend!r} backend has no simulated "
                "timeline to apply timed events to"
            )
        backend = self._get_host_backend()
        nprobe = nprobe if nprobe is not None else self.config.nprobe
        lstats_before = backend.kernel.layout_stats()
        routing_cache = backend.kernel.routing_cache
        rstats_before = (
            routing_cache.stats() if routing_cache is not None else None
        )
        dead: set[int] = set()
        if self.cluster.failed_workers:
            from repro.cluster.recovery import unavailable_shards

            dead = unavailable_shards(self.cluster, self.plan)
            if dead and not self.config.degraded_mode:
                shard = sorted(dead)[0]
                raise RuntimeError(
                    f"no live replica of grid blocks of shard {shard}; "
                    f"failed workers: "
                    f"{sorted(self.cluster.failed_workers)}; enable "
                    f"degraded_mode to serve partial results"
                )
        coverage = None
        skip_shards = None
        if self.config.degraded_mode:
            prepared = backend.kernel.prepare_queries(queries)
            coverage = np.zeros((prepared.shape[0], 2), dtype=np.int64)
            skip_shards = frozenset(dead) if dead else None
        if self._tracer is not None:
            # One trace per batch, matching the sim backend's
            # reset_time semantics.
            self._tracer.clear()
        start = time.perf_counter()
        result = backend.search(
            queries, k=k, nprobe=nprobe, filter_labels=filter_labels,
            skip_shards=skip_shards, coverage=coverage,
        )
        elapsed = time.perf_counter() - start
        from repro.core.results import FaultStats

        host_faults = backend.fault_counters.take()
        degraded = None
        skipped = 0
        if coverage is not None:
            from repro.core.executor.kernel import recall_vs_healthy
            from repro.core.results import DegradedReport
            from repro.core.routing import touched_shards

            prepared = backend.kernel.prepare_queries(queries)
            probes = self.index.probe(prepared, nprobe)
            allowed = self.index.allowed_mask(filter_labels)
            if dead:
                for i in range(prepared.shape[0]):
                    shards = touched_shards(self.plan, probes[i])
                    skipped += sum(1 for s in shards if int(s) in dead)
            scanned, total = coverage[:, 0], coverage[:, 1]
            fractions = np.where(
                total > 0, scanned / np.maximum(total, 1), 1.0
            )
            degraded_idx = np.flatnonzero(scanned < total)
            degraded = DegradedReport(
                coverage=fractions,
                n_degraded_queries=int(degraded_idx.size),
                skipped_scans=skipped,
                abandoned_scans=host_faults.abandoned_scans,
                recall_vs_healthy=recall_vs_healthy(
                    backend.kernel, prepared, probes, k, allowed,
                    degraded_idx, result.ids,
                ),
            )
        stats = FaultStats(
            skipped_scans=skipped,
            abandoned_scans=host_faults.abandoned_scans,
            worker_respawns=host_faults.worker_respawns,
            tasks_requeued=host_faults.tasks_requeued,
            scan_timeouts=host_faults.scan_timeouts,
        )
        fault_stats = stats if stats.any_activity else None
        report = ExecutionReport(
            n_queries=result.n_queries,
            k=k,
            nprobe=nprobe,
            simulated_seconds=elapsed,
            breakdown=TimeBreakdown(computation=elapsed),
            worker_loads=np.zeros(self.config.n_machines, dtype=np.float64),
            pruning=None,
            peak_memory_bytes=0,
            plan_summary=(
                f"{self.plan.describe()} [{backend.name} backend, "
                f"host wall-clock]"
            ),
            fault_stats=fault_stats,
            degraded=degraded,
            trace=(
                self._tracer.trace() if self._tracer is not None else None
            ),
            layout_bytes=backend.layout_nbytes(),
            worker_steals=(
                [int(s) for s in backend.last_steal_counts]
                if backend.name == "process" else None
            ),
            rerank_candidates=int(backend.last_rerank_count),
            code_bytes=backend.code_nbytes(),
        )
        # Gauges are end-of-batch state; build/refresh/compaction
        # counters are per-batch deltas (metrics counters accumulate
        # across reports, mirroring the routing-cache idiom).
        lstats = backend.kernel.layout_stats()
        report.layout_generation = lstats["layout_generation"]
        report.delta_rows = lstats["delta_rows"]
        report.tombstones_pending = lstats["tombstones_since_build"]
        for key in (
            "layout_builds", "layout_refreshes", "layout_compactions"
        ):
            setattr(report, key, lstats[key] - lstats_before[key])
        if routing_cache is not None:
            rstats_after = routing_cache.stats()
            report.routing_cache_hits = (
                rstats_after["hits"] - rstats_before["hits"]
            )
            report.routing_cache_misses = (
                rstats_after["misses"] - rstats_before["misses"]
            )
            report.routing_cache_evictions = (
                rstats_after["evictions"] - rstats_before["evictions"]
            )
        return result, report

    def _get_host_backend(self):
        """The lazily built host backend for the active plan.

        The backend persists across searches (thread/process pools are
        expensive to spin up); it is closed and rebuilt whenever the
        plan or placement changes, and released by :meth:`close`.
        Construction is serialized by ``_backend_lock`` so concurrent
        first callers share one backend instead of racing the spawn.
        """
        backend = self._host_backend
        if backend is not None:
            return backend
        with self._backend_lock:
            backend = self._host_backend
            if backend is not None:
                return backend
            from repro.core.executor import (
                ProcessBackend,
                SerialBackend,
                ThreadBackend,
            )

            if self.config.backend == "thread":
                backend = ThreadBackend(
                    self.index,
                    plan=self.plan,
                    n_threads=self.config.n_threads,
                    prewarm_size=self.config.prewarm_size,
                    enable_pruning=self.config.enable_pruning,
                    batch_queries=self.config.batch_queries,
                    scan_precision=self.config.scan_precision,
                    scan_timeout=self.config.scan_timeout,
                    scan_retries=self.config.scan_retries,
                    delta_compact_ratio=self.config.delta_compact_ratio,
                    auto_compact=self.config.auto_compact,
                )
            elif self.config.backend == "process":
                backend = ProcessBackend(
                    self.index,
                    plan=self.plan,
                    n_workers=self.config.n_workers,
                    prewarm_size=self.config.prewarm_size,
                    enable_pruning=self.config.enable_pruning,
                    batch_queries=self.config.batch_queries,
                    scan_precision=self.config.scan_precision,
                    scan_timeout=self.config.scan_timeout,
                    scan_retries=self.config.scan_retries,
                    delta_compact_ratio=self.config.delta_compact_ratio,
                    auto_compact=self.config.auto_compact,
                )
            else:
                backend = SerialBackend(
                    self.index,
                    plan=self.plan,
                    prewarm_size=self.config.prewarm_size,
                    enable_pruning=self.config.enable_pruning,
                    batch_queries=self.config.batch_queries,
                    scan_precision=self.config.scan_precision,
                    delta_compact_ratio=self.config.delta_compact_ratio,
                    auto_compact=self.config.auto_compact,
                )
            from repro.core.routing import RoutingCache

            backend.kernel.routing_cache = RoutingCache(
                max_entries=self.config.routing_cache_size
            )
            backend.tracer = self._tracer
            backend.chaos = self._host_faults
            self._host_backend = backend
        return backend

    def _drop_host_backend(self) -> None:
        """Close and forget the host backend (pools, shared memory)."""
        with self._backend_lock:
            backend, self._host_backend = self._host_backend, None
        if backend is not None:
            backend.close()

    def close(self) -> None:
        """Release execution resources (worker pools, shared memory).

        Idempotent; the database remains usable — the next search
        lazily rebuilds whatever backend it needs.
        """
        self._drop_host_backend()

    def set_host_faults(self, injector) -> None:
        """Attach a :class:`repro.cluster.HostFaultInjector` (or None).

        Arms deterministic chaos (worker kills, scan delays, shm
        drops) on the host execution path; the thread and process
        backends consult the injector at task boundaries. Applies to
        the current backend and to any backend built later. Pass
        ``None`` to disarm.
        """
        if self.config.backend == "sim":
            raise ValueError(
                "host fault injection applies to host backends; the "
                "'sim' backend scripts faults via FaultSchedule"
            )
        self._host_faults = injector
        with self._backend_lock:
            backend = self._host_backend
        if backend is not None:
            backend.chaos = injector

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def serve(self, **overrides):
        """Start a :class:`repro.serve.HarmonyServer` over this DB.

        The server's coalescing / SLO / admission knobs default to the
        deployment's ``serve_*`` config fields; keyword overrides
        (``max_batch=``, ``slo_ms=``, ``queue_depth=``,
        ``shed_policy=``, ``deadline_fraction=``, ``metrics=``) adjust
        them per server. The returned server is already started; use
        it as a context manager or call ``close()`` to drain and stop.
        """
        if not self.is_built:
            raise RuntimeError("build() must be called before serve()")
        from repro.serve.server import HarmonyServer

        return HarmonyServer(self, **overrides)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    @property
    def tracer(self):
        """The attached :class:`repro.obs.Tracer`, or None."""
        return self._tracer

    @property
    def metrics(self):
        """The attached :class:`repro.obs.MetricsRegistry`, or None."""
        return self._metrics

    def enable_tracing(self, capacity: int | None = None):
        """Attach a span tracer; subsequent searches carry a trace.

        Under the ``"sim"`` backend the trace holds per-query spans
        over simulated time, one lane per cluster node; under host
        backends it holds wall-clock spans, one lane per worker
        thread. Either way ``ExecutionReport.trace`` is populated and
        exportable as Chrome ``trace_event`` JSON. Returns the tracer.
        """
        from repro.obs.trace import DEFAULT_CAPACITY, Tracer

        self._tracer = Tracer(
            capacity=capacity if capacity is not None else DEFAULT_CAPACITY
        )
        self.cluster.tracer = self._tracer
        if self._host_backend is not None:
            self._host_backend.tracer = self._tracer
        return self._tracer

    def disable_tracing(self) -> None:
        """Detach the tracer; the hot path returns to untraced cost."""
        self._tracer = None
        self.cluster.tracer = None
        if self._host_backend is not None:
            self._host_backend.tracer = None

    def attach_metrics(self, registry=None):
        """Attach (or create) a live metrics registry; returns it.

        The cluster publishes low-level series (compute calls, queue
        waits, transferred bytes, message drops) as work is charged;
        pair with :func:`repro.obs.report_metrics` to also publish a
        finished report's aggregates.
        """
        from repro.obs.metrics import MetricsRegistry

        self._metrics = registry if registry is not None else MetricsRegistry()
        self.cluster.metrics = self._metrics
        return self._metrics

    def detach_metrics(self) -> None:
        self._metrics = None
        self.cluster.metrics = None

    # ------------------------------------------------------------------
    # Faults and recovery
    # ------------------------------------------------------------------

    def set_fault_schedule(self, schedule) -> None:
        """Attach (or clear, with None) a timed fault schedule.

        See :class:`repro.cluster.faults.FaultSchedule`. Only the
        ``"sim"`` backend applies timed events; host-backend searches
        raise while a schedule is attached.
        """
        self.cluster.set_fault_schedule(schedule)

    def enable_fault_recovery(self):
        """Track live replicas and return a :class:`RecoveryManager`.

        Wires a :class:`~repro.cluster.recovery.ReplicaDirectory` into
        the execution engine (replica routing then follows the live
        directory instead of the plan's static placement) and returns
        the manager whose ``fail(node, now)`` / ``restore(node, now)``
        drive simulated re-replication and rebalancing.
        """
        if not self.is_built:
            raise RuntimeError(
                "build() must be called before enable_fault_recovery()"
            )
        assert self._engine is not None
        from repro.cluster.recovery import RecoveryManager, ReplicaDirectory

        directory = ReplicaDirectory(self.plan, self.index)
        self._engine.replica_directory = directory
        return RecoveryManager(
            cluster=self.cluster,
            plan=self.plan,
            index=self.index,
            directory=directory,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def save(self, path: "str | object") -> None:
        """Serialize the deployment (index + config + plan) to ``.npz``.

        :meth:`load` reconstructs a ready-to-search deployment on a
        fresh simulated cluster that returns identical results.
        """
        if not self.is_built:
            raise RuntimeError("build() must be called before save()")
        import json

        plan = self.plan
        config = self.config
        config_json = json.dumps(
            {
                "n_machines": config.n_machines,
                "nlist": config.nlist,
                "nprobe": config.nprobe,
                "metric": config.metric.value,
                "mode": config.mode.value,
                "alpha": config.alpha,
                "enable_pruning": config.enable_pruning,
                "enable_pipeline": config.enable_pipeline,
                "enable_load_balance": config.enable_load_balance,
                "prewarm_size": config.prewarm_size,
                "plan_sample": config.plan_sample,
                "kmeans_iterations": config.kmeans_iterations,
                "seed": config.seed,
                "backend": config.backend,
                "n_threads": config.n_threads,
                "n_workers": config.n_workers,
                "batch_queries": config.batch_queries,
                "degraded_mode": config.degraded_mode,
                "retry_timeout": config.retry_timeout,
                "max_retries": config.max_retries,
                "hedge_latency_threshold": config.hedge_latency_threshold,
                "scan_precision": config.scan_precision,
                "delta_compact_ratio": config.delta_compact_ratio,
                "auto_compact": config.auto_compact,
                "scan_timeout": config.scan_timeout,
                "scan_retries": config.scan_retries,
                "memory_bandwidth": config.memory_bandwidth,
                "serve_max_batch": config.serve_max_batch,
                "serve_slo_ms": config.serve_slo_ms,
                "serve_deadline_fraction": config.serve_deadline_fraction,
                "serve_queue_depth": config.serve_queue_depth,
                "serve_shed_policy": config.serve_shed_policy,
                "serve_deadline_policy": config.serve_deadline_policy,
                "enable_cache": config.enable_cache,
                "cache_size": config.cache_size,
                "cache_semantic_epsilon": config.cache_semantic_epsilon,
                "routing_cache_size": config.routing_cache_size,
            }
        )
        assignment = np.full(self.index.ntotal, -1, dtype=np.int64)
        for list_id in range(self.index.nlist):
            assignment[self.index._list_ids[list_id]] = list_id
        np.savez_compressed(
            path,
            base=self.index.base,
            centroids=self.index.centroids,
            assignment=assignment,
            deleted=self.index._deleted,
            labels=self.index._labels,
            config=np.array(config_json),
            shard_of_list=plan.shard_of_list,
            placement=plan.placement,
            slice_boundaries=np.array(plan.slices.boundaries, dtype=np.int64),
        )

    @classmethod
    def load(
        cls, path: "str | object", cluster: Cluster | None = None
    ) -> "HarmonyDB":
        """Reconstruct a deployment saved with :meth:`save`."""
        import json

        from repro.core.partition import PartitionPlan
        from repro.distance.partial import DimensionSlices
        from repro.index.ivf import IVFFlatIndex

        with np.load(path, allow_pickle=False) as data:
            config_dict = json.loads(str(data["config"]))
            config = HarmonyConfig(**config_dict)
            index = IVFFlatIndex(
                dim=int(data["base"].shape[1]),
                nlist=config.nlist,
                metric=config.metric,
                seed=config.seed,
                max_iterations=config.kmeans_iterations,
            )
            index._centroids = data["centroids"]
            index._base = data["base"]
            index._deleted = data["deleted"]
            index._labels = data["labels"]
            assignment = data["assignment"]
            for list_id in range(index.nlist):
                index._list_ids[list_id] = np.flatnonzero(
                    assignment == list_id
                ).astype(np.int64)
            shard_of_list = data["shard_of_list"]
            placement = data["placement"]
            boundaries = tuple(int(b) for b in data["slice_boundaries"])

        db = cls(dim=index.dim, config=config, cluster=cluster)
        db.index = index
        plan = PartitionPlan(
            n_machines=config.n_machines,
            n_vector_shards=int(placement.shape[0]),
            n_dim_blocks=int(placement.shape[1]),
            slices=DimensionSlices(boundaries),
            shard_of_list=shard_of_list,
            placement=placement,
        )
        # Re-score the saved plan so plan_decision stays meaningful.
        params = CostParameters.from_cluster(db.cluster, alpha=config.alpha)
        planner = QueryPlanner(index, params)
        profile = planner.profile(
            index.base[: min(64, index.ntotal)], config.nprobe
        )
        from repro.core.cost_model import plan_cost

        cost = plan_cost(plan, index, profile, params)
        db._decision = PlanDecision(
            plan=plan,
            cost=cost,
            evaluated=(
                ((plan.n_vector_shards, plan.n_dim_blocks), cost),
            ),
        )
        db._engine = PipelineEngine(
            index=index, plan=plan, cluster=db.cluster, config=config
        )
        db._tune_engine_kernel()
        db._placement = db._engine.place_data()
        return db

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def index_memory_report(self) -> dict[str, object]:
        """Per-machine index memory vs the single-node equivalent.

        Substrate for the paper's Table 4: ``per_machine`` maps worker
        id to resident index bytes under the active plan;
        ``single_node_total`` is what one Faiss-style node would hold.
        """
        if self._placement is None:
            raise RuntimeError("build() has not been called")
        single = self.index.memory_report()
        return {
            "per_machine": dict(self._placement.per_machine_bytes),
            "max_machine_bytes": self._placement.max_machine_bytes,
            "mean_machine_bytes": self._placement.mean_machine_bytes,
            "total_bytes": self._placement.total_bytes,
            "single_node_total": single["total"],
            "plan": self.plan.describe(),
        }

    def mode(self) -> Mode:
        return self.config.mode
