"""Backend-agnostic execution core (Algorithm 1, once).

The HARMONY search algorithm — prewarm → per-shard dimension pipeline →
lossless prune → heap merge — lives in :class:`ScanKernel`; the
:class:`Backend` implementations decide where its steps run:

========  ==========================  ===================================
name      class                       substrate
========  ==========================  ===================================
serial    :class:`SerialBackend`      plain loop (reference oracle)
thread    :class:`ThreadBackend`      persistent host thread pool
process   :class:`ProcessBackend`     worker processes over shared memory
sim       :class:`SimulatedBackend`   discrete-event cluster + timelines
========  ==========================  ===================================

All backends return byte-identical ids/distances by construction; only
the timing side effects differ.
"""

from repro.core.executor.base import (
    BACKENDS,
    Backend,
    HostBackend,
    default_plan,
    resolve_backend,
)
from repro.core.executor.kernel import (
    QueryState,
    ScanKernel,
    collect_results,
)
from repro.core.executor.process import ProcessBackend, ProcessPoolError
from repro.core.executor.serial import SerialBackend
from repro.core.executor.simulated import SimulatedBackend
from repro.core.executor.threads import ThreadBackend

__all__ = [
    "BACKENDS",
    "Backend",
    "HostBackend",
    "ProcessBackend",
    "ProcessPoolError",
    "QueryState",
    "ScanKernel",
    "SerialBackend",
    "SimulatedBackend",
    "ThreadBackend",
    "collect_results",
    "default_plan",
    "resolve_backend",
]
